"""Committed kernel-performance baselines and the regression gate.

``benchmarks/out/kernels.json`` is the one *committed* performance
artifact: it records backend-vs-backend **ratios** (counter kernel vs
legacy RNG, compiled vs legacy, banded vs dense solver) rather than
absolute slots/sec, so the baseline transfers across CI hosts of
different speeds -- two code paths measured back to back on the same
box divide out the hardware.  ``bench_throughput.py --kernels`` and
``bench_analytic.py --kernels`` re-measure those ratios and exit
non-zero when one falls more than :data:`REGRESSION_MARGIN` below its
committed value; ``--write-kernels-baseline`` refreshes the file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

OUT_DIR = Path(__file__).parent / "out"
BASELINE_PATH = OUT_DIR / "kernels.json"

#: A measured ratio may fall this far below its committed baseline
#: before the gate fails (>15% regression).
REGRESSION_MARGIN = 0.15


def load_baseline() -> dict:
    if not BASELINE_PATH.exists():
        return {}
    return json.loads(BASELINE_PATH.read_text())


def update_baseline(section: str, payload: dict, provenance: dict) -> Path:
    """Replace one bench's section, preserving the others."""
    baseline = load_baseline()
    baseline[section] = payload
    baseline["provenance"] = provenance
    baseline["gate"] = {"regression_margin": REGRESSION_MARGIN}
    OUT_DIR.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    return BASELINE_PATH


def check_ratio(
    name: str,
    measured: float,
    baseline_value: Optional[float],
    margin: float = REGRESSION_MARGIN,
) -> Optional[str]:
    """An error string when ``measured`` regressed past the margin.

    ``None`` baseline means the quantity was not measurable on the
    baseline host (e.g. the compiled ratio without numba) -- no gate.
    """
    if baseline_value is None:
        return None
    floor = baseline_value * (1.0 - margin)
    if measured < floor:
        return (
            f"{name}: measured ratio {measured:.3f} fell more than "
            f"{margin:.0%} below the committed baseline "
            f"{baseline_value:.3f} (floor {floor:.3f})"
        )
    return None
