"""FIG5B: reproduce Figure 5(b) -- 2-D (exact model) cost vs ``c``.

Same sweep as Figure 5(a) on the exact 2-D model.  Additionally checks
the paper's Conclusions-section quantification: raising the delay bound
from 1 to 2 cycles lowers the optimal cost roughly "half way" toward
the unbounded optimum (we gate at >= 40% average gap closure).
"""

import math

import pytest

from repro.analysis import (
    check_figure_shape,
    compute_figure5,
    render_ascii_plot,
    render_table,
)

from conftest import emit


@pytest.mark.benchmark(group="figures")
def test_figure5b_reproduction(benchmark, out_dir):
    figure = benchmark.pedantic(
        compute_figure5, args=(2,), kwargs={"points": 17}, rounds=1, iterations=1
    )
    problems = check_figure_shape(figure)
    closures = []
    for i in range(len(figure.x_values)):
        gap = figure.curves[1][i] - figure.curves[math.inf][i]
        if gap > 1e-9:
            closures.append((figure.curves[1][i] - figure.curves[2][i]) / gap)
    mean_closure = sum(closures) / len(closures) if closures else 1.0
    headers, rows = figure.as_rows()
    series = {figure.curve_label(m): ys for m, ys in figure.curves.items()}
    lines = [
        render_table(headers, rows, title="Figure 5(b): 2-D exact, q=0.05 U=100 V=1"),
        "",
        render_ascii_plot(series, figure.x_values, title="optimal C_T vs c"),
        "",
        f"shape violations: {problems or 'none'}",
        f"mean delay-1 gap closed by delay 2: {mean_closure:.0%} (paper: ~half)",
    ]
    emit(out_dir, "fig5b", "\n".join(lines))
    assert problems == []
    assert mean_closure >= 0.40
