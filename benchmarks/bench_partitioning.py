"""ABL-PART: residing-area partitioning ablation (paper future work).

Compares the paper's equal-ring-count SDF partition against the
DP-optimal contiguous partition and the naive blanket, over a (d, m)
grid on the exact 2-D model.  Answers the paper's open question "an
optimal method for partitioning the residing area should be developed"
with a measured bound on how much the SDF heuristic leaves on the
table.
"""

import math

import pytest

from repro import MobilityParams, TwoDimensionalModel
from repro.analysis import render_table
from repro.paging import (
    blanket_partition,
    optimal_contiguous_partition,
    sdf_partition,
)

from conftest import emit

MODEL = TwoDimensionalModel(MobilityParams(0.2, 0.01))
GRID = [(d, m) for d in (2, 4, 6, 8, 12) for m in (2, 3, 4)]


def _run():
    topo = MODEL.topology
    rows = []
    worst_gap = 0.0
    for d, m in GRID:
        p = MODEL.steady_state(d)
        sizes = [topo.ring_size(i) for i in range(d + 1)]
        sdf = sdf_partition(d, m)
        opt = optimal_contiguous_partition(d, m, p, sizes)
        blanket = blanket_partition(d)
        e_sdf = sdf.expected_polled_cells(topo, p)
        e_opt = opt.expected_polled_cells(topo, p)
        e_blanket = blanket.expected_polled_cells(topo, p)
        gap = (e_sdf - e_opt) / e_opt if e_opt else 0.0
        worst_gap = max(worst_gap, gap)
        rows.append(
            [d, m, e_blanket, e_sdf, e_opt, f"{gap:.1%}", opt.describe()]
        )
    return rows, worst_gap


@pytest.mark.benchmark(group="partitioning")
def test_partition_ablation(benchmark, out_dir):
    rows, worst_gap = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["d", "m", "E[cells] blanket", "SDF", "DP-opt", "SDF gap", "DP plan"]
    text = "\n".join(
        [
            render_table(
                headers, rows,
                title="Partitioning ablation (2-D exact, q=0.2 c=0.01)",
            ),
            "",
            f"worst SDF-vs-optimal gap: {worst_gap:.1%}",
        ]
    )
    emit(out_dir, "partitioning", text)
    for row in rows:
        e_blanket, e_sdf, e_opt = row[2], row[3], row[4]
        assert e_opt <= e_sdf + 1e-9 <= e_blanket + 1e-9
    # Finding (EXPERIMENTS.md): the SDF heuristic is usually within a
    # few percent of optimal but can leave ~50% on the table when
    # gamma = floor((d+1)/l) makes the first subarea much larger than
    # the probability mass warrants (e.g. d=4, m=2).  This is exactly
    # the gap the paper's future-work item anticipates.  Gate the
    # envelope rather than a tight bound.
    assert worst_gap < 0.75
