"""EXT-FLEET: value of per-user tuning over a heterogeneous population.

Samples a realistic subscriber mix (pedestrians / vehicles / static
terminals with per-user jitter) and compares per-user optimal
thresholds against the single threshold tuned to the population
average -- the two deployment modes the paper's Section 8 sketches.

Gated claims:

* per-user tuning saves a meaningful fleet-wide fraction (> 5% here);
* the pain of one-size-fits-all is concentrated: the median user loses
  little, the tail (p99) loses a lot -- which is the actual argument
  for dynamic per-user schemes.
"""

import pytest

from repro import CostParams, TwoDimensionalModel
from repro.analysis import render_table
from repro.workload import DEFAULT_MIX, Population, plan_fleet

from conftest import emit

COSTS = CostParams(update_cost=50.0, poll_cost=2.0)


def _plan():
    population = Population(DEFAULT_MIX)
    return plan_fleet(
        population,
        COSTS,
        max_delay=2,
        users=150,
        seed=11,
        model_class=TwoDimensionalModel,
        d_max=40,
    )


@pytest.mark.benchmark(group="fleet")
def test_fleet_planning(benchmark, out_dir):
    plan = benchmark.pedantic(_plan, rounds=1, iterations=1)
    profile_rows = [
        [name, personal, shared, f"{(shared - personal) / personal:.1%}"]
        for name, (personal, shared) in sorted(plan.by_profile().items())
    ]
    quantiles = plan.regret_quantiles((0.5, 0.9, 0.99))
    lines = [
        render_table(
            ["profile", "per-user C_T", "shared C_T", "profile regret"],
            profile_rows,
            title=(
                f"Fleet of {plan.size} users (hex, U=50 V=2, m=2); "
                f"shared threshold d={plan.shared_threshold}"
            ),
        ),
        "",
        f"fleet cost, per-user tuning:   {plan.personal_fleet_cost:.4f} /slot/user",
        f"fleet cost, shared threshold:  {plan.shared_fleet_cost:.4f} /slot/user",
        f"fleet-wide saving:             {plan.fleet_saving:.1%}",
        "per-user relative regret quantiles: "
        + ", ".join(f"p{int(q * 100)}={v:.0%}" for q, v in quantiles.items()),
    ]
    emit(out_dir, "fleet_planning", "\n".join(lines))
    assert plan.fleet_saving > 0.05
    assert quantiles[0.99] > 2 * quantiles[0.5]
    for user in plan.users:
        assert user.personal_cost <= user.shared_cost + 1e-12
