#!/usr/bin/env python
"""THROUGHPUT: per-cell engine vs vectorized distance engine, plus the
sharded fleet gate.

    PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke] [--min-speedup X]
    PYTHONPATH=src python benchmarks/bench_throughput.py --fleet-only \\
        --fleet-terminals 1000000 --fleet-workers 4

Measures slots/sec of :class:`repro.simulation.SimulationEngine` and
terminal-slots/sec of
:class:`repro.simulation.VectorizedDistanceEngine` at the acceptance
operating point (d=3, m=1, q=0.3, c=0.01) on both geometries, prints a
table, and writes ``benchmarks/out/throughput.json``.

``--fleet`` (or ``--fleet-only``) additionally runs the sharded
heterogeneous fleet engine and writes ``benchmarks/out/fleet.json``,
asserting the bounded-RSS contract: peak RSS of the parent and of the
worker pool must stay under ``base + bytes_per_terminal * N`` -- any
change that starts materializing per-terminal history blows through
the budget by orders of magnitude.  CI smoke runs 100k terminals; the
nightly ``slow`` test runs the full million.

Unlike the table/figure benches this is a plain script (no
pytest-benchmark dependency) so CI can run it in smoke mode -- tiny
slot counts that exercise the vectorized path on every supported
Python version without burning minutes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import kernels_baseline  # noqa: E402
from repro.core.backend import BACKENDS, numba_available  # noqa: E402
from repro.core.parameters import CostParams, MobilityParams  # noqa: E402
from repro.geometry import HexTopology, LineTopology  # noqa: E402
from repro.observability import noop_session  # noqa: E402
from repro.observability.export import build_provenance  # noqa: E402
from repro.simulation.vectorized import (  # noqa: E402
    compare_backends_report,
    throughput_report,
)

OUT_DIR = Path(__file__).parent / "out"

#: The acceptance operating point from the issue.
THRESHOLD = 3
MAX_DELAY = 1
MOBILITY = MobilityParams(move_probability=0.3, call_probability=0.01)
COSTS = CostParams(update_cost=100.0, poll_cost=10.0)


def measure_observability_overhead(
    slots: int = 6_000,
    repeats: int = 9,
    seed: int = 0,
    trials: int = 4,
    early_exit_below: Optional[float] = None,
) -> dict:
    """Worst-case instrumentation cost on the per-cell engine hot loop.

    Times engine.run with the default DISABLED context (instrument
    handles are never even created) against
    :func:`repro.observability.noop_session` (every instrumentation call
    is made, against no-op sinks -- the upper bound of what an armed
    registry can cost before any recording work).

    Estimator: each repeat times the two variants back to back
    (alternating which goes first, so a ratio is immune to
    CPU-frequency drift between batches); a *trial* is the median of
    ``repeats`` such pair ratios; the reported overhead is the minimum
    over up to ``trials`` trials.  On a shared box single-trial
    estimates swing several percent from scheduler noise alone, but
    noise only ever inflates the ratio's tails -- the minimum converges
    on the true cost, while a genuine regression above the guard floors
    every trial above it.  ``early_exit_below`` stops trialling as soon
    as one estimate lands under the guard (the common case costs one
    trial).
    """
    from statistics import median

    from repro.simulation.engine import SimulationEngine
    from repro.strategies.distance import DistanceStrategy

    def build() -> SimulationEngine:
        return SimulationEngine(
            topology=HexTopology(),
            strategy=DistanceStrategy(THRESHOLD, max_delay=MAX_DELAY),
            mobility=MOBILITY,
            costs=COSTS,
            seed=seed,
        )

    def timed(armed: bool) -> float:
        if armed:
            with noop_session():
                engine = build()
                tic = time.perf_counter()
                engine.run(slots)
                return time.perf_counter() - tic
        engine = build()
        tic = time.perf_counter()
        engine.run(slots)
        return time.perf_counter() - tic

    timed(False)  # warm both paths before measuring
    timed(True)
    estimates = []
    disabled, armed = [], []
    for _ in range(trials):
        ratios = []
        for i in range(repeats):
            if i % 2 == 0:
                d = timed(False)
                a = timed(True)
            else:
                a = timed(True)
                d = timed(False)
            disabled.append(d)
            armed.append(a)
            ratios.append(a / d)
        estimates.append(median(ratios) - 1.0)
        if early_exit_below is not None and estimates[-1] <= early_exit_below:
            break
    return {
        "slots": slots,
        "repeats": repeats,
        "seed": seed,
        "trials_run": len(estimates),
        "trial_estimates": estimates,
        "disabled_best_seconds": min(disabled),
        "noop_armed_best_seconds": min(armed),
        "overhead_fraction": min(estimates),
    }


def run_kernels_gate(
    terminals: int,
    slots: int,
    seed: int,
    reps: int,
    write_baseline: bool,
    min_numba_ratio: float = 0.0,
) -> list:
    """Measure backend-vs-backend throughput ratios; gate against baseline.

    Returns a list of failure strings (empty = pass).  Ratios, not
    absolute rates, are compared -- see :mod:`kernels_baseline`.  The
    baseline stores one entry per batch width K because the counter
    kernel's advantage over the legacy RNG grows with K.
    """
    best = {}
    for _ in range(reps):
        report = compare_backends_report(
            HexTopology(), THRESHOLD, MOBILITY, COSTS,
            max_delay=MAX_DELAY, slots=slots, terminals=terminals, seed=seed,
        )
        for row in report["backends"]:
            prev = best.get(row["name"])
            if prev is None or row["slots_per_sec"] > prev:
                best[row["name"]] = row["slots_per_sec"]
    legacy = best["numpy"]
    counter = best["numpy-counter"]
    compiled = best.get("numba")
    entry = {
        "slots": slots,
        "seed": seed,
        "reps": reps,
        "numba_available": numba_available(),
        "legacy_slots_per_sec": legacy,
        "counter_slots_per_sec": counter,
        "numba_slots_per_sec": compiled,
        "counter_vs_legacy_ratio": counter / legacy,
        "numba_vs_legacy_ratio": compiled / legacy if compiled else None,
    }
    if not numba_available():
        entry["numba_note"] = (
            "numba is not installed on the baseline host, so the compiled "
            "ratio could not be committed here; the >=3x compiled-kernel "
            "target is asserted by the CI job that installs the [numba] "
            "extra (and the nightly 1M-terminal compiled fleet run)."
        )
    print(f"kernels: K={terminals}, {slots} slots, best of {reps}:")
    print(f"  legacy RNG      {legacy:>14,.0f} terminal-slots/s")
    print(f"  counter kernel  {counter:>14,.0f} terminal-slots/s "
          f"({entry['counter_vs_legacy_ratio']:.2f}x legacy)")
    if compiled:
        print(f"  numba kernel    {compiled:>14,.0f} terminal-slots/s "
              f"({entry['numba_vs_legacy_ratio']:.2f}x legacy)")
    else:
        print("  numba kernel    unavailable (falls back to counter kernel)")

    errors = []
    if compiled and min_numba_ratio:
        if entry["numba_vs_legacy_ratio"] < min_numba_ratio:
            errors.append(
                f"numba kernel ratio {entry['numba_vs_legacy_ratio']:.2f}x "
                f"below the required {min_numba_ratio:.1f}x"
            )
    key = f"K{terminals}"
    if write_baseline:
        baseline = kernels_baseline.load_baseline()
        section = baseline.get("throughput", {})
        section[key] = entry
        path = kernels_baseline.update_baseline(
            "throughput", section,
            build_provenance(
                "bench:kernels",
                {"terminals": terminals, "slots": slots, "seed": seed},
                seed=seed,
            ),
        )
        print(f"wrote baseline entry {key} to {path}")
        return errors
    committed = kernels_baseline.load_baseline().get("throughput", {}).get(key)
    if committed is None:
        print(f"  no committed baseline for {key}; gate skipped")
        return errors
    for ratio_name in ("counter_vs_legacy_ratio", "numba_vs_legacy_ratio"):
        measured = entry[ratio_name]
        if measured is None:
            continue
        failure = kernels_baseline.check_ratio(
            f"throughput.{key}.{ratio_name}", measured, committed.get(ratio_name)
        )
        if failure:
            errors.append(failure)
    if not errors:
        print(f"  gate: OK against committed {key} baseline "
              f"(margin {kernels_baseline.REGRESSION_MARGIN:.0%})")
    return errors


def run_fleet_gate(
    terminals: int,
    shards: int,
    slots: int,
    workers: int,
    seed: int = 0,
    backend: str = "numpy",
) -> dict:
    """Run the fleet bench and write ``benchmarks/out/fleet.json``.

    The returned report carries ``rss_within_budget``; callers decide
    whether to gate on it (``main`` does).
    """
    from repro.simulation.fleet import fleet_report

    report = fleet_report(
        terminals,
        shards=shards,
        slots=slots,
        workers=workers if workers > 1 else None,
        seed=seed,
        backend=backend,
    )
    report["provenance"] = build_provenance(
        "bench:fleet",
        {"terminals": terminals, "shards": shards, "slots": slots,
         "workers": workers, "backend": backend},
        seed=seed,
    )
    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "fleet.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    rss = report["peak_rss_bytes"]
    print(
        f"fleet: {terminals:,} terminals x {report['config']['slots']} slots "
        f"({shards} shards, {workers} worker(s)): "
        f"{report['terminal_slots_per_sec']:,.0f} terminal-slots/s, "
        f"peak RSS {rss['max'] / 2**20:,.0f} MiB "
        f"(budget {report['rss_budget_bytes'] / 2**20:,.0f} MiB); "
        f"wrote {out_path}"
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny slot counts: exercise the code paths, not the hardware",
    )
    parser.add_argument("--engine-slots", type=int, default=None)
    parser.add_argument("--vector-slots", type=int, default=None)
    parser.add_argument("--terminals", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="exit non-zero if the 2-D speedup falls below this factor",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.02,
        help="exit non-zero if armed-but-no-op observability slows the "
        "per-cell engine by more than this fraction (default 0.02)",
    )
    parser.add_argument(
        "--fleet", action="store_true",
        help="also run the sharded fleet gate (writes benchmarks/out/"
        "fleet.json, asserts the bounded-RSS budget)",
    )
    parser.add_argument(
        "--fleet-only", action="store_true",
        help="run only the fleet gate, skipping the engine benches",
    )
    parser.add_argument("--fleet-terminals", type=int, default=100_000)
    parser.add_argument("--fleet-shards", type=int, default=8)
    parser.add_argument("--fleet-slots", type=int, default=None,
                        help="default: 20 in smoke mode, 50 otherwise")
    parser.add_argument("--fleet-workers", type=int, default=2)
    parser.add_argument(
        "--fleet-backend", choices=BACKENDS, default="numpy",
        help="fleet execution backend (the nightly compiled run passes "
        "'numba'; totals are backend-invariant either way)",
    )
    parser.add_argument(
        "--kernels", action="store_true",
        help="also measure backend-vs-backend kernel ratios and gate them "
        "against the committed benchmarks/out/kernels.json baseline",
    )
    parser.add_argument(
        "--kernels-only", action="store_true",
        help="run only the kernel ratio gate",
    )
    parser.add_argument("--kernels-terminals", type=int, default=None,
                        help="default: 1024 in smoke mode, 4096 otherwise")
    parser.add_argument("--kernels-slots", type=int, default=None,
                        help="default: 800 in smoke mode, 2000 otherwise")
    parser.add_argument("--kernels-reps", type=int, default=None,
                        help="best-of repetitions (default: 2 smoke, 3 full)")
    parser.add_argument(
        "--write-kernels-baseline", action="store_true",
        help="refresh this host's entry in benchmarks/out/kernels.json "
        "instead of gating against it",
    )
    parser.add_argument(
        "--min-numba-ratio", type=float, default=0.0,
        help="with numba installed, fail if the compiled kernel is not at "
        "least this many times faster than the legacy path (the numba CI "
        "job passes 3.0)",
    )
    args = parser.parse_args(argv)

    if args.kernels or args.kernels_only:
        kernel_errors = run_kernels_gate(
            terminals=args.kernels_terminals or (1024 if args.smoke else 4096),
            slots=args.kernels_slots or (800 if args.smoke else 2000),
            seed=args.seed,
            reps=args.kernels_reps or (3 if args.smoke else 3),
            write_baseline=args.write_kernels_baseline,
            min_numba_ratio=args.min_numba_ratio,
        )
        for failure in kernel_errors:
            print(f"FAIL: {failure}", file=sys.stderr)
        if args.kernels_only:
            return 1 if kernel_errors else 0
    else:
        kernel_errors = []

    if args.fleet_only:
        report = run_fleet_gate(
            terminals=args.fleet_terminals,
            shards=args.fleet_shards,
            slots=args.fleet_slots or (20 if args.smoke else 50),
            workers=args.fleet_workers,
            seed=args.seed,
            backend=args.fleet_backend,
        )
        if not report["rss_within_budget"]:
            print(
                f"FAIL: fleet peak RSS {report['peak_rss_bytes']['max']:,} "
                f"bytes exceeds budget {report['rss_budget_bytes']:,}",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.smoke:
        engine_slots = args.engine_slots or 2_000
        vector_slots = args.vector_slots or 500
        terminals = args.terminals or 64
    else:
        engine_slots = args.engine_slots or 50_000
        vector_slots = args.vector_slots or 10_000
        terminals = args.terminals or 4096

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "provenance": build_provenance(
            "bench:throughput",
            {"engine_slots": engine_slots, "vector_slots": vector_slots,
             "terminals": terminals, "smoke": args.smoke},
            seed=args.seed,
        ),
        "point": {
            "threshold": THRESHOLD,
            "max_delay": MAX_DELAY,
            "q": MOBILITY.move_probability,
            "c": MOBILITY.call_probability,
        },
        "geometries": {},
    }
    rows = []
    for label, topology in (("1d-line", LineTopology()), ("2d-hex", HexTopology())):
        report = throughput_report(
            topology=topology,
            threshold=THRESHOLD,
            mobility=MOBILITY,
            costs=COSTS,
            max_delay=MAX_DELAY,
            engine_slots=engine_slots,
            vector_slots=vector_slots,
            terminals=terminals,
            seed=args.seed,
        )
        payload["geometries"][label] = report
        rows.append((label, report))

    print(f"Throughput at d={THRESHOLD}, m={MAX_DELAY}, "
          f"q={MOBILITY.move_probability}, c={MOBILITY.call_probability} "
          f"({payload['mode']} mode, K={terminals}):")
    for label, report in rows:
        eng = report["engine"]["slots_per_sec"]
        vec = report["vectorized"]["slots_per_sec"]
        print(f"  {label:8s} engine {eng:>14,.0f} slots/s | "
              f"vectorized {vec:>14,.0f} terminal-slots/s | "
              f"speedup {report['speedup']:7.1f}x")

    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "throughput.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    overhead = measure_observability_overhead(
        slots=2_000 if args.smoke else 6_000,
        seed=args.seed,
        early_exit_below=args.max_overhead,
    )
    overhead["max_allowed_fraction"] = args.max_overhead
    overhead["provenance"] = build_provenance(
        "bench:observability",
        {"slots": overhead["slots"], "smoke": args.smoke},
        seed=args.seed,
    )
    obs_path = OUT_DIR / "observability.json"
    obs_path.write_text(json.dumps(overhead, indent=2, sort_keys=True) + "\n")
    print(
        f"observability overhead (no-op armed vs disabled): "
        f"{overhead['overhead_fraction']:+.2%} "
        f"(guard: <{args.max_overhead:.0%}); wrote {obs_path}"
    )

    hex_speedup = payload["geometries"]["2d-hex"]["speedup"]
    if args.min_speedup and hex_speedup < args.min_speedup:
        print(
            f"FAIL: 2-D speedup {hex_speedup:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    if overhead["overhead_fraction"] > args.max_overhead:
        print(
            f"FAIL: no-op observability overhead "
            f"{overhead['overhead_fraction']:.2%} exceeds the "
            f"{args.max_overhead:.0%} guard",
            file=sys.stderr,
        )
        return 1
    if args.fleet:
        report = run_fleet_gate(
            terminals=args.fleet_terminals,
            shards=args.fleet_shards,
            slots=args.fleet_slots or (20 if args.smoke else 50),
            workers=args.fleet_workers,
            seed=args.seed,
            backend=args.fleet_backend,
        )
        if not report["rss_within_budget"]:
            print(
                f"FAIL: fleet peak RSS {report['peak_rss_bytes']['max']:,} "
                f"bytes exceeds budget {report['rss_budget_bytes']:,}",
                file=sys.stderr,
            )
            return 1
    return 1 if kernel_errors else 0


def test_throughput_smoke():
    """Pytest hook so ``pytest benchmarks/`` also exercises the bench."""
    assert main(["--smoke"]) == 0


def test_fleet_smoke():
    """CI fleet gate: 100k terminals, RSS bound asserted."""
    assert main(["--smoke", "--fleet-only"]) == 0


def test_kernels_smoke():
    """CI kernel gate: backend ratios vs the committed baseline."""
    assert main(["--smoke", "--kernels-only"]) == 0


try:  # pytest is absent when this file runs as a plain script
    import pytest as _pytest

    _slow = _pytest.mark.slow
except ImportError:  # pragma: no cover
    def _slow(function):
        return function


@_slow
def test_fleet_million():
    """Nightly fleet gate: the full million terminals, bounded RSS.

    Marked slow; the fast CI job deselects it with ``-m 'not slow'``.
    """
    assert main([
        "--fleet-only",
        "--fleet-terminals", "1000000",
        "--fleet-shards", "16",
        "--fleet-workers", "4",
        "--fleet-slots", "25",
    ]) == 0


@_slow
def test_fleet_million_compiled():
    """Nightly compiled gate: 1M terminals through the numba kernel.

    With the [numba] extra installed (the nightly job does) this runs
    the jit-compiled shard kernel; elsewhere it degrades to the
    bit-identical NumPy fallback, so the totals contract still holds.
    """
    assert main([
        "--fleet-only",
        "--fleet-terminals", "1000000",
        "--fleet-shards", "16",
        "--fleet-workers", "4",
        "--fleet-slots", "25",
        "--fleet-backend", "auto",
    ]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
