#!/usr/bin/env python
"""THROUGHPUT: per-cell engine vs vectorized distance engine, plus the
sharded fleet gate.

    PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke] [--min-speedup X]
    PYTHONPATH=src python benchmarks/bench_throughput.py --fleet-only \\
        --fleet-terminals 1000000 --fleet-workers 4

Measures slots/sec of :class:`repro.simulation.SimulationEngine` and
terminal-slots/sec of
:class:`repro.simulation.VectorizedDistanceEngine` at the acceptance
operating point (d=3, m=1, q=0.3, c=0.01) on both geometries, prints a
table, and writes ``benchmarks/out/throughput.json``.

``--fleet`` (or ``--fleet-only``) additionally runs the sharded
heterogeneous fleet engine and writes ``benchmarks/out/fleet.json``,
asserting the bounded-RSS contract: peak RSS of the parent and of the
worker pool must stay under ``base + bytes_per_terminal * N`` -- any
change that starts materializing per-terminal history blows through
the budget by orders of magnitude.  CI smoke runs 100k terminals; the
nightly ``slow`` test runs the full million.

Unlike the table/figure benches this is a plain script (no
pytest-benchmark dependency) so CI can run it in smoke mode -- tiny
slot counts that exercise the vectorized path on every supported
Python version without burning minutes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.parameters import CostParams, MobilityParams  # noqa: E402
from repro.geometry import HexTopology, LineTopology  # noqa: E402
from repro.observability import noop_session  # noqa: E402
from repro.simulation.vectorized import throughput_report  # noqa: E402

OUT_DIR = Path(__file__).parent / "out"

#: The acceptance operating point from the issue.
THRESHOLD = 3
MAX_DELAY = 1
MOBILITY = MobilityParams(move_probability=0.3, call_probability=0.01)
COSTS = CostParams(update_cost=100.0, poll_cost=10.0)


def measure_observability_overhead(
    slots: int = 6_000,
    repeats: int = 9,
    seed: int = 0,
    trials: int = 4,
    early_exit_below: Optional[float] = None,
) -> dict:
    """Worst-case instrumentation cost on the per-cell engine hot loop.

    Times engine.run with the default DISABLED context (instrument
    handles are never even created) against
    :func:`repro.observability.noop_session` (every instrumentation call
    is made, against no-op sinks -- the upper bound of what an armed
    registry can cost before any recording work).

    Estimator: each repeat times the two variants back to back
    (alternating which goes first, so a ratio is immune to
    CPU-frequency drift between batches); a *trial* is the median of
    ``repeats`` such pair ratios; the reported overhead is the minimum
    over up to ``trials`` trials.  On a shared box single-trial
    estimates swing several percent from scheduler noise alone, but
    noise only ever inflates the ratio's tails -- the minimum converges
    on the true cost, while a genuine regression above the guard floors
    every trial above it.  ``early_exit_below`` stops trialling as soon
    as one estimate lands under the guard (the common case costs one
    trial).
    """
    from statistics import median

    from repro.simulation.engine import SimulationEngine
    from repro.strategies.distance import DistanceStrategy

    def build() -> SimulationEngine:
        return SimulationEngine(
            topology=HexTopology(),
            strategy=DistanceStrategy(THRESHOLD, max_delay=MAX_DELAY),
            mobility=MOBILITY,
            costs=COSTS,
            seed=seed,
        )

    def timed(armed: bool) -> float:
        if armed:
            with noop_session():
                engine = build()
                tic = time.perf_counter()
                engine.run(slots)
                return time.perf_counter() - tic
        engine = build()
        tic = time.perf_counter()
        engine.run(slots)
        return time.perf_counter() - tic

    timed(False)  # warm both paths before measuring
    timed(True)
    estimates = []
    disabled, armed = [], []
    for _ in range(trials):
        ratios = []
        for i in range(repeats):
            if i % 2 == 0:
                d = timed(False)
                a = timed(True)
            else:
                a = timed(True)
                d = timed(False)
            disabled.append(d)
            armed.append(a)
            ratios.append(a / d)
        estimates.append(median(ratios) - 1.0)
        if early_exit_below is not None and estimates[-1] <= early_exit_below:
            break
    return {
        "slots": slots,
        "repeats": repeats,
        "seed": seed,
        "trials_run": len(estimates),
        "trial_estimates": estimates,
        "disabled_best_seconds": min(disabled),
        "noop_armed_best_seconds": min(armed),
        "overhead_fraction": min(estimates),
    }


def run_fleet_gate(
    terminals: int,
    shards: int,
    slots: int,
    workers: int,
    seed: int = 0,
) -> dict:
    """Run the fleet bench and write ``benchmarks/out/fleet.json``.

    The returned report carries ``rss_within_budget``; callers decide
    whether to gate on it (``main`` does).
    """
    from repro.simulation.fleet import fleet_report

    report = fleet_report(
        terminals,
        shards=shards,
        slots=slots,
        workers=workers if workers > 1 else None,
        seed=seed,
    )
    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "fleet.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    rss = report["peak_rss_bytes"]
    print(
        f"fleet: {terminals:,} terminals x {report['config']['slots']} slots "
        f"({shards} shards, {workers} worker(s)): "
        f"{report['terminal_slots_per_sec']:,.0f} terminal-slots/s, "
        f"peak RSS {rss['max'] / 2**20:,.0f} MiB "
        f"(budget {report['rss_budget_bytes'] / 2**20:,.0f} MiB); "
        f"wrote {out_path}"
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny slot counts: exercise the code paths, not the hardware",
    )
    parser.add_argument("--engine-slots", type=int, default=None)
    parser.add_argument("--vector-slots", type=int, default=None)
    parser.add_argument("--terminals", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="exit non-zero if the 2-D speedup falls below this factor",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.02,
        help="exit non-zero if armed-but-no-op observability slows the "
        "per-cell engine by more than this fraction (default 0.02)",
    )
    parser.add_argument(
        "--fleet", action="store_true",
        help="also run the sharded fleet gate (writes benchmarks/out/"
        "fleet.json, asserts the bounded-RSS budget)",
    )
    parser.add_argument(
        "--fleet-only", action="store_true",
        help="run only the fleet gate, skipping the engine benches",
    )
    parser.add_argument("--fleet-terminals", type=int, default=100_000)
    parser.add_argument("--fleet-shards", type=int, default=8)
    parser.add_argument("--fleet-slots", type=int, default=None,
                        help="default: 20 in smoke mode, 50 otherwise")
    parser.add_argument("--fleet-workers", type=int, default=2)
    args = parser.parse_args(argv)

    if args.fleet_only:
        report = run_fleet_gate(
            terminals=args.fleet_terminals,
            shards=args.fleet_shards,
            slots=args.fleet_slots or (20 if args.smoke else 50),
            workers=args.fleet_workers,
            seed=args.seed,
        )
        if not report["rss_within_budget"]:
            print(
                f"FAIL: fleet peak RSS {report['peak_rss_bytes']['max']:,} "
                f"bytes exceeds budget {report['rss_budget_bytes']:,}",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.smoke:
        engine_slots = args.engine_slots or 2_000
        vector_slots = args.vector_slots or 500
        terminals = args.terminals or 64
    else:
        engine_slots = args.engine_slots or 50_000
        vector_slots = args.vector_slots or 10_000
        terminals = args.terminals or 4096

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "point": {
            "threshold": THRESHOLD,
            "max_delay": MAX_DELAY,
            "q": MOBILITY.move_probability,
            "c": MOBILITY.call_probability,
        },
        "geometries": {},
    }
    rows = []
    for label, topology in (("1d-line", LineTopology()), ("2d-hex", HexTopology())):
        report = throughput_report(
            topology=topology,
            threshold=THRESHOLD,
            mobility=MOBILITY,
            costs=COSTS,
            max_delay=MAX_DELAY,
            engine_slots=engine_slots,
            vector_slots=vector_slots,
            terminals=terminals,
            seed=args.seed,
        )
        payload["geometries"][label] = report
        rows.append((label, report))

    print(f"Throughput at d={THRESHOLD}, m={MAX_DELAY}, "
          f"q={MOBILITY.move_probability}, c={MOBILITY.call_probability} "
          f"({payload['mode']} mode, K={terminals}):")
    for label, report in rows:
        eng = report["engine"]["slots_per_sec"]
        vec = report["vectorized"]["slots_per_sec"]
        print(f"  {label:8s} engine {eng:>14,.0f} slots/s | "
              f"vectorized {vec:>14,.0f} terminal-slots/s | "
              f"speedup {report['speedup']:7.1f}x")

    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "throughput.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    overhead = measure_observability_overhead(
        slots=2_000 if args.smoke else 6_000,
        seed=args.seed,
        early_exit_below=args.max_overhead,
    )
    overhead["max_allowed_fraction"] = args.max_overhead
    obs_path = OUT_DIR / "observability.json"
    obs_path.write_text(json.dumps(overhead, indent=2, sort_keys=True) + "\n")
    print(
        f"observability overhead (no-op armed vs disabled): "
        f"{overhead['overhead_fraction']:+.2%} "
        f"(guard: <{args.max_overhead:.0%}); wrote {obs_path}"
    )

    hex_speedup = payload["geometries"]["2d-hex"]["speedup"]
    if args.min_speedup and hex_speedup < args.min_speedup:
        print(
            f"FAIL: 2-D speedup {hex_speedup:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    if overhead["overhead_fraction"] > args.max_overhead:
        print(
            f"FAIL: no-op observability overhead "
            f"{overhead['overhead_fraction']:.2%} exceeds the "
            f"{args.max_overhead:.0%} guard",
            file=sys.stderr,
        )
        return 1
    if args.fleet:
        report = run_fleet_gate(
            terminals=args.fleet_terminals,
            shards=args.fleet_shards,
            slots=args.fleet_slots or (20 if args.smoke else 50),
            workers=args.fleet_workers,
            seed=args.seed,
        )
        if not report["rss_within_budget"]:
            print(
                f"FAIL: fleet peak RSS {report['peak_rss_bytes']['max']:,} "
                f"bytes exceeds budget {report['rss_budget_bytes']:,}",
                file=sys.stderr,
            )
            return 1
    return 0


def test_throughput_smoke():
    """Pytest hook so ``pytest benchmarks/`` also exercises the bench."""
    assert main(["--smoke"]) == 0


def test_fleet_smoke():
    """CI fleet gate: 100k terminals, RSS bound asserted."""
    assert main(["--smoke", "--fleet-only"]) == 0


try:  # pytest is absent when this file runs as a plain script
    import pytest as _pytest

    _slow = _pytest.mark.slow
except ImportError:  # pragma: no cover
    def _slow(function):
        return function


@_slow
def test_fleet_million():
    """Nightly fleet gate: the full million terminals, bounded RSS.

    Marked slow; the fast CI job deselects it with ``-m 'not slow'``.
    """
    assert main([
        "--fleet-only",
        "--fleet-terminals", "1000000",
        "--fleet-shards", "16",
        "--fleet-workers", "4",
        "--fleet-slots", "25",
    ]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
