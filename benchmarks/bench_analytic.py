#!/usr/bin/env python
"""ANALYTIC: batched cost-surface solver vs per-threshold scalar path.

    PYTHONPATH=src python benchmarks/bench_analytic.py [--smoke] [--min-speedup X]

Times :meth:`repro.core.costs.CostEvaluator.cost_curve` at the
acceptance operating point (2d-exact, q=0.05, c=0.01, U=100, V=10,
d_max=100) through both evaluation paths -- ``method="scalar"`` (one
chain solve + SDF partition per threshold) and ``method="batched"``
(one triangular NumPy recursion for all thresholds) -- verifies the
two agree to 1e-10, times :func:`repro.analysis.grid_sweep` against a
scalar-path optimization loop, demonstrates the on-disk cache, and
writes ``benchmarks/out/analytic.json``.

A fresh model and evaluator are built for every repetition so neither
path benefits from the per-instance memo/surface caches -- the numbers
compare algorithms, not cache hits.

Plain script (no pytest-benchmark dependency) so CI can run it in
smoke mode on every supported Python version.
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.sweep import MODEL_CLASSES, grid_sweep  # noqa: E402
from repro.core.costs import CostEvaluator  # noqa: E402
from repro.core.parameters import CostParams, MobilityParams  # noqa: E402
from repro.core.threshold import find_optimal_threshold  # noqa: E402

OUT_DIR = Path(__file__).parent / "out"

#: The acceptance operating point from the issue.
MODEL_NAME = "2d-exact"
MOBILITY = MobilityParams(move_probability=0.05, call_probability=0.01)
COSTS = CostParams(update_cost=100.0, poll_cost=10.0)
DELAYS = (1, 2, 3, math.inf)

#: Agreement bar between the two evaluation paths (absolute).
AGREEMENT_TOLERANCE = 1e-10


def _fresh_evaluator() -> CostEvaluator:
    """A cold evaluator: no breakdown memo, no cached surface."""
    model = MODEL_CLASSES[MODEL_NAME](MOBILITY)
    return CostEvaluator(model, COSTS)


def _time_curves(method: str, d_max: int, reps: int) -> tuple:
    """Best-of-``reps`` seconds to evaluate all curves in ``DELAYS``.

    Returns ``(seconds, curves)`` where ``curves`` maps delay -> list.
    One (d, m) grid point counts as one "point" for the points/sec
    figures, matching what the exhaustive optimizer consumes.
    """
    best = math.inf
    curves = {}
    for _ in range(reps):
        evaluator = _fresh_evaluator()
        start = time.perf_counter()
        curves = {m: evaluator.cost_curve(m, d_max, method=method) for m in DELAYS}
        best = min(best, time.perf_counter() - start)
    return best, curves


def _time_grid(d_max: int, u_values, m_values, reps: int, workers=None) -> tuple:
    """Best-of-``reps`` seconds for one grid sweep (no cache)."""
    best = math.inf
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = grid_sweep(
            MODEL_NAME,
            {"U": u_values, "m": m_values},
            q=MOBILITY.move_probability,
            c=MOBILITY.call_probability,
            d_max=d_max,
            workers=workers,
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _time_scalar_grid(d_max: int, u_values, m_values, reps: int) -> float:
    """The pre-batching baseline: scalar exhaustive solve per grid point."""
    best = math.inf
    for _ in range(reps):
        start = time.perf_counter()
        for u in u_values:
            for m in m_values:
                model = MODEL_CLASSES[MODEL_NAME](MOBILITY)
                find_optimal_threshold(
                    model,
                    CostParams(update_cost=u, poll_cost=COSTS.poll_cost),
                    m,
                    d_max=d_max,
                    method="exhaustive-scalar",
                )
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small d_max and grid: exercise the code paths, not the hardware",
    )
    parser.add_argument("--d-max", type=int, default=None)
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per timing (best-of)")
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="exit non-zero if the curve speedup falls below this factor",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        d_max = args.d_max or 40
        reps = args.reps or 1
        u_values, m_values = (50.0, 100.0), (1, math.inf)
    else:
        d_max = args.d_max or 100
        reps = args.reps or 3
        u_values, m_values = (20.0, 50.0, 100.0, 300.0, 1000.0), (1, 2, 3, math.inf)

    # -- curve evaluation: scalar vs batched ---------------------------
    scalar_s, scalar_curves = _time_curves("scalar", d_max, reps)
    batched_s, batched_curves = _time_curves("batched", d_max, reps)
    points = len(DELAYS) * (d_max + 1)

    deviation = max(
        abs(a - b)
        for m in DELAYS
        for a, b in zip(scalar_curves[m], batched_curves[m])
    )
    agree = deviation <= AGREEMENT_TOLERANCE
    curve_speedup = scalar_s / batched_s if batched_s else math.inf

    # -- grid sweep: scalar loop vs batched, serial vs pooled ----------
    grid_points = len(u_values) * len(m_values)
    scalar_grid_s = _time_scalar_grid(d_max, u_values, m_values, reps)
    grid_s, grid_result = _time_grid(d_max, u_values, m_values, reps)
    pooled_s, pooled_result = _time_grid(d_max, u_values, m_values, 1, workers=2)
    pool_identical = pooled_result.points == grid_result.points

    # -- cache: second identical sweep is a file read ------------------
    cache_dir = Path(tempfile.mkdtemp(prefix="bench-analytic-cache-"))
    try:
        start = time.perf_counter()
        first = grid_sweep(
            MODEL_NAME, {"U": u_values, "m": m_values},
            q=MOBILITY.move_probability, c=MOBILITY.call_probability,
            d_max=d_max, cache_dir=cache_dir,
        )
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        second = grid_sweep(
            MODEL_NAME, {"U": u_values, "m": m_values},
            q=MOBILITY.move_probability, c=MOBILITY.call_probability,
            d_max=d_max, cache_dir=cache_dir,
        )
        warm_s = time.perf_counter() - start
        cache_ok = (
            not first.from_cache
            and second.from_cache
            and first.points == second.points
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "point": {
            "model": MODEL_NAME,
            "q": MOBILITY.move_probability,
            "c": MOBILITY.call_probability,
            "update_cost": COSTS.update_cost,
            "poll_cost": COSTS.poll_cost,
            "d_max": d_max,
            "delays": [None if m == math.inf else m for m in DELAYS],
        },
        "curve": {
            "points": points,
            "scalar_seconds": scalar_s,
            "batched_seconds": batched_s,
            "scalar_points_per_sec": points / scalar_s,
            "batched_points_per_sec": points / batched_s,
            "speedup": curve_speedup,
            "max_abs_deviation": deviation,
            "agreement_tolerance": AGREEMENT_TOLERANCE,
            "agree": agree,
        },
        "grid": {
            "points": grid_points,
            "scalar_loop_seconds": scalar_grid_s,
            "batched_seconds": grid_s,
            "pooled_workers2_seconds": pooled_s,
            "scalar_points_per_sec": grid_points / scalar_grid_s,
            "batched_points_per_sec": grid_points / grid_s,
            "speedup": scalar_grid_s / grid_s if grid_s else math.inf,
            "pool_identical": pool_identical,
        },
        "cache": {
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": cold_s / warm_s if warm_s else math.inf,
            "roundtrip_ok": cache_ok,
        },
    }

    print(f"Analytic solver at {MODEL_NAME}, q={MOBILITY.move_probability}, "
          f"c={MOBILITY.call_probability}, d_max={d_max} "
          f"({payload['mode']} mode):")
    print(f"  curve   scalar  {points / scalar_s:>12,.0f} points/s "
          f"({scalar_s * 1e3:8.2f} ms for {points} points)")
    print(f"  curve   batched {points / batched_s:>12,.0f} points/s "
          f"({batched_s * 1e3:8.2f} ms) | speedup {curve_speedup:7.1f}x")
    print(f"  agreement: max |scalar - batched| = {deviation:.3e} "
          f"({'OK' if agree else 'FAIL'} at {AGREEMENT_TOLERANCE:.0e})")
    print(f"  grid    scalar loop {grid_points / scalar_grid_s:>8,.2f} points/s | "
          f"batched {grid_points / grid_s:>8,.2f} points/s | "
          f"speedup {scalar_grid_s / grid_s:5.1f}x | "
          f"workers=2 identical: {pool_identical}")
    print(f"  cache   cold {cold_s * 1e3:8.2f} ms -> warm {warm_s * 1e3:8.2f} ms "
          f"({cold_s / warm_s:,.0f}x) | roundtrip {'OK' if cache_ok else 'FAIL'}")

    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "analytic.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    if not agree:
        print(
            f"FAIL: scalar/batched deviation {deviation:.3e} exceeds "
            f"{AGREEMENT_TOLERANCE:.0e}",
            file=sys.stderr,
        )
        return 1
    if not (pool_identical and cache_ok):
        print("FAIL: pooled or cached sweep diverged from the serial result",
              file=sys.stderr)
        return 1
    if args.min_speedup and curve_speedup < args.min_speedup:
        print(
            f"FAIL: curve speedup {curve_speedup:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_analytic_smoke():
    """Pytest hook so ``pytest benchmarks/`` also exercises the bench."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
