#!/usr/bin/env python
"""ANALYTIC: batched cost-surface solver vs per-threshold scalar path.

    PYTHONPATH=src python benchmarks/bench_analytic.py [--smoke] [--min-speedup X]

Times :meth:`repro.core.costs.CostEvaluator.cost_curve` at the
acceptance operating point (2d-exact, q=0.05, c=0.01, U=100, V=10,
d_max=100) through both evaluation paths -- ``method="scalar"`` (one
chain solve + SDF partition per threshold) and ``method="batched"``
(one triangular NumPy recursion for all thresholds) -- verifies the
two agree to 1e-10, times :func:`repro.analysis.grid_sweep` against a
scalar-path optimization loop, demonstrates the on-disk cache, and
writes ``benchmarks/out/analytic.json``.

A fresh model and evaluator are built for every repetition so neither
path benefits from the per-instance memo/surface caches -- the numbers
compare algorithms, not cache hits.

Plain script (no pytest-benchmark dependency) so CI can run it in
smoke mode on every supported Python version.
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import kernels_baseline  # noqa: E402
from repro.analysis.sweep import MODEL_CLASSES, grid_sweep  # noqa: E402
from repro.core.batch import banded_steady_state, batched_steady_states  # noqa: E402
from repro.core.costs import CostEvaluator  # noqa: E402
from repro.core.parameters import CostParams, MobilityParams  # noqa: E402
from repro.core.threshold import find_optimal_threshold  # noqa: E402
from repro.exceptions import SolverError  # noqa: E402
from repro.observability.export import build_provenance  # noqa: E402

OUT_DIR = Path(__file__).parent / "out"

#: The acceptance operating point from the issue.
MODEL_NAME = "2d-exact"
MOBILITY = MobilityParams(move_probability=0.05, call_probability=0.01)
COSTS = CostParams(update_cost=100.0, poll_cost=10.0)
DELAYS = (1, 2, 3, math.inf)

#: Agreement bar between the two evaluation paths (absolute).
AGREEMENT_TOLERANCE = 1e-10


def _fresh_evaluator() -> CostEvaluator:
    """A cold evaluator: no breakdown memo, no cached surface."""
    model = MODEL_CLASSES[MODEL_NAME](MOBILITY)
    return CostEvaluator(model, COSTS)


def _time_curves(method: str, d_max: int, reps: int) -> tuple:
    """Best-of-``reps`` seconds to evaluate all curves in ``DELAYS``.

    Returns ``(seconds, curves)`` where ``curves`` maps delay -> list.
    One (d, m) grid point counts as one "point" for the points/sec
    figures, matching what the exhaustive optimizer consumes.
    """
    best = math.inf
    curves = {}
    for _ in range(reps):
        evaluator = _fresh_evaluator()
        start = time.perf_counter()
        curves = {m: evaluator.cost_curve(m, d_max, method=method) for m in DELAYS}
        best = min(best, time.perf_counter() - start)
    return best, curves


def _time_grid(d_max: int, u_values, m_values, reps: int, workers=None) -> tuple:
    """Best-of-``reps`` seconds for one grid sweep (no cache)."""
    best = math.inf
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = grid_sweep(
            MODEL_NAME,
            {"U": u_values, "m": m_values},
            q=MOBILITY.move_probability,
            c=MOBILITY.call_probability,
            d_max=d_max,
            workers=workers,
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _time_scalar_grid(d_max: int, u_values, m_values, reps: int) -> float:
    """The pre-batching baseline: scalar exhaustive solve per grid point."""
    best = math.inf
    for _ in range(reps):
        start = time.perf_counter()
        for u in u_values:
            for m in m_values:
                model = MODEL_CLASSES[MODEL_NAME](MOBILITY)
                find_optimal_threshold(
                    model,
                    CostParams(update_cost=u, poll_cost=COSTS.poll_cost),
                    m,
                    d_max=d_max,
                    method="exhaustive-scalar",
                )
        best = min(best, time.perf_counter() - start)
    return best


def run_solver_gate(d: int, reps: int, write_baseline: bool) -> list:
    """Banded vs dense steady-state solvers at depth ``d``; gate ratios.

    At very large ``d`` the triangular recursion overflows float64 (its
    unnormalized probabilities grow like ``2**d``), so the only dense
    method that still works is the O(d^3) matrix solve -- that is the
    honest denominator for the banded O(d) path.  Returns a list of
    failure strings (empty = pass).
    """
    import numpy as np

    def _best(fn, repeats, inner=1):
        """Best-of-``repeats`` mean seconds over ``inner`` back-to-back calls.

        The banded solve finishes in ~0.1 ms, far too quick to time as a
        single call without scheduler noise dominating the ratio -- the
        inner loop amortizes that noise away.
        """
        best_s, out = math.inf, None
        for _ in range(repeats):
            model = MODEL_CLASSES[MODEL_NAME](MOBILITY)
            start = time.perf_counter()
            for _ in range(inner):
                out = fn(model)
            best_s = min(best_s, (time.perf_counter() - start) / inner)
        return best_s, out

    matrix_s, matrix_pi = _best(
        lambda m: m.steady_state(d, method="matrix"), reps
    )
    banded_s, banded_pi = _best(
        lambda m: banded_steady_state(m, d), reps, inner=50
    )
    deviation = float(np.max(np.abs(matrix_pi - banded_pi)))
    try:
        with warnings_suppressed():
            MODEL_CLASSES[MODEL_NAME](MOBILITY).steady_state(
                d, method="recursive"
            )
        recursive_note = "finite (below the overflow horizon)"
    except SolverError:
        recursive_note = (
            "overflow (SolverError): the unnormalized recursion grows "
            "like 2**d and leaves float64 range near d ~ 760"
        )
    batched_s, batched_pi = _best(
        lambda m: batched_steady_states(m, d, method="banded"), 1
    )
    entry = {
        "reps": reps,
        "matrix_seconds": matrix_s,
        "banded_seconds": banded_s,
        "banded_vs_matrix_speedup": matrix_s / banded_s,
        "max_abs_deviation": deviation,
        "recursive": recursive_note,
        "batched_banded_seconds": batched_s,
        "batched_banded_finite": bool(np.all(np.isfinite(batched_pi))),
    }
    print(f"solver gate at {MODEL_NAME}, d={d} (best of {reps}):")
    print(f"  dense matrix solve  {matrix_s * 1e3:10.2f} ms")
    print(f"  banded solve        {banded_s * 1e3:10.3f} ms "
          f"({entry['banded_vs_matrix_speedup']:,.0f}x)")
    print(f"  recursive solve     {recursive_note}")
    print(f"  agreement: max |matrix - banded| = {deviation:.2e}")
    print(f"  batched banded to d_max={d}: {batched_s:.3f}s, "
          f"finite: {entry['batched_banded_finite']}")

    errors = []
    if deviation > AGREEMENT_TOLERANCE:
        errors.append(
            f"banded/matrix deviation {deviation:.3e} exceeds "
            f"{AGREEMENT_TOLERANCE:.0e}"
        )
    if not entry["batched_banded_finite"]:
        errors.append(f"batched banded d_max={d} produced non-finite rows")
    key = f"d{d}"
    if write_baseline:
        baseline = kernels_baseline.load_baseline()
        section = baseline.get("analytic", {})
        section[key] = entry
        path = kernels_baseline.update_baseline(
            "analytic", section,
            build_provenance("bench:kernels", {"d": d, "reps": reps}),
        )
        print(f"wrote baseline entry {key} to {path}")
        return errors
    committed = kernels_baseline.load_baseline().get("analytic", {}).get(key)
    if committed is None:
        print(f"  no committed baseline for {key}; gate skipped")
        return errors
    failure = kernels_baseline.check_ratio(
        f"analytic.{key}.banded_vs_matrix_speedup",
        entry["banded_vs_matrix_speedup"],
        committed.get("banded_vs_matrix_speedup"),
    )
    if failure:
        errors.append(failure)
    else:
        print(f"  gate: OK against committed {key} baseline "
              f"(margin {kernels_baseline.REGRESSION_MARGIN:.0%})")
    return errors


def run_compare_gate(d_max: int, reps: int) -> list:
    """Cross-scheme tournament gate at the acceptance operating point.

    Runs :func:`repro.analysis.compare.run_tournament` over a small
    (U, m) grid and asserts the two structural facts the tournament's
    claims rest on: the jointly optimal policy dominates the
    distance-based optimum at every point (within 1e-9), and each
    point's crowned winner actually has the minimal cost among the
    schemes it beat.  Returns a list of failure strings (empty = pass).
    """
    from repro.analysis.compare import run_tournament

    u_values, m_values = (50.0, 100.0), (1, 3)
    best = math.inf
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = run_tournament(
            MODEL_NAME,
            {"U": u_values, "m": m_values},
            q=MOBILITY.move_probability,
            c=MOBILITY.call_probability,
            poll_cost=COSTS.poll_cost,
            d_max=d_max,
        )
        best = min(best, time.perf_counter() - start)

    errors = []
    worst_gap = 0.0
    for point in result.points:
        joint = point.outcome("jointly-optimal").total_cost
        distance = point.outcome("distance").total_cost
        worst_gap = max(worst_gap, joint - distance)
        minimum = min(entry.total_cost for entry in point.outcomes)
        if point.outcome(point.winner).total_cost > minimum + 1e-12:
            errors.append(
                f"winner {point.winner!r} at (U={point.update_cost}, "
                f"m={point.max_delay}) is not the cheapest scheme"
            )
    if worst_gap > 1e-9:
        errors.append(
            f"jointly-optimal exceeds the distance optimum by {worst_gap:.3e} "
            "(dominance violated)"
        )
    json.dumps(result.to_payload())  # payload must stay JSON-safe

    per_point = best / len(result.points)
    print(f"compare gate at {MODEL_NAME}, d_max={d_max} "
          f"({len(result.points)} points, best of {reps}):")
    print(f"  tournament      {best * 1e3:10.2f} ms "
          f"({per_point * 1e3:.2f} ms/point)")
    print(f"  dominance: max(joint - distance) = {worst_gap:.3e} "
          f"({'OK' if worst_gap <= 1e-9 else 'FAIL'} at 1e-09)")
    print(f"  winners: {result.winner_counts()}")
    return errors


@contextmanager
def warnings_suppressed():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small d_max and grid: exercise the code paths, not the hardware",
    )
    parser.add_argument("--d-max", type=int, default=None)
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per timing (best-of)")
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="exit non-zero if the curve speedup falls below this factor",
    )
    parser.add_argument(
        "--kernels", action="store_true",
        help="also run the banded-vs-dense solver gate against the "
        "committed benchmarks/out/kernels.json baseline",
    )
    parser.add_argument(
        "--kernels-only", action="store_true",
        help="run only the solver gate",
    )
    parser.add_argument("--kernels-d", type=int, default=2000,
                        help="steady-state depth for the solver gate")
    parser.add_argument(
        "--write-kernels-baseline", action="store_true",
        help="refresh the analytic section of benchmarks/out/kernels.json "
        "instead of gating against it",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="also run the cross-scheme tournament gate (jointly-optimal "
        "dominance + winner-map consistency)",
    )
    parser.add_argument(
        "--compare-only", action="store_true",
        help="run only the tournament gate",
    )
    args = parser.parse_args(argv)

    if args.compare or args.compare_only:
        compare_errors = run_compare_gate(
            d_max=args.d_max or (30 if args.smoke else 60),
            reps=1 if args.smoke else 2,
        )
        for failure in compare_errors:
            print(f"FAIL: {failure}", file=sys.stderr)
        if args.compare_only:
            return 1 if compare_errors else 0
    else:
        compare_errors = []

    if args.kernels or args.kernels_only:
        solver_errors = run_solver_gate(
            d=args.kernels_d,
            reps=2 if args.smoke else 3,
            write_baseline=args.write_kernels_baseline,
        )
        for failure in solver_errors:
            print(f"FAIL: {failure}", file=sys.stderr)
        if args.kernels_only:
            return 1 if solver_errors else 0
    else:
        solver_errors = []

    if args.smoke:
        d_max = args.d_max or 40
        reps = args.reps or 1
        u_values, m_values = (50.0, 100.0), (1, math.inf)
    else:
        d_max = args.d_max or 100
        reps = args.reps or 3
        u_values, m_values = (20.0, 50.0, 100.0, 300.0, 1000.0), (1, 2, 3, math.inf)

    # -- curve evaluation: scalar vs batched ---------------------------
    scalar_s, scalar_curves = _time_curves("scalar", d_max, reps)
    batched_s, batched_curves = _time_curves("batched", d_max, reps)
    points = len(DELAYS) * (d_max + 1)

    deviation = max(
        abs(a - b)
        for m in DELAYS
        for a, b in zip(scalar_curves[m], batched_curves[m])
    )
    agree = deviation <= AGREEMENT_TOLERANCE
    curve_speedup = scalar_s / batched_s if batched_s else math.inf

    # -- grid sweep: scalar loop vs batched, serial vs pooled ----------
    grid_points = len(u_values) * len(m_values)
    scalar_grid_s = _time_scalar_grid(d_max, u_values, m_values, reps)
    grid_s, grid_result = _time_grid(d_max, u_values, m_values, reps)
    pooled_s, pooled_result = _time_grid(d_max, u_values, m_values, 1, workers=2)
    pool_identical = pooled_result.points == grid_result.points

    # -- cache: second identical sweep is a file read ------------------
    cache_dir = Path(tempfile.mkdtemp(prefix="bench-analytic-cache-"))
    try:
        start = time.perf_counter()
        first = grid_sweep(
            MODEL_NAME, {"U": u_values, "m": m_values},
            q=MOBILITY.move_probability, c=MOBILITY.call_probability,
            d_max=d_max, cache_dir=cache_dir,
        )
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        second = grid_sweep(
            MODEL_NAME, {"U": u_values, "m": m_values},
            q=MOBILITY.move_probability, c=MOBILITY.call_probability,
            d_max=d_max, cache_dir=cache_dir,
        )
        warm_s = time.perf_counter() - start
        cache_ok = (
            not first.from_cache
            and second.from_cache
            and first.points == second.points
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "provenance": build_provenance(
            "bench:analytic",
            {"d_max": d_max, "reps": reps, "smoke": args.smoke},
        ),
        "point": {
            "model": MODEL_NAME,
            "q": MOBILITY.move_probability,
            "c": MOBILITY.call_probability,
            "update_cost": COSTS.update_cost,
            "poll_cost": COSTS.poll_cost,
            "d_max": d_max,
            "delays": [None if m == math.inf else m for m in DELAYS],
        },
        "curve": {
            "points": points,
            "scalar_seconds": scalar_s,
            "batched_seconds": batched_s,
            "scalar_points_per_sec": points / scalar_s,
            "batched_points_per_sec": points / batched_s,
            "speedup": curve_speedup,
            "max_abs_deviation": deviation,
            "agreement_tolerance": AGREEMENT_TOLERANCE,
            "agree": agree,
        },
        "grid": {
            "points": grid_points,
            "scalar_loop_seconds": scalar_grid_s,
            "batched_seconds": grid_s,
            "pooled_workers2_seconds": pooled_s,
            "scalar_points_per_sec": grid_points / scalar_grid_s,
            "batched_points_per_sec": grid_points / grid_s,
            "speedup": scalar_grid_s / grid_s if grid_s else math.inf,
            "pool_identical": pool_identical,
        },
        "cache": {
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": cold_s / warm_s if warm_s else math.inf,
            "roundtrip_ok": cache_ok,
        },
    }

    print(f"Analytic solver at {MODEL_NAME}, q={MOBILITY.move_probability}, "
          f"c={MOBILITY.call_probability}, d_max={d_max} "
          f"({payload['mode']} mode):")
    print(f"  curve   scalar  {points / scalar_s:>12,.0f} points/s "
          f"({scalar_s * 1e3:8.2f} ms for {points} points)")
    print(f"  curve   batched {points / batched_s:>12,.0f} points/s "
          f"({batched_s * 1e3:8.2f} ms) | speedup {curve_speedup:7.1f}x")
    print(f"  agreement: max |scalar - batched| = {deviation:.3e} "
          f"({'OK' if agree else 'FAIL'} at {AGREEMENT_TOLERANCE:.0e})")
    print(f"  grid    scalar loop {grid_points / scalar_grid_s:>8,.2f} points/s | "
          f"batched {grid_points / grid_s:>8,.2f} points/s | "
          f"speedup {scalar_grid_s / grid_s:5.1f}x | "
          f"workers=2 identical: {pool_identical}")
    print(f"  cache   cold {cold_s * 1e3:8.2f} ms -> warm {warm_s * 1e3:8.2f} ms "
          f"({cold_s / warm_s:,.0f}x) | roundtrip {'OK' if cache_ok else 'FAIL'}")

    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "analytic.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    if not agree:
        print(
            f"FAIL: scalar/batched deviation {deviation:.3e} exceeds "
            f"{AGREEMENT_TOLERANCE:.0e}",
            file=sys.stderr,
        )
        return 1
    if not (pool_identical and cache_ok):
        print("FAIL: pooled or cached sweep diverged from the serial result",
              file=sys.stderr)
        return 1
    if args.min_speedup and curve_speedup < args.min_speedup:
        print(
            f"FAIL: curve speedup {curve_speedup:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 1 if (solver_errors or compare_errors) else 0


def test_analytic_smoke():
    """Pytest hook so ``pytest benchmarks/`` also exercises the bench."""
    assert main(["--smoke"]) == 0


def test_solver_gate_smoke():
    """CI solver gate: banded-vs-dense ratio vs the committed baseline."""
    assert main(["--smoke", "--kernels-only"]) == 0


def test_compare_gate_smoke():
    """CI tournament gate: dominance + winner-map consistency."""
    assert main(["--smoke", "--compare-only"]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
