"""ABL-SOLVER: steady-state solver ablation.

Compares the three solver implementations (closed form, the paper's
recursive method, and the reference matrix solve) on agreement and
speed across a (q, c, d) grid.  This quantifies DESIGN.md's claim that
the closed form is the cheap path the near-optimal scheme depends on:
the matrix solver is O(d^3), recursive O(d), closed form O(d) with a
tiny constant.
"""

import numpy as np
import pytest

from repro import MobilityParams, OneDimensionalModel, TwoDimensionalModel
from repro.analysis import render_table

from conftest import emit

GRID = [
    (q, c, d)
    for q in (0.05, 0.3)
    for c in (0.005, 0.05)
    for d in (2, 10, 40)
]


def _max_disagreement():
    worst_1d = worst_2d = 0.0
    for q, c, d in GRID:
        model1 = OneDimensionalModel(MobilityParams(q, c))
        closed = model1.steady_state(d, method="closed_form")
        matrix = model1.steady_state(d, method="matrix")
        recursive = model1.steady_state(d, method="recursive")
        worst_1d = max(
            worst_1d,
            float(np.max(np.abs(closed - matrix))),
            float(np.max(np.abs(recursive - matrix))),
        )
        model2 = TwoDimensionalModel(MobilityParams(q, c))
        worst_2d = max(
            worst_2d,
            float(
                np.max(
                    np.abs(
                        model2.steady_state(d, method="recursive")
                        - model2.steady_state(d, method="matrix")
                    )
                )
            ),
        )
    return worst_1d, worst_2d


@pytest.mark.benchmark(group="solvers")
def test_solver_agreement(benchmark, out_dir):
    worst_1d, worst_2d = benchmark.pedantic(_max_disagreement, rounds=1, iterations=1)
    text = "\n".join(
        [
            "Solver ablation: max |p_i| disagreement vs matrix solve",
            f"  1-D closed form / recursive: {worst_1d:.3e}",
            f"  2-D recursive:               {worst_2d:.3e}",
            f"  grid: {len(GRID)} (q, c, d) points",
        ]
    )
    emit(out_dir, "solvers_agreement", text)
    assert worst_1d < 1e-10
    assert worst_2d < 1e-10


def _solve_many(model, method, d):
    # Defeat the per-threshold cache: use the explicit-method path.
    return model.steady_state(d, method=method)


@pytest.mark.benchmark(group="solvers")
@pytest.mark.parametrize("method", ["closed_form", "recursive", "matrix"])
def test_solver_speed_1d(benchmark, method):
    model = OneDimensionalModel(MobilityParams(0.05, 0.01))
    benchmark(_solve_many, model, method, 50)


@pytest.mark.benchmark(group="solvers")
@pytest.mark.parametrize("method", ["recursive", "matrix"])
def test_solver_speed_2d(benchmark, method):
    model = TwoDimensionalModel(MobilityParams(0.05, 0.01))
    benchmark(_solve_many, model, method, 50)
