"""ABL-ANALYTIC: scheme comparison done entirely in closed form.

For a grid of mobility/traffic profiles, each scheme is given its own
*optimally tuned* parameter (threshold d, movement budget M, timer
period T, LA radius n -- all at delay bound 1 for comparability) and
the analytic costs are compared.  This is the "who wins where" map the
paper's introduction sketches qualitatively:

* distance-based dominates time-based and static LAs everywhere;
* against movement-based the picture is subtler -- a *finding* of this
  reproduction (EXPERIMENTS.md): at delay bound 1, when calls are
  frequent relative to movement (c >= q/2), the movement counter bounds
  the paging disk more tightly than the distance threshold (most calls
  arrive before any move, so the counter is 0 and one cell is polled,
  while the distance scheme must blanket its whole residing area).  In
  the paper's operating regime (q >> c, e.g. Table 1's q = 5c) the
  distance scheme wins, and delay bounds m >= 2 restore its advantage
  via SDF staging.
"""

import numpy as np
import pytest

from repro import (
    CostParams,
    MobilityParams,
    TwoDimensionalModel,
    find_optimal_threshold,
    optimal_la_radius,
    optimal_movement_threshold,
    optimal_timer_period,
)
from repro.analysis import compute_crossover_map, render_table
from repro.geometry import HexTopology

from conftest import emit

COSTS = CostParams(update_cost=50.0, poll_cost=2.0)
PROFILES = [
    (q, c)
    for q in (0.02, 0.1, 0.4)
    for c in (0.005, 0.02, 0.08)
]


def _compare_all():
    topo = HexTopology()
    rows = []
    dominance_failures = []
    for q, c in PROFILES:
        mobility = MobilityParams(q, c)
        distance = find_optimal_threshold(
            TwoDimensionalModel(mobility), COSTS, 1, convention="physical"
        )
        movement = optimal_movement_threshold(topo, mobility, COSTS)
        timer = optimal_timer_period(topo, mobility, COSTS)
        la = optimal_la_radius(topo, mobility, COSTS, max_radius=30)
        rows.append(
            [
                q,
                c,
                f"d={distance.threshold}",
                distance.total_cost,
                f"M={movement.parameter}",
                movement.total_cost,
                f"T={timer.parameter}",
                timer.total_cost,
                f"n={la.parameter}",
                la.total_cost,
            ]
        )
        for name, competitor in (
            ("movement", movement),
            ("timer", timer),
            ("la", la),
        ):
            if distance.total_cost > competitor.total_cost + 1e-9:
                dominance_failures.append((q, c, name))
    # Movement-based may legitimately win when c >= q/2 (see module
    # docstring); anything else is a dominance violation.
    violations = [
        (q, c, name)
        for q, c, name in dominance_failures
        if not (name == "movement" and c >= q / 2)
    ]
    return rows, dominance_failures, violations


@pytest.mark.benchmark(group="baselines")
def test_analytic_scheme_comparison(benchmark, out_dir):
    rows, losses, violations = benchmark.pedantic(_compare_all, rounds=1, iterations=1)
    headers = [
        "q", "c",
        "dist param", "dist C_T",
        "mvmt param", "mvmt C_T",
        "timer param", "timer C_T",
        "LA param", "LA C_T",
    ]
    text = "\n".join(
        [
            render_table(
                headers, rows,
                title="Analytic scheme comparison (hex, U=50 V=2, delay 1, "
                "each scheme optimally tuned)",
            ),
            "",
            f"distance-based losses (expected only vs movement at c >= q/2): "
            f"{losses or 'none'}",
            f"unexpected dominance violations: {violations or 'none'}",
        ]
    )
    emit(out_dir, "baselines_analytic", text)
    assert violations == []
    # In the paper's own regime (q >= 5c, like Table 1) distance-based
    # must win outright.
    for q, c, name in losses:
        assert q < 5 * c, f"distance lost to {name} in the paper's regime (q={q}, c={c})"


@pytest.mark.benchmark(group="baselines")
def test_crossover_map(benchmark, out_dir):
    """Render the distance-vs-movement decision boundary over (q, c)."""
    qs = list(np.logspace(np.log10(0.02), np.log10(0.5), 7))
    cs = list(np.logspace(np.log10(0.002), np.log10(0.1), 7))
    crossover = benchmark.pedantic(
        compute_crossover_map, args=(COSTS, qs, cs), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "Cheapest scheme per (q, c), hex geometry, delay 1, "
            "each scheme optimally tuned:",
            "",
            crossover.render(),
            "",
            f"distance-based wins {crossover.share('distance'):.0%} of the grid, "
            f"movement-based {crossover.share('movement'):.0%}; "
            "the boundary tracks c ~ q/2",
        ]
    )
    emit(out_dir, "baselines_crossover", text)
    # Structure: timer/LA never win; the paper regime is distance.
    assert crossover.share("timer") == 0.0
    assert crossover.share("location-area") == 0.0
    assert crossover.winner_at(len(qs) - 1, 0) == "distance"
    assert crossover.share("distance") > 0.4
