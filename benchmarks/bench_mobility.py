#!/usr/bin/env python
"""MOBILITY: CTRW stepping overhead vs the built-in uniform walk.

    PYTHONPATH=src python benchmarks/bench_mobility.py [--smoke] [--max-overhead X]

Times :class:`repro.simulation.vectorized.VectorizedDistanceEngine`
slot throughput with the built-in uniform walk (counter-RNG path) and
with each CTRW mobility preset (geometric, deterministic,
hyperexponential, truncated-Pareto residence, and directional drift),
at the same terminal count and slot budget.  The CTRW path carries a
per-terminal residence clock and per-expiry distribution sampling, so
it is expected to cost more per slot; the gate bounds that overhead so
a regression in the CTRW kernels is caught, not hidden.

Also times the per-cell :class:`~repro.simulation.engine.SimulationEngine`
with a CTRW walker against its uniform-walk baseline, and verifies the
ctrw-exp preset's measured cost lands within CI-plus-5% of the uniform
walk's (the degeneracy law the conformance tier pins -- here it doubles
as a correctness guard on the timed fast path).

Plain script (no pytest-benchmark dependency) so CI can run it in
smoke mode on every supported Python version.  Writes
``benchmarks/out/mobility.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.parameters import CostParams, MobilityParams  # noqa: E402
from repro.geometry import HexTopology  # noqa: E402
from repro.mobility.ctrw import MOBILITY_PRESETS, mobility_preset  # noqa: E402
from repro.observability.export import build_provenance  # noqa: E402
from repro.simulation.engine import SimulationEngine  # noqa: E402
from repro.simulation.vectorized import VectorizedDistanceEngine  # noqa: E402
from repro.strategies.distance import DistanceStrategy  # noqa: E402

OUT_DIR = Path(__file__).parent / "out"

Q, C = 0.2, 0.02
D, M = 2, 2
COSTS = CostParams(update_cost=50.0, poll_cost=10.0)

#: Allowed slowdown of the slowest CTRW preset relative to the uniform
#: counter-RNG path in the vectorized engine.  The CTRW step adds a
#: residence-clock decrement, an expiry mask, and per-expiry sampling;
#: generous bound because smoke runs on shared CI hardware.
DEFAULT_MAX_OVERHEAD = 25.0


def _vectorized_rate(spec, terminals: int, slots: int, backend: str) -> float:
    topology = HexTopology()
    engine = VectorizedDistanceEngine(
        topology,
        threshold=D,
        mobility=MobilityParams(move_probability=Q, call_probability=C),
        costs=COSTS,
        terminals=terminals,
        max_delay=M,
        seed=7,
        backend=backend,
        walk=spec,
    )
    engine.run(64)  # touch lazily-built tables before timing
    start = time.perf_counter()
    engine.run(slots)
    elapsed = time.perf_counter() - start
    return terminals * slots / elapsed


def _vectorized_cost(spec, terminals: int, slots: int):
    topology = HexTopology()
    engine = VectorizedDistanceEngine(
        topology,
        threshold=D,
        mobility=MobilityParams(move_probability=Q, call_probability=C),
        costs=COSTS,
        terminals=terminals,
        max_delay=M,
        seed=11,
        backend="auto" if spec is None else "numpy",
        walk=spec,
    )
    engine.run(max(200, slots // 8))
    engine.reset_meters()
    result = engine.run(slots)
    return result.mean_total_cost, result.total_cost_ci()


def _per_cell_rate(spec, slots: int) -> float:
    engine = SimulationEngine(
        topology=HexTopology(),
        strategy=DistanceStrategy(D, max_delay=M),
        mobility=MobilityParams(move_probability=Q, call_probability=C),
        costs=COSTS,
        seed=7,
        walker_factory=None if spec is None else spec.walker_factory(),
    )
    engine.run(64)
    start = time.perf_counter()
    engine.run(slots)
    elapsed = time.perf_counter() - start
    return slots / elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI")
    parser.add_argument("--max-overhead", type=float,
                        default=DEFAULT_MAX_OVERHEAD,
                        help="max allowed uniform/CTRW throughput ratio "
                        f"(default {DEFAULT_MAX_OVERHEAD})")
    args = parser.parse_args(argv)

    if args.smoke:
        terminals, slots, per_cell_slots, check_slots = 128, 1500, 15_000, 3000
    else:
        terminals, slots, per_cell_slots, check_slots = 1024, 8000, 120_000, 20_000

    rates = {}
    rates["uniform"] = _vectorized_rate(None, terminals, slots, backend="auto")
    for name in MOBILITY_PRESETS:
        if name == "uniform":
            continue
        spec = mobility_preset(name, Q)
        rates[name] = _vectorized_rate(spec, terminals, slots, backend="numpy")
    slowest = min(rate for name, rate in rates.items() if name != "uniform")
    overhead = rates["uniform"] / slowest

    per_cell = {
        "uniform": _per_cell_rate(None, per_cell_slots),
        "ctrw-exp": _per_cell_rate(mobility_preset("ctrw-exp", Q), per_cell_slots),
    }

    uniform_cost, uniform_ci = _vectorized_cost(None, terminals, check_slots)
    exp_cost, exp_ci = _vectorized_cost(
        mobility_preset("ctrw-exp", Q), terminals, check_slots
    )
    band = uniform_ci + exp_ci + 0.05 * uniform_cost
    degenerate_ok = abs(uniform_cost - exp_cost) <= band

    print(f"vectorized slot-terminal throughput (terminals={terminals}):")
    for name, rate in rates.items():
        print(f"  {name:<12} {rate:>12.0f} /s")
    print(f"CTRW overhead (uniform / slowest preset): {overhead:.2f}x "
          f"(max allowed {args.max_overhead:.1f}x)")
    print("per-cell engine slots/s: "
          + ", ".join(f"{k}={v:.0f}" for k, v in per_cell.items()))
    print(f"degeneracy: uniform {uniform_cost:.4f}+/-{uniform_ci:.4f} vs "
          f"ctrw-exp {exp_cost:.4f}+/-{exp_ci:.4f} -> "
          f"{'ok' if degenerate_ok else 'FAIL'}")

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "provenance": build_provenance(
            "bench-mobility",
            params={"terminals": terminals, "slots": slots,
                    "smoke": args.smoke},
            seed=7,
        ),
        "vectorized_rates": rates,
        "per_cell_rates": per_cell,
        "overhead": overhead,
        "degeneracy": {
            "uniform": uniform_cost,
            "ctrw_exp": exp_cost,
            "band": band,
            "ok": degenerate_ok,
        },
    }
    (OUT_DIR / "mobility.json").write_text(json.dumps(payload, indent=2))
    print(f"wrote {OUT_DIR / 'mobility.json'}")

    if overhead > args.max_overhead:
        print(f"FAIL: CTRW overhead {overhead:.2f}x exceeds "
              f"{args.max_overhead:.1f}x", file=sys.stderr)
        return 1
    if not degenerate_ok:
        print("FAIL: ctrw-exp did not degenerate to the uniform walk",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
