"""EXT: benches for the repository's paper extensions.

Three extensions beyond the published evaluation, each with a
quantitative gate:

* **Square grid** -- the framework instantiated on a third geometry;
  the chain must track the grid walk like the hex model does.
* **Soft delay** -- the hard bound ``m`` replaced by a per-cycle
  penalty; the policy family must interpolate monotonically between
  the paper's per-ring (penalty 0) and blanket (penalty -> inf) limits.
* **Transient horizon** -- how long after a fresh location fix the
  steady-state cost model becomes accurate (justifies both the
  simulation warm-up and the paper's steady-state framing).
"""

import math

import pytest

from repro import (
    CostEvaluator,
    CostParams,
    MobilityParams,
    SquareGridModel,
    TwoDimensionalModel,
    find_optimal_threshold,
    mixing_time,
    optimize_soft_delay,
    transient_cost,
)
from repro.analysis import render_table
from repro.simulation import validate_against_model

from conftest import emit

MOBILITY = MobilityParams(0.2, 0.02)
COSTS = CostParams(50.0, 5.0)


@pytest.mark.benchmark(group="extensions")
def test_square_grid_model(benchmark, out_dir):
    def run():
        rows = []
        worst = 0.0
        for d, m in ((1, 1), (3, 2), (5, 3)):
            comparison = validate_against_model(
                SquareGridModel(MOBILITY),
                COSTS,
                d=d,
                m=m,
                slots=100_000,
                replications=3,
                seed=61 + d,
            )
            rows.append(
                [d, m, comparison.predicted_total, comparison.measured_total,
                 f"{comparison.relative_error:.2%}"]
            )
            worst = max(worst, comparison.relative_error)
        return rows, worst

    rows, worst = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["d", "m", "predicted C_T", "measured C_T", "rel err"],
        rows,
        title="Square-grid extension: model vs grid simulation (q=0.2 c=0.02)",
    )
    emit(out_dir, "ext_square", text)
    assert worst < 0.05


@pytest.mark.benchmark(group="extensions")
def test_soft_delay_frontier(benchmark, out_dir):
    def run():
        model = TwoDimensionalModel(MOBILITY)
        rows = []
        for penalty in (0.0, 1.0, 5.0, 20.0, 100.0, 1e6):
            policy = optimize_soft_delay(model, COSTS, penalty, d_max=30)
            rows.append(
                [
                    penalty,
                    policy.threshold,
                    policy.expected_delay,
                    policy.update_cost + policy.paging_cell_cost,
                    policy.plan.describe(),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["delay penalty w", "d*", "E[cycles]", "signaling cost", "partition"],
        rows,
        title="Soft-delay frontier (2-D exact, q=0.2 c=0.02 U=50 V=5)",
    )
    emit(out_dir, "ext_soft_delay", text)
    delays = [row[2] for row in rows]
    assert delays == sorted(delays, reverse=True)
    signaling = [row[3] for row in rows]
    assert signaling == sorted(signaling)  # cheaper delay = pricier polling
    # Limits: penalty 0 reproduces unbounded hard delay; huge penalty
    # reproduces the m=1 blanket optimum.
    model = TwoDimensionalModel(MOBILITY)
    unbounded = find_optimal_threshold(model, COSTS, math.inf, d_max=30)
    blanket = find_optimal_threshold(model, COSTS, 1, d_max=30)
    assert rows[0][1] == unbounded.threshold
    assert rows[-1][1] == blanket.threshold


@pytest.mark.benchmark(group="extensions")
def test_transient_horizon(benchmark, out_dir):
    def run():
        rows = []
        for q, c in ((0.05, 0.01), (0.2, 0.02), (0.4, 0.08)):
            model = TwoDimensionalModel(MobilityParams(q, c))
            evaluator = CostEvaluator(model, COSTS)
            d = find_optimal_threshold(model, COSTS, 2).threshold
            analysis = transient_cost(evaluator, max(d, 1), 2, horizon=3000)
            rows.append(
                [
                    q,
                    c,
                    max(d, 1),
                    mixing_time(model, max(d, 1), tolerance=0.01),
                    analysis.slots_to_within(0.01),
                    analysis.per_slot_cost[0],
                    analysis.steady_state_cost,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["q", "c", "d", "mixing slots (tv<=1%)", "cost-convergence slots",
         "cost at t=0", "steady C_T"],
        rows,
        title="Transient horizon: slots until the steady-state model is valid",
    )
    emit(out_dir, "ext_transient", text)
    for row in rows:
        assert row[4] <= 3000  # converged within the horizon
        assert row[5] <= row[6] + 1e-12  # fresh fix is never pricier
