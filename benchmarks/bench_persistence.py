"""EXT-PERSIST: validity boundary of the random-walk assumption.

The paper argues the memoryless random walk fits pedestrians and the
fluid-flow model fits vehicles.  This bench locates the boundary: it
drives the distance-based scheme with :class:`PersistentWalk` at
increasing direction persistence (same move rate ``q``, so the chain
sees identical parameters) and measures how far reality drifts from
the model's cost prediction.

Expected structure, gated below:

* at persistence 0 the simulation matches the chain (the standard
  validation);
* cost error grows monotonically-ish with persistence, and the model
  always *underestimates* (persistent walkers escape the residing area
  faster, so real update costs exceed the chain's);
* by vehicle-like persistence (0.9) the error is tens of percent --
  the quantitative version of the paper's "use fluid flow for
  vehicles" advice.
"""

import numpy as np
import pytest

from repro import CostEvaluator, CostParams, MobilityParams, TwoDimensionalModel
from repro.analysis import render_table
from repro.geometry import HexTopology
from repro.mobility import PersistentWalk
from repro.simulation import SimulationEngine
from repro.strategies import DistanceStrategy

from conftest import emit

MOBILITY = MobilityParams(0.3, 0.01)
COSTS = CostParams(50.0, 2.0)
D, M = 3, 2
SLOTS = 120_000
LEVELS = (0.0, 0.3, 0.6, 0.9)


def _measure(persistence: float) -> float:
    costs = []
    for seed in (1, 2, 3):
        engine = SimulationEngine(
            HexTopology(),
            DistanceStrategy(D, max_delay=M),
            MOBILITY,
            COSTS,
            seed=seed,
            walker_factory=lambda topo, q, rng, start: PersistentWalk(
                topo, q, persistence=persistence, rng=rng, start=start
            ),
        )
        costs.append(engine.run(SLOTS).mean_total_cost)
    return float(np.mean(costs))


def _study():
    evaluator = CostEvaluator(
        TwoDimensionalModel(MOBILITY), COSTS, convention="physical"
    )
    predicted = evaluator.total_cost(D, M)
    rows = []
    errors = []
    for level in LEVELS:
        measured = _measure(level)
        error = (measured - predicted) / predicted
        errors.append(error)
        rows.append([level, predicted, measured, f"{error:+.1%}"])
    return rows, errors


@pytest.mark.benchmark(group="persistence")
def test_persistence_validity_boundary(benchmark, out_dir):
    rows, errors = benchmark.pedantic(_study, rounds=1, iterations=1)
    text = "\n".join(
        [
            render_table(
                ["persistence", "model C_T", "measured C_T", "model error"],
                rows,
                title=(
                    f"Random-walk assumption vs direction persistence "
                    f"(hex, q={MOBILITY.q} c={MOBILITY.c} d={D} m={M})"
                ),
            ),
            "",
            "the chain model assumes memoryless direction; persistent walkers",
            "escape the residing area faster, so the model underestimates cost",
        ]
    )
    emit(out_dir, "persistence", text)
    assert abs(errors[0]) < 0.05  # memoryless: model holds
    assert errors[-1] > 0.15  # vehicle-like: model badly optimistic
    assert errors[-1] > errors[0]  # error grows with persistence
    for error in errors[1:]:
        assert error > -0.02  # underestimation only; never pessimistic
