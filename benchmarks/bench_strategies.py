"""ABL-BASELINE: update-strategy shoot-out under simulation.

Pits the paper's distance-based scheme against the related-work
baselines -- movement-based and time-based [3], static location areas
[8], and the dynamic adaptive scheme [1] -- on the same hex-grid
workload (identical mobility/traffic parameters, distinct seeds per
replication).  Each strategy is given a comparable configuration:
the distance threshold is the analytic optimum; movement/timer budgets
and the LA radius are matched to the same uncertainty radius.

The paper's motivating claims gated here:

* distance-based beats movement- and time-based (random walks
  oscillate);
* distance-based beats the static LA scheme at equal paging-area size;
* the dynamic scheme converges to within a few percent of the static
  optimum without knowing (q, c) a priori.
"""

import pytest

from repro import (
    CostParams,
    MobilityParams,
    TwoDimensionalModel,
    find_optimal_threshold,
)
from repro.analysis import render_table
from repro.geometry import HexTopology
from repro.simulation import run_replicated
from repro.strategies import (
    DistanceStrategy,
    DynamicStrategy,
    LocationAreaStrategy,
    MovementStrategy,
    TimerStrategy,
)

from conftest import emit

MOBILITY = MobilityParams(0.3, 0.02)
COSTS = CostParams(update_cost=30.0, poll_cost=1.0)
SLOTS = 120_000
M = 2


def _optimal_d():
    return find_optimal_threshold(
        TwoDimensionalModel(MOBILITY), COSTS, M, convention="physical"
    ).threshold


def _run_shootout():
    d_star = _optimal_d()
    factories = {
        "distance(d*)": lambda: DistanceStrategy(d_star, max_delay=M),
        "movement(M=d*)": lambda: MovementStrategy(max(d_star, 1), max_delay=M),
        "timer(T=d*/q)": lambda: TimerStrategy(
            max(int(round(d_star / MOBILITY.q)), 1), max_delay=M
        ),
        "location-area(d*)": lambda: LocationAreaStrategy(d_star),
        "dynamic": lambda: DynamicStrategy(
            COSTS, max_delay=M, smoothing=0.005, recompute_interval=10
        ),
    }
    results = {}
    for name, factory in factories.items():
        result = run_replicated(
            HexTopology(),
            factory,
            MOBILITY,
            COSTS,
            slots=SLOTS,
            replications=3,
            seed=31,
        )
        results[name] = result
    return d_star, results


@pytest.mark.benchmark(group="strategies")
def test_strategy_shootout(benchmark, out_dir):
    d_star, results = benchmark.pedantic(_run_shootout, rounds=1, iterations=1)
    headers = ["strategy", "mean C_T", "95% CI", "mean C_u", "mean C_v", "page delay"]
    rows = [
        [
            name,
            r.mean_total_cost,
            r.total_cost_ci(),
            r.mean_update_cost,
            r.mean_paging_cost,
            r.mean_paging_delay,
        ]
        for name, r in results.items()
    ]
    text = render_table(
        headers,
        rows,
        title=(
            f"Strategy shoot-out (hex grid, q={MOBILITY.q} c={MOBILITY.c} "
            f"U={COSTS.U} V={COSTS.V} m={M}, d*={d_star})"
        ),
    )
    emit(out_dir, "strategies", text)

    distance = results["distance(d*)"].mean_total_cost
    assert distance < results["movement(M=d*)"].mean_total_cost
    assert distance < results["timer(T=d*/q)"].mean_total_cost
    assert distance < results["location-area(d*)"].mean_total_cost
    # Dynamic adaptation must land within 15% of the static optimum.
    assert results["dynamic"].mean_total_cost < distance * 1.15
