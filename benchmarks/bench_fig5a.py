"""FIG5A: reproduce Figure 5(a) -- 1-D cost vs call arrival probability.

Sweep ``c`` over [0.001, 0.1] (log) with ``q = 0.05, U = 100, V = 1``.
Besides the shared shape gates, this bench verifies the discontinuity
phenomenon the paper points out: the optimal threshold d* jumps at some
points of the sweep (the cost curve kinks there).
"""

import math

import pytest

from repro.analysis import (
    check_figure_shape,
    compute_figure5,
    render_ascii_plot,
    render_table,
)

from conftest import emit


@pytest.mark.benchmark(group="figures")
def test_figure5a_reproduction(benchmark, out_dir):
    figure = benchmark.pedantic(
        compute_figure5, args=(1,), kwargs={"points": 17}, rounds=1, iterations=1
    )
    problems = check_figure_shape(figure)
    # "Discontinuities appear in some curves due to the sudden changes
    # in the optimal threshold distances": thresholds must actually
    # change along the sweep for at least one delay bound.
    jumps = sum(
        1
        for m in figure.thresholds
        for i in range(1, len(figure.x_values))
        if figure.thresholds[m][i] != figure.thresholds[m][i - 1]
    )
    headers, rows = figure.as_rows()
    series = {figure.curve_label(m): ys for m, ys in figure.curves.items()}
    lines = [
        render_table(headers, rows, title="Figure 5(a): 1-D, q=0.05 U=100 V=1"),
        "",
        render_ascii_plot(series, figure.x_values, title="optimal C_T vs c"),
        "",
        f"shape violations: {problems or 'none'}",
        f"optimal-threshold jumps along the sweep: {jumps}",
    ]
    emit(out_dir, "fig5a", "\n".join(lines))
    assert problems == []
    assert jumps > 0
