"""FIG4B: reproduce Figure 4(b) -- 2-D (exact model) cost vs ``q``.

Same sweep as Figure 4(a) on the exact two-dimensional model.  Extra
shape facts checked beyond the shared checker: the 2-D curves dominate
the 1-D ones (hex residing areas are larger), matching the paper's
y-axis ranges (0-0.5 in 4(a) vs 0-2.5 in 4(b)).
"""

import pytest

from repro.analysis import (
    check_figure_shape,
    compute_figure4,
    render_ascii_plot,
    render_table,
)

from conftest import emit


@pytest.mark.benchmark(group="figures")
def test_figure4b_reproduction(benchmark, out_dir):
    figure = benchmark.pedantic(
        compute_figure4, args=(2,), kwargs={"points": 13}, rounds=1, iterations=1
    )
    problems = check_figure_shape(figure)
    reference = compute_figure4(1, points=13)
    dominated = all(
        figure.curves[1][i] >= reference.curves[1][i] - 1e-9
        for i in range(len(figure.x_values))
    )
    headers, rows = figure.as_rows()
    series = {figure.curve_label(m): ys for m, ys in figure.curves.items()}
    lines = [
        render_table(headers, rows, title="Figure 4(b): 2-D exact, c=0.01 U=100 V=1"),
        "",
        render_ascii_plot(series, figure.x_values, title="optimal C_T vs q"),
        "",
        f"shape violations: {problems or 'none'}",
        f"2-D delay-1 curve dominates 1-D: {dominated}",
    ]
    emit(out_dir, "fig4b", "\n".join(lines))
    assert problems == []
    assert dominated
