"""TAB2: reproduce Table 2 -- 2-D optimal and near-optimal columns.

Paper parameters: ``q = 0.05, c = 0.01, V = 10``, ``U`` from 1 to 1000,
delay bounds 1, 3, unbounded.  Checks all four published columns
(``d*``, ``d'``, ``C_T``, ``C'_T``) cell by cell.
"""

import pytest

from repro.analysis import compute_table2, render_table, table2_rows
from repro.analysis.paper_data import TABLE2, TABLE_U_VALUES

from conftest import emit


def _check(table):
    worst_cost = worst_near = 0.0
    mismatches = []
    for m, column in TABLE2.items():
        for U, published in column.items():
            entry = table[m][U]
            worst_cost = max(worst_cost, abs(entry.total_cost - published.total_cost))
            worst_near = max(
                worst_near,
                abs(entry.near_optimal_cost - published.near_optimal_cost),
            )
            if entry.optimal_d != published.optimal_d:
                mismatches.append(("d*", m, U))
            if entry.near_optimal_d != published.near_optimal_d:
                mismatches.append(("d'", m, U))
    return worst_cost, worst_near, mismatches


@pytest.mark.benchmark(group="table2")
def test_table2_reproduction(benchmark, out_dir):
    table = benchmark.pedantic(compute_table2, rounds=1, iterations=1)
    worst_cost, worst_near, mismatches = _check(table)
    headers, rows = table2_rows(table)
    lines = [
        render_table(headers, rows, title="Table 2 (2-D): q=0.05 c=0.01 V=10"),
        "",
        f"worst |C_T  - paper| over {len(TABLE_U_VALUES) * 3} cells: {worst_cost:.4f}",
        f"worst |C'_T - paper| over {len(TABLE_U_VALUES) * 3} cells: {worst_near:.4f}",
        f"threshold mismatches vs paper: {mismatches or 'none'}",
    ]
    emit(out_dir, "table2", "\n".join(lines))
    assert worst_cost < 6e-4
    assert worst_near < 6e-4
    assert mismatches == []
