"""EXT-SENS: regret surface of parameter misestimation.

How accurately must the network know a user's ``(q, c)`` before the
paper's optimization is worth running?  The bench computes the regret
of operating at the threshold tuned for misestimated parameters, over
a log-spaced grid of error factors, and gates the structure that
justifies the dynamic scheme's crude estimators:

* zero regret at the perfect estimate (trivially) and *near*-zero along
  the proportional-error diagonal (the optimum rides the q/c ratio);
* modest regret for factor-2 errors (< ~20%);
* large regret only at extreme lopsided errors -- the situations a
  running EWMA estimator cannot produce for long.
"""

import pytest

from repro import CostParams, MobilityParams, TwoDimensionalModel, regret_surface
from repro.analysis import render_table

from conftest import emit

TRUTH = MobilityParams(0.1, 0.01)
COSTS = CostParams(100.0, 5.0)
FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)


def _surface():
    return regret_surface(
        TwoDimensionalModel, TRUTH, COSTS, 2, factors=FACTORS, d_max=50
    )


@pytest.mark.benchmark(group="sensitivity")
def test_misestimation_regret_surface(benchmark, out_dir):
    surface = benchmark.pedantic(_surface, rounds=1, iterations=1)
    headers = ["q factor \\ c factor"] + [str(f) for f in FACTORS]
    rows = []
    for qf in FACTORS:
        row = [qf]
        for cf in FACTORS:
            row.append(f"{surface[qf][cf].regret:.1%}")
        rows.append(row)
    thresholds = [
        [qf] + [surface[qf][cf].assumed_threshold for cf in FACTORS]
        for qf in FACTORS
    ]
    text = "\n".join(
        [
            render_table(
                headers,
                rows,
                title=(
                    "Regret of operating at a misestimated optimum "
                    "(2-D, truth q=0.1 c=0.01, U=100 V=5, m=2)"
                ),
            ),
            "",
            render_table(
                headers, thresholds, title="Chosen threshold per estimate"
            ),
        ]
    )
    emit(out_dir, "sensitivity", text)
    assert surface[1.0][1.0].regret == pytest.approx(0.0, abs=1e-12)
    # Proportional errors ride the ratio: cheap.
    for factor in (0.5, 2.0, 4.0):
        if factor in surface and factor in surface[factor]:
            assert surface[factor][factor].regret < 0.10
    # Factor-2 single-parameter errors stay modest.
    assert surface[2.0][1.0].regret < 0.20
    assert surface[1.0][2.0].regret < 0.20
    # Regret is always non-negative.
    for row in surface.values():
        for point in row.values():
            assert point.regret >= -1e-12
