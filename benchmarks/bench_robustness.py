"""EXT-ROBUST: sensitivity of the optimal policy to model assumptions.

The analysis assumes (a) geometric call interarrivals and (b) exclusive
per-slot events.  Both are idealizations; this bench measures what they
cost:

* **Bursty traffic** -- the distance-based scheme tuned for Bernoulli
  arrivals is driven by a Markov-modulated (bursty) process with the
  *same mean rate*.  Measured finding (EXPERIMENTS.md): burstiness
  makes the tuned policy *cheaper* (by ~10-13% here), because
  back-to-back calls find the terminal still near ring 0, where SDF
  paging is cheapest, and each call re-centers the residing area.  The
  gated claim is the risk direction: bursty traffic never makes the
  Bernoulli-tuned policy materially more expensive.
* **Independent events** -- rerunning with movement and calls drawn
  independently per slot changes costs by O(q*c), negligible at the
  paper's parameter scales.
"""

import pytest

from repro import (
    CostParams,
    MobilityParams,
    TwoDimensionalModel,
    find_optimal_threshold,
)
from repro.analysis import render_table
from repro.geometry import HexTopology
from repro.mobility import BatchedArrivals
from repro.simulation import SimulationEngine
from repro.strategies import DistanceStrategy

from conftest import emit, emit_json

COSTS = CostParams(update_cost=50.0, poll_cost=2.0)
SLOTS = 150_000


def _run_engine(mobility, d, m, seed, arrivals=None, event_mode="exclusive"):
    import numpy as np

    engine = SimulationEngine(
        HexTopology(),
        DistanceStrategy(d, max_delay=m),
        mobility,
        COSTS,
        seed=seed,
        arrivals=arrivals,
        event_mode=event_mode,
    )
    return engine.run(SLOTS)


def _study():
    import numpy as np

    rows = []
    worst_bursty = worst_indep = 0.0
    for q, c in ((0.1, 0.01), (0.3, 0.02)):
        mobility = MobilityParams(q, c)
        model = TwoDimensionalModel(mobility)
        m = 2
        d = find_optimal_threshold(model, COSTS, m, convention="physical").threshold
        base = np.mean(
            [_run_engine(mobility, d, m, seed).mean_total_cost for seed in (1, 2, 3)]
        )
        bursty = np.mean(
            [
                _run_engine(
                    mobility,
                    d,
                    m,
                    seed,
                    arrivals=BatchedArrivals(
                        c,
                        burstiness=6.0,
                        mean_busy_slots=80.0,
                        rng=np.random.default_rng(1000 + seed),
                    ),
                ).mean_total_cost
                for seed in (1, 2, 3)
            ]
        )
        indep = np.mean(
            [
                _run_engine(
                    mobility, d, m, seed, event_mode="independent"
                ).mean_total_cost
                for seed in (4, 5, 6)
            ]
        )
        bursty_shift = abs(bursty - base) / base
        indep_shift = abs(indep - base) / base
        worst_bursty = max(worst_bursty, bursty_shift)
        worst_indep = max(worst_indep, indep_shift)
        rows.append(
            [q, c, d, base, bursty, f"{bursty_shift:.2%}", indep, f"{indep_shift:.2%}"]
        )
    return rows, worst_bursty, worst_indep


@pytest.mark.benchmark(group="robustness")
def test_assumption_robustness(benchmark, out_dir):
    rows, worst_bursty, worst_indep = benchmark.pedantic(_study, rounds=1, iterations=1)
    text = "\n".join(
        [
            render_table(
                ["q", "c", "d*", "C_T Bernoulli", "C_T bursty", "bursty shift",
                 "C_T independent", "indep shift"],
                rows,
                title="Robustness of the tuned policy to traffic assumptions "
                "(hex, m=2, same mean rates)",
            ),
            "",
            f"worst cost shift under bursty traffic: {worst_bursty:.2%}",
            f"worst cost shift under independent events: {worst_indep:.2%}",
        ]
    )
    emit(out_dir, "robustness", text)
    emit_json(
        out_dir,
        "robustness",
        {
            "config": {
                "topology": "hex", "m": 2, "slots": SLOTS,
                "update_cost": COSTS.update_cost, "poll_cost": COSTS.poll_cost,
            },
            "rows": [
                {
                    "q": row[0], "c": row[1], "optimal_d": int(row[2]),
                    "cost_bernoulli": float(row[3]),
                    "cost_bursty": float(row[4]),
                    "bursty_shift": row[5],
                    "cost_independent": float(row[6]),
                    "independent_shift": row[7],
                }
                for row in rows
            ],
            "worst_bursty_shift": worst_bursty,
            "worst_independent_shift": worst_indep,
        },
    )
    for row in rows:
        base, bursty = row[3], row[4]
        assert bursty <= base * 1.05, "bursty traffic made the tuned policy pricier"
    assert worst_bursty < 0.20
    assert worst_indep < 0.05
