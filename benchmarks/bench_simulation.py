"""SIM-VAL: analytic model vs grid-level simulation.

Runs the validation campaign of
:mod:`repro.analysis.validate`: for each case the analytical
``C_u/C_v/C_T`` is compared with a replicated discrete-time simulation
of the actual protocol on the actual cell grid.  1-D cases must agree
within CI noise (the chain is exact there); 2-D cases must agree within
the small systematic ring-aggregation bias (< 3%).
"""

import pytest

from repro.analysis import render_table
from repro.analysis.validate import DEFAULT_CASES, run_validation_campaign

from conftest import emit


@pytest.mark.benchmark(group="simulation")
def test_model_vs_simulation(benchmark, out_dir):
    outcomes = benchmark.pedantic(
        run_validation_campaign,
        kwargs={"slots": 120_000, "replications": 4, "seed": 21},
        rounds=1,
        iterations=1,
    )
    headers = ["case", "d", "m", "predicted C_T", "measured C_T", "95% CI", "rel err", "ok"]
    rows = []
    for outcome in outcomes:
        c = outcome.comparison
        rows.append(
            [
                outcome.case.label,
                outcome.case.d,
                "inf" if outcome.case.m == float("inf") else int(outcome.case.m),
                c.predicted_total,
                c.measured_total,
                c.ci_half_width,
                f"{c.relative_error:.2%}",
                "yes" if outcome.ok else "NO",
            ]
        )
    text = render_table(
        headers, rows, title="Model-vs-simulation validation campaign"
    )
    emit(out_dir, "simulation_validation", text)
    assert len(outcomes) == len(DEFAULT_CASES)
    for outcome in outcomes:
        assert outcome.ok, f"disagreement in case {outcome.case.label}"
