"""Shared helpers for the benchmark harness.

Each bench regenerates one table or figure of the paper (or one
ablation) and prints the reproduced rows next to the published values,
so running ``pytest benchmarks/ --benchmark-only -s`` produces the full
evaluation section of the paper on stdout.  Output also works without
``-s``: every bench writes its rendering into ``benchmarks/out/``.
"""

import json
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(out_dir: Path, name: str, text: str) -> None:
    """Print a bench's report and persist it under benchmarks/out/."""
    print()
    print(text)
    (out_dir / f"{name}.txt").write_text(text + "\n")


def emit_json(out_dir: Path, name: str, payload: dict) -> None:
    """Persist a bench's results as ``benchmarks/out/<name>.json``.

    The text rendering is for humans; dashboards and regression
    trackers consume this machine-readable twin instead of scraping
    tables.
    """
    (out_dir / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
