"""Shared helpers for the benchmark harness.

Each bench regenerates one table or figure of the paper (or one
ablation) and prints the reproduced rows next to the published values,
so running ``pytest benchmarks/ --benchmark-only -s`` produces the full
evaluation section of the paper on stdout.  Output also works without
``-s``: every bench writes its rendering into ``benchmarks/out/``.

Every artifact written here is provenance-stamped with the same
schema the observability exporter uses (git revision, library version,
parameter fingerprint), so a committed ``benchmarks/out/`` file can
always be traced to the commit and inputs that produced it -- the
fix for the historical drift where out/ carried anonymous snapshots.
"""

import json
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def _provenance(name: str, params: dict) -> dict:
    from repro.observability.export import build_provenance

    return build_provenance(f"bench:{name}", params, seed=params.get("seed"))


def emit(out_dir: Path, name: str, text: str, **params) -> None:
    """Print a bench's report and persist it under benchmarks/out/.

    Alongside the human-readable ``<name>.txt`` this writes a stamped
    ``<name>.json`` twin carrying the provenance block and the rendered
    report, so even text-only benches leave a traceable artifact.
    """
    print()
    print(text)
    (out_dir / f"{name}.txt").write_text(text + "\n")
    (out_dir / f"{name}.json").write_text(
        json.dumps(
            {"provenance": _provenance(name, params), "report": text},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def emit_json(out_dir: Path, name: str, payload: dict, **params) -> None:
    """Persist a bench's results as ``benchmarks/out/<name>.json``.

    The text rendering is for humans; dashboards and regression
    trackers consume this machine-readable twin instead of scraping
    tables.  A ``provenance`` block is injected unless the payload
    already carries one.
    """
    stamped = dict(payload)
    stamped.setdefault("provenance", _provenance(name, params))
    (out_dir / f"{name}.json").write_text(
        json.dumps(stamped, indent=2, sort_keys=True) + "\n"
    )
