"""TAB1: reproduce Table 1 -- optimal threshold and cost, 1-D model.

Paper parameters: ``q = 0.05, c = 0.01, V = 10``, ``U`` from 1 to 1000,
delay bounds 1, 2, 3, unbounded.  The bench regenerates all 28 x 4
cells, checks them against the published values, and reports both the
rows and the worst deviation.
"""

import math

import pytest

from repro.analysis import compute_table1, render_table, table1_rows
from repro.analysis.paper_data import TABLE1, TABLE_U_VALUES

from conftest import emit


def _check(table):
    worst = 0.0
    mismatched_d = []
    for m, column in TABLE1.items():
        for U, published in column.items():
            entry = table[m][U]
            worst = max(worst, abs(entry.total_cost - published.total_cost))
            if entry.optimal_d != published.optimal_d:
                mismatched_d.append((m, U, entry.optimal_d, published.optimal_d))
    return worst, mismatched_d


@pytest.mark.benchmark(group="table1")
def test_table1_reproduction(benchmark, out_dir):
    table = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    worst, mismatched = _check(table)
    headers, rows = table1_rows(table)
    lines = [
        render_table(headers, rows, title="Table 1 (1-D): q=0.05 c=0.01 V=10"),
        "",
        f"worst |C_T - paper| over {len(TABLE_U_VALUES) * 4} cells: {worst:.4f}",
        f"d* mismatches vs paper: {mismatched or 'none'}",
    ]
    emit(out_dir, "table1", "\n".join(lines))
    # Reproduction gates: costs to printed precision; thresholds exact
    # except the documented flat-tie cell (inf, 1000).
    assert worst < 6e-4
    assert all((m, U) == (math.inf, 1000) for m, U, _, _ in mismatched)
