"""EXT-FAIL: degradation under lost update messages.

Injects update-message loss into the distance-based scheme and measures
what the paper's no-loss analysis misses: the register and terminal
views diverge, scheduled paging misses, and recovery paging (expanding
ring search) restores correctness at the price of extra polled cells
and busted delay bounds.

Gated structure:

* correctness is absolute: every call locates the terminal at every
  loss rate (recovery never fails);
* cost degrades monotonically and *gracefully* -- even 50% signaling
  loss stays within ~2x of the lossless cost, because a terminal that
  lost an update cannot have drifted far before the next fix;
* delay-bound violations are exactly the recovery events, so the
  violated-calls fraction ~ loss rate x (updates per call gap).
"""

import numpy as np
import pytest

from repro import CostParams, MobilityParams
from repro.analysis import render_table
from repro.geometry import HexTopology
from repro.simulation import LossyUpdateEngine
from repro.strategies import DistanceStrategy

from conftest import emit, emit_json

MOBILITY = MobilityParams(0.3, 0.02)
COSTS = CostParams(30.0, 2.0)
D, M = 3, 2
SLOTS = 120_000
LOSS_RATES = (0.0, 0.1, 0.3, 0.5)


def _measure(loss: float):
    totals, delays, violations, recoveries = [], [], 0, 0
    calls = 0
    for seed in (1, 2, 3):
        engine = LossyUpdateEngine(
            topology=HexTopology(),
            strategy=DistanceStrategy(D, max_delay=M),
            mobility=MOBILITY,
            costs=COSTS,
            loss_probability=loss,
            seed=seed,
        )
        snapshot = engine.run(SLOTS)
        totals.append(snapshot.mean_total_cost)
        delays.append(snapshot.mean_paging_delay)
        violations += sum(
            count
            for cycles, count in snapshot.delay_histogram.items()
            if cycles > M
        )
        recoveries += engine.recovery_pagings
        calls += snapshot.calls
    return (
        float(np.mean(totals)),
        float(np.mean(delays)),
        violations / calls,
        recoveries,
    )


def _study():
    rows = []
    baseline = None
    for loss in LOSS_RATES:
        cost, delay, violation_fraction, recoveries = _measure(loss)
        if baseline is None:
            baseline = cost
        rows.append(
            [
                f"{loss:.0%}",
                cost,
                f"{cost / baseline - 1:+.1%}",
                delay,
                f"{violation_fraction:.2%}",
                recoveries,
            ]
        )
    return rows


@pytest.mark.benchmark(group="failure")
def test_update_loss_degradation(benchmark, out_dir):
    rows = benchmark.pedantic(_study, rounds=1, iterations=1)
    text = "\n".join(
        [
            render_table(
                ["update loss", "C_T", "vs lossless", "mean page delay",
                 "delay-bound violations", "recovery pagings"],
                rows,
                title=(
                    f"Lost-update failure injection (hex, q={MOBILITY.q} "
                    f"c={MOBILITY.c} d={D} m={M})"
                ),
            ),
            "",
            "recovery paging forfeits the delay bound on the affected calls",
            "but keeps every call answerable; degradation is graceful.",
        ]
    )
    emit(out_dir, "failure_injection", text)
    emit_json(
        out_dir,
        "failure_injection",
        {
            "config": {
                "topology": "hex", "q": MOBILITY.q, "c": MOBILITY.c,
                "d": D, "m": M, "slots": SLOTS, "seeds": [1, 2, 3],
            },
            "rows": [
                {
                    "loss_rate": loss,
                    "mean_total_cost": float(row[1]),
                    "cost_vs_lossless": row[2],
                    "mean_paging_delay": float(row[3]),
                    "delay_violation_fraction": row[4],
                    "recovery_pagings": int(row[5]),
                }
                for loss, row in zip(LOSS_RATES, rows)
            ],
        },
    )
    costs = [float(row[1]) for row in rows]
    assert costs == sorted(costs)  # monotone degradation
    assert costs[-1] < 2.0 * costs[0]  # graceful at 50% loss
    delays = [float(row[3]) for row in rows]
    assert delays[-1] > delays[0]  # recoveries stretch the average delay
