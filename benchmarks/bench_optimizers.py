"""ABL-OPT: threshold-search ablation over the Table 1/2 grids.

Compares the paper's two searchers (exhaustive scan, simulated
annealing) and the greedy baseline on (a) whether they find the true
optimum and (b) how many cost evaluations they spend.  This
substantiates Section 6's framing: exhaustive always works in D + 1
evaluations; annealing approximates with fewer when D is large; greedy
descent is unsafe because the SDF cost curve has local minima.
"""

import math

import pytest

from repro import (
    CostEvaluator,
    CostParams,
    MobilityParams,
    TwoDimensionalModel,
    exhaustive_search,
    hill_climb,
    simulated_annealing,
)
from repro.analysis import render_table
from repro.analysis.paper_data import TABLE_U_VALUES

from conftest import emit

D_MAX = 100
DELAYS = (1, 3, math.inf)


def _objective(U, m):
    model = TwoDimensionalModel(MobilityParams(0.05, 0.01))
    evaluator = CostEvaluator(model, CostParams(U, 10.0))
    return lambda d: evaluator.total_cost(d, m)


def _run_ablation():
    rows = []
    annealing_regret = 0.0
    greedy_failures = 0
    cases = 0
    for U in TABLE_U_VALUES[::3]:  # thin the grid; same coverage shape
        for m in DELAYS:
            objective = _objective(U, m)
            exact = exhaustive_search(objective, D_MAX)
            # Annealing knobs sized for D = 100: the unbounded-delay
            # cost curve is flat beyond the optimum, so short cooling
            # schedules with a small neighborhood can strand the walk
            # far from d* (Section 6's "adjusted based on the required
            # accuracy").
            annealed = simulated_annealing(
                objective, D_MAX, seed=17, y=60.0, exit_temperature=0.03,
                neighborhood=10,
            )
            greedy = hill_climb(objective, D_MAX, start=0)
            annealing_regret = max(
                annealing_regret,
                (annealed.optimal_cost - exact.optimal_cost)
                / max(exact.optimal_cost, 1e-12),
            )
            if greedy.optimal_threshold != exact.optimal_threshold:
                greedy_failures += 1
            cases += 1
            rows.append(
                [
                    int(U),
                    "inf" if m == math.inf else int(m),
                    exact.optimal_threshold,
                    annealed.optimal_threshold,
                    greedy.optimal_threshold,
                    exact.evaluations,
                    annealed.evaluations,
                    greedy.evaluations,
                ]
            )
    return rows, annealing_regret, greedy_failures, cases


@pytest.mark.benchmark(group="optimizers")
def test_optimizer_ablation(benchmark, out_dir):
    rows, regret, greedy_failures, cases = benchmark.pedantic(
        _run_ablation, rounds=1, iterations=1
    )
    headers = [
        "U", "m", "d*(exh)", "d*(ann)", "d*(greedy)",
        "evals(exh)", "evals(ann)", "evals(greedy)",
    ]
    text = "\n".join(
        [
            render_table(headers, rows, title="Optimizer ablation (2-D model)"),
            "",
            f"worst annealing cost regret: {regret:.2%}",
            f"greedy local-minimum failures: {greedy_failures}/{cases}",
        ]
    )
    emit(out_dir, "optimizers", text)
    # Annealing must track the optimum closely (the paper's accuracy
    # knobs trade this against iterations).
    assert regret < 0.05
    # Greedy typically *does* work on these smooth instances -- the
    # danger is the discontinuous ones; we only require it never beats
    # the optimum, which is structural.
    for row in rows:
        assert row[2] <= D_MAX
