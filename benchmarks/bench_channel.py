"""EXT-CHANNEL: paging-channel dimensioning for a shared service area.

For populations of increasing size, sweep the delay bound and report
the system-level picture: channel utilization, queueing wait, total
call-setup latency, and cell-polling bandwidth.  Gates the headline
tension this substrate exposes:

* per-terminal cost strictly falls with ``m`` (the paper's Figure 4/5
  story), but
* channel utilization strictly rises with ``m``, and at realistic
  population sizes the per-terminal-optimal bound is *infeasible* --
  the queue is unstable -- so the operator's usable ``m`` is capped by
  capacity, not user preference.
"""

import math

import pytest

from repro import CostParams, MobilityParams, TwoDimensionalModel
from repro.analysis import render_table
from repro.channel import dimension_channel

from conftest import emit

MODEL = TwoDimensionalModel(MobilityParams(0.05, 0.01))
COSTS = CostParams(100.0, 10.0)
POPULATIONS = (10, 40, 60, 80)
DELAYS = (1, 2, 3, math.inf)


def _sweep():
    rows = []
    summary = {}
    for n in POPULATIONS:
        points = dimension_channel(MODEL, COSTS, terminals=n, delays=DELAYS)
        summary[n] = points
        for p in points:
            label = "inf" if p.delay_bound == math.inf else int(p.delay_bound)
            rows.append(
                [
                    n,
                    label,
                    p.threshold,
                    p.per_terminal_cost,
                    p.utilization,
                    "-" if not p.feasible else f"{p.mean_wait_slots:.3f}",
                    "-" if not p.feasible else f"{p.setup_latency:.3f}",
                    p.polling_bandwidth,
                    "yes" if p.feasible else "OVERLOAD",
                ]
            )
    return rows, summary


@pytest.mark.benchmark(group="channel")
def test_channel_dimensioning(benchmark, out_dir):
    rows, summary = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = render_table(
        ["n", "m", "d*", "per-user C_T", "rho", "E[wait]", "setup latency",
         "poll bandwidth", "feasible"],
        rows,
        title="Paging-channel dimensioning (2-D, q=0.05 c=0.01 U=100 V=10)",
    )
    emit(out_dir, "channel_dimensioning", text)
    for n, points in summary.items():
        costs = [p.per_terminal_cost for p in points]
        assert costs == sorted(costs, reverse=True)
        utilizations = [p.utilization for p in points]
        assert utilizations == sorted(utilizations)
    # Small populations can afford any delay bound...
    assert all(p.feasible for p in summary[POPULATIONS[0]])
    # ...large ones cannot afford the per-terminal optimum.
    assert not all(p.feasible for p in summary[POPULATIONS[-1]])
