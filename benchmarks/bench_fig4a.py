"""FIG4A: reproduce Figure 4(a) -- 1-D cost vs probability of moving.

Sweep ``q`` over [0.001, 0.5] (log) with ``c = 0.01, U = 100, V = 1``;
four curves (delay 1, 2, 3, unbounded).  The paper prints no numbers
for figures, so the gate is the curve *shape*: monotone in ``q``,
delay-ordered, and most of the delay-1 gap closed by delay 2-3
(:func:`repro.analysis.figures.check_figure_shape`).
"""

import pytest

from repro.analysis import check_figure_shape, compute_figure4, render_ascii_plot, render_table

from conftest import emit


@pytest.mark.benchmark(group="figures")
def test_figure4a_reproduction(benchmark, out_dir):
    figure = benchmark.pedantic(
        compute_figure4, args=(1,), kwargs={"points": 13}, rounds=1, iterations=1
    )
    problems = check_figure_shape(figure)
    headers, rows = figure.as_rows()
    series = {figure.curve_label(m): ys for m, ys in figure.curves.items()}
    lines = [
        render_table(headers, rows, title="Figure 4(a): 1-D, c=0.01 U=100 V=1"),
        "",
        render_ascii_plot(series, figure.x_values, title="optimal C_T vs q"),
        "",
        f"shape violations: {problems or 'none'}",
    ]
    emit(out_dir, "fig4a", "\n".join(lines))
    assert problems == []
