"""Legacy setuptools shim.

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` in
offline environments that lack the ``wheel`` package (the PEP 517
editable path needs ``bdist_wheel``).  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
