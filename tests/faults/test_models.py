"""Unit tests for the composable fault models and the signaling policy."""

import numpy as np
import pytest

from repro import FaultInjectionError, ParameterError
from repro.faults import (
    BaseStationOutage,
    FaultModel,
    PageLoss,
    RegisterDegradation,
    SignalingPolicy,
    UpdateLoss,
)
from repro.geometry import LineTopology


def bound(fault, seed=0):
    fault.bind(np.random.default_rng(seed), LineTopology())
    return fault


class TestFaultModelBase:
    def test_defaults_are_no_fault(self):
        fault = bound(FaultModel())
        assert fault.update_delivered(0, 0)
        assert fault.page_heard(0, 0)
        assert not fault.cell_dark(0, 0)
        assert fault.register_read(0, [(0, 0)]) is None

    def test_use_before_bind_raises(self):
        with pytest.raises(FaultInjectionError):
            UpdateLoss(0.5).update_delivered(0, 0)

    def test_private_seed_decouples_from_engine_rng(self):
        shared = np.random.default_rng(1)
        fault = UpdateLoss(0.5, seed=7)
        fault.bind(shared, LineTopology())
        draws = [fault.update_delivered(t, 0) for t in range(50)]
        fault2 = UpdateLoss(0.5, seed=7)
        fault2.bind(np.random.default_rng(999), LineTopology())
        assert draws == [fault2.update_delivered(t, 0) for t in range(50)]


class TestUpdateLoss:
    def test_closed_interval(self):
        assert UpdateLoss(0.0).probability == 0.0
        assert UpdateLoss(1.0).probability == 1.0
        for bad in (-0.01, 1.01):
            with pytest.raises(ParameterError):
                UpdateLoss(bad)

    def test_drop_rate(self):
        fault = bound(UpdateLoss(0.3), seed=2)
        delivered = sum(fault.update_delivered(t, 0) for t in range(10_000))
        assert delivered / 10_000 == pytest.approx(0.7, abs=0.02)
        assert fault.drops == 10_000 - delivered


class TestPageLoss:
    def test_open_interval(self):
        # At probability 1 no page is ever heard; no paging scheme can
        # answer a call, so total page loss is a config error.
        with pytest.raises(ParameterError):
            PageLoss(1.0)

    def test_miss_rate(self):
        fault = bound(PageLoss(0.25), seed=3)
        heard = sum(fault.page_heard(t, 0) for t in range(10_000))
        assert heard / 10_000 == pytest.approx(0.75, abs=0.02)
        assert fault.misses == 10_000 - heard


class TestBaseStationOutage:
    def test_duration_validated(self):
        with pytest.raises(ParameterError):
            BaseStationOutage(0.1, 0)

    def test_outage_persists_for_duration(self):
        # Rate 1.0 is rejected ([0, 1)); a seeded near-one hazard is
        # deterministic and fires on the first draw.
        fault = bound(BaseStationOutage(0.999, duration=5), seed=4)
        assert fault.cell_dark(10, 0)  # starts immediately
        for tick in range(11, 15):
            assert fault.cell_dark(tick, 0)
        assert fault.outages_started == 1  # one outage, not five

    def test_single_draw_per_cell_tick(self):
        fault = bound(BaseStationOutage(0.5, duration=1), seed=5)
        first = fault.cell_dark(0, 0)
        # Re-querying the same (cell, tick) must not re-roll the hazard.
        for _ in range(10):
            assert fault.cell_dark(0, 0) == first

    def test_cells_independent(self):
        fault = bound(BaseStationOutage(0.5, duration=100), seed=6)
        states = [fault.cell_dark(0, cell) for cell in range(200)]
        assert any(states) and not all(states)


class TestRegisterDegradation:
    def test_failover_serves_snapshot(self):
        fault = bound(RegisterDegradation(0.999, failover_slots=10), seed=7)
        history = [(0, 100), (3, 200), (8, 300)]
        fault.on_slot(5)  # near-one hazard: fails over at slot 5
        assert fault.in_failover
        # The replica's state is the newest write predating the failure.
        assert fault.register_read(6, history) == 200
        assert fault.stale_reads == 1

    def test_failover_window_expires(self):
        fault = bound(RegisterDegradation(0.999, failover_slots=3), seed=8)
        fault.on_slot(0)
        assert fault.in_failover
        fault.on_slot(3)  # window over; near-one hazard refails at once
        assert fault.failovers == 2

    def test_healthy_register_passes_through(self):
        fault = bound(RegisterDegradation(0.0, failover_slots=5), seed=9)
        fault.on_slot(0)
        assert fault.register_read(1, [(0, 100), (1, 200)]) is None


class TestSignalingPolicy:
    def test_validation(self):
        for kwargs in (
            {"ack_timeout_slots": 0.0},
            {"max_update_retries": -1},
            {"backoff_factor": 0.5},
            {"max_repage_attempts": -1},
            {"on_exhaustion": "explode"},
        ):
            with pytest.raises(ParameterError):
                SignalingPolicy(**kwargs)

    def test_exponential_backoff(self):
        policy = SignalingPolicy(ack_timeout_slots=2.0, backoff_factor=3.0)
        assert policy.retry_wait(1) == 2.0
        assert policy.retry_wait(2) == 6.0
        assert policy.retry_wait(3) == 18.0

    def test_fire_and_forget(self):
        policy = SignalingPolicy.fire_and_forget()
        assert policy.max_update_retries == 0
        assert policy.max_repage_attempts == 0
