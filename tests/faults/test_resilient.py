"""Integration tests for ResilientEngine: composition, retries, recovery."""

import pytest

from repro import (
    CostParams,
    MobilityParams,
    ParameterError,
    RecoveryExhaustedError,
    SimulationError,
)
from repro.faults import (
    BaseStationOutage,
    PageLoss,
    RegisterDegradation,
    ResilientEngine,
    SignalingPolicy,
    UpdateLoss,
)
from repro.geometry import HexTopology, LineTopology
from repro.simulation import SimulationEngine
from repro.strategies import DistanceStrategy, TimerStrategy

MOBILITY = MobilityParams(0.3, 0.03)
COSTS = CostParams(30.0, 2.0)


def make_engine(faults=(), signaling=None, topology=None, seed=0, d=2, m=2):
    return ResilientEngine(
        topology=topology or HexTopology(),
        strategy=DistanceStrategy(d, max_delay=m),
        mobility=MOBILITY,
        costs=COSTS,
        faults=faults,
        signaling=signaling,
        seed=seed,
    )


class TestConstruction:
    def test_requires_distance_strategy(self):
        with pytest.raises(ParameterError):
            ResilientEngine(
                topology=LineTopology(),
                strategy=TimerStrategy(5),
                mobility=MOBILITY,
                costs=COSTS,
            )

    def test_rejects_non_fault_models(self):
        with pytest.raises(ParameterError):
            make_engine(faults=["not-a-fault"])

    def test_rejects_non_policy_signaling(self):
        with pytest.raises(ParameterError):
            make_engine(signaling="retry-hard")


class TestFaultFreeEquivalence:
    def test_matches_base_engine_statistically(self):
        resilient = make_engine(seed=3).run(40_000)
        base = SimulationEngine(
            HexTopology(),
            DistanceStrategy(2, max_delay=2),
            MOBILITY,
            COSTS,
            seed=3,
        ).run(40_000)
        assert resilient.mean_total_cost == pytest.approx(
            base.mean_total_cost, rel=0.05
        )

    def test_no_resilience_machinery_engaged(self):
        engine = make_engine(seed=4)
        engine.run(20_000)
        report = engine.fault_report()
        assert report["lost_transmissions"] == 0
        assert report["update_retries"] == 0
        assert report["repages"] == 0
        assert report["recovery_pagings"] == 0


class TestComposition:
    def test_every_call_answered_under_composed_faults(self):
        # The acceptance invariant: >= 2 simultaneous fault models
        # (update loss + base-station outage, plus page loss and a
        # degrading register for good measure), and every call is still
        # eventually answered -- a paging failure would surface as
        # SimulationError, retry exhaustion as RecoveryExhaustedError.
        engine = make_engine(
            faults=[
                UpdateLoss(0.4),
                BaseStationOutage(0.02, duration=5),
                PageLoss(0.2),
                RegisterDegradation(0.003, failover_slots=15),
            ],
            seed=5,
        )
        snapshot = engine.run(40_000)
        assert snapshot.calls > 100  # the invariant was actually exercised
        assert engine.missed_polls > 0  # ... under real interference
        assert engine.recovery_pagings > 0

    def test_terminal_view_invariant_survives_faults(self):
        # The *terminal's* residing-area invariant is fault-independent:
        # it resets its center on every transmission, delivered or not.
        topology = HexTopology()
        engine = make_engine(
            faults=[UpdateLoss(0.5), PageLoss(0.3)], topology=topology, seed=6
        )
        for _ in range(5_000):
            engine.step()
            dist = topology.distance(engine.strategy.last_known, engine.walk.position)
            assert dist <= 2

    def test_composed_faults_all_consulted(self):
        loss = UpdateLoss(0.3)
        outage = BaseStationOutage(0.05, duration=4)
        engine = make_engine(faults=[loss, outage], seed=7)
        engine.run(30_000)
        assert loss.drops > 0
        assert outage.outages_started > 0

    def test_views_resync_after_call(self):
        engine = make_engine(
            faults=[UpdateLoss(0.6), BaseStationOutage(0.03, duration=5)], seed=8
        )
        for _ in range(15_000):
            calls = engine.meter.calls
            engine.step()
            if engine.meter.calls > calls:
                assert engine.network_center == engine.walk.position


class TestRetriesAndBackoff:
    def test_retries_charged_as_updates(self):
        # With retries, the meter's update count exceeds the number of
        # update events: every retransmission is a full U transaction.
        policy = SignalingPolicy(max_update_retries=5)
        engine = make_engine(faults=[UpdateLoss(0.5)], signaling=policy, seed=9)
        engine.run(20_000)
        assert engine.update_retries > 0
        events = engine.meter.updates - engine.update_retries
        assert engine.meter.updates > events  # retries billed on top
        assert engine.update_latency_slots > 0

    def test_retries_rescue_most_updates(self):
        # 50% per-transmission loss with 5 retries: only ~0.5^6 of
        # update events are abandoned.
        policy = SignalingPolicy(max_update_retries=5)
        engine = make_engine(faults=[UpdateLoss(0.5)], signaling=policy, seed=10)
        engine.run(40_000)
        events = engine.meter.updates - engine.update_retries
        assert engine.lost_updates / events < 0.05
        assert engine.lost_transmissions > engine.lost_updates

    def test_strict_policy_raises_on_exhaustion(self):
        policy = SignalingPolicy(max_update_retries=1, on_exhaustion="raise")
        engine = make_engine(faults=[UpdateLoss(1.0)], signaling=policy, seed=11)
        with pytest.raises(RecoveryExhaustedError):
            engine.run(20_000)

    def test_recovery_exhausted_is_simulation_error(self):
        # Existing catch-alls around the recovery path keep working.
        assert issubclass(RecoveryExhaustedError, SimulationError)


class TestRepageEscalation:
    def test_page_loss_alone_resolved_by_repage_or_recovery(self):
        engine = make_engine(faults=[PageLoss(0.4)], seed=12)
        snapshot = engine.run(30_000)
        assert snapshot.calls > 0
        assert engine.missed_polls > 0
        # With only page loss the register is never stale, so every
        # call is answered inside the planned area or its re-pages
        # plus the from-ring-0 recovery sweep.
        assert engine.lost_updates == 0

    def test_outage_delays_but_never_loses_calls(self):
        engine = make_engine(
            faults=[BaseStationOutage(0.05, duration=8)], seed=13
        )
        snapshot = engine.run(30_000)
        assert snapshot.calls > 0
        assert snapshot.mean_paging_delay > 0

    def test_degradation_grows_with_fault_severity(self):
        costs = []
        for loss in (0.0, 0.3, 0.7):
            engine = make_engine(faults=[UpdateLoss(loss)], seed=14)
            costs.append(engine.run(40_000).mean_total_cost)
        assert costs[0] < costs[2]


class TestRegisterDegradationIntegration:
    def test_stale_reads_trigger_recovery_not_failure(self):
        engine = make_engine(
            faults=[RegisterDegradation(0.01, failover_slots=30)], seed=15
        )
        snapshot = engine.run(40_000)
        assert snapshot.calls > 0
        assert engine.stale_lookups > 0
