"""Smoke tests: the shipped examples must actually run.

Each example is executed as a subprocess (exactly how a user would run
it) and its output checked for the landmark lines.  The slowest
examples (``dynamic_user``, ``optimal_partitioning``) are excluded to
keep the suite fast; the remaining six cover every subsystem the
examples exercise.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: (script, landmark strings that must appear on stdout)
FAST_EXAMPLES = [
    ("quickstart.py", ["Two-dimensional (city) coverage", "Steady-state ring"]),
    ("highway_1d.py", ["distance-based", "location-area", "Per-user thresholds"]),
    ("delay_tradeoff.py", ["pedestrian, light traffic", "gap closed"]),
    ("soft_delay.py", ["Delay/signaling frontier", "square"]),
    ("city_2d.py", ["Per-class optimal thresholds", "busiest base stations"]),
    ("operator_planning.py", ["Fleet policy", "Paging-channel feasibility"]),
]


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}:\n{result.stderr[-2000:]}"
    )
    return result.stdout


@pytest.mark.parametrize("name,landmarks", FAST_EXAMPLES)
def test_example_runs(name, landmarks):
    output = run_example(name)
    for landmark in landmarks:
        assert landmark in output, f"{name}: missing {landmark!r} in output"


def test_all_examples_present():
    # The README's table must not drift from the directory contents.
    expected = {
        "quickstart.py",
        "city_2d.py",
        "highway_1d.py",
        "delay_tradeoff.py",
        "dynamic_user.py",
        "optimal_partitioning.py",
        "soft_delay.py",
        "operator_planning.py",
        "failure_drill.py",
    }
    actual = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= actual


def test_examples_have_docstrings_and_main():
    for path in EXAMPLES_DIR.glob("*.py"):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), f"{path.name} lacks a docstring"
        assert '__name__ == "__main__"' in source, f"{path.name} lacks a main guard"


class TestReproduceScript:
    def test_quick_run_produces_all_artifacts(self, tmp_path):
        scripts_dir = EXAMPLES_DIR.parent / "scripts"
        result = subprocess.run(
            [
                sys.executable,
                str(scripts_dir / "reproduce.py"),
                "--quick",
                "--outdir",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        for artifact in (
            "table1.txt", "table1.csv", "table2.txt", "table2.csv",
            "fig4a.txt", "fig4b.csv", "fig5a.csv", "fig5b.txt",
            "validation.txt", "SUMMARY.txt",
        ):
            assert (tmp_path / artifact).exists(), f"missing {artifact}"
        summary = (tmp_path / "SUMMARY.txt").read_text()
        assert "threshold mismatches = 0" in summary
        assert "8/8 cases agree" in summary


class TestApiDocsGenerator:
    def test_docs_up_to_date(self):
        scripts_dir = EXAMPLES_DIR.parent / "scripts"
        result = subprocess.run(
            [sys.executable, str(scripts_dir / "gen_api_docs.py"), "--check"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_docs_cover_key_modules(self):
        api = (EXAMPLES_DIR.parent / "docs" / "API.md").read_text()
        for section in (
            "## `repro`",
            "## `repro.core.models`",
            "## `repro.paging`",
            "## `repro.simulation`",
            "## `repro.channel`",
        ):
            assert section in api
