"""Unit tests for subscriber populations and fleet planning."""

import math

import numpy as np
import pytest

from repro import CostParams, MobilityParams, OneDimensionalModel, ParameterError
from repro.workload import (
    DEFAULT_MIX,
    PEDESTRIAN,
    Population,
    STATIC,
    UserProfile,
    VEHICLE,
    plan_fleet,
)
from repro.workload.planning import FleetPlan, UserPlan

COSTS = CostParams(50.0, 2.0)


class TestUserProfile:
    def test_zero_jitter_is_deterministic(self):
        profile = UserProfile("p", MobilityParams(0.1, 0.02), jitter=0.0)
        rng = np.random.default_rng(1)
        assert profile.sample(rng) == profile.mobility

    def test_jittered_samples_vary_but_stay_valid(self):
        profile = UserProfile("p", MobilityParams(0.1, 0.02), jitter=0.4)
        rng = np.random.default_rng(2)
        samples = [profile.sample(rng) for _ in range(200)]
        qs = {s.q for s in samples}
        assert len(qs) > 100
        for s in samples:
            assert 0 < s.q <= 0.95
            assert 0 <= s.c <= 0.5
            assert s.q + s.c <= 1.0 + 1e-12

    def test_jitter_centers_on_archetype(self):
        profile = UserProfile("p", MobilityParams(0.1, 0.02), jitter=0.2)
        rng = np.random.default_rng(3)
        qs = [profile.sample(rng).q for _ in range(4000)]
        # Log-normal with sigma 0.2 has mean exp(sigma^2/2) ~ 1.02.
        assert np.mean(qs) == pytest.approx(0.1, rel=0.1)

    @pytest.mark.parametrize(
        "kwargs", [{"weight": 0.0}, {"weight": -1.0}, {"jitter": 1.0}, {"jitter": -0.1}]
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            UserProfile("p", MobilityParams(0.1, 0.02), **kwargs)


class TestPopulation:
    def test_shares_normalized(self):
        population = Population(DEFAULT_MIX)
        assert sum(population.shares.values()) == pytest.approx(1.0)
        assert population.shares["pedestrian"] == pytest.approx(0.6)

    def test_mean_mobility(self):
        population = Population([PEDESTRIAN, VEHICLE, STATIC])
        mean = population.mean_mobility()
        expected_q = 0.6 * 0.05 + 0.3 * 0.4 + 0.1 * 0.002
        assert mean.q == pytest.approx(expected_q)

    def test_sampling_respects_weights(self):
        population = Population(DEFAULT_MIX)
        users = population.sample_users(3000, seed=4)
        names = [profile.name for profile, _ in users]
        assert names.count("pedestrian") / 3000 == pytest.approx(0.6, abs=0.05)
        assert names.count("vehicle") / 3000 == pytest.approx(0.3, abs=0.05)

    def test_sampling_deterministic_per_seed(self):
        population = Population(DEFAULT_MIX)
        a = population.sample_users(50, seed=5)
        b = population.sample_users(50, seed=5)
        assert [m for _, m in a] == [m for _, m in b]

    def test_empty_population_rejected(self):
        with pytest.raises(ParameterError):
            Population([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParameterError):
            Population([PEDESTRIAN, PEDESTRIAN])

    def test_negative_count_rejected(self):
        with pytest.raises(ParameterError):
            Population(DEFAULT_MIX).sample_users(-1, seed=0)


class TestSeedRequirement:
    """Sampling without an explicit seed is refused.

    An unseeded population cannot be re-derived, which would let a
    resumed fleet run silently simulate different subscribers than the
    shards its checkpoint already completed.
    """

    @pytest.mark.parametrize("seed", [None, True, 1.5, "7"])
    def test_sample_users_requires_integer_seed(self, seed):
        with pytest.raises(ParameterError, match="explicit integer seed"):
            Population(DEFAULT_MIX).sample_users(10, seed=seed)

    @pytest.mark.parametrize("seed", [None, False, 2.0])
    def test_sample_arrays_requires_integer_seed(self, seed):
        with pytest.raises(ParameterError, match="explicit integer seed"):
            Population(DEFAULT_MIX).sample_arrays(10, seed=seed)

    def test_omitting_seed_entirely_is_refused(self):
        with pytest.raises(ParameterError, match="explicit integer seed"):
            Population(DEFAULT_MIX).sample_users(10)


class TestPopulationArrays:
    def test_columns_match_count_and_ranges(self):
        arrays = Population(DEFAULT_MIX).sample_arrays(500, seed=11)
        assert arrays.count == 500
        assert arrays.q.shape == arrays.c.shape == (500,)
        assert ((arrays.q > 0) & (arrays.q <= 0.95)).all()
        assert ((arrays.c >= 0) & (arrays.c <= 0.5)).all()
        assert (arrays.q + arrays.c <= 1.0 + 1e-12).all()
        assert sum(arrays.profile_counts().values()) == 500

    def test_deterministic_per_seed(self):
        population = Population(DEFAULT_MIX)
        a = population.sample_arrays(64, seed=5)
        b = population.sample_arrays(64, seed=5)
        c = population.sample_arrays(64, seed=6)
        assert (a.q == b.q).all() and (a.c == b.c).all()
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_respects_weights(self):
        arrays = Population(DEFAULT_MIX).sample_arrays(3000, seed=4)
        counts = arrays.profile_counts()
        assert counts["pedestrian"] / 3000 == pytest.approx(0.6, abs=0.05)

    def test_zero_jitter_profile_is_exact(self):
        uniform = Population(
            [UserProfile("only", MobilityParams(0.1, 0.02), jitter=0.0)]
        )
        arrays = uniform.sample_arrays(32, seed=1)
        assert (arrays.q == 0.1).all()
        assert (arrays.c == 0.02).all()


class TestPlanFleet:
    @pytest.fixture(scope="class")
    def plan(self):
        return plan_fleet(
            Population(DEFAULT_MIX),
            COSTS,
            max_delay=2,
            users=80,
            seed=6,
            model_class=OneDimensionalModel,
            d_max=40,
        )

    def test_every_user_planned(self, plan):
        assert plan.size == 80

    def test_personal_never_worse_than_shared(self, plan):
        for user in plan.users:
            assert user.personal_cost <= user.shared_cost + 1e-12
            assert user.regret >= -1e-12

    def test_fleet_saving_positive_for_heterogeneous_mix(self, plan):
        # Mixing pedestrians, vehicles, and static users must make
        # per-user tuning strictly valuable.
        assert plan.fleet_saving > 0.02

    def test_shared_threshold_is_population_compromise(self, plan):
        thresholds = [u.personal_threshold for u in plan.users]
        assert min(thresholds) <= plan.shared_threshold <= max(thresholds)

    def test_regret_quantiles_monotone(self, plan):
        quantiles = plan.regret_quantiles((0.5, 0.9, 0.99))
        assert quantiles[0.5] <= quantiles[0.9] <= quantiles[0.99]

    def test_by_profile_covers_all(self, plan):
        groups = plan.by_profile()
        assert set(groups) <= {"pedestrian", "vehicle", "static"}
        for personal, shared in groups.values():
            assert personal <= shared + 1e-12

    def test_homogeneous_population_has_no_saving(self):
        uniform = Population(
            [UserProfile("only", MobilityParams(0.1, 0.02), jitter=0.0)]
        )
        plan = plan_fleet(
            uniform,
            COSTS,
            max_delay=1,
            users=20,
            seed=7,
            model_class=OneDimensionalModel,
        )
        assert plan.fleet_saving == pytest.approx(0.0, abs=1e-12)

    def test_zero_users_rejected(self):
        with pytest.raises(ParameterError):
            plan_fleet(Population(DEFAULT_MIX), COSTS, 1, users=0)


def make_user_plan(personal_cost, shared_cost):
    return UserPlan(
        profile_name="p",
        mobility=MobilityParams(0.1, 0.02),
        personal_threshold=1,
        personal_cost=personal_cost,
        shared_threshold=2,
        shared_cost=shared_cost,
    )


class TestPlanEdgeCases:
    def test_empty_fleet_plan_rejected(self):
        # An empty plan would silently turn every aggregate (fleet
        # costs, regret quantiles) into NaN; it must refuse up front.
        with pytest.raises(ParameterError):
            FleetPlan(users=[], shared_threshold=1, max_delay=1)

    def test_relative_regret_zero_optimum_zero_shared(self):
        # Both policies free (e.g. zero costs): no regret, not 0/0.
        assert make_user_plan(0.0, 0.0).relative_regret == 0.0

    def test_relative_regret_zero_optimum_positive_shared(self):
        # Any extra cost over a free optimum is infinitely regrettable.
        assert make_user_plan(0.0, 1.5).relative_regret == math.inf

    def test_relative_regret_ordinary(self):
        plan = make_user_plan(2.0, 3.0)
        assert plan.regret == pytest.approx(1.0)
        assert plan.relative_regret == pytest.approx(0.5)

    def test_single_user_fleet_aggregates(self):
        # The smallest legal fleet: aggregates degenerate to that
        # user's own numbers and every quantile coincides.
        plan = FleetPlan(
            users=[make_user_plan(2.0, 3.0)], shared_threshold=2, max_delay=1
        )
        assert plan.size == 1
        assert plan.personal_fleet_cost == pytest.approx(2.0)
        assert plan.shared_fleet_cost == pytest.approx(3.0)
        quantiles = plan.regret_quantiles((0.5, 0.99))
        assert quantiles[0.5] == pytest.approx(0.5)
        assert quantiles[0.99] == pytest.approx(0.5)
        assert plan.by_profile() == {"p": (pytest.approx(2.0), pytest.approx(3.0))}
