"""Shared fixtures and hypothesis profiles for the test suite."""

import numpy as np
import pytest

from repro import (
    CostParams,
    HexTopology,
    LineTopology,
    MobilityParams,
    OneDimensionalModel,
    TwoDimensionalApproximateModel,
    TwoDimensionalModel,
)

try:
    from hypothesis import settings
except ImportError:  # hypothesis is optional outside the property suites
    settings = None

if settings is not None:
    # "dev" keeps the library defaults for fast local iteration; "ci"
    # removes the per-example deadline (shared runners have noisy
    # clocks -- a deadline flake there says nothing about the code)
    # and prints the seed so failures reproduce.  CI selects with
    # `--hypothesis-profile=ci`; "dev" is the default.
    settings.register_profile("dev", settings.get_profile("default"))
    settings.register_profile("ci", deadline=None, print_blob=True)
    settings.load_profile("dev")


@pytest.fixture
def line():
    return LineTopology()


@pytest.fixture
def hexgrid():
    return HexTopology()


@pytest.fixture
def paper_mobility():
    """The (q, c) used by the paper's Tables 1 and 2."""
    return MobilityParams(move_probability=0.05, call_probability=0.01)


@pytest.fixture
def paper_costs():
    """The (U, V) of the paper's Table rows with U = 100."""
    return CostParams(update_cost=100.0, poll_cost=10.0)


@pytest.fixture
def model_1d(paper_mobility):
    return OneDimensionalModel(paper_mobility)


@pytest.fixture
def model_2d(paper_mobility):
    return TwoDimensionalModel(paper_mobility)


@pytest.fixture
def model_2d_approx(paper_mobility):
    return TwoDimensionalApproximateModel(paper_mobility)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
