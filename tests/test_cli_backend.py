"""CLI ``--backend`` plumbing and ``speed --compare-backends``."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.backend import numba_available, reset_backend_state


class TestBackendFlag:
    def test_default_is_numpy(self):
        for argv in (
            ["simulate", "--q", "0.1", "--c", "0.01", "--threshold", "2"],
            ["speed"],
            ["fleet"],
            ["sweep", "--vary", "U=20,50"],
        ):
            assert build_parser().parse_args(argv).backend == "numpy"

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["speed", "--backend", "cuda"])


class TestSimulateBackend:
    def test_counter_backend_runs_vectorized(self, capsys):
        code = main(
            ["simulate", "--q", "0.1", "--c", "0.02", "--threshold", "3",
             "--slots", "1500", "--replications", "4", "--backend", "auto",
             "--warmup", "100"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend:" in out
        assert "4 x 1500 slots" in out
        assert "mean C_T:" in out

    def test_numpy_backend_output_is_unchanged(self, capsys):
        code = main(
            ["simulate", "--q", "0.1", "--c", "0.02", "--threshold", "3",
             "--slots", "500", "--replications", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend:" not in out


class TestSpeedBackend:
    def test_backend_flag_reaches_report(self, capsys, tmp_path):
        path = tmp_path / "speed.json"
        code = main(
            ["speed", "--engine-slots", "300", "--vector-slots", "200",
             "--terminals", "64", "--backend", "auto", "--json", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend:" in out
        report = json.loads(path.read_text())
        assert report["config"]["backend"] == "auto"
        expected = "numba" if numba_available() else "numpy"
        assert report["vectorized"]["backend"] == expected

    def test_compare_backends_table(self, capsys, tmp_path):
        path = tmp_path / "compare.json"
        code = main(
            ["speed", "--compare-backends", "--vector-slots", "200",
             "--terminals", "64", "--json", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Backend comparison" in out
        assert "numpy-counter" in out
        report = json.loads(path.read_text())
        names = [row["name"] for row in report["backends"]]
        assert names[:2] == ["numpy", "numpy-counter"]


class TestFleetBackend:
    def test_fleet_backend_matches_numpy_totals(self, capsys, tmp_path):
        reset_backend_state()
        paths = {}
        for backend in ("numpy", "auto"):
            paths[backend] = tmp_path / f"fleet-{backend}.json"
            code = main(
                ["fleet", "--terminals", "500", "--shards", "2",
                 "--slots", "30", "--backend", backend,
                 "--json", str(paths[backend])]
            )
            assert code == 0
        base = json.loads(paths["numpy"].read_text())
        auto = json.loads(paths["auto"].read_text())
        for key in ("moves", "updates", "calls", "polled_cells",
                    "mean_total_cost"):
            assert auto[key] == base[key], key
        assert auto["config"]["backend"] == "auto"
        out = capsys.readouterr().out
        assert "requested auto" in out


class TestSweepBackend:
    def test_sweep_backend_selects_solver(self, capsys):
        for backend in ("numpy", "auto"):
            code = main(
                ["sweep", "--model", "2d-exact", "--vary", "U=20,50",
                 "--d-max", "20", "--no-cache", "--backend", backend]
            )
            assert code == 0
        # Same grid either way: the solver choice is numerically inert.
        out = capsys.readouterr().out
        assert out.count("Grid sweep") == 2
