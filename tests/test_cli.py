"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_delay_accepts_inf(self):
        args = build_parser().parse_args(
            ["optimize", "--q", "0.05", "--c", "0.01",
             "--update-cost", "10", "--poll-cost", "1", "--max-delay", "inf"]
        )
        assert args.max_delay == float("inf")

    def test_delay_accepts_int(self):
        args = build_parser().parse_args(
            ["optimize", "--q", "0.05", "--c", "0.01",
             "--update-cost", "10", "--poll-cost", "1", "--max-delay", "3"]
        )
        assert args.max_delay == 3


class TestOptimizeCommand:
    def test_reproduces_table2_row(self, capsys):
        code = main(
            ["optimize", "--model", "2d-exact", "--q", "0.05", "--c", "0.01",
             "--update-cost", "100", "--poll-cost", "10", "--max-delay", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal d*:       2" in out
        assert "1.335" in out

    def test_annealing_method(self, capsys):
        code = main(
            ["optimize", "--model", "1d", "--q", "0.05", "--c", "0.01",
             "--update-cost", "20", "--poll-cost", "10", "--max-delay", "1",
             "--method", "annealing", "--d-max", "30"]
        )
        assert code == 0
        assert "optimal d*" in capsys.readouterr().out

    def test_parameter_error_exit_code(self, capsys):
        code = main(
            ["optimize", "--q", "2.0", "--c", "0.01",
             "--update-cost", "10", "--poll-cost", "1"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSweepCommand:
    def test_comma_list_axes(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        code = main(
            ["sweep", "--model", "2d-approx", "--vary", "U=20,50",
             "--vary", "m=1,inf", "--d-max", "15", "--no-cache",
             "--csv", str(csv_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 x 2 = 4 points" in out
        assert "serial solve" in out
        assert csv_path.exists()
        assert len(csv_path.read_text().strip().splitlines()) == 5

    def test_range_spec_and_cache(self, capsys, tmp_path):
        argv = ["sweep", "--model", "1d", "--vary", "q=0.05:0.2:4",
                "--d-max", "12", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "serial solve" in capsys.readouterr().out
        assert main(argv) == 0
        assert "source: cache" in capsys.readouterr().out

    def test_log_range_spec(self, capsys):
        code = main(
            ["sweep", "--model", "1d", "--vary", "U=10:1000:3:log",
             "--d-max", "12", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "100.000" in out

    def test_bad_vary_spec_exit_code(self, capsys):
        code = main(["sweep", "--vary", "U", "--no-cache"])
        assert code == 2
        assert "PARAM=SPEC" in capsys.readouterr().err

    def test_duplicate_axis_exit_code(self, capsys):
        code = main(
            ["sweep", "--vary", "q=0.1", "--vary", "q=0.2", "--no-cache"]
        )
        assert code == 2
        assert "more than once" in capsys.readouterr().err

    def test_exhaustive_scalar_optimize_method(self, capsys):
        code = main(
            ["optimize", "--model", "2d-exact", "--q", "0.05", "--c", "0.01",
             "--update-cost", "100", "--poll-cost", "10", "--max-delay", "3",
             "--method", "exhaustive-scalar", "--d-max", "30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal d*:       2" in out
        assert "1.335" in out


class TestTableCommands:
    def test_table1_output_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "t1.csv"
        code = main(["table1", "--csv", str(csv_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out
        assert "0.527" in out  # U=20, delay 1
        assert csv_path.exists()
        assert len(csv_path.read_text().splitlines()) == 29  # header + 28 rows


class TestFigureCommands:
    def test_fig4_small(self, capsys):
        code = main(["fig4", "--dimensions", "1", "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure4a" in out
        assert "max delay = 1" in out

    def test_fig5_no_plot(self, capsys, tmp_path):
        csv_path = tmp_path / "f5.csv"
        code = main(
            ["fig5", "--dimensions", "2", "--points", "4",
             "--no-plot", "--csv", str(csv_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "figure5b" in out
        assert "(log x)" not in out
        assert csv_path.exists()


class TestSimulateCommand:
    def test_simulate_runs(self, capsys):
        code = main(
            ["simulate", "--dimensions", "1", "--q", "0.1", "--c", "0.02",
             "--threshold", "2", "--slots", "5000", "--replications", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mean C_T" in out

    def test_workers_do_not_change_output(self, capsys):
        base_args = [
            "simulate", "--dimensions", "1", "--q", "0.1", "--c", "0.02",
            "--threshold", "2", "--slots", "3000", "--replications", "3",
            "--seed", "5",
        ]
        assert main(base_args + ["--workers", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(base_args + ["--workers", "2"]) == 0
        pooled_out = capsys.readouterr().out
        assert pooled_out == serial_out

    def test_bad_worker_count_is_parameter_error(self, capsys):
        code = main(
            ["simulate", "--dimensions", "1", "--q", "0.1", "--c", "0.02",
             "--threshold", "2", "--slots", "100", "--replications", "2",
             "--workers", "0"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestFleetCommand:
    BASE = [
        "fleet", "--terminals", "250", "--shards", "4", "--slots", "40",
        "--workers", "1", "--seed", "9", "--population-seed", "3",
    ]

    def test_runs_and_reports(self, capsys):
        code = main(self.BASE)
        out = capsys.readouterr().out
        assert code == 0
        assert "250 terminals, 4 shards" in out
        assert "mean C_T / slot:" in out
        assert "Per-profile breakdown" in out
        assert "within budget" in out

    def test_shard_count_does_not_change_output(self, capsys):
        assert main(self.BASE) == 0
        sharded = capsys.readouterr().out
        assert main(
            [arg if arg != "4" else "1" for arg in self.BASE]
        ) == 0
        single = capsys.readouterr().out
        # Timing and shard-count lines differ; the physics must not.
        pick = [
            line for line in sharded.splitlines()
            if line.startswith(("mean C_", "  mean C_", "mean page"))
        ]
        assert pick == [
            line for line in single.splitlines()
            if line.startswith(("mean C_", "  mean C_", "mean page"))
        ]

    def test_json_report(self, capsys, tmp_path):
        import json

        path = tmp_path / "fleet.json"
        code = main(self.BASE + ["--json", str(path)])
        assert code == 0
        report = json.loads(path.read_text())
        assert report["config"]["terminals"] == 250
        assert report["rss_within_budget"] is True
        assert "wrote JSON report" in capsys.readouterr().out

    def test_bad_shard_count_is_parameter_error(self, capsys):
        code = main(self.BASE + ["--shards", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSpeedCommand:
    def test_reports_throughput_and_json(self, capsys, tmp_path):
        path = tmp_path / "speed.json"
        code = main(
            ["speed", "--dimensions", "2", "--engine-slots", "500",
             "--vector-slots", "100", "--terminals", "32",
             "--json", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "per-cell engine:" in out
        assert "speedup:" in out
        import json

        payload = json.loads(path.read_text())
        assert payload["speedup"] > 0
        assert payload["vectorized"]["terminals"] == 32


class TestSoftDelayCommand:
    def test_runs_and_reports(self, capsys):
        code = main(
            ["soft-delay", "--model", "2d-exact", "--q", "0.1", "--c", "0.02",
             "--update-cost", "50", "--poll-cost", "5", "--penalty", "10",
             "--d-max", "20"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "partition:" in out
        assert "delay cost:" in out

    def test_square_model_available(self, capsys):
        code = main(
            ["soft-delay", "--model", "square-exact", "--q", "0.1", "--c", "0.02",
             "--update-cost", "20", "--poll-cost", "2", "--penalty", "1",
             "--d-max", "15"]
        )
        assert code == 0


class TestCompareCommand:
    def test_single_point_tournament(self, capsys):
        code = main(
            ["compare", "--model", "2d-exact", "--q", "0.05", "--c", "0.01",
             "--update-cost", "50", "--poll-cost", "2", "--d-max", "25",
             "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Scheme tournament" in out
        for scheme in ("distance", "movement", "timer", "location-area",
                       "jointly-optimal"):
            assert scheme in out
        assert "wins:" in out

    def test_grid_with_json_and_csv(self, capsys, tmp_path):
        json_path = tmp_path / "tournament.json"
        csv_path = tmp_path / "tournament.csv"
        code = main(
            ["compare", "--model", "1d", "--vary", "U=20,100",
             "--vary", "m=1,2", "--q", "0.2", "--c", "0.02", "--d-max", "25",
             "--no-cache", "--json", str(json_path), "--csv", str(csv_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 x 2 = 4 points" in out
        import json as json_module

        payload = json_module.loads(json_path.read_text())
        assert len(payload["points"]) == 4
        assert sum(payload["winner_counts"].values()) == 4
        header = csv_path.read_text().splitlines()[0]
        assert "winner" in header

    def test_scheme_subset(self, capsys):
        code = main(
            ["compare", "--model", "1d", "--q", "0.2", "--c", "0.02",
             "--d-max", "20", "--no-cache", "--schemes", "timer,movement"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "location-area" not in out
        assert "timer" in out

    def test_bad_vary_spec_is_an_error(self, capsys):
        code = main(
            ["compare", "--model", "1d", "--vary", "bogus",
             "--q", "0.2", "--c", "0.02", "--no-cache"]
        )
        assert code == 2

    def test_non_numeric_axis_value_is_an_error(self, capsys):
        code = main(
            ["compare", "--model", "1d", "--vary", "U=20,nope",
             "--q", "0.2", "--c", "0.02", "--no-cache"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestShowCommand:
    def test_rings(self, capsys):
        code = main(["show", "rings", "--threshold", "2"])
        out = capsys.readouterr().out
        assert code == 0
        body = "\n".join(out.splitlines()[1:])  # drop the header line
        assert body.count("0") == 1
        assert body.count("2") == 12

    def test_paging(self, capsys):
        code = main(["show", "paging", "--threshold", "3", "--max-delay", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Polling cycle" in out
        assert "1" in out and "2" in out

    def test_occupancy(self, capsys):
        code = main(["show", "occupancy", "--threshold", "3", "--q", "0.2", "--c", "0.02"])
        out = capsys.readouterr().out
        assert code == 0
        assert "@" in out


class TestMetricsCommand:
    def test_reports_all_quantities(self, capsys):
        code = main(
            ["metrics", "--model", "2d-exact", "--q", "0.05", "--c", "0.01",
             "--threshold", "2", "--max-delay", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for field in (
            "update rate", "mean fix gap", "register staleness",
            "cells polled per call", "polling cycles per call",
        ):
            assert field in out

    def test_unbounded_delay(self, capsys):
        code = main(
            ["metrics", "--model", "1d", "--q", "0.1", "--c", "0.02",
             "--threshold", "4", "--max-delay", "inf"]
        )
        assert code == 0


class TestPolicyCommand:
    def test_stdout_json(self, capsys):
        code = main(
            ["policy", "--model", "2d-exact", "--q", "0.05", "--c", "0.01",
             "--update-cost", "100", "--poll-cost", "10", "--max-delay", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        import json

        payload = json.loads(out)
        assert payload["threshold"] == 2  # Table 2, U=100, delay 3
        assert payload["topology"] == "hex"

    def test_file_output_roundtrips(self, capsys, tmp_path):
        from repro import Policy

        path = tmp_path / "p.json"
        code = main(
            ["policy", "--model", "1d", "--q", "0.05", "--c", "0.01",
             "--update-cost", "20", "--poll-cost", "10", "--max-delay", "2",
             "--output", str(path)]
        )
        assert code == 0
        policy = Policy.load(path)
        assert policy.threshold == 1  # Table 1, U=20, delay 2


class TestFaultsCommand:
    def test_reports_degradation_vs_baseline(self, capsys):
        code = main(
            ["faults", "--loss", "0.2", "--outage-rate", "0.01",
             "--slots", "4000", "--replications", "2", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault-free" in out and "faulted" in out
        assert "UpdateLoss(probability=0.2)" in out
        assert "recovery_pagings" in out

    def test_json_report(self, capsys, tmp_path):
        import json

        path = tmp_path / "faults.json"
        code = main(
            ["faults", "--loss", "0.3", "--slots", "3000",
             "--replications", "2", "--json", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["config"]["faults"]
        assert payload["faulted"]["mean_total_cost"] > 0
        assert payload["degradation"]["cost"] is not None

    def test_fault_free_run_is_flat(self, capsys):
        # No fault flags: the faulted campaign IS the baseline.
        code = main(
            ["faults", "--slots", "3000", "--replications", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "faults:            none" in out


class TestSweepErrorPaths:
    def test_range_count_below_two(self, capsys):
        code = main(
            ["sweep", "--model", "1d", "--vary", "q=0.1:0.2:1", "--no-cache"]
        )
        assert code == 2
        assert "count >= 2" in capsys.readouterr().err

    def test_malformed_range_spec(self, capsys):
        code = main(
            ["sweep", "--model", "1d", "--vary", "q=0.1:0.2:3:cubic",
             "--no-cache"]
        )
        assert code == 2
        assert "bad range spec" in capsys.readouterr().err

    def test_log_range_rejects_nonpositive_endpoints(self, capsys):
        code = main(
            ["sweep", "--model", "1d", "--vary", "U=0:100:3:log",
             "--no-cache"]
        )
        assert code == 2
        assert "positive endpoints" in capsys.readouterr().err

    def test_empty_value_list(self, capsys):
        code = main(
            ["sweep", "--model", "1d", "--vary", "q=, ,", "--no-cache"]
        )
        assert code == 2
        assert "empty value list" in capsys.readouterr().err

    def test_cache_schema_version_mismatch_is_refused(self, capsys, tmp_path):
        import json as json_module

        argv = ["sweep", "--model", "1d", "--vary", "q=0.05,0.1",
                "--d-max", "12", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        (cache_file,) = tmp_path.glob("grid-*.json")
        payload = json_module.loads(cache_file.read_text())
        payload["fingerprint"]["version"] = -1
        cache_file.write_text(json_module.dumps(payload))
        code = main(argv)
        assert code == 2
        err = capsys.readouterr().err
        assert "schema version" in err
        assert "--no-cache" in err

    def test_unpicklable_plan_factory_with_workers(self):
        from repro.analysis.sweep import grid_sweep
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError, match="picklable plan_factory"):
            grid_sweep(
                "1d",
                {"q": [0.05, 0.1]},
                d_max=10,
                workers=2,
                plan_factory=lambda d, m: None,
            )


class TestObservabilityFlags:
    SIMULATE = [
        "simulate", "--dimensions", "1", "--q", "0.1", "--c", "0.02",
        "--threshold", "2", "--slots", "1000", "--replications", "2",
        "--seed", "3",
    ]

    def test_metrics_out_writes_provenance_stamped_artifact(
        self, capsys, tmp_path
    ):
        from repro.observability import read_artifact

        path = tmp_path / "m.json"
        code = main(self.SIMULATE + ["--metrics-out", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean C_T" in out
        assert f"wrote metrics artifact to {path}" in out
        artifact = read_artifact(path)
        assert artifact["provenance"]["command"] == "simulate"
        assert artifact["provenance"]["seed"] == 3
        assert artifact["provenance"]["params_fingerprint"]
        names = {record["name"] for record in artifact["metrics"]}
        assert "updates_total" in names
        assert "update_cost_total" in names
        assert any(span.name == "simulate.replication"
                   for span in artifact["spans"])

    def test_metrics_out_does_not_change_simulate_output(self, capsys,
                                                         tmp_path):
        assert main(self.SIMULATE) == 0
        plain = capsys.readouterr().out
        assert main(
            self.SIMULATE + ["--metrics-out", str(tmp_path / "m.json")]
        ) == 0
        observed = capsys.readouterr().out
        assert plain in observed

    def test_trace_prints_span_table(self, capsys):
        code = main(self.SIMULATE + ["--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Trace spans" in out
        assert "simulate.run_replicated" in out

    def test_sweep_metrics_out(self, capsys, tmp_path):
        from repro.observability import read_artifact

        path = tmp_path / "sweep-metrics.json"
        code = main(
            ["sweep", "--model", "1d", "--vary", "q=0.05,0.1",
             "--d-max", "12", "--no-cache", "--metrics-out", str(path)]
        )
        assert code == 0
        capsys.readouterr()
        artifact = read_artifact(path)
        assert artifact["provenance"]["command"] == "sweep"
        names = {record["name"] for record in artifact["metrics"]}
        assert "sweep_cache_misses_total" not in names  # --no-cache skips it
        assert "analytic_solves_total" in names

    def test_metrics_summarize_renders_artifact(self, capsys, tmp_path):
        path = tmp_path / "m.json"
        assert main(self.SIMULATE + ["--metrics-out", str(path)]) == 0
        capsys.readouterr()
        code = main(["metrics", "summarize", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Provenance" in out
        assert "Metrics" in out
        assert "updates_total" in out

    def test_metrics_summarize_missing_file(self, capsys, tmp_path):
        code = main(["metrics", "summarize", str(tmp_path / "missing.json")])
        assert code == 2
        assert "unreadable" in capsys.readouterr().err

    def test_metrics_without_flags_or_subcommand_errors(self, capsys):
        code = main(["metrics"])
        assert code == 2
        assert "metrics summarize" in capsys.readouterr().err


class TestConformanceCommand:
    # Approximate chains draw no simulation configs, so this scope
    # keeps the command purely analytic (fast).
    FAST = ["conformance", "--suite", "quick", "--models", "2d-approx", "--seed", "3"]

    def test_quick_suite_passes(self, capsys):
        code = main(self.FAST)
        out = capsys.readouterr().out
        assert code == 0
        assert "Conformance suite 'quick'" in out
        assert "0 failed" in out
        assert "approx-tracks-exact" in out

    def test_report_artifact_written(self, capsys, tmp_path):
        from repro.conformance import read_report

        path = tmp_path / "conformance.jsonl"
        code = main(self.FAST + ["--report", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote conformance report" in out
        artifact = read_report(path)
        assert artifact["provenance"]["command"] == "conformance"
        assert artifact["provenance"]["seed"] == 3
        assert {c["params"]["model"] for c in artifact["checks"]} == {"2d-approx"}

    def test_unknown_model_is_a_parameter_error(self, capsys):
        code = main(["conformance", "--models", "tesseract"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_suite_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["conformance", "--suite", "leisurely"])
