"""Unit tests for call-arrival processes."""

import numpy as np
import pytest

from repro import ParameterError
from repro.mobility import BatchedArrivals, BernoulliArrivals


class TestBernoulliArrivals:
    def test_zero_probability_never_fires(self):
        arrivals = BernoulliArrivals(0.0, rng=np.random.default_rng(1))
        assert not any(arrivals.step() for _ in range(1000))

    def test_empirical_rate(self):
        arrivals = BernoulliArrivals(0.05, rng=np.random.default_rng(2))
        hits = sum(arrivals.step() for _ in range(40_000))
        assert hits / 40_000 == pytest.approx(0.05, abs=0.005)
        assert arrivals.empirical_rate == pytest.approx(hits / 40_000)

    def test_empirical_rate_before_any_slot(self):
        assert BernoulliArrivals(0.1).empirical_rate == 0.0

    def test_interarrival_mean_is_geometric(self):
        arrivals = BernoulliArrivals(0.02, rng=np.random.default_rng(3))
        gaps = list(arrivals.interarrival_times(300))
        assert len(gaps) == 300
        assert np.mean(gaps) == pytest.approx(50.0, rel=0.2)

    def test_interarrival_undefined_for_zero_rate(self):
        with pytest.raises(ParameterError):
            list(BernoulliArrivals(0.0).interarrival_times(1))

    def test_interarrival_negative_count(self):
        with pytest.raises(ParameterError):
            list(BernoulliArrivals(0.1).interarrival_times(-1))

    @pytest.mark.parametrize("c", [-0.1, 1.0])
    def test_invalid_probability(self, c):
        with pytest.raises(ParameterError):
            BernoulliArrivals(c)


class TestBatchedArrivals:
    def test_long_run_rate_matches_target(self):
        arrivals = BatchedArrivals(
            0.02, burstiness=5.0, mean_busy_slots=50.0, rng=np.random.default_rng(4)
        )
        slots = 300_000
        hits = sum(arrivals.step() for _ in range(slots))
        assert hits / slots == pytest.approx(0.02, rel=0.15)

    def test_burstier_than_bernoulli(self):
        # Variance of per-window counts must exceed the Bernoulli
        # binomial variance at the same mean rate.
        rng = np.random.default_rng(5)
        arrivals = BatchedArrivals(0.02, burstiness=8.0, mean_busy_slots=100.0, rng=rng)
        window = 200
        counts = []
        for _ in range(500):
            counts.append(sum(arrivals.step() for _ in range(window)))
        mean = np.mean(counts)
        bernoulli_var = window * 0.02 * 0.98
        assert np.var(counts) > 1.5 * bernoulli_var or mean < 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"call_probability": 0.0},
            {"call_probability": 1.0},
            {"burstiness": 1.0},
            {"burstiness": 60.0},  # busy rate would exceed 1
            {"mean_busy_slots": 0.5},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        defaults = {"call_probability": 0.02, "burstiness": 5.0, "mean_busy_slots": 50.0}
        defaults.update(kwargs)
        with pytest.raises(ParameterError):
            BatchedArrivals(**defaults)

    def test_empirical_rate_accessor(self):
        arrivals = BatchedArrivals(0.05, rng=np.random.default_rng(6))
        assert arrivals.empirical_rate == 0.0
        for _ in range(100):
            arrivals.step()
        assert 0.0 <= arrivals.empirical_rate <= 1.0
