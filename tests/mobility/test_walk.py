"""Unit tests for the random-walk mobility process."""

import numpy as np
import pytest

from repro import MobilityParams, ParameterError
from repro.geometry import HexTopology, LineTopology
from repro.mobility import RandomWalk


class TestConstruction:
    def test_defaults_to_origin(self, line):
        walk = RandomWalk(line, 0.5)
        assert walk.position == 0

    def test_custom_start(self, hexgrid):
        walk = RandomWalk(hexgrid, 0.5, start=(2, -1))
        assert walk.position == (2, -1)

    def test_from_params(self, line, paper_mobility):
        walk = RandomWalk.from_params(line, paper_mobility)
        assert walk.move_probability == 0.05

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.1])
    def test_invalid_probability(self, line, q):
        with pytest.raises(ParameterError):
            RandomWalk(line, q)

    def test_invalid_start(self, line):
        with pytest.raises(ValueError):
            RandomWalk(line, 0.5, start=(0, 0))


class TestMovement:
    def test_move_goes_to_neighbor(self, hexgrid, rng):
        walk = RandomWalk(hexgrid, 0.5, rng=rng)
        before = walk.position
        after = walk.move()
        assert hexgrid.distance(before, after) == 1

    def test_move_counter(self, line, rng):
        walk = RandomWalk(line, 1.0, rng=rng)
        for _ in range(10):
            walk.move()
        assert walk.moves == 10

    def test_step_with_q_one_always_moves(self, line, rng):
        walk = RandomWalk(line, 1.0, rng=rng)
        positions = [walk.step() for _ in range(20)]
        # Every step changes the cell on the line with q = 1.
        previous = 0
        for pos in positions:
            assert abs(pos - previous) == 1
            previous = pos

    def test_step_counts_slots(self, line, rng):
        walk = RandomWalk(line, 0.3, rng=rng)
        for _ in range(50):
            walk.step()
        assert walk.slots == 50
        assert walk.moves <= 50

    def test_walk_iterator(self, line, rng):
        walk = RandomWalk(line, 0.5, rng=rng)
        assert len(list(walk.walk(25))) == 25
        assert walk.slots == 25

    def test_walk_negative_rejected(self, line, rng):
        walk = RandomWalk(line, 0.5, rng=rng)
        with pytest.raises(ParameterError):
            list(walk.walk(-1))

    def test_distance_from(self, line, rng):
        walk = RandomWalk(line, 1.0, rng=rng)
        walk.move()
        assert walk.distance_from(0) == 1


class TestStatistics:
    def test_empirical_move_rate(self, line):
        rng = np.random.default_rng(7)
        walk = RandomWalk(line, 0.2, rng=rng)
        slots = 20_000
        for _ in range(slots):
            walk.step()
        assert walk.moves / slots == pytest.approx(0.2, abs=0.01)

    def test_direction_symmetry_on_line(self, line):
        rng = np.random.default_rng(11)
        walk = RandomWalk(line, 1.0, rng=rng)
        for _ in range(20_000):
            walk.move()
        # Unbiased walk: endpoint scales like sqrt(n), far below n.
        assert abs(walk.position) < 600

    def test_hex_neighbor_uniformity(self, hexgrid):
        rng = np.random.default_rng(13)
        counts = {}
        for _ in range(12_000):
            walk = RandomWalk(hexgrid, 1.0, rng=rng)
            walk.move()
            counts[walk.position] = counts.get(walk.position, 0) + 1
        assert len(counts) == 6
        for count in counts.values():
            assert count == pytest.approx(2000, rel=0.15)

    def test_reproducible_with_seed(self, hexgrid):
        a = RandomWalk(hexgrid, 0.7, rng=np.random.default_rng(99))
        b = RandomWalk(hexgrid, 0.7, rng=np.random.default_rng(99))
        for _ in range(100):
            assert a.step() == b.step()
