"""Unit tests for the fluid-flow baseline model."""

import pytest

from repro import ParameterError
from repro.mobility import FluidFlowModel


class TestFluidFlow:
    def test_rate_positive(self):
        model = FluidFlowModel(mean_speed=0.1)
        assert model.crossing_rate(3) > 0

    def test_rate_decreases_with_area(self):
        # Larger residing areas have a smaller perimeter-to-area ratio,
        # so the per-terminal crossing rate falls.
        model = FluidFlowModel(mean_speed=0.1)
        rates = [model.crossing_rate(d) for d in range(8)]
        assert rates == sorted(rates, reverse=True)

    def test_rate_scales_with_speed(self):
        slow = FluidFlowModel(mean_speed=0.05).crossing_rate(2)
        fast = FluidFlowModel(mean_speed=0.25).crossing_rate(2)
        assert fast == pytest.approx(5 * slow)

    def test_update_rate_alias(self):
        model = FluidFlowModel(mean_speed=0.1)
        assert model.update_rate(4) == model.crossing_rate(4)

    def test_expected_updates(self):
        model = FluidFlowModel(mean_speed=0.1)
        assert model.expected_updates(2, 1000) == pytest.approx(
            model.crossing_rate(2) * 1000
        )

    def test_comparable_scale_to_random_walk(self):
        # Calibrated at mean_speed = q, the fluid crossing rate out of a
        # single cell should be the same order of magnitude as the
        # walk's physical boundary rate q.
        q = 0.1
        rate = FluidFlowModel(mean_speed=q).crossing_rate(0)
        assert 0.2 * q < rate < 5 * q

    @pytest.mark.parametrize("speed", [0.0, -0.1])
    def test_invalid_speed(self, speed):
        with pytest.raises(ParameterError):
            FluidFlowModel(mean_speed=speed)

    def test_negative_radius_rejected(self):
        with pytest.raises(ParameterError):
            FluidFlowModel(mean_speed=0.1).crossing_rate(-1)

    def test_negative_slots_rejected(self):
        with pytest.raises(ParameterError):
            FluidFlowModel(mean_speed=0.1).expected_updates(1, -5)
