"""Trace round-trips and cross-engine replay regressions.

The trace layer closes the loop: a trajectory recorded once (from the
uniform walk or any CTRW spec) must persist bit-identically, and
replaying it through the per-cell and the vectorized engine must
produce *identical* cost meters -- same updates, same polled cells,
same delay histogram.  Any divergence means one engine's within-slot
event order drifted.
"""

import pytest

from repro.core.parameters import CostParams
from repro.mobility import (
    CTRWSpec,
    GeometricResidence,
    HyperexponentialResidence,
    Trace,
    generate_trace,
    mobility_preset,
    replay_trace,
)

COSTS = CostParams(update_cost=50.0, poll_cost=10.0)


def specs():
    return {
        "uniform": None,
        "hyper": CTRWSpec(residence=HyperexponentialResidence.fit(4.0, 6.0)),
        "drift": CTRWSpec(residence=GeometricResidence(0.3), drift=0.7),
        "pareto": mobility_preset("ctrw-pareto", 0.2),
    }


class TestCTRWTraceGeneration:
    def test_ctrw_trace_deterministic(self, hexgrid):
        spec = specs()["hyper"]
        a = generate_trace(hexgrid, 0.3, 0.05, slots=300, seed=5, walk=spec)
        b = generate_trace(hexgrid, 0.3, 0.05, slots=300, seed=5, walk=spec)
        assert a.steps == b.steps

    def test_ctrw_moves_are_adjacent(self, hexgrid):
        spec = specs()["pareto"]
        trace = generate_trace(hexgrid, 0.3, 0.05, slots=300, seed=6, walk=spec)
        previous = trace.start
        for cell, _ in trace.steps:
            assert hexgrid.distance(previous, cell) <= 1
            previous = cell

    def test_walk_type_validated(self, hexgrid):
        with pytest.raises(Exception):
            generate_trace(hexgrid, 0.3, 0.05, slots=10, walk="ctrw-exp")


class TestPersistRoundTrip:
    @pytest.mark.parametrize("name", ["uniform", "hyper", "drift", "pareto"])
    def test_generate_persist_replay_bit_identical(self, hexgrid, tmp_path, name):
        spec = specs()[name]
        trace = generate_trace(
            hexgrid, 0.25, 0.08, slots=400, seed=11, walk=spec
        )
        path = tmp_path / f"{name}.json"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.steps == trace.steps
        assert loaded.start == trace.start
        # Replaying original and reloaded must meter identically.
        a = replay_trace(trace, 2, COSTS, max_delay=2)
        b = replay_trace(loaded, 2, COSTS, max_delay=2)
        assert a == b


class TestCrossEngineReplay:
    @pytest.mark.parametrize("name", ["uniform", "hyper", "drift", "pareto"])
    @pytest.mark.parametrize("threshold,max_delay", [(2, 2), (3, 1)])
    def test_meters_identical(self, hexgrid, name, threshold, max_delay):
        trace = generate_trace(
            hexgrid, 0.3, 0.06, slots=600, seed=23, walk=specs()[name]
        )
        per_cell = replay_trace(
            trace, threshold, COSTS, max_delay=max_delay, engine="per-cell"
        )
        vectorized = replay_trace(
            trace, threshold, COSTS, max_delay=max_delay, engine="vectorized"
        )
        assert per_cell.updates == vectorized.updates
        assert per_cell.moves == vectorized.moves
        assert per_cell.calls == vectorized.calls
        assert per_cell.polled_cells == vectorized.polled_cells
        assert per_cell.update_cost == vectorized.update_cost
        assert per_cell.paging_cost == vectorized.paging_cost
        assert per_cell.delay_histogram == vectorized.delay_histogram

    def test_replay_counts_trace_moves(self, hexgrid):
        trace = generate_trace(
            hexgrid, 0.4, 0.05, slots=500, seed=31, walk=specs()["hyper"]
        )
        snapshot = replay_trace(trace, 2, COSTS, max_delay=2)
        assert snapshot.moves == trace.move_count
        assert snapshot.calls == len(trace.call_slots)
        assert snapshot.slots == len(trace)

    def test_unknown_engine_rejected(self, hexgrid):
        from repro import ParameterError

        trace = generate_trace(hexgrid, 0.3, 0.05, slots=20, seed=1)
        with pytest.raises(ParameterError):
            replay_trace(trace, 2, COSTS, engine="gpu")
