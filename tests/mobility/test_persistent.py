"""Unit tests for the direction-persistent walk."""

import numpy as np
import pytest

from repro import ParameterError
from repro.geometry import HexTopology, LineTopology
from repro.mobility import PersistentWalk, RandomWalk


class TestConstruction:
    def test_is_a_random_walk(self, hexgrid, rng):
        walk = PersistentWalk(hexgrid, 0.5, persistence=0.5, rng=rng)
        assert isinstance(walk, RandomWalk)

    @pytest.mark.parametrize("eps", [-0.1, 1.0, 1.5])
    def test_invalid_persistence(self, hexgrid, eps):
        with pytest.raises(ParameterError):
            PersistentWalk(hexgrid, 0.5, persistence=eps)

    def test_repr(self, hexgrid, rng):
        walk = PersistentWalk(hexgrid, 0.5, persistence=0.3, rng=rng)
        assert "persistence=0.3" in repr(walk)


class TestBehavior:
    def test_zero_persistence_matches_plain_walk(self, hexgrid):
        # With persistence 0 every draw comes from the same uniform
        # branch, but the RNG consumption differs (the persistence coin
        # is flipped after the first move), so compare statistically.
        rng = np.random.default_rng(1)
        walk = PersistentWalk(hexgrid, 1.0, persistence=0.0, rng=rng)
        repeats = 0
        last = None
        for _ in range(6000):
            before = walk.position
            walk.move()
            direction = (walk.position[0] - before[0], walk.position[1] - before[1])
            if direction == last:
                repeats += 1
            last = direction
        assert repeats / 6000 == pytest.approx(1 / 6, abs=0.02)

    def test_high_persistence_repeats_direction(self, hexgrid):
        rng = np.random.default_rng(2)
        walk = PersistentWalk(hexgrid, 1.0, persistence=0.9, rng=rng)
        repeats = 0
        last = None
        for _ in range(6000):
            before = walk.position
            walk.move()
            direction = (walk.position[0] - before[0], walk.position[1] - before[1])
            if direction == last:
                repeats += 1
            last = direction
        # Repeat probability = eps + (1 - eps)/6.
        assert repeats / 6000 == pytest.approx(0.9 + 0.1 / 6, abs=0.02)

    def test_persistence_increases_displacement(self, line):
        def mean_displacement(eps, seed):
            rng = np.random.default_rng(seed)
            total = 0
            for _ in range(300):
                walk = PersistentWalk(line, 1.0, persistence=eps, rng=rng)
                for _ in range(100):
                    walk.move()
                total += abs(walk.position)
            return total / 300

        meandering = mean_displacement(0.0, 3)
        directed = mean_displacement(0.8, 3)
        assert directed > 1.5 * meandering

    def test_move_rate_unchanged(self, hexgrid):
        rng = np.random.default_rng(4)
        walk = PersistentWalk(hexgrid, 0.2, persistence=0.7, rng=rng)
        for _ in range(20_000):
            walk.step()
        assert walk.moves / walk.slots == pytest.approx(0.2, abs=0.01)


class TestEngineIntegration:
    def test_walker_factory_used(self, hexgrid):
        from repro import CostParams, MobilityParams
        from repro.simulation import SimulationEngine
        from repro.strategies import DistanceStrategy

        engine = SimulationEngine(
            hexgrid,
            DistanceStrategy(2, max_delay=1),
            MobilityParams(0.3, 0.02),
            CostParams(10, 1),
            seed=5,
            walker_factory=lambda topo, q, rng, start: PersistentWalk(
                topo, q, persistence=0.8, rng=rng, start=start
            ),
        )
        assert isinstance(engine.walk, PersistentWalk)
        engine.run(5000)  # paging invariant must survive persistence

    def test_bad_factory_rejected(self, hexgrid):
        from repro import CostParams, MobilityParams, ParameterError
        from repro.simulation import SimulationEngine
        from repro.strategies import DistanceStrategy

        with pytest.raises(ParameterError):
            SimulationEngine(
                hexgrid,
                DistanceStrategy(2),
                MobilityParams(0.3, 0.02),
                CostParams(10, 1),
                walker_factory=lambda topo, q, rng, start: "not a walk",
            )

    def test_persistence_raises_update_rate(self, hexgrid):
        # The core robustness fact: same q, more updates under
        # persistence, because net displacement grows faster.
        from repro import CostParams, MobilityParams
        from repro.simulation import SimulationEngine
        from repro.strategies import DistanceStrategy

        def updates(persistence, seed=6):
            engine = SimulationEngine(
                hexgrid,
                DistanceStrategy(3, max_delay=1),
                MobilityParams(0.4, 0.01),
                CostParams(10, 1),
                seed=seed,
                walker_factory=lambda topo, q, rng, start: PersistentWalk(
                    topo, q, persistence=persistence, rng=rng, start=start
                ),
            )
            return engine.run(60_000).updates

        assert updates(0.85) > 1.3 * updates(0.0)
