"""Unit tests for CTRW walkers, specs, and residence distributions."""

import math
import pickle

import numpy as np
import pytest

from repro import ParameterError
from repro.mobility import (
    CTRWSpec,
    CTRWWalk,
    DeterministicResidence,
    GeometricResidence,
    HyperexponentialResidence,
    TruncatedParetoResidence,
    mobility_preset,
    residence_from_spec,
)
from repro.mobility.ctrw import MOBILITY_PRESETS


class TestResidenceDistributions:
    def test_geometric_moments(self):
        r = GeometricResidence(0.25)
        assert r.mean() == pytest.approx(4.0)
        assert r.variance() == pytest.approx((1 - 0.25) / 0.25**2)

    def test_deterministic_moments(self):
        r = DeterministicResidence(7)
        assert r.mean() == 7.0
        assert r.variance() == 0.0
        assert r.cv2() == 0.0

    def test_hyper_fit_hits_target_mean(self):
        r = HyperexponentialResidence.fit(6.0, 5.0)
        assert r.mean() == pytest.approx(6.0, rel=0.05)
        assert r.cv2() > 1.0  # strictly over-dispersed vs exponential

    def test_pareto_draws_respect_truncation(self):
        r = TruncatedParetoResidence(alpha=1.5, minimum=1.0, maximum=50.0)
        rng = np.random.default_rng(0)
        draws = r.from_uniforms(rng.random(5000), rng.random(5000))
        assert draws.min() >= 1
        assert draws.max() <= 50

    def test_from_uniforms_minimum_one_slot(self):
        for r in (
            GeometricResidence(0.99),
            HyperexponentialResidence.fit(2.0, 4.0),
        ):
            u = np.full(100, 0.999)
            assert r.from_uniforms(u, u).min() >= 1

    def test_spec_roundtrip_all_kinds(self):
        for r in (
            GeometricResidence(0.3),
            DeterministicResidence(4),
            HyperexponentialResidence.fit(5.0, 6.0),
            TruncatedParetoResidence(1.4, 1.0, 100.0),
        ):
            assert residence_from_spec(r.spec()) == r

    def test_unknown_spec_kind_rejected(self):
        with pytest.raises(ParameterError):
            residence_from_spec({"kind": "levy"})


class TestCTRWSpec:
    def test_validates_residence_type(self):
        with pytest.raises(ParameterError):
            CTRWSpec(residence="geometric")

    def test_validates_drift_budget(self):
        with pytest.raises(ParameterError):
            CTRWSpec(residence=GeometricResidence(0.2), drift=0.7, persistence=0.5)

    def test_effective_move_probability(self):
        spec = CTRWSpec(residence=DeterministicResidence(5))
        assert spec.effective_move_probability() == pytest.approx(0.2)

    def test_effective_rate_capped_at_one(self):
        spec = CTRWSpec(residence=DeterministicResidence(1))
        assert spec.effective_move_probability() == 1.0

    def test_payload_roundtrip(self):
        spec = CTRWSpec(
            residence=HyperexponentialResidence.fit(4.0, 9.0),
            drift=0.3,
            persistence=0.1,
            drift_direction=2,
        )
        assert CTRWSpec.from_payload(spec.to_payload()) == spec

    def test_walker_factory_is_picklable(self):
        factory = CTRWSpec(residence=GeometricResidence(0.2)).walker_factory()
        assert pickle.loads(pickle.dumps(factory)).spec.residence == (
            GeometricResidence(0.2)
        )


class TestCTRWWalk:
    def test_timed_marker(self, hexgrid):
        walker = CTRWWalk(
            hexgrid, GeometricResidence(0.2), rng=np.random.default_rng(0)
        )
        assert walker.timed is True

    def test_deterministic_residence_moves_on_schedule(self, hexgrid):
        walker = CTRWWalk(
            hexgrid, DeterministicResidence(3), rng=np.random.default_rng(1)
        )
        due = []
        for _ in range(12):
            if walker.move_due():
                walker.move()
                due.append(True)
            else:
                due.append(False)
        # Expires every third slot, starting from the initial clock.
        assert due == [False, False, True] * 4

    def test_moves_are_single_ring_steps(self, hexgrid):
        walker = CTRWWalk(
            hexgrid, GeometricResidence(0.6), rng=np.random.default_rng(2)
        )
        previous = walker.position
        for _ in range(300):
            if walker.move_due():
                walker.move()
            assert hexgrid.distance(previous, walker.position) <= 1
            previous = walker.position

    def test_geometric_rate_matches_mean(self, hexgrid):
        walker = CTRWWalk(
            hexgrid, GeometricResidence(0.25), rng=np.random.default_rng(3)
        )
        moves = 0
        slots = 20_000
        for _ in range(slots):
            if walker.move_due():
                walker.move()
                moves += 1
        assert moves / slots == pytest.approx(0.25, abs=0.02)

    def test_full_drift_walks_outward(self, hexgrid):
        walker = CTRWWalk(
            hexgrid,
            DeterministicResidence(1),
            rng=np.random.default_rng(4),
            drift=0.95,
        )
        start = walker.position
        for _ in range(60):
            if walker.move_due():
                walker.move()
        # With near-certain drift every expiry steps the same way.
        assert hexgrid.distance(start, walker.position) >= 40


class TestPresets:
    def test_uniform_is_none(self):
        assert mobility_preset("uniform", 0.2) is None

    @pytest.mark.parametrize("name", [n for n in MOBILITY_PRESETS if n != "uniform"])
    def test_presets_build_specs(self, name):
        spec = mobility_preset(name, 0.2)
        assert isinstance(spec, CTRWSpec)
        assert math.isfinite(spec.residence.mean())

    def test_rate_matched_presets(self):
        for name in ("ctrw-exp", "ctrw-drift"):
            spec = mobility_preset(name, 0.2)
            assert spec.effective_move_probability() == pytest.approx(0.2)

    def test_drift_preset_has_drift(self):
        assert mobility_preset("ctrw-drift", 0.2, drift=0.6).drift == 0.6

    def test_unknown_preset_rejected(self):
        with pytest.raises(ParameterError):
            mobility_preset("brownian", 0.2)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ParameterError):
            mobility_preset("ctrw-exp", 0.0)
