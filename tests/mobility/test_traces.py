"""Unit tests for trace generation, statistics, and serialization."""

import pytest

from repro import ParameterError, SimulationError
from repro.geometry import HexTopology, LineTopology
from repro.mobility import Trace, generate_trace


class TestGeneration:
    def test_length(self, line):
        trace = generate_trace(line, 0.3, 0.02, slots=500, seed=1)
        assert len(trace) == 500

    def test_deterministic_per_seed(self, hexgrid):
        a = generate_trace(hexgrid, 0.3, 0.02, slots=200, seed=9)
        b = generate_trace(hexgrid, 0.3, 0.02, slots=200, seed=9)
        assert a.steps == b.steps

    def test_different_seeds_differ(self, hexgrid):
        a = generate_trace(hexgrid, 0.5, 0.02, slots=200, seed=1)
        b = generate_trace(hexgrid, 0.5, 0.02, slots=200, seed=2)
        assert a.steps != b.steps

    def test_positions_are_adjacent_or_equal(self, hexgrid):
        trace = generate_trace(hexgrid, 0.6, 0.05, slots=300, seed=3)
        previous = trace.start
        for cell, _ in trace.steps:
            assert hexgrid.distance(previous, cell) <= 1
            previous = cell

    def test_call_slots_have_no_movement(self, line):
        # Exclusive slot semantics: a call slot never moves the
        # terminal.
        trace = generate_trace(line, 0.9, 0.3, slots=400, seed=4)
        previous = trace.start
        for cell, call in trace.steps:
            if call:
                assert cell == previous
            previous = cell

    def test_empirical_rates(self, line):
        trace = generate_trace(line, 0.2, 0.05, slots=30_000, seed=5)
        calls = len(trace.call_slots)
        assert calls / len(trace) == pytest.approx(0.05, abs=0.01)
        # Moves happen in non-call slots with probability q.
        assert trace.move_count / len(trace) == pytest.approx(0.2 * 0.95, abs=0.02)

    def test_custom_start(self, line):
        trace = generate_trace(line, 0.5, 0.0, slots=10, seed=6, start=42)
        assert trace.start == 42

    def test_negative_slots_rejected(self, line):
        with pytest.raises(ParameterError):
            generate_trace(line, 0.5, 0.0, slots=-1)


class TestStatistics:
    def test_max_distance(self, line):
        trace = generate_trace(line, 1.0, 0.0, slots=100, seed=7)
        assert trace.max_distance_from_start() >= 1
        assert trace.max_distance_from_start() <= 100

    def test_positions_property(self, line):
        trace = generate_trace(line, 0.5, 0.0, slots=20, seed=8)
        assert trace.positions == [cell for cell, _ in trace.steps]


class TestSerialization:
    def test_line_roundtrip(self, line, tmp_path):
        trace = generate_trace(line, 0.4, 0.03, slots=150, seed=10)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.start == trace.start
        assert loaded.steps == trace.steps
        assert isinstance(loaded.topology, LineTopology)

    def test_hex_roundtrip(self, hexgrid, tmp_path):
        trace = generate_trace(hexgrid, 0.4, 0.03, slots=150, seed=11)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.steps == trace.steps
        assert isinstance(loaded.topology, HexTopology)

    def test_malformed_json_rejected(self):
        with pytest.raises(SimulationError):
            Trace.from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(SimulationError):
            Trace.from_json('{"topology": "hex"}')

    def test_unknown_topology_rejected(self):
        with pytest.raises(SimulationError):
            Trace.from_json('{"topology": "torus", "start": 0, "steps": []}')
