"""Computation of the golden-expectation payloads.

Shared between the regression test (``tests/golden/test_golden.py``)
and the regeneration script (``scripts/regen_golden.py``) so the two
can never drift: the test compares what this module computes today
against the committed JSON under ``tests/golden/expectations/``.

Every payload is plain JSON: ``inf`` delay keys become the string
``"inf"``, numbers stay numbers.  Curve samples use ``points=5`` --
enough to pin every delay curve's level and shape without making the
golden run expensive.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict

from repro.analysis.compare import run_tournament
from repro.analysis.figures import compute_figure4, compute_figure5
from repro.analysis.sweep import MODEL_CLASSES
from repro.analysis.tables import compute_table1, compute_table2
from repro.core.costs import CostEvaluator
from repro.core.parameters import CostParams, MobilityParams

EXPECTATIONS_DIR = Path(__file__).parent / "expectations"

#: Curve sample size for the figure goldens.
FIGURE_POINTS = 5

#: The operating points the per-model cost goldens pin down, spanning
#: tight and loose delay bounds at the benches' canonical parameters.
COST_POINTS = (
    {"q": 0.3, "c": 0.05, "U": 100.0, "V": 10.0, "d": 3, "m": 1},
    {"q": 0.3, "c": 0.05, "U": 100.0, "V": 10.0, "d": 3, "m": 2},
    {"q": 0.1, "c": 0.01, "U": 50.0, "V": 5.0, "d": 5, "m": math.inf},
)


def _delay_key(m: float) -> str:
    return "inf" if m == math.inf else str(int(m))


def golden_table1() -> dict:
    table = compute_table1()
    return {
        _delay_key(m): {
            str(int(U)): {"d": entry.optimal_d, "cost": entry.total_cost}
            for U, entry in sorted(by_u.items())
        }
        for m, by_u in table.items()
    }


def golden_table2() -> dict:
    table = compute_table2()
    return {
        _delay_key(m): {
            str(int(U)): {
                "d": entry.optimal_d,
                "cost": entry.total_cost,
                "near_d": entry.near_optimal_d,
                "near_cost": entry.near_optimal_cost,
            }
            for U, entry in sorted(by_u.items())
        }
        for m, by_u in table.items()
    }


def _golden_figure(figure) -> dict:
    return {
        "x_label": figure.x_label,
        "x_values": figure.x_values,
        "curves": {_delay_key(m): ys for m, ys in figure.curves.items()},
        "thresholds": {_delay_key(m): ds for m, ds in figure.thresholds.items()},
    }


def golden_cost_points() -> dict:
    """``C_u``/``C_v`` breakdowns for every model (exact *and*
    approximate) at the pinned operating points."""
    out: Dict[str, list] = {}
    for name in sorted(MODEL_CLASSES):
        rows = []
        for point in COST_POINTS:
            model = MODEL_CLASSES[name](
                MobilityParams(
                    move_probability=point["q"], call_probability=point["c"]
                )
            )
            evaluator = CostEvaluator(
                model,
                CostParams(update_cost=point["U"], poll_cost=point["V"]),
            )
            breakdown = evaluator.breakdown(point["d"], point["m"])
            rows.append(
                {
                    "point": {**point, "m": _delay_key(point["m"])},
                    "update_cost": breakdown.update_cost,
                    "paging_cost": breakdown.paging_cost,
                    "total_cost": breakdown.total_cost,
                    "expected_polled_cells": breakdown.expected_polled_cells,
                    "expected_delay": breakdown.expected_delay,
                }
            )
        out[name] = rows
    return out


def golden_tournament() -> dict:
    """Cross-scheme winner map over a small (q, U, m) grid.

    Pins the full tournament payload -- per-scheme optimized costs,
    tuned parameters, and the crowned winner at every grid point -- so
    scheme-comparison claims are regression-tested artifacts.  The hex
    grid at a fast-walker corner is where the schemes actually trade
    places, making the winner map informative rather than constant.
    """
    result = run_tournament(
        "2d-exact",
        {"q": [0.05, 0.3], "U": [20.0, 100.0], "m": [1, 3]},
        c=0.02,
        poll_cost=10.0,
        d_max=30,
    )
    return result.to_payload()


def golden_approximation() -> dict:
    """Approximation-error table: analytic chains vs simulated mobility.

    Pins the full :func:`repro.analysis.approximation.approximation_report`
    row set -- simulated cost, analytic exact/approximate predictions,
    relative errors, and the convergence verdict per mobility preset --
    at a small fixed simulation budget.  The simulation is seeded and
    bit-deterministic, so these are exact goldens like every other
    payload, and they freeze the *finding*: the memoryless presets
    converge, heavy tails and drift are where the paper's model drifts.
    """
    from dataclasses import asdict

    from repro.analysis.approximation import approximation_report

    report = approximation_report(
        q=0.2,
        c=0.02,
        d=2,
        m=2,
        slots=2000,
        terminals=128,
        warmup_slots=300,
        seed=7,
    )
    return {
        "params": {
            "q": report.q,
            "c": report.c,
            "d": report.d,
            "m": report.m,
            "slots": report.slots,
            "terminals": report.terminals,
            "seed": report.seed,
        },
        "rows": [asdict(row) for row in report.rows],
    }


#: filename stem -> zero-argument producer of the payload.
GOLDEN_PRODUCERS = {
    "table1": golden_table1,
    "table2": golden_table2,
    "figure4a": lambda: _golden_figure(compute_figure4(1, points=FIGURE_POINTS)),
    "figure4b": lambda: _golden_figure(compute_figure4(2, points=FIGURE_POINTS)),
    "figure5a": lambda: _golden_figure(compute_figure5(1, points=FIGURE_POINTS)),
    "figure5b": lambda: _golden_figure(compute_figure5(2, points=FIGURE_POINTS)),
    "cost_points": golden_cost_points,
    "tournament": golden_tournament,
    "approximation": golden_approximation,
}
