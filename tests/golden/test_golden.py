"""Golden-value regression tests.

The committed JSON under ``tests/golden/expectations/`` pins the
analytic pipeline's numbers: Table 1/2 operating points, Figure
4a/4b/5a/5b curve samples, and per-model cost breakdowns (exact and
approximate models).  Any change that moves a float by more than 1e-9
(relative or absolute) -- or an optimal threshold by 1 -- fails here.

Regenerate deliberately with ``scripts/regen_golden.py --force`` and
review the diff; the script refuses to overwrite without the flag.
"""

import json

import pytest

from .compute import EXPECTATIONS_DIR, GOLDEN_PRODUCERS

pytestmark = pytest.mark.slow

TOLERANCE = 1e-9


def assert_matches(actual, expected, path=""):
    """Recursive compare: exact for ints/str, 1e-9 rel+abs for floats."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping"
        assert sorted(actual) == sorted(expected), (
            f"{path}: keys differ: {sorted(actual)} vs {sorted(expected)}"
        )
        for key in expected:
            assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected list"
        assert len(actual) == len(expected), f"{path}: length differs"
        for i, (a, e) in enumerate(zip(actual, expected)):
            assert_matches(a, e, f"{path}[{i}]")
    elif isinstance(expected, bool) or expected is None:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"
    elif isinstance(expected, int):
        # optimal thresholds, counts: exact equality
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=TOLERANCE, abs=TOLERANCE), (
            f"{path}: {actual!r} drifted from golden {expected!r}"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


@pytest.mark.parametrize("name", sorted(GOLDEN_PRODUCERS))
def test_matches_committed_golden(name):
    path = EXPECTATIONS_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden file {path}; run scripts/regen_golden.py"
    )
    expected = json.loads(path.read_text())
    actual = json.loads(json.dumps(GOLDEN_PRODUCERS[name]()))  # JSON-normalize
    assert_matches(actual, expected, path=name)


def test_expectations_directory_has_no_strays():
    """Every committed expectation corresponds to a producer."""
    stems = {p.stem for p in EXPECTATIONS_DIR.glob("*.json")}
    assert stems == set(GOLDEN_PRODUCERS)
