"""Unit tests for the DP-optimal delay-constrained partition."""

import math

import numpy as np
import pytest

from repro import MobilityParams, PartitionError, TwoDimensionalModel
from repro.geometry import HexTopology, LineTopology
from repro.paging import (
    brute_force_partition,
    optimal_contiguous_partition,
    sdf_partition,
)


def hex_sizes(d):
    topo = HexTopology()
    return [topo.ring_size(i) for i in range(d + 1)]


def line_sizes(d):
    topo = LineTopology()
    return [topo.ring_size(i) for i in range(d + 1)]


def geometric_probs(d, ratio=0.6):
    raw = np.array([ratio**i for i in range(d + 1)])
    return raw / raw.sum()


class TestDPCorrectness:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 5, 8])
    @pytest.mark.parametrize("m", [1, 2, 3, math.inf])
    def test_matches_brute_force_hex(self, d, m):
        p = geometric_probs(d)
        n = hex_sizes(d)
        dp = optimal_contiguous_partition(d, m, p, n)
        bf = brute_force_partition(d, m, p, n)
        topo = HexTopology()
        assert dp.expected_polled_cells(topo, p) == pytest.approx(
            bf.expected_polled_cells(topo, p)
        )

    @pytest.mark.parametrize("d", [4, 7])
    @pytest.mark.parametrize("m", [2, 4])
    def test_matches_brute_force_line(self, d, m):
        p = geometric_probs(d, ratio=0.8)
        n = line_sizes(d)
        dp = optimal_contiguous_partition(d, m, p, n)
        bf = brute_force_partition(d, m, p, n)
        topo = LineTopology()
        assert dp.expected_polled_cells(topo, p) == pytest.approx(
            bf.expected_polled_cells(topo, p)
        )

    def test_respects_delay_bound(self):
        p = geometric_probs(9)
        plan = optimal_contiguous_partition(9, 3, p, hex_sizes(9))
        assert plan.delay_bound <= 3

    def test_m1_is_blanket(self):
        p = geometric_probs(4)
        plan = optimal_contiguous_partition(4, 1, p, hex_sizes(4))
        assert plan.subareas == ((0, 1, 2, 3, 4),)

    def test_unbounded_with_steep_distribution_is_per_ring(self):
        # With nearly all mass at ring 0, polling ring-by-ring is
        # optimal.
        d = 4
        p = geometric_probs(d, ratio=0.05)
        plan = optimal_contiguous_partition(d, math.inf, p, hex_sizes(d))
        assert plan.subareas[0] == (0,)

    def test_flat_distribution_merges_rings(self):
        # With uniform ring probability and rapidly growing ring sizes,
        # the optimum still respects the bound but never does worse
        # than SDF.
        d, m = 6, 3
        p = np.full(d + 1, 1.0 / (d + 1))
        topo = HexTopology()
        opt = optimal_contiguous_partition(d, m, p, hex_sizes(d))
        sdf = sdf_partition(d, m)
        assert opt.expected_polled_cells(topo, p) <= sdf.expected_polled_cells(
            topo, p
        ) + 1e-12


class TestDPOnModelDistributions:
    @pytest.mark.parametrize("d,m", [(4, 2), (6, 3), (8, 4)])
    def test_never_worse_than_sdf(self, d, m):
        model = TwoDimensionalModel(MobilityParams(0.1, 0.01))
        p = model.steady_state(d)
        sizes = hex_sizes(d)
        topo = HexTopology()
        opt = optimal_contiguous_partition(d, m, p, sizes)
        sdf = sdf_partition(d, m)
        assert opt.expected_polled_cells(topo, p) <= sdf.expected_polled_cells(
            topo, p
        ) + 1e-12

    def test_improvement_exists_somewhere(self):
        # The paper's equal-ring-count heuristic is not optimal in
        # general; find at least one operating point where DP strictly
        # wins.
        model = TwoDimensionalModel(MobilityParams(0.3, 0.002))
        improved = False
        topo = HexTopology()
        for d in range(4, 12):
            p = model.steady_state(d)
            sizes = hex_sizes(d)
            for m in (2, 3):
                opt = optimal_contiguous_partition(d, m, p, sizes)
                sdf = sdf_partition(d, m)
                if (
                    opt.expected_polled_cells(topo, p)
                    < sdf.expected_polled_cells(topo, p) - 1e-9
                ):
                    improved = True
        assert improved


class TestValidation:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(PartitionError):
            optimal_contiguous_partition(2, 2, [0.5, 0.2, 0.1], hex_sizes(2))

    def test_negative_probability_rejected(self):
        with pytest.raises(PartitionError):
            optimal_contiguous_partition(2, 2, [1.2, -0.1, -0.1], hex_sizes(2))

    def test_length_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            optimal_contiguous_partition(3, 2, [0.5, 0.5], hex_sizes(3))

    def test_brute_force_size_guard(self):
        p = geometric_probs(16)
        with pytest.raises(PartitionError):
            brute_force_partition(16, 2, p, hex_sizes(16))
