"""Unit tests for paging plans and the paper's SDF partition."""

import math

import numpy as np
import pytest

from repro import PartitionError
from repro.geometry import HexTopology, LineTopology
from repro.paging import (
    PagingPlan,
    blanket_partition,
    partition_from_sizes,
    per_ring_partition,
    sdf_partition,
    subarea_count,
)


class TestSubareaCount:
    def test_equation_2(self):
        # l = min(d + 1, m).
        assert subarea_count(4, 3) == 3
        assert subarea_count(2, 5) == 3
        assert subarea_count(0, 1) == 1

    def test_unbounded_delay(self):
        assert subarea_count(6, math.inf) == 7


class TestSDFPartition:
    def test_paper_steps_d2_m2(self):
        # gamma = floor(3/2) = 1: A1 = {r0}, A2 = {r1, r2}.
        plan = sdf_partition(2, 2)
        assert plan.subareas == ((0,), (1, 2))

    def test_paper_steps_d5_m3(self):
        # gamma = floor(6/3) = 2: equal groups of two rings.
        plan = sdf_partition(5, 3)
        assert plan.subareas == ((0, 1), (2, 3), (4, 5))

    def test_remainder_goes_to_last_subarea(self):
        # d=6, m=3: gamma = floor(7/3) = 2 -> (2, 2, 3).
        plan = sdf_partition(6, 3)
        assert [len(g) for g in plan.subareas] == [2, 2, 3]

    def test_m1_is_blanket(self):
        assert sdf_partition(4, 1).subareas == ((0, 1, 2, 3, 4),)

    def test_unbounded_is_per_ring(self):
        assert sdf_partition(3, math.inf).subareas == ((0,), (1,), (2,), (3,))

    def test_delay_bound_never_exceeds_m(self):
        for d in range(8):
            for m in (1, 2, 3, 5):
                assert sdf_partition(d, m).delay_bound <= m

    def test_d_zero(self):
        assert sdf_partition(0, 3).subareas == ((0,),)


class TestConstructors:
    def test_blanket(self):
        assert blanket_partition(2).delay_bound == 1

    def test_per_ring(self):
        plan = per_ring_partition(4)
        assert plan.delay_bound == 5
        assert all(len(g) == 1 for g in plan.subareas)

    def test_from_sizes(self):
        plan = partition_from_sizes(5, [2, 1, 3])
        assert plan.subareas == ((0, 1), (2,), (3, 4, 5))

    def test_from_sizes_must_sum(self):
        with pytest.raises(PartitionError):
            partition_from_sizes(5, [2, 2])

    def test_from_sizes_rejects_zero_group(self):
        with pytest.raises(PartitionError):
            partition_from_sizes(2, [0, 3])


class TestValidation:
    def test_missing_ring_rejected(self):
        with pytest.raises(PartitionError):
            PagingPlan(threshold=2, subareas=((0,), (2,)))

    def test_duplicate_ring_rejected(self):
        with pytest.raises(PartitionError):
            PagingPlan(threshold=2, subareas=((0, 1), (1, 2)))

    def test_empty_subarea_rejected(self):
        with pytest.raises(PartitionError):
            PagingPlan(threshold=1, subareas=((), (0, 1)))

    def test_extra_ring_rejected(self):
        with pytest.raises(PartitionError):
            PagingPlan(threshold=1, subareas=((0, 1, 2),))

    def test_non_contiguous_grouping_allowed(self):
        # The paper only requires a partition; order within groups and
        # contiguity are scheme choices.
        plan = PagingPlan(threshold=2, subareas=((0, 2), (1,)))
        assert plan.delay_bound == 2


class TestCosts:
    def test_cumulative_polled_1d(self):
        plan = sdf_partition(2, 2)
        w = plan.cumulative_polled(LineTopology())
        # N(A1)=1, N(A2)=2+2=4 -> w = (1, 5); paper eqn (64).
        assert w.tolist() == [1, 5]

    def test_cumulative_polled_hex(self):
        plan = sdf_partition(2, 3)
        w = plan.cumulative_polled(HexTopology())
        assert w.tolist() == [1, 7, 19]

    def test_subarea_probabilities(self):
        plan = sdf_partition(2, 2)
        alpha = plan.subarea_probabilities([0.5, 0.3, 0.2])
        assert alpha.tolist() == pytest.approx([0.5, 0.5])

    def test_probability_length_checked(self):
        plan = sdf_partition(2, 2)
        with pytest.raises(PartitionError):
            plan.subarea_probabilities([0.5, 0.5])

    def test_expected_polled_cells_blanket_is_coverage(self):
        plan = blanket_partition(3)
        p = np.array([0.4, 0.3, 0.2, 0.1])
        assert plan.expected_polled_cells(HexTopology(), p) == pytest.approx(37)

    def test_expected_polled_cells_hand_value(self):
        # d=1, m=2, p=(6/11, 5/11): E = 6/11*1 + 5/11*3 (1-D).
        plan = sdf_partition(1, 2)
        expected = 6 / 11 * 1 + 5 / 11 * 3
        assert plan.expected_polled_cells(
            LineTopology(), [6 / 11, 5 / 11]
        ) == pytest.approx(expected)

    def test_expected_delay(self):
        plan = per_ring_partition(2)
        assert plan.expected_delay([0.5, 0.3, 0.2]) == pytest.approx(
            0.5 * 1 + 0.3 * 2 + 0.2 * 3
        )

    def test_subarea_of_ring(self):
        plan = sdf_partition(5, 3)
        assert plan.subarea_of_ring(0) == 0
        assert plan.subarea_of_ring(3) == 1
        assert plan.subarea_of_ring(5) == 2

    def test_subarea_of_unknown_ring(self):
        with pytest.raises(PartitionError):
            sdf_partition(2, 2).subarea_of_ring(9)


class TestDescribe:
    def test_contiguous_description(self):
        assert sdf_partition(5, 3).describe() == "r0-r1 | r2-r3 | r4-r5"

    def test_single_rings(self):
        assert per_ring_partition(2).describe() == "r0 | r1 | r2"

    def test_non_contiguous_description(self):
        plan = PagingPlan(threshold=2, subareas=((0, 2), (1,)))
        assert plan.describe() == "{r0,r2} | r1"
