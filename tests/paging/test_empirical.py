"""Empirical paging-order optimization fed by simulated distributions."""

import pytest

from repro import ParameterError
from repro.core.parameters import MobilityParams
from repro.geometry import HexTopology
from repro.mobility import CTRWSpec, GeometricResidence
from repro.paging import (
    empirical_paging_report,
    empirical_ring_distribution,
    sdf_partition,
)


class TestEmpiricalRingDistribution:
    def test_normalized_over_rings(self, hexgrid):
        dist = empirical_ring_distribution(
            hexgrid,
            threshold=2,
            mobility=MobilityParams(move_probability=0.2, call_probability=0.05),
            slots=1500,
            terminals=64,
            warmup_slots=200,
            seed=1,
        )
        assert len(dist) == 3
        assert sum(dist) == pytest.approx(1.0)

    def test_deterministic_per_seed(self, hexgrid):
        kwargs = dict(
            threshold=2,
            mobility=MobilityParams(move_probability=0.3, call_probability=0.05),
            walk=CTRWSpec(residence=GeometricResidence(0.3), drift=0.6),
            slots=1000,
            terminals=48,
            warmup_slots=100,
            seed=9,
        )
        a = empirical_ring_distribution(hexgrid, **kwargs)
        b = empirical_ring_distribution(hexgrid, **kwargs)
        assert tuple(a) == tuple(b)


class TestEmpiricalPagingReport:
    def test_pinned_drift_point_beats_sdf(self, hexgrid):
        # The conformance tier's pinned operating point: strong drift
        # re-centers the at-call mass, SDF's size-first grouping stops
        # being optimal, and the DP must find a strictly cheaper plan.
        dist = empirical_ring_distribution(
            hexgrid,
            threshold=2,
            mobility=MobilityParams(move_probability=0.3, call_probability=0.1),
            walk=CTRWSpec(residence=GeometricResidence(0.3), drift=0.8),
            slots=4000,
            terminals=256,
            warmup_slots=500,
            seed=0,
        )
        report = empirical_paging_report(hexgrid, 2, 2, dist)
        assert not report.plans_equal
        assert report.improvement > 0.03
        assert report.optimal_cells < report.sdf_cells

    def test_no_drift_recovers_sdf(self, hexgrid):
        dist = empirical_ring_distribution(
            hexgrid,
            threshold=2,
            mobility=MobilityParams(move_probability=0.05, call_probability=0.1),
            walk=CTRWSpec(residence=GeometricResidence(0.05)),
            slots=4000,
            terminals=256,
            warmup_slots=500,
            seed=0,
        )
        report = empirical_paging_report(hexgrid, 2, 2, dist)
        assert report.plans_equal
        assert report.improvement == pytest.approx(0.0)

    def test_sdf_plan_is_the_papers(self, hexgrid):
        report = empirical_paging_report(hexgrid, 2, 2, (0.5, 0.3, 0.2))
        assert report.sdf_plan.subareas == sdf_partition(2, 2).subareas

    def test_distribution_shape_validated(self, hexgrid):
        with pytest.raises(ParameterError):
            empirical_paging_report(hexgrid, 2, 2, (0.5, 0.5))

    def test_single_cycle_plans_always_equal(self, hexgrid):
        # m = 1 forces the blanket plan on both sides.
        report = empirical_paging_report(hexgrid, 2, 1, (0.2, 0.3, 0.5))
        assert report.plans_equal
