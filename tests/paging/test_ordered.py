"""Unit tests for probability-ordered (density-first) paging."""

import math

import numpy as np
import pytest

from repro import MobilityParams, PartitionError, TwoDimensionalModel
from repro.geometry import HexTopology, LineTopology
from repro.paging import (
    density_order,
    density_ordered_partition,
    expected_cells_for_order,
    sdf_partition,
)

HEX = HexTopology()


class TestDensityOrder:
    def test_monotone_density_is_distance_order(self):
        p = [0.5, 0.3, 0.2]
        n = [1, 6, 12]
        assert density_order(p, n) == [0, 1, 2]

    def test_inverted_density(self):
        # Ring 1 denser per cell than ring 0.
        p = [0.1, 0.8, 0.1]
        n = [1, 2, 4]
        assert density_order(p, n) == [1, 0, 2]

    def test_ties_break_to_nearer_ring(self):
        p = [0.25, 0.5, 0.25]
        n = [1, 2, 1]
        # densities: 0.25, 0.25, 0.25 -> distance order.
        assert density_order(p, n) == [0, 1, 2]

    def test_length_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            density_order([0.5, 0.5], [1])


class TestExpectedCellsForOrder:
    def test_matches_plan_computation(self):
        model = TwoDimensionalModel(MobilityParams(0.1, 0.02))
        d, m = 4, 2
        p = model.steady_state(d)
        n = [HEX.ring_size(i) for i in range(d + 1)]
        plan = sdf_partition(d, m)
        groups = [len(g) for g in plan.subareas]
        order = [r for g in plan.subareas for r in g]
        direct = expected_cells_for_order(order, groups, p, n)
        assert direct == pytest.approx(plan.expected_polled_cells(HEX, p))

    def test_group_cover_enforced(self):
        with pytest.raises(PartitionError):
            expected_cells_for_order([0, 1, 2], [2], [0.3, 0.3, 0.4], [1, 2, 2])


class TestDensityOrderedPartition:
    @pytest.mark.parametrize("d,m", [(3, 2), (5, 3), (8, 4), (6, math.inf)])
    def test_valid_plan_and_consistent_expectation(self, d, m):
        model = TwoDimensionalModel(MobilityParams(0.2, 0.01))
        p = model.steady_state(d)
        n = [HEX.ring_size(i) for i in range(d + 1)]
        plan, expected = density_ordered_partition(d, m, p, n)
        bound = d + 1 if m == math.inf else min(d + 1, m)
        assert plan.delay_bound <= bound
        # For the paper's chains the density order coincides with the
        # distance order (density decays with i), so the plan's own
        # expectation matches the reported one.
        assert plan.expected_polled_cells(HEX, p) == pytest.approx(expected)

    def test_paper_analogy_holds_for_chain_distributions(self):
        # The paper calls SDF "analogous to a more-probable-first
        # scheme"; verify the premise: for the chain's steady states
        # the per-cell density is non-increasing in ring index.
        for q, c in [(0.05, 0.01), (0.3, 0.005), (0.6, 0.05)]:
            model = TwoDimensionalModel(MobilityParams(q, c))
            for d in (3, 6, 10):
                p = model.steady_state(d)
                n = np.array([HEX.ring_size(i) for i in range(d + 1)])
                assert density_order(p, n) == list(range(d + 1))

    def test_synthetic_inverted_distribution_reorders(self):
        # A hand-built distribution where ring 2 is densest must be
        # polled first.
        d, m = 2, 2
        p = [0.05, 0.05, 0.9]
        n = [LineTopology().ring_size(i) for i in range(d + 1)]
        plan, expected = density_ordered_partition(d, m, p, n)
        assert 2 in plan.subareas[0]
        sdf = sdf_partition(d, m)
        assert expected < sdf.expected_polled_cells(LineTopology(), p)
