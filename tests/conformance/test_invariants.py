"""Every registered invariant passes on healthy inputs and -- via the
deliberately-broken fixtures -- demonstrably *fails* on sabotaged ones.

A conformance check that cannot go red is decoration; each test class
below pairs one registered invariant with a minimal implementation bug
it must catch.
"""

import math

import pytest

from repro.conformance import REGISTRY

from .broken import (
    DriftingApproxModel,
    ExpensiveBoundaryModel,
    GrowingUpdateRateModel,
    SkewedSteadyModel,
    UnnormalizedModel,
    WrongCoverageModel,
    delay_regressive_plan,
    make_config,
    parity_plan,
    per_ring_always,
    saturation_breaker,
    sdf_scalar_path,
)


def run(check_id, config):
    return REGISTRY.get(check_id).run(config)


def assert_pass(check_id, config):
    result = run(check_id, config)
    assert result.status == "pass", (check_id, result.detail)
    return result


def assert_fail(check_id, config):
    result = run(check_id, config)
    assert result.status == "fail", (check_id, result.status, result.detail)
    assert result.repro is not None
    return result


class TestSteadyStateNormalized:
    def test_passes_on_real_model(self):
        assert_pass("steady-state-normalized", make_config())

    def test_fails_on_unnormalized_solver(self):
        result = assert_fail(
            "steady-state-normalized",
            make_config(model_factory=UnnormalizedModel),
        )
        assert result.deviation == pytest.approx(0.05, rel=1e-6)


class TestEqn5Balance:
    def test_passes_on_real_model(self):
        assert_pass("eqn5-balance", make_config())

    def test_fails_on_skewed_distribution(self):
        # Still normalized -- only the balance equation exposes it.
        assert_pass("steady-state-normalized", make_config(model_factory=SkewedSteadyModel))
        assert_fail("eqn5-balance", make_config(model_factory=SkewedSteadyModel))


class TestUpdateCostMonotoneThreshold:
    def test_passes_on_real_model(self):
        assert_pass("update-cost-monotone-threshold", make_config())

    def test_fails_on_growing_update_rate(self):
        assert_fail(
            "update-cost-monotone-threshold",
            make_config(model_factory=GrowingUpdateRateModel),
        )


class TestPagingCostMonotoneThreshold:
    def test_passes_on_real_model(self):
        assert_pass("paging-cost-monotone-threshold", make_config())

    def test_fails_on_parity_dependent_partition(self):
        assert_fail(
            "paging-cost-monotone-threshold",
            make_config(plan_factory=parity_plan),
        )


class TestPagingCostMonotoneDelay:
    def test_passes_on_real_model(self):
        assert_pass("paging-cost-monotone-delay", make_config())

    def test_fails_when_relaxing_the_bound_costs_more(self):
        assert_fail(
            "paging-cost-monotone-delay",
            make_config(plan_factory=delay_regressive_plan),
        )


class TestDelaySaturation:
    def test_passes_on_real_model(self):
        assert_pass("delay-saturation", make_config())

    def test_fails_when_saturation_is_broken(self):
        assert_fail(
            "delay-saturation", make_config(plan_factory=saturation_breaker)
        )


class TestExpectedDelayBounded:
    def test_passes_on_real_model(self):
        assert_pass("expected-delay-bounded", make_config())

    def test_fails_when_plan_ignores_the_bound(self):
        # Ring-by-ring paging under a finite bound m = 2 realizes
        # delays up to d + 1 = 5.
        assert_fail(
            "expected-delay-bounded",
            make_config(d=4, m=2, plan_factory=per_ring_always),
        )


class TestPolledCellsBounded:
    def test_passes_on_real_model(self):
        assert_pass("polled-cells-bounded", make_config())

    def test_fails_when_blanket_is_not_full_coverage(self):
        assert_fail(
            "polled-cells-bounded",
            make_config(d=3, plan_factory=per_ring_always),
        )


class TestCoverageClosedForm:
    def test_passes_on_real_model(self):
        assert_pass("coverage-closed-form", make_config())

    def test_fails_on_wrong_coverage(self):
        assert_fail(
            "coverage-closed-form", make_config(model_factory=WrongCoverageModel)
        )


class TestApproxTracksExact:
    def test_passes_on_real_approx_model(self):
        assert_pass("approx-tracks-exact", make_config(model_name="2d-approx"))

    def test_skips_exact_models(self):
        assert run("approx-tracks-exact", make_config()).status == "skip"

    def test_fails_on_drifting_rates(self):
        assert_fail(
            "approx-tracks-exact",
            make_config(model_name="2d-approx", model_factory=DriftingApproxModel),
        )


class TestCheapUpdateZeroThreshold:
    def test_passes_on_real_model(self):
        assert_pass("cheap-update-zero-threshold", make_config())

    def test_fails_on_expensive_boundary(self):
        result = assert_fail(
            "cheap-update-zero-threshold",
            make_config(model_factory=ExpensiveBoundaryModel),
        )
        assert result.deviation >= 1.0  # d* pushed off zero


class TestOptimalCostMonotoneDelay:
    def test_passes_on_real_model(self):
        assert_pass("optimal-cost-monotone-delay", make_config())

    def test_fails_when_relaxing_the_bound_costs_more(self):
        assert_fail(
            "optimal-cost-monotone-delay",
            make_config(plan_factory=delay_regressive_plan),
        )


class TestSimulationWithinCI:
    SIM = dict(d=2, m=2, d_max=6, sim_slots=30_000, sim_replications=3)

    def test_skips_without_simulation_budget(self):
        assert run("simulation-within-ci", make_config()).status == "skip"

    def test_skips_approximate_chains(self):
        config = make_config(model_name="2d-approx", **self.SIM)
        assert run("simulation-within-ci", config).status == "skip"

    def test_passes_on_real_model(self):
        assert_pass("simulation-within-ci", make_config(**self.SIM))

    def test_fails_on_skewed_prediction(self):
        # The simulation walks the *real* chain; a prediction computed
        # from the skewed distribution cannot stay inside its CI.
        assert_fail(
            "simulation-within-ci",
            make_config(model_factory=SkewedSteadyModel, **self.SIM),
        )


class TestJointDominatesDistance:
    def test_passes_on_real_model(self):
        assert_pass("joint-dominates-distance", make_config())

    def test_passes_at_unbounded_delay(self):
        assert_pass("joint-dominates-distance", make_config(m=math.inf))

    def test_fails_when_distance_costs_are_poisoned(self):
        # The custom (but SDF-identical) plan factory forces the
        # distance leg down the scalar path, where the skewed
        # steady_state makes it look cheaper than the correctly-solved
        # joint policy -- dominance must go red.
        assert_fail(
            "joint-dominates-distance",
            make_config(
                model_factory=SkewedSteadyModel, plan_factory=sdf_scalar_path
            ),
        )


class TestJointMonotoneIterations:
    def test_passes_on_real_model(self):
        assert_pass("joint-monotone-iterations", make_config())

    def test_fails_when_initialization_disagrees(self):
        # Same sabotage: the check's distance optimum (scalar, skewed)
        # no longer matches the iteration's true starting cost.
        assert_fail(
            "joint-monotone-iterations",
            make_config(
                model_factory=SkewedSteadyModel, plan_factory=sdf_scalar_path
            ),
        )


class TestJointDegenerateRecovery:
    def test_passes_on_real_model(self):
        assert_pass("joint-degenerate-recovery", make_config())

    def test_probes_blanket_bound_regardless_of_config_m(self):
        assert_pass("joint-degenerate-recovery", make_config(m=math.inf))

    def test_fails_when_distance_costs_are_poisoned(self):
        assert_fail(
            "joint-degenerate-recovery",
            make_config(
                model_factory=SkewedSteadyModel, plan_factory=sdf_scalar_path
            ),
        )


def test_all_invariants_clean_on_anchor_grid():
    """No registered invariant fails anywhere on a healthy mini-grid."""
    configs = [
        make_config(),
        make_config(model_name="2d-exact", m=math.inf, convention="physical"),
        make_config(model_name="square-approx", d=0, m=1, d_max=5),
    ]
    for config in configs:
        for check in REGISTRY.invariants():
            if check.check_id == "simulation-within-ci":
                continue  # exercised (with budget) above
            result = check.run(config)
            assert result.status != "fail", (check.check_id, result.detail)
