"""Registry mechanics: registration, results, minimization, repros."""

import math

import pytest

from repro import ParameterError
from repro.conformance import (
    REGISTRY,
    CheckRegistry,
    CheckSkipped,
    ConformanceConfig,
    Deviation,
    run_single,
)

from .broken import make_config


class TestDeviation:
    def test_negative_value_rejected(self):
        with pytest.raises(ParameterError):
            Deviation(-0.1)

    def test_nan_allowed(self):
        assert math.isnan(Deviation(math.nan).value)


class TestConfig:
    def test_threshold_beyond_dmax_rejected(self):
        with pytest.raises(ParameterError):
            make_config(d=9, d_max=8)

    def test_unknown_model_rejected_at_build(self):
        config = make_config(model_name="3d-exotic")
        with pytest.raises(ParameterError, match="3d-exotic"):
            config.build_model()

    @pytest.mark.parametrize("m", [1, 5, math.inf])
    def test_params_round_trip(self, m):
        config = make_config(m=m, sim_slots=500, pool_workers=2, seed=9)
        assert ConformanceConfig.from_params(config.as_params()) == config

    def test_factories_excluded_from_identity_and_params(self):
        plain = make_config()
        hatched = make_config(
            model_factory=lambda mobility: None, plan_factory=lambda *a: None
        )
        assert plain == hatched
        assert "model_factory" not in plain.as_params()
        assert "plan_factory" not in plain.as_params()

    def test_repro_snippet_names_check_and_entry_point(self):
        snippet = make_config().repro_snippet("eqn5-balance")
        assert "run_single('eqn5-balance'" in snippet
        assert "from repro.conformance import run_single" in snippet


class TestRegistration:
    def test_duplicate_id_rejected(self):
        registry = CheckRegistry()
        registry.invariant("twice", tolerance=0.0)(lambda config: Deviation(0.0))
        with pytest.raises(ParameterError, match="twice"):
            registry.invariant("twice", tolerance=0.0)(lambda config: Deviation(0.0))

    def test_bad_kind_rejected(self):
        with pytest.raises(ParameterError):
            CheckRegistry().register("x", kind="vibe", tolerance=0.0)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ParameterError):
            CheckRegistry().invariant("x", tolerance=-1.0)

    def test_unknown_check_lookup(self):
        with pytest.raises(ParameterError, match="unknown conformance check"):
            CheckRegistry().get("nope")

    def test_kind_partition(self):
        registry = CheckRegistry()
        registry.invariant("i", tolerance=0.0)(lambda config: Deviation(0.0))
        registry.oracle("o", tolerance=0.0)(lambda config: Deviation(0.0))
        assert [c.check_id for c in registry.invariants()] == ["i"]
        assert [c.check_id for c in registry.oracles()] == ["o"]
        assert len(registry) == 2 and "i" in registry and "nope" not in registry


class TestRunOutcomes:
    def make_registry(self, body, applies=None, tolerance=0.5):
        registry = CheckRegistry()
        registry.invariant("probe", tolerance=tolerance, applies=applies)(body)
        return registry

    def test_pass_within_tolerance(self):
        registry = self.make_registry(lambda config: Deviation(0.4))
        result = registry.run_check("probe", make_config())
        assert result.status == "pass"
        assert result.margin == pytest.approx(0.1)
        assert result.repro is None

    def test_fail_attaches_repro(self):
        registry = self.make_registry(lambda config: Deviation(0.9, "too big"))
        result = registry.run_check("probe", make_config(), minimize=False)
        assert result.status == "fail"
        assert result.margin == pytest.approx(-0.4)
        assert "run_single" in result.repro

    def test_nan_deviation_fails(self):
        registry = self.make_registry(lambda config: Deviation(math.nan))
        result = registry.run_check("probe", make_config(), minimize=False)
        assert result.status == "fail"
        assert result.margin == -math.inf
        assert result.to_dict()["deviation"] is None

    def test_applies_predicate_skips(self):
        registry = self.make_registry(
            lambda config: Deviation(9.0), applies=lambda config: config.sim_slots > 0
        )
        assert registry.run_check("probe", make_config()).status == "skip"

    def test_check_skipped_exception_skips(self):
        def body(config):
            raise CheckSkipped("domain hole")

        result = self.make_registry(body).run_check("probe", make_config())
        assert result.status == "skip"
        assert result.detail == "domain hole"


class TestMinimization:
    def test_shrinks_to_simplest_failing_point(self):
        # Fails whenever d >= 1: the minimizer must land on d = 1, not
        # the sampled d = 6.
        registry = CheckRegistry()
        registry.invariant("d-ge-1", tolerance=0.0)(
            lambda config: Deviation(float(config.d >= 1))
        )
        result = registry.run_check("d-ge-1", make_config(d=6, d_max=10))
        assert result.status == "fail"
        assert "minimized from d=6" in result.detail
        assert ", d=1," in result.repro

    def test_repro_round_trips_through_run_single(self):
        registry = CheckRegistry()
        registry.invariant("d-ge-1", tolerance=0.0)(
            lambda config: Deviation(float(config.d >= 1))
        )
        result = registry.run_check("d-ge-1", make_config(d=6, d_max=10))
        # Execute the generated snippet's call in-process.
        replayed = run_single(
            "d-ge-1",
            registry=registry,
            **{
                key: value
                for key, value in result.params.items()
            },
        )
        # The attached repro is minimized; the recorded params are the
        # original draw -- both must still fail.
        assert replayed.status == "fail"

    def test_passing_configs_never_minimized(self):
        calls = []

        def body(config):
            calls.append(config.d)
            return Deviation(0.0)

        registry = CheckRegistry()
        registry.invariant("ok", tolerance=0.5)(body)
        registry.run_check("ok", make_config(d=6, d_max=10))
        assert calls == [6]


class TestShippedRegistry:
    def test_has_both_kinds_in_force(self):
        assert len(REGISTRY.invariants()) >= 12
        assert len(REGISTRY.oracles()) >= 8
        assert set(REGISTRY.ids()) == {c.check_id for c in REGISTRY.all()}

    def test_every_check_documents_itself(self):
        for check in REGISTRY.all():
            assert check.description, check.check_id
            assert check.paper_ref, check.check_id
