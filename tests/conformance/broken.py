"""Deliberately-broken models and plan factories for the conformance tests.

Every registered check must be able to *fail*: a harness whose checks
cannot go red proves nothing.  This module collects minimal sabotaged
implementations, each violating exactly the property one (or a few)
checks guard, which the tests feed through the real registry via the
``model_factory``/``plan_factory`` escape hatches of
:class:`repro.conformance.ConformanceConfig`.
"""

import numpy as np

from repro import (
    OneDimensionalModel,
    TwoDimensionalApproximateModel,
)
from repro.conformance import ConformanceConfig
from repro.paging import blanket_partition, per_ring_partition


def make_config(**overrides):
    """A cheap, well-behaved 1-D operating point the tests perturb."""
    base = dict(
        model_name="1d",
        q=0.2,
        c=0.02,
        update_cost=50.0,
        poll_cost=10.0,
        d=3,
        m=2,
        d_max=8,
    )
    base.update(overrides)
    return ConformanceConfig(**base)


class UnnormalizedModel(OneDimensionalModel):
    """Steady state scaled by 1.05: probabilities no longer sum to 1."""

    def steady_state(self, d, method="auto"):
        return np.asarray(super().steady_state(d, method), dtype=float) * 1.05


class SkewedSteadyModel(OneDimensionalModel):
    """Normalized but wrong: a quarter of the mass moved to state 0.

    Still sums to 1 (so normalization checks pass), yet the flows no
    longer balance, and every cost derived from the distribution is
    systematically off -- the shape of a subtle solver bug.
    """

    def steady_state(self, d, method="auto"):
        p = np.array(super().steady_state(d, method), dtype=float)
        p *= 0.75
        p[0] += 0.25
        return p


class MethodSkewedModel(OneDimensionalModel):
    """Only the ``recursive`` solver is wrong; other methods are exact."""

    def steady_state(self, d, method="auto"):
        p = np.array(super().steady_state(d, "auto"), dtype=float)
        if method == "recursive":
            p = p * 0.99
            p[0] += 0.01
        return p


class GrowingUpdateRateModel(OneDimensionalModel):
    """Outward boundary rate explodes with d: C_u is no longer
    non-increasing in the threshold."""

    def update_rate(self, d, convention="paper"):
        if d == 0:
            return super().update_rate(0, convention)
        return min(1.0, 0.001 * 10.0**d)


class ExpensiveBoundaryModel(OneDimensionalModel):
    """Absurd update rate at d = 0 only: even a negligible per-update
    cost then pushes the optimum away from the d* = 0 it must hit."""

    def update_rate(self, d, convention="paper"):
        if d == 0:
            return 1e6
        return super().update_rate(d, convention)


class WrongCoverageModel(OneDimensionalModel):
    """``g(d) = d``: wrong at 0 and disconnected from the ring sizes."""

    def coverage(self, d):
        return d


class DriftingApproxModel(TwoDimensionalApproximateModel):
    """Approximate outward rates inflated by 20%: they no longer
    converge to the exact ring-averaged rates as the ring index grows."""

    def transition_rates(self, d):
        a, b = super().transition_rates(d)
        return np.asarray(a, dtype=float) * 1.2, b


# -- sabotaged plan factories ------------------------------------------


def per_ring_always(model, d, m):
    """Ignores the delay bound: pages ring-by-ring even when m is
    finite, so the realized delay can exceed min(d+1, m)."""
    return per_ring_partition(d)


def parity_plan(model, d, m):
    """Partition depends on threshold *parity*: the C_v(d) curve
    zig-zags instead of growing monotonically."""
    return per_ring_partition(d) if d % 2 == 0 else blanket_partition(d)


def saturation_breaker(model, d, m):
    """Treats m = d+1 and m = infinity differently, violating the
    eqn-(2) saturation l = min(d+1, m)."""
    import math

    return per_ring_partition(d) if m == math.inf else blanket_partition(d)


def sdf_scalar_path(model, d, m):
    """The paper's own SDF partition, but as a *custom* factory.

    Plans are identical to the default; the point is that any non-None
    ``plan_factory`` forces :class:`repro.core.costs.CostEvaluator`
    down the scalar per-threshold path, where a broken
    ``model.steady_state`` (e.g. :class:`SkewedSteadyModel`) poisons
    the distance-scheme costs while solvers that derive steady states
    from ``transition_rates`` stay correct -- exactly the split the
    cross-scheme joint checks must detect.
    """
    from repro.paging import sdf_partition

    return sdf_partition(d, m)


def delay_regressive_plan(model, d, m):
    """Cheap partitions only for small delay bounds: paging cost (and
    the optimal total cost) *rises* when the bound is relaxed."""
    import math

    if m != math.inf and m <= 2:
        return per_ring_partition(d)
    return blanket_partition(d)
