"""Deliberately-broken models and plan factories for the conformance tests.

Every registered check must be able to *fail*: a harness whose checks
cannot go red proves nothing.  This module collects minimal sabotaged
implementations, each violating exactly the property one (or a few)
checks guard, which the tests feed through the real registry via the
``model_factory``/``plan_factory`` escape hatches of
:class:`repro.conformance.ConformanceConfig`.
"""

import numpy as np

from repro import (
    OneDimensionalModel,
    TwoDimensionalApproximateModel,
)
from repro.conformance import ConformanceConfig
from repro.mobility.ctrw import CTRWSpec as _CTRWSpecBase
from repro.mobility.residence import ResidenceDistribution as _ResidenceBase
from repro.paging import blanket_partition, per_ring_partition


def make_config(**overrides):
    """A cheap, well-behaved 1-D operating point the tests perturb."""
    base = dict(
        model_name="1d",
        q=0.2,
        c=0.02,
        update_cost=50.0,
        poll_cost=10.0,
        d=3,
        m=2,
        d_max=8,
    )
    base.update(overrides)
    return ConformanceConfig(**base)


class UnnormalizedModel(OneDimensionalModel):
    """Steady state scaled by 1.05: probabilities no longer sum to 1."""

    def steady_state(self, d, method="auto"):
        return np.asarray(super().steady_state(d, method), dtype=float) * 1.05


class SkewedSteadyModel(OneDimensionalModel):
    """Normalized but wrong: a quarter of the mass moved to state 0.

    Still sums to 1 (so normalization checks pass), yet the flows no
    longer balance, and every cost derived from the distribution is
    systematically off -- the shape of a subtle solver bug.
    """

    def steady_state(self, d, method="auto"):
        p = np.array(super().steady_state(d, method), dtype=float)
        p *= 0.75
        p[0] += 0.25
        return p


class MethodSkewedModel(OneDimensionalModel):
    """Only the ``recursive`` solver is wrong; other methods are exact."""

    def steady_state(self, d, method="auto"):
        p = np.array(super().steady_state(d, "auto"), dtype=float)
        if method == "recursive":
            p = p * 0.99
            p[0] += 0.01
        return p


class GrowingUpdateRateModel(OneDimensionalModel):
    """Outward boundary rate explodes with d: C_u is no longer
    non-increasing in the threshold."""

    def update_rate(self, d, convention="paper"):
        if d == 0:
            return super().update_rate(0, convention)
        return min(1.0, 0.001 * 10.0**d)


class ExpensiveBoundaryModel(OneDimensionalModel):
    """Absurd update rate at d = 0 only: even a negligible per-update
    cost then pushes the optimum away from the d* = 0 it must hit."""

    def update_rate(self, d, convention="paper"):
        if d == 0:
            return 1e6
        return super().update_rate(d, convention)


class WrongCoverageModel(OneDimensionalModel):
    """``g(d) = d``: wrong at 0 and disconnected from the ring sizes."""

    def coverage(self, d):
        return d


class DriftingApproxModel(TwoDimensionalApproximateModel):
    """Approximate outward rates inflated by 20%: they no longer
    converge to the exact ring-averaged rates as the ring index grows."""

    def transition_rates(self, d):
        a, b = super().transition_rates(d)
        return np.asarray(a, dtype=float) * 1.2, b


# -- sabotaged plan factories ------------------------------------------


def per_ring_always(model, d, m):
    """Ignores the delay bound: pages ring-by-ring even when m is
    finite, so the realized delay can exceed min(d+1, m)."""
    return per_ring_partition(d)


def parity_plan(model, d, m):
    """Partition depends on threshold *parity*: the C_v(d) curve
    zig-zags instead of growing monotonically."""
    return per_ring_partition(d) if d % 2 == 0 else blanket_partition(d)


def saturation_breaker(model, d, m):
    """Treats m = d+1 and m = infinity differently, violating the
    eqn-(2) saturation l = min(d+1, m)."""
    import math

    return per_ring_partition(d) if m == math.inf else blanket_partition(d)


def sdf_scalar_path(model, d, m):
    """The paper's own SDF partition, but as a *custom* factory.

    Plans are identical to the default; the point is that any non-None
    ``plan_factory`` forces :class:`repro.core.costs.CostEvaluator`
    down the scalar per-threshold path, where a broken
    ``model.steady_state`` (e.g. :class:`SkewedSteadyModel`) poisons
    the distance-scheme costs while solvers that derive steady states
    from ``transition_rates`` stay correct -- exactly the split the
    cross-scheme joint checks must detect.
    """
    from repro.paging import sdf_partition

    return sdf_partition(d, m)


# -- sabotaged mobility walk factories ---------------------------------


def make_mobility_config(**overrides):
    """A cheap 2-D operating point for the mobility-tier checks."""
    base = dict(
        model_name="2d-exact",
        q=0.2,
        c=0.02,
        update_cost=50.0,
        poll_cost=10.0,
        d=2,
        m=2,
        d_max=6,
        sim_slots=4000,
        sim_replications=3,
    )
    base.update(overrides)
    return ConformanceConfig(**base)


def _spec(kind, config):
    from repro.conformance import default_walk_spec

    return default_walk_spec(kind, config)


def wrong_rate_exp(kind, config):
    """The ``exp`` spec moves at a third of the config's rate: the
    degeneracy and approximation-convergence oracles compare against
    the uniform walk / analytic chain at the *full* rate and must go
    red."""
    from repro.mobility.ctrw import CTRWSpec
    from repro.mobility.residence import GeometricResidence

    if kind == "exp":
        return CTRWSpec(residence=GeometricResidence(config.q / 3.0))
    return _spec(kind, config)


class LyingSpec(_CTRWSpecBase):
    """A spec whose per-cell walker factory realises a *different*
    residence distribution than its vectorized fields declare -- the
    precise bug shape ``ctrw-engine-vs-vectorized`` exists to catch."""

    def __init__(self, vectorized_spec, per_cell_spec):
        super().__init__(
            residence=vectorized_spec.residence,
            drift=vectorized_spec.drift,
            persistence=vectorized_spec.persistence,
            drift_direction=vectorized_spec.drift_direction,
        )
        object.__setattr__(self, "_per_cell", per_cell_spec)

    def walker_factory(self):
        return self._per_cell.walker_factory()


def engine_mismatch(kind, config):
    """``hyper`` lies: vectorized hyperexponential, per-cell fast
    deterministic residence."""
    from repro.mobility.ctrw import CTRWSpec
    from repro.mobility.residence import DeterministicResidence

    spec = _spec(kind, config)
    if kind == "hyper":
        return LyingSpec(spec, CTRWSpec(residence=DeterministicResidence(1)))
    return spec


def swapped_variance(kind, config):
    """The variance ladder is inverted: low-variance residence where
    the high-variance one belongs and vice versa, so the measured cost
    ordering reverses."""
    if kind == "var-low":
        return _spec("var-high", config)
    if kind == "var-high":
        return _spec("var-low", config)
    return _spec(kind, config)


def driftless_drift(kind, config):
    """The ``drift`` pinned point silently loses its drift: the DP then
    recovers (or nearly recovers) SDF and the strict-improvement check
    must fail."""
    if kind == "drift":
        return _spec("drift0", config)
    return _spec(kind, config)


def drifting_drift0(kind, config):
    """The ``drift0`` pinned point gains a heavy drift: the DP finds a
    strictly better plan than SDF where the check demands recovery."""
    if kind == "drift0":
        return _spec("drift", config)
    return _spec(kind, config)


class LyingMomentsResidence(_ResidenceBase):
    """Draws from one distribution, reports the moments of another.

    ``effective_move_probability`` (and hence the analytic chain the
    approximation report compares against) is computed from the
    *claimed* mean, while the walk actually moves at the real one --
    the convergence oracle must see the simulated truth pull away from
    the analytic prediction."""

    kind = "lying-moments"

    def __init__(self, actual, claimed_mean):
        self._actual = actual
        self._claimed_mean = claimed_mean

    def from_uniforms(self, u_branch, u_value):
        return self._actual.from_uniforms(u_branch, u_value)

    def mean(self):
        return self._claimed_mean

    def variance(self):
        return self._actual.variance()

    def spec(self):
        return {"kind": self.kind, **self._actual.spec()}


def lying_moments_exp(kind, config):
    """The ``exp`` spec claims geometric(q) moments but actually draws
    residences three times longer."""
    from repro.mobility.ctrw import CTRWSpec
    from repro.mobility.residence import HyperexponentialResidence

    if kind == "exp":
        actual = HyperexponentialResidence.fit(3.0 / config.q, 4.0)
        return CTRWSpec(
            residence=LyingMomentsResidence(actual, claimed_mean=1.0 / config.q)
        )
    return _spec(kind, config)


class NondeterministicResidence(_ResidenceBase):
    """Wraps a residence distribution with a mutating call counter so
    repeated runs from the same seed diverge -- hidden global state,
    the failure mode the bitwise determinism oracle guards against."""

    kind = "nondeterministic"

    def __init__(self, inner):
        self._inner = inner
        self._calls = 0

    def from_uniforms(self, u_branch, u_value):
        self._calls += 1
        return self._inner.from_uniforms(u_branch, u_value) + (self._calls % 7)

    def mean(self):
        return self._inner.mean()

    def variance(self):
        return self._inner.variance()

    def spec(self):
        return {"kind": self.kind, **self._inner.spec()}


class NondeterministicWalkFactory:
    """All ``hyper`` specs this factory hands out share one stateful
    residence object, so rebuilding the spec does not reset the hidden
    state -- two runs from the same seed draw different residences."""

    def __init__(self):
        self._shared = None

    def __call__(self, kind, config):
        spec = _spec(kind, config)
        if kind == "hyper":
            from repro.mobility.ctrw import CTRWSpec

            if self._shared is None:
                self._shared = NondeterministicResidence(spec.residence)
            return CTRWSpec(residence=self._shared)
        return spec


def delay_regressive_plan(model, d, m):
    """Cheap partitions only for small delay bounds: paging cost (and
    the optimal total cost) *rises* when the bound is relaxed."""
    import math

    if m != math.inf and m <= 2:
        return per_ring_partition(d)
    return blanket_partition(d)
