"""Mobility-tier conformance checks: green on healthy code, red on sabotage.

Every mobility check runs twice here: once against the shipped CTRW
implementation (must pass) and once with a sabotaged walk factory fed
through the ``walk_factory`` escape hatch of
:class:`repro.conformance.ConformanceConfig` (must fail) -- proving
each check is capable of catching the bug class it guards.
"""

import pytest

from repro.conformance import MOBILITY_CHECK_IDS, REGISTRY, default_walk_spec

from .broken import (
    NondeterministicWalkFactory,
    drifting_drift0,
    driftless_drift,
    engine_mismatch,
    lying_moments_exp,
    make_mobility_config,
    swapped_variance,
    wrong_rate_exp,
)


def run(check_id, config):
    return REGISTRY.get(check_id).run(config)


class TestRegistration:
    def test_all_mobility_checks_registered(self):
        for check_id in MOBILITY_CHECK_IDS:
            check = REGISTRY.get(check_id)
            assert check.check_id == check_id
            assert check.paper_ref

    def test_quick_suite_grows_by_at_least_five(self):
        # The issue's acceptance bar: the quick conformance suite gains
        # at least five new mobility checks.
        assert len(MOBILITY_CHECK_IDS) >= 5

    def test_checks_skip_without_simulation_budget(self):
        config = make_mobility_config(sim_slots=0)
        for check_id in MOBILITY_CHECK_IDS:
            assert run(check_id, config).status == "skip", check_id

    def test_pinned_point_checks_skip_on_line_topology(self):
        config = make_mobility_config(model_name="1d")
        for check_id in (
            "ctrw-variance-orders-cost",
            "ctrw-drift-breaks-sdf",
            "ctrw-no-drift-recovers-sdf",
            "ctrw-exp-approximation-converges",
        ):
            assert run(check_id, config).status == "skip", check_id

    def test_default_walk_spec_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            default_walk_spec("levy", make_mobility_config())


class TestChecksPassOnHealthyCode:
    @pytest.mark.parametrize("check_id", MOBILITY_CHECK_IDS)
    def test_passes(self, check_id):
        result = run(check_id, make_mobility_config())
        assert result.status == "pass", (check_id, result.detail)


class TestChecksFailOnSabotage:
    def test_degeneracy_catches_wrong_rate(self):
        result = run(
            "ctrw-exp-degenerates-to-uniform",
            make_mobility_config(walk_factory=wrong_rate_exp),
        )
        assert result.status == "fail", result.detail

    def test_convergence_catches_lying_moments(self):
        result = run(
            "ctrw-exp-approximation-converges",
            make_mobility_config(walk_factory=lying_moments_exp),
        )
        assert result.status == "fail", result.detail

    def test_engine_equivalence_catches_lying_spec(self):
        result = run(
            "ctrw-engine-vs-vectorized",
            make_mobility_config(walk_factory=engine_mismatch),
        )
        assert result.status == "fail", result.detail

    def test_variance_ordering_catches_swapped_ladder(self):
        result = run(
            "ctrw-variance-orders-cost",
            make_mobility_config(walk_factory=swapped_variance),
        )
        assert result.status == "fail", result.detail

    def test_drift_check_catches_missing_drift(self):
        result = run(
            "ctrw-drift-breaks-sdf",
            make_mobility_config(walk_factory=driftless_drift),
        )
        assert result.status == "fail", result.detail

    def test_no_drift_check_catches_injected_drift(self):
        result = run(
            "ctrw-no-drift-recovers-sdf",
            make_mobility_config(walk_factory=drifting_drift0),
        )
        assert result.status == "fail", result.detail

    def test_determinism_catches_hidden_state(self):
        result = run(
            "ctrw-seed-determinism",
            make_mobility_config(walk_factory=NondeterministicWalkFactory()),
        )
        assert result.status == "fail", result.detail
