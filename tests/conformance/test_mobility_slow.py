"""Nightly statistical oracles for the heavy-tailed mobility models.

Truncated-Pareto residence is where the analytic chain's assumptions
genuinely break, so its laws are checked statistically, at simulation
budgets too large for the per-commit suite.  The seed rotates nightly:
CI exports ``MOBILITY_NIGHTLY_SEED=$(date -u +%Y%m%d)``, so every
night exercises a fresh sample path while any given failure stays
reproducible by exporting that day's seed locally.  Without the env
var the tests fall back to today's UTC date, preserving the rotation
for local ``-m slow`` runs.
"""

import datetime
import math
import os

import pytest

from repro.core.parameters import CostParams, MobilityParams
from repro.geometry import HexTopology
from repro.mobility.ctrw import CTRWSpec, mobility_preset
from repro.mobility.residence import TruncatedParetoResidence
from repro.simulation.vectorized import VectorizedDistanceEngine

pytestmark = pytest.mark.slow


def nightly_seed() -> int:
    value = os.environ.get("MOBILITY_NIGHTLY_SEED")
    if value is not None:
        return int(value)
    today = datetime.datetime.now(datetime.timezone.utc)
    return int(today.strftime("%Y%m%d"))


Q, C = 0.2, 0.05
COSTS = CostParams(update_cost=50.0, poll_cost=10.0)


def _run(spec, *, seed, slots=20_000, terminals=512, d=2, m=2, warmup=2000):
    engine = VectorizedDistanceEngine(
        HexTopology(),
        threshold=d,
        mobility=MobilityParams(move_probability=Q, call_probability=C),
        costs=COSTS,
        terminals=terminals,
        max_delay=m,
        seed=seed,
        walk=spec,
    )
    engine.run(warmup)
    engine.reset_meters()
    return engine.run(slots)


class TestParetoResidenceMoments:
    def test_sampled_moments_match_spec(self):
        # Large-sample empirical mean/cv^2 of the truncated-Pareto
        # sampler against the exact discrete-pmf moments.
        import numpy as np

        residence = TruncatedParetoResidence(alpha=1.4, minimum=1.0, maximum=200.0)
        rng = np.random.default_rng(nightly_seed())
        u_branch = rng.random(200_000)
        u_value = rng.random(200_000)
        draws = residence.from_uniforms(u_branch, u_value)
        assert draws.min() >= 1
        assert draws.max() <= 200
        mean_err = abs(draws.mean() - residence.mean()) / residence.mean()
        assert mean_err < 0.02, (draws.mean(), residence.mean())
        sample_cv2 = draws.var() / draws.mean() ** 2
        assert sample_cv2 == pytest.approx(residence.cv2(), rel=0.10)


class TestParetoCostLaws:
    def test_heavy_tail_cheaper_than_matched_geometric(self):
        # The inspection-paradox ordering at the Pareto preset's own
        # mean: heavy-tailed residence must come in strictly below a
        # geometric walk of the same mean residence.
        seed = nightly_seed()
        pareto = mobility_preset("ctrw-pareto", Q)
        from repro.mobility.residence import GeometricResidence

        matched = CTRWSpec(
            residence=GeometricResidence(
                min(1.0, 1.0 / pareto.residence.mean())
            )
        )
        heavy = _run(pareto, seed=seed)
        light = _run(matched, seed=seed + 1)
        margin = heavy.total_cost_ci() + light.total_cost_ci()
        assert heavy.mean_total_cost < light.mean_total_cost - margin, (
            heavy.mean_total_cost,
            light.mean_total_cost,
            margin,
        )

    def test_pareto_truncation_bounds_update_rate(self):
        # With residence >= minimum slots, per-slot update cost cannot
        # exceed the threshold-crossing bound U * q_eff (and must be
        # positive -- the walker does move).
        seed = nightly_seed()
        pareto = mobility_preset("ctrw-pareto", Q)
        result = _run(pareto, seed=seed + 2)
        q_eff = pareto.effective_move_probability()
        assert 0.0 < result.mean_update_cost < COSTS.update_cost * q_eff * 1.05

    def test_seed_rotation_changes_sample_path(self):
        # Different nightly seeds must actually decorrelate the runs --
        # otherwise the rotation buys nothing.
        pareto = mobility_preset("ctrw-pareto", Q)
        a = _run(pareto, seed=nightly_seed(), slots=4000, terminals=128)
        b = _run(pareto, seed=nightly_seed() + 1, slots=4000, terminals=128)
        assert a.mean_total_cost != b.mean_total_cost

    def test_delay_histogram_respects_bound(self):
        seed = nightly_seed()
        pareto = mobility_preset("ctrw-pareto", Q)
        result = _run(pareto, seed=seed + 3, m=2)
        assert result.mean_paging_delay <= 2.0 + 1e-12
        assert math.isfinite(result.mean_paging_delay)
