"""Cross-backend oracles: agreement on healthy code, red on sabotage.

The analytic oracles are driven through broken model fixtures exactly
like the invariants.  The statistical engine oracles are proven
failable through their module-level comparison helpers
(:func:`replicated_agreement`, :func:`bitwise_agreement`) fed genuinely
mismatched simulation runs -- same code path the checks use, without
simulating a deliberately-broken engine.
"""

import math
from functools import partial

import pytest

from repro import CostParams, MobilityParams
from repro.conformance import REGISTRY, bitwise_agreement, replicated_agreement
from repro.simulation import run_replicated
from repro.strategies import DistanceStrategy

from .broken import MethodSkewedModel, SkewedSteadyModel, make_config

ANALYTIC_ORACLES = (
    "steady-closed-vs-recursive",
    "steady-recursive-vs-matrix",
    "steady-batched-vs-scalar",
    "cost-curve-batched-vs-scalar",
    "surface-vs-breakdown",
    "optimal-threshold-consistency",
)


def run(check_id, config):
    return REGISTRY.get(check_id).run(config)


@pytest.mark.parametrize("check_id", ANALYTIC_ORACLES)
@pytest.mark.parametrize("model_name", ["1d", "2d-exact", "square-approx"])
def test_analytic_oracles_agree_on_real_models(check_id, model_name):
    result = run(check_id, make_config(model_name=model_name, m=3))
    if check_id == "steady-closed-vs-recursive" and model_name == "2d-exact":
        # The exact hex chain has no closed form; covered below.
        assert result.status == "skip"
        return
    assert result.status == "pass", (check_id, result.detail)


def test_closed_form_oracle_skips_models_without_one():
    # The exact 2-D chains have no closed form: the oracle must skip,
    # not crash.
    result = run("steady-closed-vs-recursive", make_config(model_name="2d-exact"))
    assert result.status == "skip"


class TestAnalyticOraclesFail:
    def test_closed_vs_recursive_catches_method_skew(self):
        result = run(
            "steady-closed-vs-recursive",
            make_config(model_factory=MethodSkewedModel),
        )
        assert result.status == "fail"
        assert result.deviation > 1e-3

    def test_recursive_vs_matrix_catches_method_skew(self):
        result = run(
            "steady-recursive-vs-matrix",
            make_config(model_factory=MethodSkewedModel),
        )
        assert result.status == "fail"

    def test_batched_vs_scalar_catches_skewed_solver(self):
        # The batched triangular solve derives from the transition
        # rates and stays correct; the skewed per-threshold solver
        # cannot hide behind it.
        result = run(
            "steady-batched-vs-scalar",
            make_config(model_factory=SkewedSteadyModel),
        )
        assert result.status == "fail"

    @pytest.mark.parametrize(
        "check_id",
        ["cost-curve-batched-vs-scalar", "surface-vs-breakdown",
         "optimal-threshold-consistency"],
    )
    def test_cost_pipelines_catch_skewed_solver(self, check_id):
        result = run(check_id, make_config(model_factory=SkewedSteadyModel))
        assert result.status == "fail", (check_id, result.detail)


class TestEngineOracleGating:
    @pytest.mark.parametrize(
        "check_id",
        ["engine-vs-vectorized", "engine-vs-resilient-nofault", "serial-vs-pooled"],
    )
    def test_skip_without_simulation_budget(self, check_id):
        assert run(check_id, make_config()).status == "skip"

    def test_pooled_oracle_needs_a_pool(self):
        config = make_config(sim_slots=2_000, pool_workers=0)
        assert run("serial-vs-pooled", config).status == "skip"


class TestFleetOracles:
    @pytest.mark.parametrize(
        "check_id",
        [
            "fleet-sharded-vs-single",
            "fleet-pooled-vs-inprocess",
            "fleet-vs-vectorized",
        ],
    )
    def test_skip_without_simulation_budget(self, check_id):
        assert run(check_id, make_config()).status == "skip"

    def test_pooled_fleet_oracle_needs_a_pool(self):
        config = make_config(sim_slots=2_000, pool_workers=0)
        assert run("fleet-pooled-vs-inprocess", config).status == "skip"

    @pytest.mark.parametrize("model_name", ["1d", "2d-exact", "square-approx"])
    def test_sharded_vs_single_agrees_on_real_models(self, model_name):
        config = make_config(model_name=model_name, sim_slots=2_000)
        result = run("fleet-sharded-vs-single", config)
        assert result.status == "pass", result.detail
        assert result.deviation == 0.0

    def test_pooled_vs_inprocess_is_bit_identical(self):
        config = make_config(sim_slots=2_000, pool_workers=2)
        result = run("fleet-pooled-vs-inprocess", config)
        assert result.status == "pass", result.detail
        assert result.deviation == 0.0

    def test_fleet_agrees_with_vectorized_engine(self):
        result = run("fleet-vs-vectorized", make_config(sim_slots=2_000))
        assert result.status == "pass", result.detail


def _replicated(d, seed, slots=6_000, replications=3):
    from repro.geometry import LineTopology

    return run_replicated(
        topology=LineTopology(),
        strategy_factory=partial(DistanceStrategy, d, max_delay=2),
        mobility=MobilityParams(0.2, 0.02),
        costs=CostParams(50.0, 10.0),
        slots=slots,
        replications=replications,
        seed=seed,
    )


class TestAgreementHelpers:
    def test_replicated_agreement_accepts_identical_runs(self):
        a = _replicated(d=2, seed=5)
        assert replicated_agreement(a, a).value == 0.0

    def test_replicated_agreement_rejects_different_policies(self):
        # d = 0 vs d = 4 are different operating points with very
        # different total costs: far outside both the joint CI and the
        # 5% band.
        deviation = replicated_agreement(_replicated(0, seed=5), _replicated(4, seed=5))
        assert deviation.value > 1.0

    def test_bitwise_agreement_is_exact_for_identical_runs(self):
        a = _replicated(d=2, seed=7)
        b = _replicated(d=2, seed=7)
        assert bitwise_agreement(a, b).value == 0.0

    def test_bitwise_agreement_catches_reseeded_run(self):
        deviation = bitwise_agreement(_replicated(2, seed=7), _replicated(2, seed=8))
        assert deviation.value > 0.0

    def test_bitwise_agreement_catches_replication_count_mismatch(self):
        a = _replicated(2, seed=7, replications=2)
        b = _replicated(2, seed=7, replications=3)
        assert bitwise_agreement(a, b).value == math.inf
