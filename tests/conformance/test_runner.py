"""Suite execution, report aggregation, and JSONL artifact round-trip."""

import math

import pytest

from repro import ParameterError
from repro.conformance import (
    ALL_MODELS,
    CheckRegistry,
    Deviation,
    read_report,
    run_conformance,
    run_single,
    sample_suite,
    write_report,
)
from repro.observability.export import read_artifact

from .broken import make_config


def toy_registry():
    """Two deterministic checks: one parity-sensitive, one always-on."""
    registry = CheckRegistry()
    registry.invariant(
        "even-threshold", tolerance=0.0, paper_ref="toy",
        description="fails on odd thresholds",
    )(lambda config: Deviation(float(config.d % 2)))
    registry.oracle(
        "always-pass", tolerance=1.0, paper_ref="toy",
        applies=lambda config: config.sim_slots == 0,
    )(lambda config: Deviation(0.5))
    return registry


class TestSampling:
    def test_quick_suite_covers_all_models(self):
        configs = sample_suite("quick", seed=3)
        assert {c.model_name for c in configs} == set(ALL_MODELS)
        assert any(c.sim_slots > 0 for c in configs)

    def test_sampling_deterministic_in_seed(self):
        assert sample_suite("quick", seed=5) == sample_suite("quick", seed=5)
        assert sample_suite("quick", seed=5) != sample_suite("quick", seed=6)

    def test_full_suite_grants_a_pool(self):
        assert any(c.pool_workers >= 2 for c in sample_suite("full", seed=0))
        assert all(c.pool_workers == 0 for c in sample_suite("quick", seed=0))

    def test_unknown_suite_and_model_rejected(self):
        with pytest.raises(ParameterError):
            sample_suite("exhaustive")
        with pytest.raises(ParameterError):
            sample_suite("quick", models=["1d", "escher"])

    def test_model_restriction(self):
        configs = sample_suite("quick", seed=0, models=["2d-approx"])
        assert {c.model_name for c in configs} == {"2d-approx"}
        # Approximate chains get no simulation configs.
        assert all(c.sim_slots == 0 for c in configs)


class TestRunConformance:
    def test_explicit_configs_and_aggregates(self):
        report = run_conformance(
            registry=toy_registry(),
            configs=[make_config(d=2), make_config(d=3), make_config(d=4)],
        )
        assert report.passed == 5  # 3x always-pass + even d=2, d=4
        assert report.failed == 1  # odd d=3
        assert report.skipped == 0
        assert not report.ok
        [failure] = report.failures()
        assert failure.check_id == "even-threshold"
        assert failure.params["d"] == 3

    def test_by_check_aggregates_margins(self):
        report = run_conformance(
            registry=toy_registry(),
            configs=[make_config(d=2), make_config(d=3)],
        )
        stats = report.by_check()
        assert stats["even-threshold"]["failed"] == 1
        assert stats["even-threshold"]["min_margin"] == pytest.approx(-1.0)
        assert stats["always-pass"]["min_margin"] == pytest.approx(0.5)

    def test_render_lists_failures_with_repros(self):
        report = run_conformance(
            registry=toy_registry(), configs=[make_config(d=3)]
        )
        rendered = report.render()
        assert "even-threshold" in rendered
        assert "FAIL even-threshold" in rendered
        assert "run_single" in rendered

    def test_counts_into_observability(self):
        from repro.observability import context as obs_context

        with obs_context.session() as obs:
            run_conformance(registry=toy_registry(), configs=[make_config(d=2)])
            metrics = {
                (m["name"], m["labels"].get("check"), m["labels"].get("status")):
                    m["value"]
                for m in obs.registry.collect()
            }
        assert metrics[("conformance_checks_total", "even-threshold", "pass")] == 1

    def test_real_registry_on_one_cheap_config(self):
        report = run_conformance(configs=[make_config()])
        assert report.failed == 0
        assert report.passed > 0
        # No simulation budget: every engine oracle must have skipped.
        assert report.skipped > 0


class TestRunSingle:
    def test_round_trip_from_params(self):
        result = run_single(
            "even-threshold", registry=toy_registry(), **make_config(d=3).as_params()
        )
        assert result.status == "fail"

    def test_unknown_check(self):
        with pytest.raises(ParameterError):
            run_single("made-up", **make_config().as_params())

    def test_missing_required_params_named_in_error(self):
        # Wrong kwargs (e.g. update_cost= instead of U=) must not
        # surface as a bare KeyError from the repro entry point.
        with pytest.raises(ParameterError, match=r"missing \['U', 'V'\]"):
            run_single("even-threshold", registry=toy_registry(),
                       model="1d", q=0.2, c=0.02, update_cost=50.0,
                       poll_cost=10.0, d=3, m=2)


class TestReportArtifacts:
    def make_report(self):
        return run_conformance(
            registry=toy_registry(), configs=[make_config(d=2), make_config(d=3)]
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "conformance.jsonl"
        write_report(self.make_report(), path)
        artifact = read_report(path)
        assert artifact["provenance"]["command"] == "conformance"
        assert artifact["provenance"]["params"]["failed"] == 1
        checks = artifact["checks"]
        assert len(checks) == 4
        statuses = {(c["check_id"], c["params"]["d"], c["status"]) for c in checks}
        assert ("even-threshold", 3, "fail") in statuses
        assert ("even-threshold", 2, "pass") in statuses

    def test_failed_checks_carry_margin_and_repro(self, tmp_path):
        path = tmp_path / "conformance.jsonl"
        write_report(self.make_report(), path)
        [failure] = [
            c for c in read_report(path)["checks"] if c["status"] == "fail"
        ]
        assert failure["margin"] == pytest.approx(-1.0)
        assert "run_single" in failure["repro"]

    def test_read_report_rejects_checkless_artifacts(self, tmp_path):
        from repro.observability import context as obs_context
        from repro.observability.export import build_provenance, write_artifact

        path = tmp_path / "metrics-only.jsonl"
        with obs_context.session() as obs:
            write_artifact(path, obs, build_provenance("simulate", {}, seed=0))
        with pytest.raises(ParameterError, match="no conformance check"):
            read_report(path)

    def test_plain_read_artifact_sees_check_records(self, tmp_path):
        # The conformance artifact stays a valid observability artifact.
        path = tmp_path / "conformance.jsonl"
        write_report(self.make_report(), path)
        artifact = read_artifact(path)
        assert set(artifact) == {
            "provenance", "metrics", "spans", "checks", "approximations"
        }

    def test_infinite_delay_survives_serialization(self, tmp_path):
        report = run_conformance(
            registry=toy_registry(), configs=[make_config(d=2, m=math.inf)]
        )
        path = tmp_path / "inf.jsonl"
        write_report(report, path)
        assert read_report(path)["checks"][0]["params"]["m"] == "inf"
