"""Tests verifying the paper's ring-movement probability formulas."""

from fractions import Fraction

import pytest

from repro.geometry import (
    HexTopology,
    LineTopology,
    paper_p_minus,
    paper_p_plus,
    ring_movement_stats,
)


class TestPaperFormulas:
    def test_p_plus_equation_39(self):
        # p+(i) = 1/3 + 1/(6i).
        assert paper_p_plus(1) == Fraction(1, 2)
        assert paper_p_plus(2) == Fraction(5, 12)
        assert paper_p_plus(3) == Fraction(7, 18)

    def test_p_minus_equation_40(self):
        # p-(i) = 1/3 - 1/(6i).
        assert paper_p_minus(1) == Fraction(1, 6)
        assert paper_p_minus(2) == Fraction(1, 4)
        assert paper_p_minus(3) == Fraction(5, 18)

    def test_center_conventions(self):
        assert paper_p_plus(0) == 1
        assert paper_p_minus(0) == 0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            paper_p_plus(-1)
        with pytest.raises(ValueError):
            paper_p_minus(-1)

    def test_probabilities_approach_one_third(self):
        # As i grows, both tend to 1/3 -- the basis of Section 4.2's
        # approximation.
        assert abs(float(paper_p_plus(100)) - 1 / 3) < 0.002
        assert abs(float(paper_p_minus(100)) - 1 / 3) < 0.002


class TestMeasuredHexStats:
    @pytest.mark.parametrize("radius", [1, 2, 3, 4, 5, 8])
    def test_hex_matches_paper_exactly(self, radius):
        # Counting edges on the real grid must give exactly the paper's
        # ring-averaged probabilities (exact rational comparison).
        stats = ring_movement_stats(HexTopology(), radius)
        assert stats.p_outward == paper_p_plus(radius)
        assert stats.p_inward == paper_p_minus(radius)

    def test_hex_ring_stats_sum_to_one(self):
        stats = ring_movement_stats(HexTopology(), 3)
        assert stats.p_outward + stats.p_same + stats.p_inward == 1

    def test_hex_center(self):
        stats = ring_movement_stats(HexTopology(), 0)
        assert stats.p_outward == 1
        assert stats.p_same == 0
        assert stats.p_inward == 0

    def test_cells_counted(self):
        stats = ring_movement_stats(HexTopology(), 4)
        assert stats.cells == 24

    def test_as_floats(self):
        floats = ring_movement_stats(HexTopology(), 2).as_floats()
        assert floats == (float(Fraction(5, 12)), float(Fraction(1, 3)), 0.25)


class TestMeasuredLineStats:
    def test_line_interior_half_half(self):
        stats = ring_movement_stats(LineTopology(), 3)
        assert stats.p_outward == Fraction(1, 2)
        assert stats.p_same == 0
        assert stats.p_inward == Fraction(1, 2)

    def test_line_center(self):
        stats = ring_movement_stats(LineTopology(), 0)
        assert stats.p_outward == 1

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            ring_movement_stats(LineTopology(), -1)
