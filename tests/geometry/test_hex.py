"""Unit tests for the hexagonal-grid topology."""

import pytest

from repro.geometry import AXIAL_DIRECTIONS, HexTopology


class TestBasics:
    def test_origin(self, hexgrid):
        assert hexgrid.origin == (0, 0)

    def test_degree_six(self, hexgrid):
        assert hexgrid.degree == 6

    def test_directions_are_six_unit_steps(self, hexgrid):
        assert len(AXIAL_DIRECTIONS) == 6
        for direction in AXIAL_DIRECTIONS:
            assert hexgrid.distance((0, 0), direction) == 1

    def test_directions_are_distinct(self):
        assert len(set(AXIAL_DIRECTIONS)) == 6

    def test_equality_and_hash(self):
        assert HexTopology() == HexTopology()
        assert hash(HexTopology()) == hash(HexTopology())


class TestCellValidation:
    @pytest.mark.parametrize("bad", [5, (1,), (1, 2, 3), (1.0, 2), "cell", (True, 0)])
    def test_rejects_malformed_cells(self, hexgrid, bad):
        with pytest.raises(ValueError):
            hexgrid.neighbors(bad)


class TestDistance:
    def test_distance_to_self(self, hexgrid):
        assert hexgrid.distance((3, -2), (3, -2)) == 0

    def test_distance_axis_aligned(self, hexgrid):
        assert hexgrid.distance((0, 0), (4, 0)) == 4
        assert hexgrid.distance((0, 0), (0, -3)) == 3

    def test_distance_diagonal(self, hexgrid):
        # (2, -1): |2| + |-1| + |1| over 2 = 2.
        assert hexgrid.distance((0, 0), (2, -1)) == 2

    def test_distance_mixed_signs_sum(self, hexgrid):
        # q and r same sign add up: (2, 3) is 5 steps away.
        assert hexgrid.distance((0, 0), (2, 3)) == 5

    def test_symmetry(self, hexgrid):
        assert hexgrid.distance((1, 5), (-3, 2)) == hexgrid.distance((-3, 2), (1, 5))

    def test_translation_invariance(self, hexgrid):
        base = hexgrid.distance((0, 0), (3, -1))
        assert hexgrid.distance((7, 4), (10, 3)) == base

    def test_triangle_inequality_sample(self, hexgrid):
        a, b, c = (0, 0), (3, -2), (-1, 4)
        assert hexgrid.distance(a, c) <= hexgrid.distance(a, b) + hexgrid.distance(b, c)

    def test_neighbors_at_distance_one(self, hexgrid):
        for nb in hexgrid.neighbors((5, -3)):
            assert hexgrid.distance((5, -3), nb) == 1


class TestRings:
    def test_ring_zero(self, hexgrid):
        assert hexgrid.ring((2, 2), 0) == [(2, 2)]

    def test_ring_sizes_are_6i(self, hexgrid):
        for r in range(1, 8):
            assert hexgrid.ring_size(r) == 6 * r
            assert len(hexgrid.ring((0, 0), r)) == 6 * r

    def test_ring_cells_at_exact_distance(self, hexgrid):
        center = (1, -4)
        for r in range(4):
            for cell in hexgrid.ring(center, r):
                assert hexgrid.distance(center, cell) == r

    def test_ring_cells_are_unique(self, hexgrid):
        cells = hexgrid.ring((0, 0), 5)
        assert len(set(cells)) == len(cells)

    def test_ring_translation(self, hexgrid):
        base = hexgrid.ring((0, 0), 2)
        shifted = hexgrid.ring((3, -1), 2)
        assert {(q + 3, r - 1) for q, r in base} == set(shifted)

    def test_negative_radius_rejected(self, hexgrid):
        with pytest.raises(ValueError):
            hexgrid.ring((0, 0), -1)


class TestCoverage:
    def test_coverage_formula(self, hexgrid):
        # Paper equation (1): g(d) = 3d(d+1) + 1.
        for d in range(8):
            assert hexgrid.coverage(d) == 3 * d * (d + 1) + 1

    def test_coverage_matches_disk(self, hexgrid):
        for d in range(5):
            disk = list(hexgrid.disk((0, 0), d))
            assert len(disk) == hexgrid.coverage(d)
            assert len(set(disk)) == len(disk)

    def test_disk_is_distance_ball(self, hexgrid):
        # Every cell at distance <= d is in the disk, and nothing else.
        d = 3
        disk = set(hexgrid.disk((0, 0), d))
        for q in range(-d - 1, d + 2):
            for r in range(-d - 1, d + 2):
                inside = hexgrid.distance((0, 0), (q, r)) <= d
                assert ((q, r) in disk) == inside


class TestCorners:
    def test_ring_one_all_corners(self, hexgrid):
        for cell in hexgrid.ring((0, 0), 1):
            assert hexgrid.is_corner((0, 0), cell)

    def test_ring_two_has_six_corners(self, hexgrid):
        corners = [
            cell
            for cell in hexgrid.ring((0, 0), 2)
            if hexgrid.is_corner((0, 0), cell)
        ]
        assert len(corners) == 6

    def test_ring_i_has_six_corners(self, hexgrid):
        for radius in range(2, 6):
            corners = [
                cell
                for cell in hexgrid.ring((0, 0), radius)
                if hexgrid.is_corner((0, 0), cell)
            ]
            assert len(corners) == 6

    def test_corner_neighbor_profile(self, hexgrid):
        # Corner cells have 3 outward / 2 same / 1 inward neighbors.
        for radius in (1, 2, 4):
            for cell in hexgrid.ring((0, 0), radius):
                counts = hexgrid.ring_transition_counts((0, 0), cell)
                if hexgrid.is_corner((0, 0), cell):
                    assert counts == (3, 2, 1)
                else:
                    assert counts == (2, 2, 2)
