"""Unit tests for the square-grid topology extension."""

from fractions import Fraction

import pytest

from repro.geometry import (
    SQUARE_DIRECTIONS,
    SquareTopology,
    ring_movement_stats,
    square_p_minus,
    square_p_plus,
)


@pytest.fixture
def square():
    return SquareTopology()


class TestBasics:
    def test_origin_and_degree(self, square):
        assert square.origin == (0, 0)
        assert square.degree == 4
        assert square.dimensions == 2

    def test_directions_are_unit_steps(self, square):
        assert len(SQUARE_DIRECTIONS) == 4
        for direction in SQUARE_DIRECTIONS:
            assert square.distance((0, 0), direction) == 1

    def test_equality_and_hash(self):
        assert SquareTopology() == SquareTopology()
        assert hash(SquareTopology()) == hash(SquareTopology())

    @pytest.mark.parametrize("bad", [3, (1,), (1.0, 2), (True, 1), "x"])
    def test_cell_validation(self, square, bad):
        with pytest.raises(ValueError):
            square.neighbors(bad)


class TestMetric:
    def test_manhattan_distance(self, square):
        assert square.distance((0, 0), (3, -4)) == 7

    def test_symmetry_and_identity(self, square):
        assert square.distance((2, 5), (-1, 3)) == square.distance((-1, 3), (2, 5))
        assert square.distance((4, 4), (4, 4)) == 0

    def test_neighbors_at_distance_one(self, square):
        for nb in square.neighbors((3, -2)):
            assert square.distance((3, -2), nb) == 1

    def test_parity_no_same_ring_moves(self, square):
        # Every move changes the Manhattan distance by exactly 1.
        for radius in (1, 2, 4):
            for cell in square.ring((0, 0), radius):
                out, same, inward = square.ring_transition_counts((0, 0), cell)
                assert same == 0
                assert out + inward == 4


class TestRings:
    def test_ring_sizes(self, square):
        assert square.ring_size(0) == 1
        for r in range(1, 7):
            assert square.ring_size(r) == 4 * r
            assert len(square.ring((0, 0), r)) == 4 * r

    def test_ring_cells_at_exact_distance(self, square):
        for r in range(4):
            for cell in square.ring((2, -3), r):
                assert square.distance((2, -3), cell) == r

    def test_ring_cells_unique(self, square):
        cells = square.ring((0, 0), 5)
        assert len(set(cells)) == len(cells)

    def test_coverage_formula(self, square):
        # g(d) = 2d(d+1) + 1.
        for d in range(7):
            assert square.coverage(d) == 2 * d * (d + 1) + 1
            assert len(list(square.disk((0, 0), d))) == square.coverage(d)

    def test_negative_radius_rejected(self, square):
        with pytest.raises(ValueError):
            square.ring((0, 0), -1)


class TestCornerStats:
    def test_four_corners_per_ring(self, square):
        for radius in (1, 3, 5):
            corners = [
                cell
                for cell in square.ring((0, 0), radius)
                if square.is_corner((0, 0), cell)
            ]
            assert len(corners) == 4

    def test_corner_and_edge_profiles(self, square):
        for radius in (2, 3):
            for cell in square.ring((0, 0), radius):
                counts = square.ring_transition_counts((0, 0), cell)
                if square.is_corner((0, 0), cell):
                    assert counts == (3, 0, 1)
                else:
                    assert counts == (2, 0, 2)

    @pytest.mark.parametrize("radius", [1, 2, 3, 5])
    def test_ring_averages_match_formula(self, square, radius):
        stats = ring_movement_stats(square, radius)
        assert stats.p_outward == square_p_plus(radius)
        assert stats.p_inward == square_p_minus(radius)
        assert stats.p_same == 0

    def test_formula_boundary_conventions(self):
        assert square_p_plus(0) == Fraction(1)
        assert square_p_minus(0) == Fraction(0)
        with pytest.raises(ValueError):
            square_p_plus(-1)
        with pytest.raises(ValueError):
            square_p_minus(-1)
