"""Unit tests for the 1-D line topology."""

import pytest

from repro.geometry import LineTopology


class TestBasics:
    def test_origin_is_zero(self, line):
        assert line.origin == 0

    def test_degree_two(self, line):
        assert line.degree == 2

    def test_dimensions(self, line):
        assert line.dimensions == 1

    def test_repr_and_equality(self):
        assert LineTopology() == LineTopology()
        assert repr(LineTopology()) == "LineTopology()"
        assert hash(LineTopology()) == hash(LineTopology())


class TestNeighbors:
    def test_neighbors_of_origin(self, line):
        assert tuple(line.neighbors(0)) == (-1, 1)

    def test_neighbors_of_negative_cell(self, line):
        assert tuple(line.neighbors(-5)) == (-6, -4)

    def test_neighbor_count_matches_degree(self, line):
        assert len(line.neighbors(17)) == line.degree

    def test_rejects_non_integer_cell(self, line):
        with pytest.raises(ValueError):
            line.neighbors(1.5)

    def test_rejects_bool_cell(self, line):
        # bool is an int subclass; cells must be genuine integers.
        with pytest.raises(ValueError):
            line.neighbors(True)


class TestDistance:
    def test_distance_is_absolute_difference(self, line):
        assert line.distance(3, -4) == 7

    def test_distance_symmetry(self, line):
        assert line.distance(-2, 9) == line.distance(9, -2)

    def test_distance_zero_to_self(self, line):
        assert line.distance(11, 11) == 0

    def test_triangle_inequality(self, line):
        a, b, c = -3, 5, 12
        assert line.distance(a, c) <= line.distance(a, b) + line.distance(b, c)


class TestRings:
    def test_ring_zero_is_center(self, line):
        assert line.ring(4, 0) == [4]

    def test_ring_has_two_cells(self, line):
        assert line.ring(0, 3) == [-3, 3]

    def test_ring_around_offset_center(self, line):
        assert line.ring(10, 2) == [8, 12]

    def test_ring_size(self, line):
        assert line.ring_size(0) == 1
        assert line.ring_size(1) == 2
        assert line.ring_size(100) == 2

    def test_ring_size_matches_enumeration(self, line):
        for r in range(6):
            assert line.ring_size(r) == len(line.ring(0, r))

    def test_negative_radius_rejected(self, line):
        with pytest.raises(ValueError):
            line.ring(0, -1)
        with pytest.raises(ValueError):
            line.ring_size(-2)


class TestCoverage:
    def test_coverage_formula(self, line):
        # Paper equation (1): g(d) = 2d + 1.
        for d in range(10):
            assert line.coverage(d) == 2 * d + 1

    def test_coverage_matches_disk_enumeration(self, line):
        for d in range(6):
            disk = list(line.disk(0, d))
            assert len(disk) == line.coverage(d)
            assert len(set(disk)) == len(disk)

    def test_disk_cells_within_distance(self, line):
        for cell in line.disk(5, 3):
            assert line.distance(5, cell) <= 3

    def test_negative_radius_rejected(self, line):
        with pytest.raises(ValueError):
            line.coverage(-1)


class TestRingTransitions:
    def test_interior_cell_splits_evenly(self, line):
        # A cell in ring i >= 1 has one outward and one inward neighbor.
        out, same, inward = line.ring_transition_counts(0, 4)
        assert (out, same, inward) == (1, 0, 1)

    def test_center_cell_moves_only_outward(self, line):
        out, same, inward = line.ring_transition_counts(0, 0)
        assert (out, same, inward) == (2, 0, 0)
