"""Tests for artifact export: provenance, JSONL round trip, Prometheus
text, and the human summary."""

import json

import pytest

from repro.exceptions import ParameterError
from repro.observability import (
    ARTIFACT_SCHEMA_VERSION,
    Observability,
    MetricsRegistry,
    Tracer,
    build_provenance,
    git_revision,
    params_fingerprint,
    prometheus_text,
    read_artifact,
    summarize_artifact,
    write_artifact,
)


def build_observability():
    obs = Observability(registry=MetricsRegistry(), tracer=Tracer())
    obs.registry.counter("updates_total", strategy="distance", d=3).inc(7)
    obs.registry.counter("update_cost_total", strategy="distance", d=3).inc(210.0)
    obs.registry.histogram("paging_delay_cycles", d=3).observe(1, count=5)
    obs.registry.histogram("paging_delay_cycles", d=3).observe(2, count=2)
    with obs.tracer.span("simulate.run_replicated", replications=2):
        with obs.tracer.span("simulate.replication", index=0):
            pass
    return obs


class TestProvenance:
    def test_fingerprint_is_order_insensitive_and_deterministic(self):
        a = params_fingerprint({"q": 0.3, "c": 0.01, "d": 3})
        b = params_fingerprint({"d": 3, "c": 0.01, "q": 0.3})
        assert a == b
        assert a != params_fingerprint({"q": 0.3, "c": 0.01, "d": 4})

    def test_fingerprint_handles_infinity(self):
        assert params_fingerprint({"m": float("inf")}) != params_fingerprint(
            {"m": float("-inf")}
        )

    def test_build_provenance_stamps_everything(self):
        prov = build_provenance("simulate", {"q": 0.3, "m": float("inf")}, seed=42)
        assert prov["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert prov["command"] == "simulate"
        assert prov["seed"] == 42
        assert prov["params"]["m"] == "inf"
        assert prov["params_fingerprint"] == params_fingerprint(
            {"q": 0.3, "m": float("inf")}
        )
        assert prov["git_rev"]
        assert prov["library_version"]
        assert prov["created_unix"] > 0
        json.dumps(prov)  # must be JSON-encodable as-is

    def test_git_revision_unknown_outside_a_repo(self, tmp_path):
        assert git_revision(tmp_path) == "unknown"


class TestJsonlRoundTrip:
    def test_write_then_read_preserves_everything(self, tmp_path):
        obs = build_observability()
        prov = build_provenance("simulate", {"q": 0.3}, seed=1)
        path = write_artifact(tmp_path / "m.json", obs, prov)

        artifact = read_artifact(path)
        assert artifact["provenance"]["params_fingerprint"] == prov[
            "params_fingerprint"
        ]
        assert artifact["metrics"] == obs.registry.collect()
        assert artifact["spans"] == obs.tracer.records

    def test_first_line_is_the_provenance_record(self, tmp_path):
        obs = build_observability()
        path = write_artifact(
            tmp_path / "m.json", obs, build_provenance("simulate", {})
        )
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "provenance"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ParameterError, match="unreadable"):
            read_artifact(tmp_path / "missing.json")

    def test_malformed_json_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"kind": "provenance", "schema_version": 1}\nnot json\n')
        with pytest.raises(ParameterError, match="line 2 is not JSON"):
            read_artifact(path)

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ParameterError, match="unknown kind"):
            read_artifact(path)

    def test_missing_provenance_raises(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(
            json.dumps({"kind": "metric", "name": "x", "type": "counter",
                        "value": 1.0}) + "\n"
        )
        with pytest.raises(ParameterError, match="no provenance"):
            read_artifact(path)

    def test_schema_version_mismatch_refused(self, tmp_path):
        obs = build_observability()
        prov = build_provenance("simulate", {})
        prov["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        path = write_artifact(tmp_path / "m.json", obs, prov)
        with pytest.raises(ParameterError, match="schema version"):
            read_artifact(path)


class TestPrometheusText:
    def test_counter_and_histogram_shapes(self):
        obs = build_observability()
        text = prometheus_text(obs)
        assert "# TYPE updates_total counter" in text
        assert 'updates_total{d="3",strategy="distance"} 7.0' in text
        assert "# TYPE paging_delay_cycles histogram" in text
        # buckets are cumulative: 5 at le=1, 7 at le=2 and at +Inf
        assert 'paging_delay_cycles_bucket{d="3",le="1"} 5' in text
        assert 'paging_delay_cycles_bucket{d="3",le="2"} 7' in text
        assert 'paging_delay_cycles_bucket{d="3",le="+Inf"} 7' in text
        assert 'paging_delay_cycles_sum{d="3"} 9.0' in text
        assert 'paging_delay_cycles_count{d="3"} 7' in text

    def test_accepts_plain_record_lists(self):
        records = build_observability().registry.collect()
        assert prometheus_text(records) == prometheus_text(
            build_observability()
        )

    def test_empty_registry_renders_empty(self):
        assert prometheus_text([]) == ""


class TestSummarize:
    def test_renders_provenance_metrics_and_spans(self, tmp_path):
        obs = build_observability()
        path = write_artifact(
            tmp_path / "m.json",
            obs,
            build_provenance("simulate", {"q": 0.3}, seed=9),
        )
        text = summarize_artifact(read_artifact(path))
        assert "Provenance" in text
        assert "simulate" in text
        assert "Metrics" in text
        assert "updates_total" in text
        assert "d=3,strategy=distance" in text
        assert "Trace spans" in text
        assert "simulate.replication" in text
