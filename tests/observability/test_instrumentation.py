"""Instrumentation contract tests.

Two guarantees pinned here:

1. **Bit-identity** -- enabling observability (a live session or the
   armed no-op session) cannot change a single simulated number, for
   every engine and for serial vs pooled replication.
2. **Exact accounting** -- exported counters equal the engines' own
   meters exactly (not approximately), including the float cost totals,
   which are accumulated in the canonical order the registry promises.
"""

from functools import partial

from repro.core.parameters import CostParams, MobilityParams
from repro.faults import PageLoss, ResilientEngine, UpdateLoss
from repro.geometry import HexTopology
from repro.observability import current, noop_session, session
from repro.simulation import (
    SimulationEngine,
    VectorizedDistanceEngine,
    run_replicated,
)
from repro.strategies import DistanceStrategy

MOBILITY = MobilityParams(move_probability=0.3, call_probability=0.05)
COSTS = CostParams(update_cost=100.0, poll_cost=10.0)
SLOTS = 400


def make_engine(seed=0, d=2, m=2):
    return SimulationEngine(
        topology=HexTopology(),
        strategy=DistanceStrategy(d, max_delay=m),
        mobility=MOBILITY,
        costs=COSTS,
        seed=seed,
    )


class TestBitIdentity:
    """Observed runs produce byte-for-byte the numbers unobserved runs do."""

    def test_per_cell_engine(self):
        plain = make_engine().run(SLOTS).to_dict()
        with session():
            observed = make_engine().run(SLOTS).to_dict()
        with noop_session():
            armed = make_engine().run(SLOTS).to_dict()
        assert observed == plain
        assert armed == plain

    def test_vectorized_engine(self):
        def run():
            engine = VectorizedDistanceEngine(
                topology=HexTopology(),
                threshold=2,
                mobility=MOBILITY,
                costs=COSTS,
                max_delay=2,
                terminals=16,
                seed=0,
            )
            return [s.to_dict() for s in engine.run(200).snapshots]

        plain = run()
        with session():
            observed = run()
        with noop_session():
            armed = run()
        assert observed == plain
        assert armed == plain

    def test_resilient_engine(self):
        def run():
            engine = ResilientEngine(
                topology=HexTopology(),
                strategy=DistanceStrategy(2, max_delay=2),
                mobility=MOBILITY,
                costs=COSTS,
                faults=[UpdateLoss(0.3, seed=1), PageLoss(0.2, seed=2)],
                seed=0,
            )
            snapshot = engine.run(SLOTS)
            return snapshot.to_dict(), engine.fault_report()

        plain = run()
        with session():
            observed = run()
        assert observed == plain

    def test_run_replicated_serial_vs_pooled_vs_unobserved(self):
        def run(workers=None, observe=False):
            def call():
                return run_replicated(
                    topology=HexTopology(),
                    strategy_factory=partial(DistanceStrategy, 2, max_delay=2),
                    mobility=MOBILITY,
                    costs=COSTS,
                    slots=200,
                    replications=4,
                    seed=7,
                    workers=workers,
                )

            if not observe:
                return call(), None
            with session() as obs:
                result = call()
            return result, obs

        plain, _ = run()
        serial, serial_obs = run(observe=True)
        pooled, pooled_obs = run(workers=2, observe=True)
        expect = [s.to_dict() for s in plain.snapshots]
        assert [s.to_dict() for s in serial.snapshots] == expect
        assert [s.to_dict() for s in pooled.snapshots] == expect
        # the merged registries agree series-for-series and bit-for-bit
        assert serial_obs.registry.collect() == pooled_obs.registry.collect()


class TestExactAccounting:
    def test_engine_counters_match_the_meter(self):
        with session() as obs:
            engine = make_engine()
            snapshot = engine.run(SLOTS)
        registry = obs.registry
        assert registry.total("slots_total") == SLOTS
        assert registry.total("moves_total") == snapshot.moves
        assert registry.total("updates_total") == snapshot.updates
        assert registry.total("calls_total") == snapshot.calls
        assert registry.total("polled_cells_total") == snapshot.polled_cells
        # per-cycle breakdown sums back to the total polled cells
        assert registry.total("polled_cells_by_cycle_total") == sum(
            registry.value("polled_cells_by_cycle_total", cycle=cycle,
                           strategy="distance", d=2, engine="per-cell") or 0
            for cycle in (1, 2)
        )
        histogram = registry.value(
            "paging_delay_cycles", strategy="distance", d=2, engine="per-cell"
        )
        assert histogram == snapshot.calls

    def test_cost_totals_equal_snapshot_sums_exactly(self):
        with session() as obs:
            result = run_replicated(
                topology=HexTopology(),
                strategy_factory=partial(DistanceStrategy, 2, max_delay=2),
                mobility=MOBILITY,
                costs=COSTS,
                slots=200,
                replications=5,
                seed=3,
            )
        registry = obs.registry
        assert registry.total("update_cost_total") == sum(
            s.update_cost for s in result.snapshots
        )
        assert registry.total("paging_cost_total") == sum(
            s.paging_cost for s in result.snapshots
        )

    def test_vectorized_cost_totals_exact(self):
        with session() as obs:
            engine = VectorizedDistanceEngine(
                topology=HexTopology(),
                threshold=2,
                mobility=MOBILITY,
                costs=COSTS,
                max_delay=2,
                terminals=32,
                seed=5,
            )
            result = engine.run(200)
        registry = obs.registry
        assert registry.total("update_cost_total") == sum(
            s.update_cost for s in result.snapshots
        )
        assert registry.total("paging_cost_total") == sum(
            s.paging_cost for s in result.snapshots
        )
        assert registry.total("slots_total") == 200 * 32
        assert registry.total("calls_total") == sum(
            s.calls for s in result.snapshots
        )

    def test_fault_counters_match_fault_report(self):
        with session() as obs:
            engine = ResilientEngine(
                topology=HexTopology(),
                strategy=DistanceStrategy(2, max_delay=2),
                mobility=MOBILITY,
                costs=COSTS,
                faults=[UpdateLoss(0.4, seed=1), PageLoss(0.3, seed=2)],
                seed=0,
            )
            engine.run(SLOTS)
        report = engine.fault_report()
        registry = obs.registry
        for name in (
            "lost_transmissions",
            "lost_updates",
            "update_retries",
            "stale_lookups",
            "missed_polls",
            "repages",
            "recovery_pagings",
            "recovery_cells",
        ):
            assert registry.total(f"{name}_total") == report[name], name
        assert registry.total("update_backoff_slots_total") == report[
            "update_latency_slots"
        ]
        # the fault-injection run reports under its own engine label
        assert (
            registry.value(
                "lost_transmissions_total",
                strategy="distance", d=2, engine="resilient",
            )
            is not None
        )


class TestSpans:
    def test_run_replicated_traces_each_replication(self):
        with session() as obs:
            run_replicated(
                topology=HexTopology(),
                strategy_factory=partial(DistanceStrategy, 2, max_delay=2),
                mobility=MOBILITY,
                costs=COSTS,
                slots=100,
                replications=3,
                seed=0,
            )
        names = [r.name for r in obs.tracer.records]
        assert names.count("simulate.run_replicated") == 1
        assert names.count("simulate.replication") == 3
        root = next(
            r for r in obs.tracer.records if r.name == "simulate.run_replicated"
        )
        for record in obs.tracer.records:
            if record.name == "simulate.replication":
                assert record.parent_id == root.span_id
                assert record.duration is not None

    def test_pooled_replication_spans_are_adopted_with_index(self):
        with session() as obs:
            run_replicated(
                topology=HexTopology(),
                strategy_factory=partial(DistanceStrategy, 2, max_delay=2),
                mobility=MOBILITY,
                costs=COSTS,
                slots=100,
                replications=3,
                seed=0,
                workers=2,
            )
        replication_spans = [
            r for r in obs.tracer.records if r.name == "simulate.replication"
        ]
        assert sorted(r.metadata.get("replication") for r in replication_spans) == [
            0, 1, 2,
        ]

    def test_session_restores_the_disabled_default(self):
        before = current()
        with session():
            assert current().enabled
        assert current() is before
        assert not current().enabled
