"""Unit tests for the labeled-series metrics registry."""

import pickle

import pytest

from repro.exceptions import ParameterError
from repro.observability import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ParameterError):
            Counter().inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge()
        g.set(7)
        g.inc(-2)
        assert g.value == 5.0

    def test_histogram_exact_integer_buckets(self):
        h = Histogram()
        h.observe(1)
        h.observe(1)
        h.observe(3, count=4)
        assert h.counts == {1: 2, 3: 4}
        assert h.count == 6
        assert h.sum == 1 + 1 + 3 * 4
        assert h.mean == pytest.approx(14 / 6)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestSeriesIdentity:
    def test_same_name_and_labels_share_the_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("updates_total", strategy="distance", d=3)
        b = registry.counter("updates_total", d=3, strategy="distance")
        assert a is b
        a.inc()
        assert registry.value("updates_total", strategy="distance", d=3) == 1.0

    def test_label_values_are_stringified(self):
        registry = MetricsRegistry()
        assert registry.counter("x", d=3) is registry.counter("x", d="3")

    def test_different_labels_are_different_series(self):
        registry = MetricsRegistry()
        registry.counter("x", d=1).inc()
        registry.counter("x", d=2).inc(2)
        assert registry.value("x", d=1) == 1.0
        assert registry.value("x", d=2) == 2.0
        assert registry.total("x") == 3.0
        assert len(registry) == 2

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ParameterError, match="already registered"):
            registry.histogram("x")

    def test_bad_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError):
            registry.counter("")
        with pytest.raises(ParameterError):
            registry.counter(None)

    def test_untouched_series_has_no_value(self):
        assert MetricsRegistry().value("never", d=1) is None


class TestCollectAndMerge:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("updates_total", strategy="distance", d=3).inc(5)
        registry.gauge("queue_depth").set(2)
        registry.histogram("paging_delay_cycles", d=3).observe(1, count=3)
        registry.histogram("paging_delay_cycles", d=3).observe(2)
        return registry

    def test_collect_is_sorted_and_picklable(self):
        records = self.build().collect()
        assert [r["name"] for r in records] == sorted(r["name"] for r in records)
        assert pickle.loads(pickle.dumps(records)) == records
        histogram = next(r for r in records if r["type"] == "histogram")
        assert histogram["counts"] == {"1": 3, "2": 1}
        assert histogram["count"] == 4
        assert histogram["sum"] == 5.0

    def test_merge_adds_counters_and_histograms(self):
        source = self.build()
        target = self.build()
        target.merge(source.collect())
        assert target.value("updates_total", strategy="distance", d=3) == 10.0
        assert target.value("paging_delay_cycles", d=3) == 8.0  # count doubles
        # gauges take the incoming value rather than adding
        assert target.value("queue_depth") == 2.0

    def test_merge_into_empty_reproduces_collect(self):
        source = self.build()
        target = MetricsRegistry()
        target.merge(source.collect())
        assert target.collect() == source.collect()

    def test_merge_rejects_unknown_kind(self):
        with pytest.raises(ParameterError, match="unknown metric record type"):
            MetricsRegistry().merge([{"name": "x", "type": "mystery", "value": 1}])

    def test_total_counts_histogram_observations(self):
        registry = self.build()
        assert registry.total("paging_delay_cycles") == 4.0


class TestNullRegistry:
    def test_disabled_by_default(self):
        assert NULL_REGISTRY.enabled is False
        assert NullRegistry(enabled=True).enabled is True

    def test_all_accessors_share_one_noop(self):
        registry = NullRegistry()
        c = registry.counter("x", d=1)
        assert registry.gauge("y") is c
        assert registry.histogram("z") is c
        # every instrument method is callable and does nothing
        c.inc()
        c.set(3)
        c.observe(1)
        assert registry.collect() == []
        assert registry.value("x", d=1) is None
        assert registry.total("x") == 0.0
        assert len(registry) == 0
