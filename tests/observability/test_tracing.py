"""Unit tests for tracing spans, adoption, and profiling hooks."""

import pickle

from repro.observability import (
    NULL_TRACER,
    CProfileHook,
    ProfileHook,
    SpanRecord,
    TimerHook,
    Tracer,
    current,
    session,
    traced,
)


class TestSpans:
    def test_nesting_sets_parent_and_duration(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.metadata == {"kind": "test"}
        assert inner.duration is not None and inner.duration >= 0.0
        assert outer.duration >= inner.duration
        assert [r.name for r in tracer.records] == ["outer", "inner"]

    def test_duration_set_even_when_body_raises(self):
        tracer = Tracer()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.records[0].duration is not None

    def test_span_ids_are_unique(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [r.span_id for r in tracer.records]
        assert len(set(ids)) == len(ids)

    def test_record_round_trips_through_dict_and_pickle(self):
        record = SpanRecord(
            name="s", span_id=3, parent_id=1, start=0.5, duration=0.25,
            metadata={"d": 3},
        )
        assert SpanRecord.from_dict(record.to_dict()) == record
        assert pickle.loads(pickle.dumps(record)) == record

    def test_summary_aggregates_by_name_sorted_by_total(self):
        tracer = Tracer()
        tracer.records = [
            SpanRecord("a", 1, None, 0.0, duration=1.0),
            SpanRecord("a", 2, None, 0.0, duration=3.0),
            SpanRecord("b", 3, None, 0.0, duration=5.0),
            SpanRecord("open", 4, None, 0.0, duration=None),  # skipped
        ]
        assert tracer.summary() == [("b", 1, 5.0, 5.0), ("a", 2, 4.0, 2.0)]


class TestAdopt:
    def test_adopted_roots_reparent_under_open_span(self):
        worker = Tracer()
        with worker.span("replication"):
            with worker.span("inner"):
                pass
        parent = Tracer()
        with parent.span("campaign") as campaign:
            parent.adopt(worker.records, replication=4)
        spans = {r.name: r for r in parent.records}
        assert spans["replication"].parent_id == campaign.span_id
        assert spans["replication"].metadata == {"replication": 4}
        # non-root children keep their (remapped) parent and metadata
        assert spans["inner"].parent_id == spans["replication"].span_id
        assert spans["inner"].metadata == {}

    def test_adopted_ids_do_not_collide(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        parent = Tracer()
        with parent.span("p"):
            pass
        parent.adopt(worker.records)
        ids = [r.span_id for r in parent.records]
        assert len(set(ids)) == len(ids)


class TestTracedDecorator:
    def test_noop_without_session(self):
        @traced("my.span")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert current().tracer is NULL_TRACER

    def test_records_span_inside_session(self):
        @traced("my.span", flavor="test")
        def f(x):
            return x * 2

        with session() as obs:
            assert f(3) == 6
        assert [r.name for r in obs.tracer.records] == ["my.span"]
        assert obs.tracer.records[0].metadata == {"flavor": "test"}

    def test_default_name_is_qualname(self):
        @traced()
        def helper():
            return None

        with session() as obs:
            helper()
        assert helper.__qualname__ in obs.tracer.records[0].name


class TestNullTracer:
    def test_shared_noop_span(self):
        a = NULL_TRACER.span("x", d=1)
        b = NULL_TRACER.span("y")
        assert a is b
        with a:
            pass
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.summary() == []
        assert len(NULL_TRACER) == 0


class TestProfileHooks:
    def test_timer_hook_accumulates_per_name(self):
        hook = TimerHook()
        tracer = Tracer(hooks=[hook])
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        count, total = hook.totals["a"]
        assert count == 2
        assert total >= 0.0

    def test_cprofile_hook_only_toggles_on_outermost_span(self):
        hook = CProfileHook()
        tracer = Tracer(hooks=[hook])
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(100))
        assert hook._depth == 0
        assert "function calls" in hook.stats_text(top=5)

    def test_hooks_satisfy_the_protocol(self):
        assert isinstance(TimerHook(), ProfileHook)
        assert isinstance(CProfileHook(), ProfileHook)

    def test_session_with_hooks_forces_tracing_on(self):
        hook = TimerHook()
        with session(trace=False, profile_hooks=[hook]) as obs:
            with obs.tracer.span("work"):
                pass
        assert "work" in hook.totals
