"""Integration tests crossing module boundaries.

These are the tests that justify trusting the reproduction: the
analytical model, the closed forms, the optimizer, and the grid-level
simulator must all tell the same story about the same scenario.
"""

import math

import pytest

from repro import (
    CostEvaluator,
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    TwoDimensionalModel,
    find_optimal_threshold,
    near_optimal_threshold,
)
from repro.analysis.validate import run_validation_campaign, DEFAULT_CASES
from repro.geometry import HexTopology, LineTopology
from repro.paging import optimal_contiguous_partition
from repro.simulation import run_replicated, validate_against_model
from repro.strategies import (
    DistanceStrategy,
    LocationAreaStrategy,
    MovementStrategy,
    TimerStrategy,
)

pytestmark = pytest.mark.slow


class TestModelVsSimulation:
    def test_1d_model_is_exact(self):
        # On the line the ring chain is the true distance process:
        # agreement should be within CI noise.
        model = OneDimensionalModel(MobilityParams(0.1, 0.02))
        comparison = validate_against_model(
            model, CostParams(40, 10), d=2, m=2, slots=120_000, replications=4, seed=1
        )
        assert comparison.relative_error < 0.03

    def test_2d_model_close_despite_aggregation(self):
        model = TwoDimensionalModel(MobilityParams(0.2, 0.01))
        comparison = validate_against_model(
            model, CostParams(80, 10), d=3, m=2, slots=120_000, replications=4, seed=2
        )
        assert comparison.relative_error < 0.05

    def test_campaign_smoke(self):
        outcomes = run_validation_campaign(
            cases=DEFAULT_CASES[:2], slots=100_000, replications=4, seed=3
        )
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.ok, (
                f"{outcome.case.label}: predicted "
                f"{outcome.comparison.predicted_total:.4f}, measured "
                f"{outcome.comparison.measured_total:.4f}"
            )

    def test_simulated_optimum_location(self):
        # Simulate several thresholds around the analytic optimum; the
        # measured cost minimum must sit at (or adjacent to) it.
        mobility = MobilityParams(0.2, 0.02)
        costs = CostParams(60, 10)
        model = OneDimensionalModel(mobility)
        analytic = find_optimal_threshold(
            model, costs, 1, convention="physical"
        ).threshold
        measured = {}
        for d in range(max(0, analytic - 2), analytic + 3):
            result = run_replicated(
                LineTopology(),
                lambda d=d: DistanceStrategy(d, max_delay=1),
                mobility,
                costs,
                slots=60_000,
                replications=3,
                seed=4,
            )
            measured[d] = result.mean_total_cost
        best = min(measured, key=measured.get)
        assert abs(best - analytic) <= 1


class TestStrategyComparison:
    """Distance-based must beat the baselines where the paper says so."""

    MOBILITY = MobilityParams(0.3, 0.02)
    COSTS = CostParams(30.0, 1.0)
    SLOTS = 50_000

    def _cost(self, topology, factory, seed):
        return run_replicated(
            topology,
            factory,
            self.MOBILITY,
            self.COSTS,
            slots=self.SLOTS,
            replications=3,
            seed=seed,
        ).mean_total_cost

    def test_distance_beats_movement_at_same_threshold(self, hexgrid):
        # Reference [3]'s own result: distance-based wins for random
        # walks because oscillation wastes movement budget.
        distance = self._cost(hexgrid, lambda: DistanceStrategy(3, max_delay=2), 10)
        movement = self._cost(hexgrid, lambda: MovementStrategy(3, max_delay=2), 10)
        assert distance < movement

    def test_distance_beats_timer(self, hexgrid):
        distance = self._cost(hexgrid, lambda: DistanceStrategy(3, max_delay=2), 11)
        timer = self._cost(hexgrid, lambda: TimerStrategy(10, max_delay=2), 11)
        assert distance < timer

    def test_distance_beats_location_area_at_same_radius(self, hexgrid):
        # Same paging area (g(3) cells), but LA suffers boundary
        # ping-pong; distance-based centers the area on the user.
        distance = self._cost(hexgrid, lambda: DistanceStrategy(3, max_delay=1), 12)
        la = self._cost(hexgrid, lambda: LocationAreaStrategy(3), 12)
        assert distance < la


class TestOptimalPartitionIntegration:
    def test_dp_plan_simulates_no_worse_than_sdf(self, hexgrid):
        # Wire the DP-optimal partition into a live simulation and
        # compare against the paper's SDF partition on identical seeds.
        mobility = MobilityParams(0.3, 0.02)
        costs = CostParams(30.0, 1.0)
        model = TwoDimensionalModel(mobility)
        d, m = 4, 2
        p = model.steady_state(d)
        sizes = [hexgrid.ring_size(i) for i in range(d + 1)]
        plan = optimal_contiguous_partition(d, m, p, sizes)

        def sdf_factory():
            return DistanceStrategy(d, max_delay=m)

        def dp_factory():
            return DistanceStrategy(d, max_delay=m, plan=plan)

        common = dict(
            topology=hexgrid,
            mobility=mobility,
            costs=costs,
            slots=60_000,
            replications=3,
            seed=13,
        )
        sdf_cost = run_replicated(strategy_factory=sdf_factory, **common).mean_total_cost
        dp_cost = run_replicated(strategy_factory=dp_factory, **common).mean_total_cost
        assert dp_cost <= sdf_cost * 1.02  # allow noise; DP must not lose


class TestNearOptimalIntegration:
    def test_near_optimal_threshold_simulates_close_to_exact(self):
        # End-to-end Section 7 story: run both d* and d' in simulation;
        # the corrected near-optimal scheme must be within a few percent.
        mobility = MobilityParams(0.05, 0.01)
        costs = CostParams(300, 10)
        m = 3
        exact_d = find_optimal_threshold(
            TwoDimensionalModel(mobility), costs, m
        ).threshold
        near_d = near_optimal_threshold(
            mobility, costs, m, apply_correction=True
        ).threshold
        topo = HexTopology()
        results = {}
        for label, d in (("exact", exact_d), ("near", near_d)):
            results[label] = run_replicated(
                topo,
                lambda d=d: DistanceStrategy(d, max_delay=m),
                mobility,
                costs,
                slots=80_000,
                replications=3,
                seed=14,
            ).mean_total_cost
        assert results["near"] <= results["exact"] * 1.10
