"""Randomized stress tests: protocol invariants under fuzzed configs.

Each fuzz case builds a random (topology, strategy, mobility, costs)
combination and runs the engine for a few thousand slots.  The
invariants below must hold for *every* combination -- any violation is
a real bug, not a tolerance issue:

1. the engine never raises (in particular, paging never misses the
   terminal -- the uncertainty-tracking contract);
2. accounting identities: total cost == U * updates + V * polled cells;
3. paging delays never exceed the strategy's worst-case bound;
4. the residing-area invariant holds for distance strategies.
"""

import math
import random

import pytest

from repro import CostParams, MobilityParams
from repro.geometry import HexTopology, LineTopology, SquareTopology
from repro.simulation import SimulationEngine
from repro.strategies import (
    DistanceStrategy,
    DynamicStrategy,
    LocationAreaStrategy,
    MovementStrategy,
    TimerStrategy,
)

pytestmark = pytest.mark.slow

TOPOLOGIES = [LineTopology(), HexTopology(), SquareTopology()]


def random_config(rng: random.Random):
    topology = rng.choice(TOPOLOGIES)
    q = rng.uniform(0.02, 0.7)
    c = rng.uniform(0.0, min(0.2, 1.0 - q))
    mobility = MobilityParams(q, c)
    costs = CostParams(rng.uniform(0, 200), rng.uniform(0, 20))
    delay = rng.choice([1, 2, 3, 5, math.inf])
    kind = rng.choice(["distance", "movement", "timer", "la", "dynamic"])
    if kind == "distance":
        strategy = DistanceStrategy(rng.randint(0, 6), max_delay=delay)
    elif kind == "movement":
        strategy = MovementStrategy(rng.randint(1, 8), max_delay=delay)
    elif kind == "timer":
        strategy = TimerStrategy(rng.randint(1, 20), max_delay=delay)
    elif kind == "la":
        if isinstance(topology, SquareTopology):
            topology = HexTopology()  # LA supports line/hex only
        strategy = LocationAreaStrategy(rng.randint(0, 4))
    else:
        strategy = DynamicStrategy(costs, max_delay=delay, recompute_interval=5)
    return topology, strategy, mobility, costs


@pytest.mark.parametrize("case_seed", range(30))
def test_fuzzed_configuration_invariants(case_seed):
    rng = random.Random(1000 + case_seed)
    topology, strategy, mobility, costs = random_config(rng)
    engine = SimulationEngine(
        topology, strategy, mobility, costs, seed=case_seed,
        event_mode=rng.choice(["exclusive", "independent"]),
    )
    slots = 4000
    snapshot = engine.run(slots)  # invariant 1: must not raise

    # Invariant 2: exact accounting identity.
    expected_total = (
        snapshot.updates * costs.update_cost
        + snapshot.polled_cells * costs.poll_cost
    )
    assert snapshot.total_cost == pytest.approx(expected_total)
    assert snapshot.slots == slots

    # Invariant 3: delay bound respected when the strategy declares one.
    bound = strategy.worst_case_delay()
    if bound is not None and snapshot.delay_histogram:
        assert max(snapshot.delay_histogram) <= bound

    # Invariant 4: distance strategies keep the residing-area contract.
    if isinstance(strategy, DistanceStrategy):
        distance = topology.distance(strategy.last_known, engine.walk.position)
        assert distance <= strategy.threshold


@pytest.mark.parametrize("case_seed", range(8))
def test_fuzzed_multi_terminal_network(case_seed):
    from repro.simulation import PCNetwork

    rng = random.Random(2000 + case_seed)
    topology = rng.choice([LineTopology(), HexTopology()])
    costs = CostParams(rng.uniform(1, 100), rng.uniform(0.1, 10))
    network = PCNetwork(topology, costs, seed=case_seed)
    for _ in range(rng.randint(2, 6)):
        q = rng.uniform(0.05, 0.5)
        c = rng.uniform(0.005, 0.1)
        network.add_terminal(
            DistanceStrategy(rng.randint(0, 4), max_delay=rng.choice([1, 2, 3])),
            MobilityParams(q, min(c, 1.0 - q)),
        )
    network.run(2500)
    # Register must agree with every strategy's own last-known state.
    for terminal in network.terminals:
        assert network.register.lookup(terminal.terminal_id) == (
            terminal.strategy.last_known
        )
    # Station counters must sum to the meters' event counts.
    total_updates = sum(s.updates_received for s in network.stations.values())
    assert total_updates == sum(
        t.engine.meter.snapshot().updates for t in network.terminals
    )
