"""Integration: analytic baseline models vs the simulated strategies.

The analytic models in :mod:`repro.core.baselines` and the strategy
implementations in :mod:`repro.strategies` were written independently
(closed-form balance equations vs an event-driven state machine), so
agreement here is strong evidence both are right.

Agreement is asserted through the conformance harness's reusable
criterion (:func:`repro.conformance.values_agree`): the analytic value
must fall within the replication confidence interval or within the
declared relative band -- the same check the ``simulation-within-ci``
invariant runs, rather than a private ``pytest.approx`` copy.
"""

import pytest

from repro import (
    CostParams,
    MobilityParams,
    location_area_costs,
    movement_based_costs,
    time_based_costs,
)
from repro.conformance import values_agree
from repro.geometry import HexTopology, LineTopology
from repro.simulation import run_replicated
from repro.strategies import LocationAreaStrategy, MovementStrategy, TimerStrategy

pytestmark = pytest.mark.slow

MOBILITY = MobilityParams(0.2, 0.02)
COSTS = CostParams(30.0, 2.0)
SLOTS = 80_000


def simulate(topology, factory, seed):
    return run_replicated(
        topology, factory, MOBILITY, COSTS, slots=SLOTS, replications=3, seed=seed
    )


def assert_agreement(analytic_total, sim, rel_limit):
    __tracebackhide__ = True
    assert values_agree(
        predicted=analytic_total,
        measured=sim.mean_total_cost,
        ci_half_width=sim.total_cost_ci(),
        rel_limit=rel_limit,
    ), (
        f"analytic {analytic_total:.6g} vs simulated {sim.mean_total_cost:.6g} "
        f"(ci {sim.total_cost_ci():.3g}, rel limit {rel_limit})"
    )


class TestMovementAgreement:
    @pytest.mark.parametrize("M", [1, 3, 6])
    def test_line(self, M):
        analytic = movement_based_costs(LineTopology(), MOBILITY, COSTS, M)
        sim = simulate(LineTopology(), lambda: MovementStrategy(M, max_delay=1), 40 + M)
        assert_agreement(analytic.total_cost, sim, rel_limit=0.03)

    def test_hex(self):
        analytic = movement_based_costs(HexTopology(), MOBILITY, COSTS, 3)
        sim = simulate(HexTopology(), lambda: MovementStrategy(3, max_delay=1), 50)
        assert_agreement(analytic.total_cost, sim, rel_limit=0.03)

    def test_components_agree(self):
        analytic = movement_based_costs(LineTopology(), MOBILITY, COSTS, 4)
        sim = simulate(LineTopology(), lambda: MovementStrategy(4, max_delay=1), 51)
        assert sim.mean_update_cost == pytest.approx(analytic.update_cost, rel=0.05)
        assert sim.mean_paging_cost == pytest.approx(analytic.paging_cost, rel=0.05)


class TestTimerAgreement:
    @pytest.mark.parametrize("T", [1, 5, 12])
    def test_line(self, T):
        analytic = time_based_costs(LineTopology(), MOBILITY, COSTS, T)
        sim = simulate(LineTopology(), lambda: TimerStrategy(T, max_delay=1), 60 + T)
        assert_agreement(analytic.total_cost, sim, rel_limit=0.03)

    def test_hex(self):
        analytic = time_based_costs(HexTopology(), MOBILITY, COSTS, 5)
        sim = simulate(HexTopology(), lambda: TimerStrategy(5, max_delay=1), 70)
        assert_agreement(analytic.total_cost, sim, rel_limit=0.03)


class TestLocationAreaAgreement:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_line(self, n):
        analytic = location_area_costs(LineTopology(), MOBILITY, COSTS, n)
        sim = simulate(LineTopology(), lambda: LocationAreaStrategy(n), 80 + n)
        assert_agreement(analytic.total_cost, sim, rel_limit=0.04)

    @pytest.mark.parametrize("n", [1, 2])
    def test_hex(self, n):
        analytic = location_area_costs(HexTopology(), MOBILITY, COSTS, n)
        sim = simulate(HexTopology(), lambda: LocationAreaStrategy(n), 90 + n)
        assert_agreement(analytic.total_cost, sim, rel_limit=0.04)
