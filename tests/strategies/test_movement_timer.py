"""Unit tests for the movement-based and time-based baseline strategies."""

import math

import pytest

from repro import ParameterError
from repro.strategies import MovementStrategy, TimerStrategy


class TestMovementStrategy:
    def test_update_fires_on_mth_move(self, line):
        strategy = MovementStrategy(3)
        strategy.attach(line, 0)
        assert not strategy.on_move(1)
        assert not strategy.on_move(0)
        assert strategy.on_move(1)

    def test_counter_resets_on_fix(self, line):
        strategy = MovementStrategy(2)
        strategy.attach(line, 0)
        strategy.on_move(1)
        strategy.on_location_known(1)
        assert strategy.moves_since_known == 0
        assert not strategy.on_move(2)
        assert strategy.on_move(1)

    def test_oscillation_still_counts(self, line):
        # The documented weakness vs distance-based: ping-ponging
        # between two cells burns the movement budget without going
        # anywhere.
        strategy = MovementStrategy(4)
        strategy.attach(line, 0)
        results = [strategy.on_move(c) for c in (1, 0, 1, 0)]
        assert results == [False, False, False, True]

    def test_uncertainty_radius_tracks_moves(self, line):
        strategy = MovementStrategy(5)
        strategy.attach(line, 0)
        strategy.on_move(1)
        strategy.on_move(2)
        assert strategy.uncertainty_radius() == 2

    def test_paging_covers_reachable_cells(self, hexgrid):
        strategy = MovementStrategy(4, max_delay=2)
        strategy.attach(hexgrid, (0, 0))
        strategy.on_move((1, 0))
        strategy.on_move((1, -1))
        covered = {cell for group in strategy.polling_groups() for cell in group}
        assert set(hexgrid.disk((0, 0), 2)) <= covered

    def test_paging_fresh_fix_polls_one_cell(self, line):
        strategy = MovementStrategy(4)
        strategy.attach(line, 7)
        groups = list(strategy.polling_groups())
        assert groups == [[7]]

    def test_worst_case_delay(self):
        assert MovementStrategy(4, max_delay=2).worst_case_delay() == 2
        assert MovementStrategy(4, max_delay=math.inf).worst_case_delay() == 4

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_invalid_threshold(self, bad):
        with pytest.raises(ParameterError):
            MovementStrategy(bad)


class TestTimerStrategy:
    def test_update_fires_every_period(self, line):
        strategy = TimerStrategy(3)
        strategy.attach(line, 0)
        fired = [strategy.on_slot(0, t) for t in range(3)]
        assert fired == [False, False, True]

    def test_fires_even_without_movement(self, line):
        # The stationary-terminal weakness: updates burn energy anyway.
        strategy = TimerStrategy(2)
        strategy.attach(line, 5)
        assert not strategy.on_slot(5, 0)
        assert strategy.on_slot(5, 1)

    def test_moves_never_trigger(self, line):
        strategy = TimerStrategy(10)
        strategy.attach(line, 0)
        assert not strategy.on_move(1)
        assert not strategy.on_move(2)

    def test_timer_resets_on_fix(self, line):
        strategy = TimerStrategy(3)
        strategy.attach(line, 0)
        strategy.on_slot(0, 0)
        strategy.on_location_known(0)
        fired = [strategy.on_slot(0, t) for t in (1, 2, 3)]
        assert fired == [False, False, True]

    def test_uncertainty_grows_with_time(self, line):
        strategy = TimerStrategy(5)
        strategy.attach(line, 0)
        strategy.on_slot(0, 0)
        strategy.on_slot(0, 1)
        assert strategy.uncertainty_radius() == 2

    def test_paging_covers_elapsed_radius(self, line):
        strategy = TimerStrategy(5, max_delay=1)
        strategy.attach(line, 0)
        strategy.on_slot(0, 0)
        strategy.on_move(1)
        strategy.on_slot(1, 1)
        strategy.on_move(2)
        (group,) = strategy.polling_groups()
        assert 2 in group  # actual position covered
        assert sorted(group) == [-2, -1, 0, 1, 2]

    def test_worst_case_delay(self):
        assert TimerStrategy(7, max_delay=3).worst_case_delay() == 3
        assert TimerStrategy(7, max_delay=math.inf).worst_case_delay() == 8

    @pytest.mark.parametrize("bad", [0, -2, 0.5, True])
    def test_invalid_period(self, bad):
        with pytest.raises(ParameterError):
            TimerStrategy(bad)
