"""Unit tests for the paper's distance-based strategy."""

import math

import pytest

from repro.geometry import HexTopology, LineTopology
from repro.paging import partition_from_sizes
from repro.strategies import DistanceStrategy


class TestUpdateRule:
    def test_no_update_within_threshold(self, line):
        strategy = DistanceStrategy(2)
        strategy.attach(line, 0)
        assert not strategy.on_move(1)
        assert not strategy.on_move(2)

    def test_update_beyond_threshold(self, line):
        strategy = DistanceStrategy(2)
        strategy.attach(line, 0)
        assert strategy.on_move(3)

    def test_center_resets_after_update(self, line):
        strategy = DistanceStrategy(1)
        strategy.attach(line, 0)
        assert strategy.on_move(2)
        strategy.on_location_known(2)
        assert strategy.center == 2
        assert not strategy.on_move(3)
        assert strategy.on_move(4)

    def test_threshold_zero_updates_on_any_move(self, hexgrid):
        strategy = DistanceStrategy(0)
        strategy.attach(hexgrid, (0, 0))
        assert strategy.on_move((1, 0))

    def test_hex_distances(self, hexgrid):
        strategy = DistanceStrategy(2)
        strategy.attach(hexgrid, (0, 0))
        assert not strategy.on_move((1, 1))  # distance 2
        assert strategy.on_move((2, 1))  # distance 3


class TestPaging:
    def test_groups_follow_sdf_plan(self, line):
        strategy = DistanceStrategy(2, max_delay=2)
        strategy.attach(line, 0)
        groups = list(strategy.polling_groups())
        assert groups[0] == [0]
        assert sorted(groups[1]) == [-2, -1, 1, 2]

    def test_groups_cover_residing_area(self, hexgrid):
        strategy = DistanceStrategy(3, max_delay=2)
        strategy.attach(hexgrid, (1, -1))
        covered = {cell for group in strategy.polling_groups() for cell in group}
        assert covered == set(hexgrid.disk((1, -1), 3))

    def test_groups_centered_on_current_center(self, line):
        strategy = DistanceStrategy(1, max_delay=1)
        strategy.attach(line, 0)
        strategy.on_location_known(10)
        (group,) = strategy.polling_groups()
        assert sorted(group) == [9, 10, 11]

    def test_unbounded_delay_polls_per_ring(self, line):
        strategy = DistanceStrategy(3, max_delay=math.inf)
        strategy.attach(line, 0)
        groups = list(strategy.polling_groups())
        assert len(groups) == 4
        assert groups[0] == [0]

    def test_worst_case_delay(self):
        assert DistanceStrategy(5, max_delay=3).worst_case_delay() == 3
        assert DistanceStrategy(5, max_delay=math.inf).worst_case_delay() == 6

    def test_custom_plan(self, line):
        plan = partition_from_sizes(2, [2, 1])
        strategy = DistanceStrategy(2, max_delay=2, plan=plan)
        strategy.attach(line, 0)
        groups = list(strategy.polling_groups())
        assert sorted(groups[0]) == [-1, 0, 1]
        assert sorted(groups[1]) == [-2, 2]

    def test_mismatched_plan_rejected(self):
        plan = partition_from_sizes(3, [2, 2])
        with pytest.raises(ValueError):
            DistanceStrategy(2, max_delay=2, plan=plan)

    def test_repr(self):
        assert "threshold=4" in repr(DistanceStrategy(4, max_delay=2))
