"""Unit tests for the dynamic (online-adaptive) strategy, plus edge
cases shared by every registered scheme: a degenerate single-cell
topology, unbounded delay (``m = inf``), and the mobility extremes
(always-moving ``q = 1`` and the near-zero-mobility limit)."""

import math

import pytest

from repro import CostParams, MobilityParams, ParameterError
from repro.core.baselines import (
    location_area_costs,
    movement_based_costs,
    time_based_costs,
)
from repro.geometry import HexTopology, LineTopology
from repro.geometry.topology import CellTopology
from repro.simulation import SimulationEngine
from repro.strategies import (
    DistanceStrategy,
    DynamicStrategy,
    JointlyOptimalStrategy,
    LocationAreaStrategy,
    MovementStrategy,
    TimerStrategy,
    exact_model_for_topology,
    optimize_joint_policy,
)

COSTS = CostParams(update_cost=50.0, poll_cost=10.0)


class SingleCellTopology(CellTopology):
    """One isolated cell: no neighbors, every distance is zero."""

    degree = 0
    dimensions = 1

    @property
    def origin(self):
        return 0

    def neighbors(self, cell):
        return []

    def distance(self, a, b):
        return 0

    def ring(self, center, radius):
        return [center] if radius == 0 else []

    def ring_size(self, radius):
        return 1 if radius == 0 else 0


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"smoothing": 0.0},
            {"smoothing": 1.0},
            {"recompute_interval": 0},
            {"initial_threshold": -1},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            DynamicStrategy(COSTS, **kwargs)

    def test_initial_threshold_used(self, line):
        strategy = DynamicStrategy(COSTS, initial_threshold=3)
        strategy.attach(line, 0)
        assert not strategy.on_move(3)
        assert strategy.on_move(4)


class TestEstimation:
    def test_estimates_track_truth(self, line):
        mobility = MobilityParams(0.2, 0.05)
        strategy = DynamicStrategy(COSTS, smoothing=0.005, initial_threshold=2)
        engine = SimulationEngine(line, strategy, mobility, COSTS, seed=3)
        engine.run(30_000)
        assert strategy.q_hat == pytest.approx(0.2 * 0.95, abs=0.05)
        assert strategy.c_hat == pytest.approx(0.05, abs=0.03)

    def test_recomputation_happens(self, line):
        mobility = MobilityParams(0.2, 0.05)
        strategy = DynamicStrategy(COSTS, recompute_interval=5, initial_threshold=2)
        engine = SimulationEngine(line, strategy, mobility, COSTS, seed=4)
        engine.run(20_000)
        assert strategy.recomputations > 0


class TestConvergence:
    def test_threshold_converges_near_static_optimum_1d(self, line):
        from repro import OneDimensionalModel, find_optimal_threshold

        mobility = MobilityParams(0.2, 0.02)
        optimal = find_optimal_threshold(
            OneDimensionalModel(mobility), COSTS, 1
        ).threshold
        strategy = DynamicStrategy(
            COSTS, max_delay=1, smoothing=0.002, recompute_interval=10
        )
        engine = SimulationEngine(line, strategy, mobility, COSTS, seed=5)
        engine.run(60_000)
        assert abs(strategy.threshold - optimal) <= 1

    def test_runs_on_hex_grid(self, hexgrid):
        mobility = MobilityParams(0.3, 0.03)
        strategy = DynamicStrategy(COSTS, max_delay=2, recompute_interval=5)
        engine = SimulationEngine(hexgrid, strategy, mobility, COSTS, seed=6)
        snapshot = engine.run(15_000)
        assert snapshot.slots == 15_000
        assert strategy.recomputations > 0

    def test_adapts_when_mobility_changes(self, line):
        # Slow walker becomes fast: the threshold should not shrink.
        strategy = DynamicStrategy(
            COSTS, max_delay=1, smoothing=0.01, recompute_interval=5
        )
        slow = MobilityParams(0.02, 0.02)
        engine = SimulationEngine(line, strategy, slow, COSTS, seed=7)
        engine.run(30_000)
        threshold_slow = strategy.threshold
        # Re-drive the same strategy object with faster mobility.
        engine2 = SimulationEngine(line, strategy, MobilityParams(0.4, 0.02), COSTS, seed=8)
        # attach() reset last_known but keeps the learned estimates; run on.
        engine2.run(30_000)
        assert strategy.threshold >= threshold_slow


class TestSingleCellTopology:
    """A terminal that can never move: no scheme should ever update
    except the timer, which fires on wall-clock alone."""

    @pytest.mark.parametrize(
        "strategy",
        [
            DistanceStrategy(threshold=2, max_delay=2),
            MovementStrategy(movement_threshold=2),
            DynamicStrategy(COSTS, initial_threshold=2),
        ],
    )
    def test_motion_triggered_schemes_never_update(self, strategy):
        topo = SingleCellTopology()
        strategy.attach(topo, topo.origin)
        updates = sum(
            strategy.on_slot(topo.origin, slot) for slot in range(50)
        )
        assert updates == 0
        assert not strategy.on_move(topo.origin)

    def test_timer_still_fires_on_schedule(self):
        topo = SingleCellTopology()
        strategy = TimerStrategy(period=3)
        strategy.attach(topo, topo.origin)
        updates = 0
        for slot in range(9):
            if strategy.on_slot(topo.origin, slot):
                updates += 1
                # The engine acknowledges an update by pinpointing the
                # terminal, which restarts the timer.
                strategy.on_location_known(topo.origin)
        assert updates == 3

    def test_paging_covers_the_only_cell(self):
        topo = SingleCellTopology()
        strategy = DistanceStrategy(threshold=2, max_delay=2)
        strategy.attach(topo, topo.origin)
        polled = [cell for group in strategy.polling_groups() for cell in group]
        assert topo.origin in polled

    def test_geometry_bound_schemes_reject_it(self):
        topo = SingleCellTopology()
        with pytest.raises(ParameterError):
            LocationAreaStrategy(radius=1).attach(topo, topo.origin)
        with pytest.raises(ParameterError):
            JointlyOptimalStrategy(
                MobilityParams(0.2, 0.02), COSTS
            ).attach(topo, topo.origin)
        with pytest.raises(ParameterError):
            exact_model_for_topology(topo, MobilityParams(0.2, 0.02))


class TestUnboundedDelay:
    """``m = inf`` lifts the delay constraint: per-ring paging."""

    def test_distance_strategy_runs(self, line):
        mobility = MobilityParams(0.2, 0.05)
        strategy = DistanceStrategy(threshold=3, max_delay=math.inf)
        snapshot = SimulationEngine(
            line, strategy, mobility, COSTS, seed=11
        ).run(5_000)
        assert snapshot.slots == 5_000
        assert math.isfinite(snapshot.total_cost)
        # Per-ring paging: one group per ring of the residence disk.
        assert len(list(strategy.polling_groups())) == strategy.threshold + 1

    def test_timer_strategy_accepts_inf(self, hexgrid):
        mobility = MobilityParams(0.2, 0.05)
        strategy = TimerStrategy(period=5, max_delay=math.inf)
        snapshot = SimulationEngine(
            hexgrid, strategy, mobility, COSTS, seed=12
        ).run(3_000)
        assert snapshot.slots == 3_000
        assert strategy.worst_case_delay() == strategy.period + 1

    def test_jointly_optimal_runs_at_inf(self, hexgrid):
        mobility = MobilityParams(0.2, 0.05)
        strategy = JointlyOptimalStrategy(
            mobility, COSTS, max_delay=math.inf, d_max=15
        )
        snapshot = SimulationEngine(
            hexgrid, strategy, mobility, COSTS, seed=13
        ).run(2_000)
        assert snapshot.slots == 2_000
        assert strategy.policy is not None
        # Unconstrained paging polls ring by ring.
        assert len(strategy.plan.subareas) == strategy.threshold + 1


class TestMobilityLimits:
    """The q = 1 (always moving, never called) and q -> 0 extremes."""

    def test_always_moving_timer_cost_is_update_rate(self, line):
        mob = MobilityParams(1.0, 0.0)
        for period in (1, 4, 10):
            outcome = time_based_costs(line, mob, COSTS, period)
            assert outcome.paging_cost == 0.0
            assert outcome.total_cost == pytest.approx(
                COSTS.update_cost / period
            )

    def test_always_moving_movement_cost_is_uniform(self, hexgrid):
        mob = MobilityParams(1.0, 0.0)
        for M in (1, 3, 7):
            outcome = movement_based_costs(hexgrid, mob, COSTS, M)
            assert outcome.paging_cost == 0.0
            assert outcome.total_cost == pytest.approx(COSTS.update_cost / M)

    def test_always_moving_joint_policy_pays_no_paging(self):
        from repro import OneDimensionalModel

        mob = MobilityParams(1.0, 0.0)
        policy = optimize_joint_policy(
            OneDimensionalModel(mob), COSTS, 2, d_max=12
        )
        assert policy.paging_cost == 0.0
        assert policy.update_cost > 0
        assert policy.total_cost <= policy.baseline_cost + 1e-12

    def test_near_zero_mobility_update_costs_vanish(self, line, hexgrid):
        from repro import OneDimensionalModel

        mob = MobilityParams(1e-6, 0.02)
        assert movement_based_costs(line, mob, COSTS, 2).update_cost < 1e-4
        assert location_area_costs(hexgrid, mob, COSTS, 2).update_cost < 1e-4
        policy = optimize_joint_policy(
            OneDimensionalModel(mob), COSTS, 1, d_max=12
        )
        assert policy.update_cost < 1e-3
        # A near-static terminal is best paged where it registered.
        assert policy.threshold == 0
