"""Unit tests for the dynamic (online-adaptive) strategy."""

import pytest

from repro import CostParams, MobilityParams, ParameterError
from repro.geometry import HexTopology, LineTopology
from repro.simulation import SimulationEngine
from repro.strategies import DynamicStrategy

COSTS = CostParams(update_cost=50.0, poll_cost=10.0)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"smoothing": 0.0},
            {"smoothing": 1.0},
            {"recompute_interval": 0},
            {"initial_threshold": -1},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            DynamicStrategy(COSTS, **kwargs)

    def test_initial_threshold_used(self, line):
        strategy = DynamicStrategy(COSTS, initial_threshold=3)
        strategy.attach(line, 0)
        assert not strategy.on_move(3)
        assert strategy.on_move(4)


class TestEstimation:
    def test_estimates_track_truth(self, line):
        mobility = MobilityParams(0.2, 0.05)
        strategy = DynamicStrategy(COSTS, smoothing=0.005, initial_threshold=2)
        engine = SimulationEngine(line, strategy, mobility, COSTS, seed=3)
        engine.run(30_000)
        assert strategy.q_hat == pytest.approx(0.2 * 0.95, abs=0.05)
        assert strategy.c_hat == pytest.approx(0.05, abs=0.03)

    def test_recomputation_happens(self, line):
        mobility = MobilityParams(0.2, 0.05)
        strategy = DynamicStrategy(COSTS, recompute_interval=5, initial_threshold=2)
        engine = SimulationEngine(line, strategy, mobility, COSTS, seed=4)
        engine.run(20_000)
        assert strategy.recomputations > 0


class TestConvergence:
    def test_threshold_converges_near_static_optimum_1d(self, line):
        from repro import OneDimensionalModel, find_optimal_threshold

        mobility = MobilityParams(0.2, 0.02)
        optimal = find_optimal_threshold(
            OneDimensionalModel(mobility), COSTS, 1
        ).threshold
        strategy = DynamicStrategy(
            COSTS, max_delay=1, smoothing=0.002, recompute_interval=10
        )
        engine = SimulationEngine(line, strategy, mobility, COSTS, seed=5)
        engine.run(60_000)
        assert abs(strategy.threshold - optimal) <= 1

    def test_runs_on_hex_grid(self, hexgrid):
        mobility = MobilityParams(0.3, 0.03)
        strategy = DynamicStrategy(COSTS, max_delay=2, recompute_interval=5)
        engine = SimulationEngine(hexgrid, strategy, mobility, COSTS, seed=6)
        snapshot = engine.run(15_000)
        assert snapshot.slots == 15_000
        assert strategy.recomputations > 0

    def test_adapts_when_mobility_changes(self, line):
        # Slow walker becomes fast: the threshold should not shrink.
        strategy = DynamicStrategy(
            COSTS, max_delay=1, smoothing=0.01, recompute_interval=5
        )
        slow = MobilityParams(0.02, 0.02)
        engine = SimulationEngine(line, strategy, slow, COSTS, seed=7)
        engine.run(30_000)
        threshold_slow = strategy.threshold
        # Re-drive the same strategy object with faster mobility.
        engine2 = SimulationEngine(line, strategy, MobilityParams(0.4, 0.02), COSTS, seed=8)
        # attach() reset last_known but keeps the learned estimates; run on.
        engine2.run(30_000)
        assert strategy.threshold >= threshold_slow
