"""Unit tests for the strategy interface and registry."""

import pytest

from repro import ParameterError, SimulationError
from repro.geometry import LineTopology
from repro.strategies import (
    DistanceStrategy,
    create_strategy,
    register_strategy,
    strategy_names,
)
from repro.strategies.base import UpdateStrategy


class TestRegistry:
    def test_builtins_registered(self):
        names = strategy_names()
        for expected in ("distance", "movement", "timer", "location-area", "dynamic"):
            assert expected in names

    def test_create_by_name(self):
        strategy = create_strategy("distance", threshold=3, max_delay=2)
        assert isinstance(strategy, DistanceStrategy)
        assert strategy.threshold == 3

    def test_unknown_name(self):
        with pytest.raises(ParameterError):
            create_strategy("teleport")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError):
            register_strategy("distance", DistanceStrategy)


class TestLifecycle:
    def test_unattached_access_raises(self):
        strategy = DistanceStrategy(2)
        with pytest.raises(SimulationError):
            _ = strategy.topology
        with pytest.raises(SimulationError):
            _ = strategy.last_known

    def test_attach_sets_last_known(self, line):
        strategy = DistanceStrategy(2)
        strategy.attach(line, 5)
        assert strategy.last_known == 5
        assert strategy.topology is line

    def test_attach_validates_cell(self, line):
        strategy = DistanceStrategy(2)
        with pytest.raises(ValueError):
            strategy.attach(line, (0, 0))

    def test_on_location_known_updates(self, line):
        strategy = DistanceStrategy(2)
        strategy.attach(line, 0)
        strategy.on_location_known(7)
        assert strategy.last_known == 7

    def test_default_on_slot_is_noop(self, line):
        strategy = DistanceStrategy(2)
        strategy.attach(line, 0)
        assert strategy.on_slot(0, 0) is False

    def test_default_worst_case_delay(self, line):
        class Minimal(UpdateStrategy):
            name = "minimal"

            def on_move(self, position):
                return False

            def polling_groups(self):
                yield [self.last_known]

            def _reset_state(self, position):
                pass

        strategy = Minimal()
        assert strategy.worst_case_delay() is None
