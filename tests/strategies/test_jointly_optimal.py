"""Unit tests for the jointly optimal paging+registration solver."""

import math

import pytest

from repro import (
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    ParameterError,
    TwoDimensionalModel,
    find_optimal_threshold,
)
from repro.geometry import HexTopology, LineTopology, SquareTopology
from repro.paging import partition_from_sizes, sdf_partition
from repro.simulation import SimulationEngine
from repro.strategies import (
    JointlyOptimalStrategy,
    adapt_plan,
    create_strategy,
    exact_model_for_topology,
    optimize_joint_policy,
)

MOBILITY = MobilityParams(move_probability=0.2, call_probability=0.02)
COSTS = CostParams(update_cost=50.0, poll_cost=10.0)


class TestAdaptPlan:
    def test_identity_when_threshold_unchanged(self):
        plan = sdf_partition(4, 2)
        assert adapt_plan(plan, 4, 2) is plan

    def test_shrink_truncates_groups(self):
        plan = partition_from_sizes(5, [2, 2, 2])
        shrunk = adapt_plan(plan, 2, 3)
        assert shrunk.threshold == 2
        assert [len(g) for g in shrunk.subareas] == [2, 1]

    def test_grow_appends_then_merges(self):
        plan = partition_from_sizes(2, [2, 1])
        grown = adapt_plan(plan, 5, 3)
        assert grown.threshold == 5
        # One new singleton group is allowed (m=3), then the delay
        # bound forces the remaining rings into the last group.
        assert [len(g) for g in grown.subareas] == [2, 1, 3]

    def test_grow_unbounded_delay_stays_per_ring(self):
        plan = partition_from_sizes(1, [1, 1])
        grown = adapt_plan(plan, 4, math.inf)
        assert [len(g) for g in grown.subareas] == [1, 1, 1, 1, 1]

    def test_rejects_non_contiguous_plans(self):
        plan = partition_from_sizes(2, [2, 1])
        scrambled = type(plan)(
            threshold=2, subareas=((2,), (0, 1))
        )
        with pytest.raises(ParameterError):
            adapt_plan(scrambled, 3, 2)


class TestOptimizeJointPolicy:
    @pytest.mark.parametrize("m", [1, 2, 3, math.inf])
    def test_dominates_distance_optimum(self, m):
        for model in (OneDimensionalModel(MOBILITY), TwoDimensionalModel(MOBILITY)):
            policy = optimize_joint_policy(model, COSTS, m, d_max=20)
            assert policy.total_cost <= policy.baseline_cost + 1e-9

    def test_history_is_monotone_and_starts_at_distance(self):
        model = TwoDimensionalModel(MOBILITY)
        baseline = find_optimal_threshold(model, COSTS, 3, d_max=20)
        policy = optimize_joint_policy(model, COSTS, 3, d_max=20)
        history = policy.cost_history()
        assert history[0] == pytest.approx(baseline.total_cost, abs=1e-9)
        assert all(b <= a + 1e-12 for a, b in zip(history, history[1:]))
        assert policy.converged
        assert policy.iterations <= 25

    def test_blanket_bound_collapses_to_distance(self):
        model = OneDimensionalModel(MOBILITY)
        baseline = find_optimal_threshold(model, COSTS, 1, d_max=20)
        policy = optimize_joint_policy(model, COSTS, 1, d_max=20)
        assert policy.threshold == baseline.threshold
        assert policy.total_cost == pytest.approx(
            baseline.total_cost, abs=1e-12
        )
        assert len(policy.plan.subareas) == 1

    def test_plan_respects_delay_bound(self):
        policy = optimize_joint_policy(
            TwoDimensionalModel(MOBILITY), COSTS, 2, d_max=20
        )
        assert len(policy.plan.subareas) <= 2
        assert policy.expected_delay <= 2 + 1e-12

    def test_totals_are_consistent(self):
        policy = optimize_joint_policy(
            OneDimensionalModel(MOBILITY), COSTS, 3, d_max=15
        )
        assert policy.total_cost == pytest.approx(
            policy.update_cost + policy.paging_cost
        )
        assert policy.history[-1].total_cost == pytest.approx(
            policy.total_cost, abs=1e-12
        )

    def test_parameter_validation(self):
        model = OneDimensionalModel(MOBILITY)
        with pytest.raises(ParameterError):
            optimize_joint_policy(model, COSTS, 2, max_iterations=0)
        with pytest.raises(ParameterError):
            optimize_joint_policy(model, COSTS, 2, tol=-1.0)
        with pytest.raises(ParameterError):
            optimize_joint_policy(model, COSTS, 0)


class TestExactModelForTopology:
    def test_maps_each_geometry(self):
        assert isinstance(
            exact_model_for_topology(LineTopology(), MOBILITY),
            OneDimensionalModel,
        )
        assert isinstance(
            exact_model_for_topology(HexTopology(), MOBILITY),
            TwoDimensionalModel,
        )
        square = exact_model_for_topology(SquareTopology(), MOBILITY)
        assert square.topology.degree == 4


class TestJointlyOptimalStrategy:
    def test_registered_by_name(self):
        strategy = create_strategy(
            "jointly-optimal", mobility=MOBILITY, costs=COSTS, max_delay=2
        )
        assert isinstance(strategy, JointlyOptimalStrategy)

    def test_attach_solves_once_and_configures_distance_policy(self):
        strategy = JointlyOptimalStrategy(MOBILITY, COSTS, max_delay=2, d_max=15)
        topo = HexTopology()
        strategy.attach(topo, topo.origin)
        policy = strategy.policy
        assert policy is not None
        assert strategy.threshold == policy.threshold
        assert strategy.plan == policy.plan
        # Re-attach keeps the solved policy (the solve is offline).
        strategy.attach(topo, topo.origin)
        assert strategy.policy is policy

    def test_engine_run_and_paging_covers_disk(self, line):
        strategy = JointlyOptimalStrategy(
            MOBILITY, COSTS, max_delay=2, d_max=15
        )
        snapshot = SimulationEngine(
            line, strategy, MOBILITY, COSTS, seed=21
        ).run(5_000)
        assert snapshot.slots == 5_000
        polled = [c for group in strategy.polling_groups() for c in group]
        expected = list(line.disk(strategy.last_known, strategy.threshold))
        assert sorted(polled) == sorted(expected)
