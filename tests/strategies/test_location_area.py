"""Unit tests for the static location-area baseline, including the hex
LA tessellation."""

import pytest

from repro import ParameterError
from repro.geometry import HexTopology, LineTopology
from repro.strategies import LocationAreaStrategy, hex_la_center, line_la_index


class TestLineLAs:
    def test_block_indexing(self):
        # radius 1 -> width 3, LA 0 covers cells -1..1.
        assert [line_la_index(c, 1) for c in (-2, -1, 0, 1, 2)] == [-1, 0, 0, 0, 1]

    def test_radius_zero_one_cell_per_la(self):
        assert line_la_index(5, 0) == 5

    def test_update_on_boundary_crossing(self):
        strategy = LocationAreaStrategy(1)
        strategy.attach(LineTopology(), 0)
        assert not strategy.on_move(1)
        assert strategy.on_move(2)  # enters LA 1

    def test_ping_pong_at_boundary(self):
        # The classic LA pathology the paper's introduction describes:
        # oscillating across a boundary updates every move.
        strategy = LocationAreaStrategy(1)
        strategy.attach(LineTopology(), 1)  # LA 0 edge cell
        assert strategy.on_move(2)  # LA 1
        strategy.on_location_known(2)
        assert strategy.on_move(1)  # back to LA 0
        strategy.on_location_known(1)
        assert strategy.on_move(2)

    def test_paging_polls_whole_la(self):
        strategy = LocationAreaStrategy(1)
        strategy.attach(LineTopology(), 4)  # LA 1 covers 2..4? width 3: (4+1)//3=1 -> cells 2,3,4
        (group,) = strategy.polling_groups()
        assert sorted(group) == [2, 3, 4]

    def test_worst_case_delay_is_one(self):
        assert LocationAreaStrategy(2).worst_case_delay() == 1


class TestHexLATessellation:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_perfect_tiling(self, radius):
        # Every cell in a large patch must belong to exactly one LA
        # center within distance radius -- the cluster lattice tiles.
        topo = HexTopology()
        span = 3 * radius + 4
        for q in range(-span, span + 1):
            for r in range(-span, span + 1):
                center = hex_la_center((q, r), radius)
                assert topo.distance(center, (q, r)) <= radius

    @pytest.mark.parametrize("radius", [1, 2])
    def test_la_sizes_are_coverage(self, radius):
        # Group a patch by LA center; interior LAs must have exactly
        # g(radius) cells.
        topo = HexTopology()
        span = 6 * radius + 6
        las = {}
        for q in range(-span, span + 1):
            for r in range(-span, span + 1):
                las.setdefault(hex_la_center((q, r), radius), []).append((q, r))
        expected = topo.coverage(radius)
        interior = [
            cells
            for center, cells in las.items()
            if topo.distance((0, 0), center) <= span - 2 * radius - 1
        ]
        assert interior
        for cells in interior:
            assert len(cells) == expected

    def test_center_cell_maps_to_itself(self):
        assert hex_la_center((0, 0), 2) == (0, 0)

    def test_lattice_points_are_centers(self):
        # v1 = (n+1, n) is an LA center for n = 2.
        assert hex_la_center((3, 2), 2) == (3, 2)

    def test_assignment_is_deterministic(self):
        a = hex_la_center((7, -3), 2)
        b = hex_la_center((7, -3), 2)
        assert a == b


class TestHexLAStrategy:
    def test_update_only_on_la_change(self):
        strategy = LocationAreaStrategy(2)
        topo = HexTopology()
        strategy.attach(topo, (0, 0))
        # Moves within the radius-2 LA around (0,0) never update.
        assert not strategy.on_move((1, 0))
        assert not strategy.on_move((2, 0))
        # (3, 0) is distance 3 from (0,0): a different LA.
        assert strategy.on_move((3, 0))

    def test_paging_covers_current_la(self):
        strategy = LocationAreaStrategy(1)
        topo = HexTopology()
        strategy.attach(topo, (0, 0))
        (group,) = strategy.polling_groups()
        assert set(group) == set(topo.disk((0, 0), 1))

    def test_current_la_after_fix(self):
        strategy = LocationAreaStrategy(1)
        strategy.attach(HexTopology(), (0, 0))
        strategy.on_location_known((2, 1))
        assert strategy.current_la == hex_la_center((2, 1), 1)


class TestValidation:
    @pytest.mark.parametrize("bad", [-1, 0.5, True])
    def test_invalid_radius(self, bad):
        with pytest.raises(ParameterError):
            LocationAreaStrategy(bad)

    def test_unsupported_topology(self):
        class FakeTopology(LineTopology):
            pass

        strategy = LocationAreaStrategy(1)
        # Subclass is fine; a genuinely different topology is not.
        strategy.attach(FakeTopology(), 0)


class TestSquareLATessellation:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_perfect_lee_tiling(self, radius):
        from repro.geometry import SquareTopology
        from repro.strategies import square_la_center

        topo = SquareTopology()
        span = 3 * radius + 4
        for x in range(-span, span + 1):
            for y in range(-span, span + 1):
                center = square_la_center((x, y), radius)
                assert topo.distance(center, (x, y)) <= radius

    @pytest.mark.parametrize("radius", [1, 2])
    def test_interior_la_sizes_are_coverage(self, radius):
        from repro.geometry import SquareTopology
        from repro.strategies import square_la_center

        topo = SquareTopology()
        span = 6 * radius + 6
        las = {}
        for x in range(-span, span + 1):
            for y in range(-span, span + 1):
                las.setdefault(square_la_center((x, y), radius), []).append((x, y))
        expected = topo.coverage(radius)
        interior = [
            cells
            for center, cells in las.items()
            if topo.distance((0, 0), center) <= span - 2 * radius - 1
        ]
        assert interior
        for cells in interior:
            assert len(cells) == expected

    def test_lattice_point_is_own_center(self):
        from repro.strategies import square_la_center

        # v1 = (n, n+1) for n = 2.
        assert square_la_center((2, 3), 2) == (2, 3)

    def test_strategy_runs_on_square_grid(self):
        from repro.geometry import SquareTopology
        from repro import CostParams, MobilityParams
        from repro.simulation import SimulationEngine

        engine = SimulationEngine(
            SquareTopology(),
            LocationAreaStrategy(2),
            MobilityParams(0.3, 0.03),
            CostParams(10, 1),
            seed=3,
        )
        snapshot = engine.run(10_000)
        assert snapshot.calls > 0  # paging succeeded throughout

    def test_square_la_analytic_matches_simulation(self):
        from repro.geometry import SquareTopology
        from repro import CostParams, MobilityParams, location_area_costs
        from repro.simulation import run_replicated

        mobility = MobilityParams(0.2, 0.02)
        costs = CostParams(30.0, 2.0)
        analytic = location_area_costs(SquareTopology(), mobility, costs, 2)
        result = run_replicated(
            SquareTopology(),
            lambda: LocationAreaStrategy(2),
            mobility,
            costs,
            slots=80_000,
            replications=3,
            seed=4,
        )
        assert result.mean_total_cost == pytest.approx(
            analytic.total_cost, rel=0.04
        )
