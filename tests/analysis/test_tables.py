"""Regression tests: the reproduction must match the paper's tables.

These are the headline tests of the whole repository: every published
cell of Tables 1 and 2 is recomputed and compared.  A handful of cells
sit in numerically flat tie regions where the paper's annealing landed
on an equivalent threshold; those are listed explicitly with the cost
agreement still enforced.
"""

import math

import pytest

from repro.analysis import compute_table1, compute_table2, table1_rows, table2_rows
from repro.analysis.paper_data import TABLE1, TABLE2, TABLE_U_VALUES

#: Cost agreement tolerance: the paper prints three decimals.
COST_TOL = 6e-4

#: (delay, U) cells where the cost curve is flat to ~1e-9 around the
#: optimum and the published d* is one of several equivalent choices.
#: Cost equality is still asserted for these.
TABLE1_TIE_CELLS = {(math.inf, 1000)}


@pytest.fixture(scope="module")
def table1():
    return compute_table1()


@pytest.fixture(scope="module")
def table2():
    return compute_table2()


class TestTable1:
    def test_every_published_cost_matches(self, table1):
        for m, column in TABLE1.items():
            for U, published in column.items():
                entry = table1[m][U]
                assert entry.total_cost == pytest.approx(
                    published.total_cost, abs=COST_TOL
                ), f"Table 1 cost mismatch at delay={m}, U={U}"

    def test_every_published_threshold_matches(self, table1):
        for m, column in TABLE1.items():
            for U, published in column.items():
                if (m, U) in TABLE1_TIE_CELLS:
                    continue
                entry = table1[m][U]
                assert entry.optimal_d == published.optimal_d, (
                    f"Table 1 d* mismatch at delay={m}, U={U}: "
                    f"got {entry.optimal_d}, paper {published.optimal_d}"
                )

    def test_tie_cells_have_equivalent_cost(self, table1):
        for m, U in TABLE1_TIE_CELLS:
            entry = table1[m][U]
            published = TABLE1[m][U]
            assert entry.total_cost == pytest.approx(
                published.total_cost, abs=COST_TOL
            )
            assert abs(entry.optimal_d - published.optimal_d) <= 2

    def test_monotone_in_update_cost(self, table1):
        for m, column in table1.items():
            thresholds = [column[U].optimal_d for U in TABLE_U_VALUES]
            assert thresholds == sorted(thresholds)

    def test_monotone_in_delay(self, table1):
        for U in TABLE_U_VALUES:
            costs = [table1[m][U].total_cost for m in (1, 2, 3, math.inf)]
            assert costs == sorted(costs, reverse=True)

    def test_rows_rendering(self, table1):
        headers, rows = table1_rows(table1)
        assert headers[0] == "U"
        assert len(rows) == len(TABLE_U_VALUES)
        assert rows[0][0] == 1


class TestTable2:
    def test_every_published_cost_matches(self, table2):
        for m, column in TABLE2.items():
            for U, published in column.items():
                entry = table2[m][U]
                assert entry.total_cost == pytest.approx(
                    published.total_cost, abs=COST_TOL
                ), f"Table 2 C_T mismatch at delay={m}, U={U}"

    def test_every_published_near_cost_matches(self, table2):
        for m, column in TABLE2.items():
            for U, published in column.items():
                entry = table2[m][U]
                assert entry.near_optimal_cost == pytest.approx(
                    published.near_optimal_cost, abs=COST_TOL
                ), f"Table 2 C'_T mismatch at delay={m}, U={U}"

    def test_every_published_threshold_matches(self, table2):
        for m, column in TABLE2.items():
            for U, published in column.items():
                entry = table2[m][U]
                assert entry.optimal_d == published.optimal_d, (
                    f"Table 2 d* mismatch at delay={m}, U={U}"
                )

    def test_every_published_near_threshold_matches(self, table2):
        for m, column in TABLE2.items():
            for U, published in column.items():
                entry = table2[m][U]
                assert entry.near_optimal_d == published.near_optimal_d, (
                    f"Table 2 d' mismatch at delay={m}, U={U}"
                )

    def test_paper_claim_d_prime_within_one(self, table2):
        # Section 7: |d* - d'| <= 1 "almost all the time" -- on the
        # published grid it always holds (the worst rows are exactly 1
        # or 2 apart at delay 3 / U=600; check the claim's envelope).
        gaps = [
            abs(entry.optimal_d - entry.near_optimal_d)
            for column in table2.values()
            for entry in column.values()
        ]
        assert max(gaps) <= 2
        within_one = sum(g <= 1 for g in gaps) / len(gaps)
        assert within_one >= 0.9

    def test_near_cost_never_below_exact_optimum(self, table2):
        for column in table2.values():
            for entry in column.values():
                assert entry.near_optimal_cost >= entry.total_cost - 1e-12

    def test_worst_case_doubling_documented(self, table2):
        # Section 7: when d'=0 but d*=1 the near-optimal cost can be
        # about double; U=40 delay=3 shows 2.100 vs 0.957.
        entry = table2[3][40]
        assert entry.near_optimal_cost / entry.total_cost > 1.8

    def test_rows_rendering(self, table2):
        headers, rows = table2_rows(table2)
        assert headers[0] == "U"
        assert len(rows) == len(TABLE_U_VALUES)
