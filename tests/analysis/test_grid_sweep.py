"""Tests for the multi-axis grid sweep and its on-disk result cache."""

import json
import math

import pytest

from repro.analysis.sweep import (
    GridSweepResult,
    grid_sweep,
    sweep,
)
from repro.exceptions import ParameterError
from repro.paging import per_ring_partition


class TestGridShape:
    def test_cartesian_row_major_order(self):
        result = grid_sweep(
            "2d-approx", {"U": [20.0, 50.0], "m": [1, 2]}, d_max=15
        )
        assert result.shape == (2, 2)
        combos = [(p.update_cost, p.max_delay) for p in result.points]
        assert combos == [(20.0, 1.0), (20.0, 2.0), (50.0, 1.0), (50.0, 2.0)]

    def test_axes_are_canonically_ordered(self):
        # Supplied m-then-q; canonical order is q-then-m, and the point
        # layout follows the canonical order, not the mapping order.
        result = grid_sweep(
            "1d", {"m": [1, 2], "q": [0.05, 0.1, 0.2]}, d_max=12
        )
        assert [name for name, _ in result.axes] == ["q", "m"]
        assert result.shape == (3, 2)
        assert [p.q for p in result.points] == pytest.approx(
            [0.05, 0.05, 0.1, 0.1, 0.2, 0.2]
        )

    def test_axis_values_and_series(self):
        result = grid_sweep("1d", {"q": [0.05, 0.1]}, d_max=12)
        assert result.axis_values("q") == (0.05, 0.1)
        assert len(result.series("total_cost")) == 2
        with pytest.raises(ParameterError, match="not varied"):
            result.axis_values("U")

    def test_inf_delay_axis(self):
        result = grid_sweep("2d-approx", {"m": [1, math.inf]}, d_max=15)
        assert result.points[1].max_delay == math.inf

    def test_unknown_model_and_axis_rejected(self):
        with pytest.raises(ParameterError, match="unknown model"):
            grid_sweep("3d", {"q": [0.1]})
        with pytest.raises(ParameterError, match="unknown sweep parameter"):
            grid_sweep("1d", {"radius": [1.0]})
        with pytest.raises(ParameterError, match="at least one axis"):
            grid_sweep("1d", {})
        with pytest.raises(ParameterError, match="no values"):
            grid_sweep("1d", {"q": []})
        with pytest.raises(ParameterError, match="finite"):
            grid_sweep("1d", {"U": [math.inf]}, d_max=5)

    def test_non_integer_delay_rejected(self):
        with pytest.raises(ParameterError, match="positive int"):
            grid_sweep("1d", {"m": [1.5]}, d_max=5)


class TestWorkers:
    def test_pooled_equals_serial(self):
        axes = {"U": [50.0, 100.0], "m": [1, math.inf]}
        serial = grid_sweep("2d-approx", axes, d_max=15)
        pooled = grid_sweep("2d-approx", axes, d_max=15, workers=2)
        assert pooled.points == serial.points

    def test_unpicklable_plan_factory_rejected(self):
        factory = lambda model, d, m: per_ring_partition(d)  # noqa: E731
        with pytest.raises(ParameterError, match="picklable"):
            grid_sweep(
                "1d", {"q": [0.05, 0.1]}, d_max=8,
                plan_factory=factory, workers=2,
            )

    def test_bad_workers_rejected(self):
        with pytest.raises(ParameterError, match="workers"):
            grid_sweep("1d", {"q": [0.05]}, d_max=5, workers=0)


class TestCache:
    AXES = {"q": [0.05, 0.1], "m": [1, math.inf]}

    def test_roundtrip(self, tmp_path):
        first = grid_sweep("1d", self.AXES, d_max=12, cache_dir=tmp_path)
        second = grid_sweep("1d", self.AXES, d_max=12, cache_dir=tmp_path)
        assert not first.from_cache
        assert second.from_cache
        assert second.points == first.points
        assert len(list(tmp_path.glob("grid-*.json"))) == 1

    def test_different_parameters_use_different_entries(self, tmp_path):
        grid_sweep("1d", self.AXES, d_max=12, cache_dir=tmp_path)
        other = grid_sweep("1d", self.AXES, d_max=14, cache_dir=tmp_path)
        assert not other.from_cache
        assert len(list(tmp_path.glob("grid-*.json"))) == 2

    def test_schema_version_mismatch_refused(self, tmp_path):
        grid_sweep("1d", self.AXES, d_max=12, cache_dir=tmp_path)
        entry = next(tmp_path.glob("grid-*.json"))
        payload = json.loads(entry.read_text())
        payload["fingerprint"]["version"] = 99
        entry.write_text(json.dumps(payload))
        with pytest.raises(ParameterError, match="schema version"):
            grid_sweep("1d", self.AXES, d_max=12, cache_dir=tmp_path)

    def test_fingerprint_tamper_refused(self, tmp_path):
        grid_sweep("1d", self.AXES, d_max=12, cache_dir=tmp_path)
        entry = next(tmp_path.glob("grid-*.json"))
        payload = json.loads(entry.read_text())
        payload["fingerprint"]["d_max"] = 13
        entry.write_text(json.dumps(payload))
        with pytest.raises(ParameterError, match="different sweep"):
            grid_sweep("1d", self.AXES, d_max=12, cache_dir=tmp_path)

    def test_corrupt_entry_refused(self, tmp_path):
        grid_sweep("1d", self.AXES, d_max=12, cache_dir=tmp_path)
        entry = next(tmp_path.glob("grid-*.json"))
        entry.write_text("{not json")
        with pytest.raises(ParameterError, match="unreadable"):
            grid_sweep("1d", self.AXES, d_max=12, cache_dir=tmp_path)

    def test_custom_plan_factory_bypasses_cache(self, tmp_path):
        def factory(model, d, m):
            return per_ring_partition(d)

        first = grid_sweep(
            "1d", {"q": [0.05]}, d_max=8,
            plan_factory=factory, cache_dir=tmp_path,
        )
        second = grid_sweep(
            "1d", {"q": [0.05]}, d_max=8,
            plan_factory=factory, cache_dir=tmp_path,
        )
        assert not first.from_cache and not second.from_cache
        assert list(tmp_path.iterdir()) == []

    def test_cached_inf_delay_restored(self, tmp_path):
        grid_sweep("2d-approx", {"m": [1, math.inf]}, d_max=12,
                   cache_dir=tmp_path)
        warm = grid_sweep("2d-approx", {"m": [1, math.inf]}, d_max=12,
                          cache_dir=tmp_path)
        assert warm.from_cache
        assert warm.points[1].max_delay == math.inf


class TestSweepWrapper:
    def test_sweep_matches_grid_sweep(self):
        legacy = sweep("2d-approx", "U", [20.0, 50.0], d_max=15)
        grid = grid_sweep("2d-approx", {"U": [20.0, 50.0]}, d_max=15)
        assert isinstance(grid, GridSweepResult)
        assert legacy.points == list(grid.points)
        assert legacy.varied == "U"
        assert legacy.model_name == "2d-approx"

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(ParameterError, match="varied must be"):
            sweep("1d", "x", [1.0])


def _poisoned_plan_factory(model, d, m):
    """Module-level so the pooled path can pickle it into workers."""
    if d >= 1:
        raise ValueError("poisoned partition")
    return per_ring_partition(d)


class TestSweepPointError:
    """A failing grid point must surface *which* point failed.

    Regression: the worker fan-out used to re-raise the bare original
    exception from ``future.result()``, masking the failing point's
    parameters entirely.
    """

    AXES = {"q": [0.05, 0.1], "U": [20.0, 50.0]}

    def assert_carries_point(self, excinfo):
        from repro.exceptions import SweepPointError

        error = excinfo.value
        assert isinstance(error, SweepPointError)
        assert set(error.point) == {"index", "model", "q", "c", "U", "V", "m"}
        assert error.point["model"] == "1d"
        assert error.point["q"] in (0.05, 0.1)
        assert error.point["U"] in (20.0, 50.0)
        # The original failure stays chained for the full traceback.
        assert "poisoned partition" in str(error)

    def test_serial_failure_names_the_point(self):
        from repro.exceptions import SweepPointError

        with pytest.raises(SweepPointError) as excinfo:
            grid_sweep(
                "1d", self.AXES, d_max=8, plan_factory=_poisoned_plan_factory
            )
        self.assert_carries_point(excinfo)
        assert excinfo.value.__cause__ is not None

    def test_pooled_failure_names_the_point(self):
        from repro.exceptions import SweepPointError

        with pytest.raises(SweepPointError) as excinfo:
            grid_sweep(
                "1d", self.AXES, d_max=8,
                plan_factory=_poisoned_plan_factory, workers=2,
            )
        self.assert_carries_point(excinfo)

    def test_pickle_roundtrip_keeps_the_point(self):
        import pickle

        from repro.exceptions import SweepPointError

        original = SweepPointError("boom", {"index": 3, "q": 0.1})
        clone = pickle.loads(pickle.dumps(original))
        assert clone.point == {"index": 3, "q": 0.1}
        assert str(clone) == "boom"
