"""Unit tests for the validation campaign's agreement criterion."""

import math

import pytest

from repro.analysis.validate import (
    DEFAULT_CASES,
    ValidationCase,
    ValidationOutcome,
)
from repro.simulation.runner import ModelComparison


def make_outcome(dimensions, predicted, measured, ci):
    case = ValidationCase(
        label="synthetic",
        dimensions=dimensions,
        q=0.1,
        c=0.01,
        update_cost=10.0,
        poll_cost=1.0,
        d=2,
        m=1,
    )
    comparison = ModelComparison(
        predicted_total=predicted,
        measured_total=measured,
        ci_half_width=ci,
        predicted_update=0.0,
        measured_update=0.0,
        predicted_paging=0.0,
        measured_paging=0.0,
    )
    return ValidationOutcome(case=case, comparison=comparison)


class TestAgreementCriterion:
    def test_within_ci_always_ok(self):
        outcome = make_outcome(1, predicted=1.0, measured=1.3, ci=0.5)
        assert outcome.ok

    def test_1d_tolerance_is_two_percent(self):
        assert make_outcome(1, 1.0, 1.019, ci=0.001).ok
        assert not make_outcome(1, 1.0, 1.05, ci=0.001).ok

    def test_2d_tolerance_is_five_percent(self):
        assert make_outcome(2, 1.0, 1.04, ci=0.001).ok
        assert not make_outcome(2, 1.0, 1.08, ci=0.001).ok

    def test_relative_error(self):
        outcome = make_outcome(2, 2.0, 2.1, ci=0.001)
        assert outcome.comparison.relative_error == pytest.approx(0.05)


class TestDefaultCases:
    def test_both_geometries_covered(self):
        dimensions = {case.dimensions for case in DEFAULT_CASES}
        assert dimensions == {1, 2}

    def test_delay_variety(self):
        bounds = {case.m for case in DEFAULT_CASES}
        assert 1 in bounds
        assert math.inf in bounds
        assert any(isinstance(m, int) and m > 1 for m in bounds)

    def test_includes_boundary_threshold(self):
        assert any(case.d == 0 for case in DEFAULT_CASES)

    def test_parameters_are_valid(self):
        from repro import MobilityParams

        for case in DEFAULT_CASES:
            MobilityParams(case.q, case.c)  # must not raise
            assert case.update_cost >= 0
            assert case.poll_cost >= 0
