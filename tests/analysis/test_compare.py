"""Unit tests for the cross-scheme tournament layer."""

import json
import math

import pytest

from repro.analysis.compare import SCHEMES, run_tournament
from repro.analysis.sweep import MODEL_CLASSES
from repro.exceptions import ParameterError

AXES = {"U": [20.0, 100.0], "m": [1, 2]}
POINT_KW = dict(q=0.2, c=0.02, poll_cost=10.0, d_max=25)


@pytest.fixture(scope="module")
def small_tournament():
    return run_tournament("1d", AXES, **POINT_KW)


class TestStructure:
    def test_grid_shape_and_axis_order(self, small_tournament):
        assert small_tournament.shape == (2, 2)
        assert [name for name, _ in small_tournament.axes] == ["U", "m"]
        assert len(small_tournament.points) == 4
        assert small_tournament.schemes == SCHEMES

    def test_every_point_has_all_schemes(self, small_tournament):
        for point in small_tournament.points:
            assert tuple(e.scheme for e in point.outcomes) == SCHEMES

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ParameterError):
            run_tournament("1d", AXES, schemes=["distance", "nope"], **POINT_KW)

    def test_scheme_subset_always_includes_distance(self):
        result = run_tournament("1d", AXES, schemes=["timer"], **POINT_KW)
        assert result.schemes == ("distance", "timer")
        for point in result.points:
            assert {e.scheme for e in point.outcomes} == {"distance", "timer"}


class TestWinnerMap:
    def test_winner_is_cheapest_scheme(self, small_tournament):
        for point in small_tournament.points:
            cheapest = min(e.total_cost for e in point.outcomes)
            assert point.outcome(point.winner).total_cost <= cheapest + 1e-12

    def test_joint_dominates_distance_everywhere(self, small_tournament):
        for point in small_tournament.points:
            joint = point.outcome("jointly-optimal").total_cost
            distance = point.outcome("distance").total_cost
            assert joint <= distance + 1e-9

    def test_winner_counts_cover_all_points(self, small_tournament):
        counts = small_tournament.winner_counts()
        assert set(counts) == set(SCHEMES)
        assert sum(counts.values()) == len(small_tournament.points)

    def test_cost_surface_matches_outcomes(self, small_tournament):
        surface = small_tournament.cost_surface("timer")
        assert surface == [
            p.outcome("timer").total_cost for p in small_tournament.points
        ]


class TestSerialization:
    def test_payload_is_json_safe_including_inf(self):
        result = run_tournament("1d", {"m": [1, math.inf]}, **POINT_KW)
        payload = json.loads(json.dumps(result.to_payload()))
        assert payload["axes"] == [["m", [1, "inf"]]]
        assert payload["points"][1]["m"] == "inf"
        assert set(payload["winner_counts"]) == set(SCHEMES)

    def test_rows_are_flat_and_complete(self, small_tournament):
        rows = small_tournament.rows()
        assert len(rows) == 4
        for row in rows:
            for scheme in SCHEMES:
                assert scheme in row
                assert f"{scheme}_param" in row
            assert row["winner"] in SCHEMES


class TestCaching:
    def test_cache_round_trip_identical(self, tmp_path):
        first = run_tournament("1d", AXES, cache_dir=tmp_path, **POINT_KW)
        second = run_tournament("1d", AXES, cache_dir=tmp_path, **POINT_KW)
        assert not first.from_cache
        assert second.from_cache
        assert first.points == second.points


@pytest.mark.slow
class TestAllModels:
    @pytest.mark.parametrize("model_name", sorted(MODEL_CLASSES))
    def test_dominance_holds_on_every_model(self, model_name):
        result = run_tournament(
            model_name,
            {"q": [0.05, 0.3], "m": [1, 3]},
            c=0.02,
            update_cost=100.0,
            poll_cost=10.0,
            d_max=30,
        )
        for point in result.points:
            joint = point.outcome("jointly-optimal").total_cost
            distance = point.outcome("distance").total_cost
            assert joint <= distance + 1e-9
            assert point.outcome(point.winner).total_cost == pytest.approx(
                min(e.total_cost for e in point.outcomes)
            )
