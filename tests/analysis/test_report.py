"""Unit tests for text/CSV rendering."""

import math

import pytest

from repro.analysis import format_delay, render_ascii_plot, render_table, write_csv


class TestRenderTable:
    def test_alignment_and_headers(self):
        text = render_table(["U", "C_T"], [[1, 0.125], [1000, 1.563]])
        lines = text.splitlines()
        assert "U" in lines[0]
        assert "C_T" in lines[0]
        assert lines[1].startswith("-")
        assert "0.125" in text
        assert "1.563" in text

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_precision(self):
        text = render_table(["v"], [[0.123456]])
        assert "0.123" in text
        assert "0.1234" not in text

    def test_nan_renders_dash(self):
        text = render_table(["v"], [[math.nan]])
        assert "-" in text.splitlines()[-1]

    def test_column_width_follows_widest(self):
        text = render_table(["a"], [["very-long-cell"]])
        data_line = text.splitlines()[-1]
        assert data_line.strip() == "very-long-cell"


class TestFormatDelay:
    def test_finite(self):
        assert format_delay(3) == "3"

    def test_infinite(self):
        assert format_delay(math.inf) == "unbounded"


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        plot = render_ascii_plot(
            {"one": [1.0, 2.0, 3.0], "two": [3.0, 2.0, 1.0]},
            [0.01, 0.1, 1.0],
            title="demo",
        )
        assert "demo" in plot
        assert "o=one" in plot
        assert "x=two" in plot
        assert "(log x)" in plot

    def test_linear_axis(self):
        plot = render_ascii_plot({"s": [0.0, 1.0]}, [0.0, 1.0], log_x=False)
        assert "(log x)" not in plot

    def test_log_requires_positive_x(self):
        with pytest.raises(ValueError):
            render_ascii_plot({"s": [1.0, 2.0]}, [0.0, 1.0], log_x=True)

    def test_flat_series_handled(self):
        plot = render_ascii_plot({"flat": [2.0, 2.0]}, [1.0, 10.0])
        assert plot  # no division-by-zero on zero y-range

    def test_empty_series(self):
        assert render_ascii_plot({}, [], title="t") == "t"


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, ["a", "b"], [[1, 2.5], [3, 4.5]])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert len(lines) == 3
