"""Unit tests for the generic parameter sweep."""

import math

import pytest

from repro import ParameterError
from repro.analysis import sweep


class TestSweep:
    def test_sweep_over_q(self):
        result = sweep("1d", "q", [0.01, 0.05, 0.2], max_delay=1)
        assert result.varied == "q"
        assert [p.q for p in result.points] == [0.01, 0.05, 0.2]
        costs = result.series("total_cost")
        assert costs == sorted(costs)

    def test_sweep_over_U_moves_threshold(self):
        result = sweep("1d", "U", [1, 100, 1000], max_delay=1)
        thresholds = result.series("optimal_d")
        assert thresholds == sorted(thresholds)
        assert thresholds[-1] > thresholds[0]

    def test_sweep_over_delay(self):
        result = sweep("2d-exact", "m", [1, 2, 3, math.inf], update_cost=200.0)
        costs = result.series("total_cost")
        assert costs == sorted(costs, reverse=True)

    def test_sweep_over_V(self):
        result = sweep("1d", "V", [1.0, 10.0, 100.0])
        # Costlier polling shrinks the optimal residing area.
        thresholds = result.series("optimal_d")
        assert thresholds == sorted(thresholds, reverse=True)

    def test_components_recorded(self):
        result = sweep("2d-approx", "c", [0.005, 0.02])
        for point in result.points:
            assert point.total_cost == pytest.approx(
                point.update_component + point.paging_component
            )
            assert point.expected_delay >= 1.0

    def test_unknown_model_rejected(self):
        with pytest.raises(ParameterError):
            sweep("3d", "q", [0.1])

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ParameterError):
            sweep("1d", "z", [0.1])
