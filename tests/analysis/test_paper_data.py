"""Sanity checks on the transcribed paper data itself."""

import math

from repro.analysis.paper_data import (
    FIGURE4_PARAMS,
    FIGURE5_PARAMS,
    TABLE1,
    TABLE2,
    TABLE1_PARAMS,
    TABLE_U_VALUES,
)


class TestTable1Data:
    def test_all_columns_complete(self):
        for m in (1, 2, 3, math.inf):
            assert set(TABLE1[m]) == set(TABLE_U_VALUES)

    def test_costs_monotone_in_U(self):
        # In the published table, cost never decreases as U grows.
        for m in (1, 2, 3, math.inf):
            costs = [TABLE1[m][U].total_cost for U in TABLE_U_VALUES]
            assert costs == sorted(costs)

    def test_costs_monotone_in_delay(self):
        for U in TABLE_U_VALUES:
            row = [TABLE1[m][U].total_cost for m in (1, 2, 3, math.inf)]
            assert row == sorted(row, reverse=True)

    def test_thresholds_monotone_in_U(self):
        for m in (1, 2, 3, math.inf):
            ds = [TABLE1[m][U].optimal_d for U in TABLE_U_VALUES]
            assert ds == sorted(ds)

    def test_parameters(self):
        assert TABLE1_PARAMS == {"q": 0.05, "c": 0.01, "V": 10.0}


class TestTable2Data:
    def test_all_columns_complete(self):
        for m in (1, 3, math.inf):
            assert set(TABLE2[m]) == set(TABLE_U_VALUES)

    def test_near_cost_never_below_exact(self):
        for m in (1, 3, math.inf):
            for U in TABLE_U_VALUES:
                cell = TABLE2[m][U]
                assert cell.near_optimal_cost >= cell.total_cost - 1e-9

    def test_near_equals_exact_when_d_agrees(self):
        for m in (1, 3, math.inf):
            for U in TABLE_U_VALUES:
                cell = TABLE2[m][U]
                if cell.optimal_d == cell.near_optimal_d:
                    assert cell.near_optimal_cost == cell.total_cost

    def test_unbounded_never_worse_than_delay3(self):
        for U in TABLE_U_VALUES:
            assert (
                TABLE2[math.inf][U].total_cost <= TABLE2[3][U].total_cost + 1e-9
            )


class TestFigureParams:
    def test_figure4_ranges(self):
        assert FIGURE4_PARAMS["q_min"] < FIGURE4_PARAMS["q_max"]
        assert FIGURE4_PARAMS["U"] == 100.0
        assert FIGURE4_PARAMS["V"] == 1.0

    def test_figure5_ranges(self):
        assert FIGURE5_PARAMS["c_min"] < FIGURE5_PARAMS["c_max"]
        assert FIGURE5_PARAMS["q"] == 0.05
