"""Tests for the Figure 4/5 reproductions and their shape checks."""

import math

import pytest

from repro.analysis import (
    check_figure_shape,
    compute_figure4,
    compute_figure5,
    log_sweep,
)

# Figure sweeps are moderately expensive; compute once per module with
# reduced resolution (the shape checks do not need 13 points).
POINTS = 7


@pytest.fixture(scope="module")
def fig4a():
    return compute_figure4(1, points=POINTS)


@pytest.fixture(scope="module")
def fig4b():
    return compute_figure4(2, points=POINTS)


@pytest.fixture(scope="module")
def fig5a():
    return compute_figure5(1, points=POINTS)


@pytest.fixture(scope="module")
def fig5b():
    return compute_figure5(2, points=POINTS)


class TestLogSweep:
    def test_endpoints_included(self):
        xs = log_sweep(0.001, 0.5, 10)
        assert xs[0] == pytest.approx(0.001)
        assert xs[-1] == pytest.approx(0.5)

    def test_log_spacing(self):
        xs = log_sweep(0.01, 1.0, 5)
        ratios = [xs[i + 1] / xs[i] for i in range(4)]
        for r in ratios:
            assert r == pytest.approx(ratios[0])

    @pytest.mark.parametrize("args", [(0, 1, 5), (0.5, 0.1, 5), (0.1, 1, 1)])
    def test_invalid_arguments(self, args):
        with pytest.raises(ValueError):
            log_sweep(*args)


class TestFigureStructure:
    def test_fig4a_metadata(self, fig4a):
        assert fig4a.name == "figure4a"
        assert fig4a.x_label == "q"
        assert len(fig4a.x_values) == POINTS
        assert set(fig4a.curves) == {1, 2, 3, math.inf}

    def test_fig5b_metadata(self, fig5b):
        assert fig5b.name == "figure5b"
        assert fig5b.x_label == "c"

    def test_curve_labels(self, fig4a):
        assert fig4a.curve_label(1) == "max delay = 1"
        assert fig4a.curve_label(math.inf) == "no delay bound"

    def test_as_rows(self, fig4a):
        headers, rows = fig4a.as_rows()
        assert headers[0] == "q"
        assert len(rows) == POINTS
        # one cost + one threshold column per delay curve
        assert len(headers) == 1 + 2 * len(fig4a.curves)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            compute_figure4(3)


class TestPaperShapeClaims:
    """The qualitative results of Section 7 must hold in all four panels."""

    def test_fig4a_shape(self, fig4a):
        assert check_figure_shape(fig4a) == []

    def test_fig4b_shape(self, fig4b):
        assert check_figure_shape(fig4b) == []

    def test_fig5a_shape(self, fig5a):
        assert check_figure_shape(fig5a) == []

    def test_fig5b_shape(self, fig5b):
        assert check_figure_shape(fig5b) == []

    def test_cost_rises_with_q(self, fig4a):
        for ys in fig4a.curves.values():
            assert ys[-1] > ys[0]

    def test_cost_rises_with_c(self, fig5a):
        for ys in fig5a.curves.values():
            assert ys[-1] > ys[0]

    def test_delay_one_highest(self, fig4b):
        for i in range(len(fig4b.x_values)):
            assert fig4b.curves[1][i] >= fig4b.curves[math.inf][i] - 1e-12

    def test_2d_costs_exceed_1d(self, fig4a, fig4b):
        # The 2-D residing area has g(d) = 3d(d+1)+1 cells vs 2d+1:
        # paging the plane is strictly more expensive at every point
        # where the delay bound bites.
        for i in range(len(fig4a.x_values)):
            assert fig4b.curves[1][i] >= fig4a.curves[1][i] - 1e-12

    def test_threshold_grows_with_mobility(self, fig4a):
        # Faster walkers need larger thresholds (unbounded delay case).
        thresholds = fig4a.thresholds[math.inf]
        assert thresholds[-1] >= thresholds[0]

    def test_shape_checker_flags_violations(self, fig4a):
        # Corrupt a copy: delay-1 curve made cheapest everywhere must
        # trip the ordering check.
        from repro.analysis.figures import FigureSeries

        broken = FigureSeries(
            name="broken",
            x_label="q",
            x_values=fig4a.x_values,
            curves={
                1: [0.0] * len(fig4a.x_values),
                2: fig4a.curves[2],
                3: fig4a.curves[3],
                math.inf: fig4a.curves[math.inf],
            },
            thresholds=fig4a.thresholds,
        )
        assert check_figure_shape(broken) != []
