"""Unit tests for ASCII hex-map rendering."""

import pytest

from repro import MobilityParams, OneDimensionalModel, TwoDimensionalModel
from repro.analysis import (
    render_hex_map,
    render_occupancy,
    render_paging_order,
    render_ring_distances,
)
from repro.exceptions import ParameterError
from repro.paging import sdf_partition


class TestRenderHexMap:
    def test_radius_zero_single_cell(self):
        assert render_hex_map(0, lambda cell: "X") == "X"

    def test_cell_count_matches_coverage(self):
        rendered = render_ring_distances(3)
        glyphs = [ch for ch in rendered if not ch.isspace()]
        assert len(glyphs) == 37  # g(3)

    def test_row_count(self):
        # Rows span r = -radius .. radius.
        rendered = render_ring_distances(2)
        assert len(rendered.splitlines()) == 5

    def test_negative_radius_rejected(self):
        with pytest.raises(ParameterError):
            render_hex_map(-1, lambda cell: "X")

    def test_empty_glyph_renders_space(self):
        rendered = render_hex_map(1, lambda cell: "" if cell == (0, 0) else "o")
        glyphs = [ch for ch in rendered if not ch.isspace()]
        assert len(glyphs) == 6

    def test_custom_center(self):
        rendered = render_hex_map(1, lambda cell: "C" if cell == (5, 5) else "o", center=(5, 5))
        assert "C" in rendered


class TestRingDistances:
    def test_center_is_zero(self):
        rendered = render_ring_distances(2)
        middle_row = rendered.splitlines()[2]
        assert "0" in middle_row

    def test_ring_counts(self):
        rendered = render_ring_distances(3)
        assert rendered.count("0") == 1
        assert rendered.count("1") == 6
        assert rendered.count("2") == 12
        assert rendered.count("3") == 18

    def test_large_radius_uses_letters(self):
        rendered = render_ring_distances(11)
        assert "a" in rendered  # ring 10
        assert "b" in rendered  # ring 11


class TestPagingOrder:
    def test_sdf_cycles(self):
        plan = sdf_partition(4, 2)  # gamma=2: A1 = r0-r1, A2 = r2-r4
        rendered = render_paging_order(plan)
        assert rendered.count("1") == 7  # g(1)
        assert rendered.count("2") == 61 - 7  # g(4) - g(1)

    def test_per_ring_order(self):
        plan = sdf_partition(2, 5)
        rendered = render_paging_order(plan)
        assert rendered.count("1") == 1
        assert rendered.count("2") == 6
        assert rendered.count("3") == 12


class TestOccupancy:
    def test_center_is_darkest(self):
        model = TwoDimensionalModel(MobilityParams(0.3, 0.01))
        rendered = render_occupancy(model, 3)
        middle_row = rendered.splitlines()[3]
        assert "@" in middle_row

    def test_non_hex_model_rejected(self):
        with pytest.raises(ParameterError):
            render_occupancy(OneDimensionalModel(MobilityParams(0.3, 0.01)), 3)

    def test_empty_ramp_rejected(self):
        model = TwoDimensionalModel(MobilityParams(0.3, 0.01))
        with pytest.raises(ParameterError):
            render_occupancy(model, 2, ramp="")

    def test_custom_ramp(self):
        model = TwoDimensionalModel(MobilityParams(0.3, 0.01))
        rendered = render_occupancy(model, 2, ramp="ab")
        assert set(ch for ch in rendered if not ch.isspace()) <= {"a", "b"}
