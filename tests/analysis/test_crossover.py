"""Unit tests for the scheme-crossover map."""

import pytest

from repro import CostParams, ParameterError
from repro.analysis import compute_crossover_map

COSTS = CostParams(50.0, 2.0)


@pytest.fixture(scope="module")
def small_map():
    return compute_crossover_map(
        COSTS,
        q_values=[0.02, 0.1, 0.4],
        c_values=[0.002, 0.02, 0.08],
    )


class TestComputeCrossoverMap:
    def test_grid_shape(self, small_map):
        assert len(small_map.winners) == 3
        assert all(len(row) == 3 for row in small_map.winners)
        assert len(small_map.costs) == 3

    def test_paper_regime_is_distance(self, small_map):
        # q = 0.4, c = 0.002: heavy mobility, light traffic.
        qi = small_map.q_values.index(0.4)
        cj = small_map.c_values.index(0.002)
        assert small_map.winner_at(qi, cj) == "distance"

    def test_call_heavy_corner_is_movement(self, small_map):
        qi = small_map.q_values.index(0.02)
        cj = small_map.c_values.index(0.08)
        assert small_map.winner_at(qi, cj) == "movement"

    def test_timer_and_la_never_win(self, small_map):
        cells = {w for row in small_map.winners for w in row}
        assert cells <= {"distance", "movement"}

    def test_shares_sum_to_one(self, small_map):
        total = sum(
            small_map.share(s)
            for s in ("distance", "movement", "timer", "location-area")
        )
        assert total == pytest.approx(1.0)

    def test_costs_positive(self, small_map):
        for row in small_map.costs:
            for value in row:
                assert value > 0

    def test_render_contains_legend_and_rows(self, small_map):
        text = small_map.render()
        assert "D=distance" in text
        assert "M=movement" in text
        # One line per q value plus header plus legend.
        assert len(text.splitlines()) == 3 + 2

    def test_empty_grid_rejected(self):
        with pytest.raises(ParameterError):
            compute_crossover_map(COSTS, [], [0.01])

    def test_infeasible_point_rejected(self):
        with pytest.raises(ParameterError):
            compute_crossover_map(COSTS, [0.9], [0.2])

    def test_delay_two_expands_distance_region(self, small_map):
        # SDF staging at m=2 makes the distance scheme strictly better;
        # its winning share must not shrink.
        staged = compute_crossover_map(
            COSTS,
            q_values=small_map.q_values,
            c_values=small_map.c_values,
            max_delay=2,
        )
        assert staged.share("distance") >= small_map.share("distance")
