"""Tests for the exception hierarchy and error-path behavior."""

import pytest

from repro import (
    FaultInjectionError,
    ParameterError,
    PartitionError,
    RecoveryExhaustedError,
    ReproError,
    SimulationError,
    SolverError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ParameterError, SolverError, PartitionError, SimulationError):
            assert issubclass(exc, ReproError)

    def test_parameter_error_is_value_error(self):
        # Callers that catch ValueError for bad inputs keep working.
        assert issubclass(ParameterError, ValueError)

    def test_partition_error_is_value_error(self):
        assert issubclass(PartitionError, ValueError)

    def test_solver_error_is_arithmetic_error(self):
        assert issubclass(SolverError, ArithmeticError)

    def test_simulation_error_is_runtime_error(self):
        assert issubclass(SimulationError, RuntimeError)

    def test_fault_injection_error_in_hierarchy(self):
        assert issubclass(FaultInjectionError, ReproError)
        assert issubclass(FaultInjectionError, RuntimeError)

    def test_recovery_exhausted_is_simulation_error(self):
        # Existing `except SimulationError` around paging keeps catching
        # the resilient engine's give-up signal.
        assert issubclass(RecoveryExhaustedError, SimulationError)
        assert issubclass(RecoveryExhaustedError, ReproError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise PartitionError("x")


class TestErrorPaths:
    def test_library_raises_its_own_types(self):
        from repro import MobilityParams

        with pytest.raises(ReproError):
            MobilityParams(2.0, 0.1)

    def test_solver_error_on_inconsistent_chain(self):
        # Force the recursive solver's consistency check to fire by
        # corrupting a chain's internals after construction.
        import numpy as np

        from repro.core.chains import ResetChain, solve_steady_state_recursive

        chain = ResetChain(outward=[0.2, 0.1], inward=[0.0, 0.1], reset=0.05)
        # Bypass frozen-dataclass protection to inject inconsistency.
        object.__setattr__(chain, "_a", np.array([0.2, -5.0]))
        with pytest.raises((SolverError, ReproError)):
            solve_steady_state_recursive(chain)

    def test_messages_carry_context(self):
        from repro import MobilityParams

        with pytest.raises(ParameterError, match="move_probability"):
            MobilityParams(0.0, 0.1)
        with pytest.raises(ParameterError, match="call_probability"):
            MobilityParams(0.1, -0.5)
