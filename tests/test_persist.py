"""Crash-safe JSON writes: no partial files, no leaked temp files.

Regression suite for the atomic-write hardening: the old inline
mkstemp blocks in the sweep cache and the simulation checkpoint could
leak the file descriptor when ``os.fdopen`` itself failed, and the
cleanup logic was duplicated (and could drift) between the two call
sites.  Both now route through :func:`repro.persist.atomic_write_json`,
whose contract is: on *any* failure the target file is untouched and
no ``*.tmp`` litter remains.
"""

import json
import os

import pytest

from repro.persist import atomic_write_json


class Unserializable:
    """json.dump raises TypeError on this mid-write."""


def tmp_litter(directory):
    return [p for p in directory.iterdir() if p.name.endswith(".tmp")]


class TestAtomicWriteJson:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": 1})
        atomic_write_json(path, {"a": 2})
        assert json.loads(path.read_text()) == {"a": 2}
        assert tmp_litter(tmp_path) == []

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.json"
        atomic_write_json(path, [1, 2, 3])
        assert json.loads(path.read_text()) == [1, 2, 3]

    def test_unserializable_payload_leaves_no_trace(self, tmp_path):
        path = tmp_path / "out.json"
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": Unserializable()})
        assert not path.exists()
        assert tmp_litter(tmp_path) == []

    def test_failure_preserves_previous_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"good": True})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": Unserializable()})
        assert json.loads(path.read_text()) == {"good": True}
        assert tmp_litter(tmp_path) == []

    def test_fdopen_failure_closes_descriptor_and_unlinks(
        self, tmp_path, monkeypatch
    ):
        # If os.fdopen itself raises, the raw descriptor must still be
        # closed (the old inline blocks leaked it) and the temp file
        # removed.
        opened = {}
        real_mkstemp = __import__("tempfile").mkstemp

        def spying_mkstemp(*args, **kwargs):
            fd, name = real_mkstemp(*args, **kwargs)
            opened["fd"] = fd
            return fd, name

        def failing_fdopen(fd, *args, **kwargs):
            raise OSError("simulated fdopen failure")

        monkeypatch.setattr("repro.persist.tempfile.mkstemp", spying_mkstemp)
        monkeypatch.setattr("repro.persist.os.fdopen", failing_fdopen)
        with pytest.raises(OSError, match="simulated fdopen"):
            atomic_write_json(tmp_path / "out.json", {"a": 1})
        assert tmp_litter(tmp_path) == []
        # A closed fd raises on a second close attempt.
        with pytest.raises(OSError):
            os.close(opened["fd"])


class TestCallSitesStayClean:
    """The two historical call sites honour the same contract."""

    def test_sweep_cache_store_failure_leaves_no_litter(self, tmp_path):
        from repro.analysis.sweep import _store_cached_points

        path = tmp_path / "grid-cache.json"
        with pytest.raises(TypeError):
            _store_cached_points(path, {"bad": Unserializable()}, points=[])
        assert not path.exists()
        assert tmp_litter(tmp_path) == []

    def test_checkpoint_write_failure_leaves_no_litter(self, tmp_path):
        from repro.simulation.runner import _write_checkpoint

        path = tmp_path / "campaign.ckpt.json"
        with pytest.raises(TypeError):
            _write_checkpoint(
                path, {"bad": Unserializable()}, completed={}, partials={}
            )
        assert not path.exists()
        assert tmp_litter(tmp_path) == []

    def test_fleet_checkpoint_failure_leaves_no_litter(self, tmp_path):
        from repro.simulation.fleet import _write_fleet_checkpoint

        path = tmp_path / "fleet.ckpt.json"
        with pytest.raises(TypeError):
            _write_fleet_checkpoint(path, {"bad": Unserializable()}, {})
        assert not path.exists()
        assert tmp_litter(tmp_path) == []
