"""Tests for the CLI mobility surface: simulate --mobility and approx."""

import json

import pytest

from repro.cli import build_parser, main


class TestSimulateMobilityFlags:
    def test_mobility_defaults_to_uniform(self):
        args = build_parser().parse_args(
            ["simulate", "--q", "0.2", "--c", "0.02", "--threshold", "2"]
        )
        assert args.mobility == "uniform"
        assert args.drift == pytest.approx(0.4)

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--q", "0.2", "--c", "0.02",
                 "--threshold", "2", "--mobility", "levy-flight"]
            )

    def test_ctrw_requires_two_dimensions(self, capsys):
        code = main(
            ["simulate", "--dimensions", "1", "--q", "0.2", "--c", "0.02",
             "--threshold", "2", "--mobility", "ctrw-exp",
             "--slots", "100", "--replications", "1"]
        )
        assert code == 2
        assert "dimensions 2" in capsys.readouterr().err

    def test_ctrw_per_cell_backend(self, capsys):
        code = main(
            ["simulate", "--q", "0.2", "--c", "0.02", "--threshold", "2",
             "--mobility", "ctrw-hyper", "--slots", "400",
             "--replications", "2", "--warmup", "50"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mobility:         ctrw-hyper" in out
        assert "mean C_T" in out

    def test_ctrw_vectorized_backend(self, capsys):
        code = main(
            ["simulate", "--q", "0.2", "--c", "0.02", "--threshold", "2",
             "--mobility", "ctrw-pareto", "--slots", "400",
             "--replications", "16", "--warmup", "50", "--backend", "auto"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mobility:         ctrw-pareto" in out
        assert "backend:" in out

    def test_uniform_output_unchanged(self, capsys):
        code = main(
            ["simulate", "--q", "0.2", "--c", "0.02", "--threshold", "2",
             "--slots", "400", "--replications", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mobility:" not in out


class TestApproxCommand:
    def test_table_and_convergence_column(self, capsys):
        code = main(
            ["approx", "--slots", "600", "--terminals", "64",
             "--warmup", "100", "--models", "uniform,ctrw-exp"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "uniform" in out
        assert "ctrw-exp" in out
        assert "converges" in out

    def test_rejects_unknown_model(self, capsys):
        code = main(
            ["approx", "--slots", "200", "--terminals", "32",
             "--models", "uniform,teleport"]
        )
        assert code != 0

    def test_report_artifact_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "approx.jsonl"
        code = main(
            ["approx", "--slots", "400", "--terminals", "48",
             "--warmup", "50", "--models", "uniform,ctrw-fixed",
             "--report", str(path)]
        )
        assert code == 0
        from repro.observability.export import read_artifact

        loaded = read_artifact(path)
        rows = loaded["approximations"]
        assert [r["mobility"] for r in rows] == ["uniform", "ctrw-fixed"]
        for row in rows:
            # read_artifact dispatches on (and strips) the "kind" field.
            assert row["exact_cost"] > 0
        raw_kinds = {json.loads(line)["kind"] for line in path.read_text().splitlines()}
        assert "approximation" in raw_kinds
        assert loaded["provenance"]["command"] == "approx"

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "approx.csv"
        code = main(
            ["approx", "--slots", "300", "--terminals", "32",
             "--warmup", "50", "--models", "uniform", "--csv", str(path)]
        )
        assert code == 0
        header = path.read_text().splitlines()[0]
        assert "mobility" in header
        assert "deviation" in header
