"""Unit tests for the paging-channel queueing substrate."""

import math

import pytest

from repro import CostParams, MobilityParams, ParameterError, TwoDimensionalModel
from repro.channel import (
    ServiceDistribution,
    analyze_queue,
    channel_operating_point,
    dimension_channel,
    simulate_queue,
)

MODEL = TwoDimensionalModel(MobilityParams(0.05, 0.01))
COSTS = CostParams(100.0, 10.0)


class TestServiceDistribution:
    def test_moments(self):
        service = ServiceDistribution([0.5, 0.3, 0.2])
        assert service.mean == pytest.approx(1.7)
        assert service.second_moment == pytest.approx(0.5 + 0.3 * 4 + 0.2 * 9)
        assert service.second_factorial_moment == pytest.approx(
            service.second_moment - service.mean
        )

    @pytest.mark.parametrize("pmf", [[], [0.5, 0.4], [1.2, -0.2]])
    def test_invalid_pmf(self, pmf):
        with pytest.raises(ParameterError):
            ServiceDistribution(pmf)

    def test_sampling_range(self, rng):
        service = ServiceDistribution([0.0, 1.0, 0.0])
        samples = service.sample(rng, 100)
        assert set(samples.tolist()) == {2}


class TestAnalyzeQueue:
    def test_deterministic_unit_service_never_waits(self):
        # With S = 1 and at most one Bernoulli arrival per slot, the
        # channel is always free when a request arrives.
        analysis = analyze_queue(0.5, ServiceDistribution([1.0]))
        assert analysis.mean_wait == 0.0
        assert analysis.mean_sojourn == 1.0

    def test_utilization(self):
        analysis = analyze_queue(0.2, ServiceDistribution([0.0, 0.0, 1.0]))
        assert analysis.utilization == pytest.approx(0.6)
        assert analysis.stable

    def test_overload_rejected(self):
        with pytest.raises(ParameterError):
            analyze_queue(0.4, ServiceDistribution([0.0, 0.0, 1.0]))

    def test_zero_arrivals(self):
        analysis = analyze_queue(0.0, ServiceDistribution([0.5, 0.5]))
        assert analysis.mean_wait == 0.0
        assert analysis.utilization == 0.0

    def test_wait_grows_with_load(self):
        service = ServiceDistribution([0.3, 0.4, 0.3])
        waits = [analyze_queue(lam, service).mean_wait for lam in (0.05, 0.2, 0.4)]
        assert waits == sorted(waits)

    @pytest.mark.parametrize(
        "lam,pmf",
        [
            (0.1, [0.5, 0.3, 0.2]),
            (0.2, [0.0, 0.0, 1.0]),
            (0.3, [0.2, 0.5, 0.2, 0.1]),
        ],
    )
    def test_formula_matches_simulation(self, lam, pmf):
        service = ServiceDistribution(pmf)
        formula = analyze_queue(lam, service)
        simulated = simulate_queue(lam, service, slots=1_500_000, seed=3)
        assert simulated.mean_wait == pytest.approx(formula.mean_wait, rel=0.05, abs=0.01)
        assert simulated.utilization == pytest.approx(formula.utilization, rel=0.05)

    def test_simulation_validates_inputs(self):
        with pytest.raises(ParameterError):
            simulate_queue(0.5, ServiceDistribution([1.0]), slots=0)


class TestChannelOperatingPoint:
    def test_blanket_paging_never_queues(self):
        # m = 1 means every paging is one cycle: zero wait always.
        point = channel_operating_point(MODEL, COSTS, d=2, m=1, terminals=50)
        assert point.mean_wait_slots == 0.0
        assert point.setup_latency == pytest.approx(1.0)

    def test_bandwidth_scales_with_terminals(self):
        small = channel_operating_point(MODEL, COSTS, d=2, m=2, terminals=10)
        large = channel_operating_point(MODEL, COSTS, d=2, m=2, terminals=40)
        assert large.polling_bandwidth == pytest.approx(4 * small.polling_bandwidth)

    def test_overload_is_reported_not_raised(self):
        point = channel_operating_point(MODEL, COSTS, d=5, m=math.inf, terminals=90)
        assert not point.feasible
        assert point.setup_latency == math.inf
        assert point.utilization >= 1.0

    def test_aggregate_arrival_cap(self):
        with pytest.raises(ParameterError):
            channel_operating_point(MODEL, COSTS, d=2, m=2, terminals=150)

    def test_invalid_terminal_count(self):
        with pytest.raises(ParameterError):
            channel_operating_point(MODEL, COSTS, d=2, m=2, terminals=0)


class TestDimensionChannel:
    def test_sweep_structure(self):
        points = dimension_channel(MODEL, COSTS, terminals=40, delays=(1, 2, 3))
        assert [p.delay_bound for p in points] == [1, 2, 3]
        for point in points:
            assert point.terminals == 40

    def test_tension_between_cost_and_latency(self):
        # The paper's per-terminal story: cost falls with m.  The
        # system story: utilization (and eventually wait) rises with m.
        points = dimension_channel(
            MODEL, COSTS, terminals=60, delays=(1, 2, 3, math.inf)
        )
        costs = [p.per_terminal_cost for p in points]
        assert costs == sorted(costs, reverse=True)
        utilizations = [p.utilization for p in points]
        assert utilizations == sorted(utilizations)

    def test_small_population_everything_feasible(self):
        points = dimension_channel(MODEL, COSTS, terminals=5)
        assert all(p.feasible for p in points)

    def test_large_population_loses_large_delay_bounds(self):
        points = dimension_channel(
            MODEL, COSTS, terminals=60, delays=(1, 3, math.inf)
        )
        assert points[0].feasible
        assert not points[-1].feasible
