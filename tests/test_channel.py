"""Unit tests for the paging-channel queueing substrate."""

import math

import numpy as np
import pytest

from repro import CostParams, MobilityParams, ParameterError, TwoDimensionalModel
from repro.channel import (
    ServiceDistribution,
    analyze_queue,
    channel_operating_point,
    dimension_channel,
    simulate_queue,
)

MODEL = TwoDimensionalModel(MobilityParams(0.05, 0.01))
COSTS = CostParams(100.0, 10.0)


class TestServiceDistribution:
    def test_moments(self):
        service = ServiceDistribution([0.5, 0.3, 0.2])
        assert service.mean == pytest.approx(1.7)
        assert service.second_moment == pytest.approx(0.5 + 0.3 * 4 + 0.2 * 9)
        assert service.second_factorial_moment == pytest.approx(
            service.second_moment - service.mean
        )

    @pytest.mark.parametrize("pmf", [[], [0.5, 0.4], [1.2, -0.2]])
    def test_invalid_pmf(self, pmf):
        with pytest.raises(ParameterError):
            ServiceDistribution(pmf)

    def test_sampling_range(self, rng):
        service = ServiceDistribution([0.0, 1.0, 0.0])
        samples = service.sample(rng, 100)
        assert set(samples.tolist()) == {2}


class TestAnalyzeQueue:
    def test_deterministic_unit_service_never_waits(self):
        # With S = 1 and at most one Bernoulli arrival per slot, the
        # channel is always free when a request arrives.
        analysis = analyze_queue(0.5, ServiceDistribution([1.0]))
        assert analysis.mean_wait == 0.0
        assert analysis.mean_sojourn == 1.0

    def test_utilization(self):
        analysis = analyze_queue(0.2, ServiceDistribution([0.0, 0.0, 1.0]))
        assert analysis.utilization == pytest.approx(0.6)
        assert analysis.stable

    def test_overload_rejected(self):
        with pytest.raises(ParameterError):
            analyze_queue(0.4, ServiceDistribution([0.0, 0.0, 1.0]))

    def test_zero_arrivals(self):
        analysis = analyze_queue(0.0, ServiceDistribution([0.5, 0.5]))
        assert analysis.mean_wait == 0.0
        assert analysis.utilization == 0.0

    def test_wait_grows_with_load(self):
        service = ServiceDistribution([0.3, 0.4, 0.3])
        waits = [analyze_queue(lam, service).mean_wait for lam in (0.05, 0.2, 0.4)]
        assert waits == sorted(waits)

    @pytest.mark.parametrize(
        "lam,pmf",
        [
            (0.1, [0.5, 0.3, 0.2]),
            (0.2, [0.0, 0.0, 1.0]),
            (0.3, [0.2, 0.5, 0.2, 0.1]),
        ],
    )
    def test_formula_matches_simulation(self, lam, pmf):
        service = ServiceDistribution(pmf)
        formula = analyze_queue(lam, service)
        simulated = simulate_queue(lam, service, slots=1_500_000, seed=3)
        assert simulated.mean_wait == pytest.approx(formula.mean_wait, rel=0.05, abs=0.01)
        assert simulated.utilization == pytest.approx(formula.utilization, rel=0.05)

    def test_simulation_validates_inputs(self):
        with pytest.raises(ParameterError):
            simulate_queue(0.5, ServiceDistribution([1.0]), slots=0)


class TestQueueEdgeCases:
    """Overflow, backlog ordering, and degenerate-load behavior."""

    def test_zero_arrivals_simulated(self):
        # The no-arrival early return must report an idle channel and
        # fall back to the analytic service mean (nothing was sampled).
        service = ServiceDistribution([0.25, 0.75])
        analysis = simulate_queue(0.0, service, slots=500, seed=1)
        assert analysis.utilization == 0.0
        assert analysis.mean_wait == 0.0
        assert analysis.mean_service == pytest.approx(service.mean)

    def test_unit_service_never_waits_even_at_heavy_load(self):
        # S = 1 with at most one Bernoulli arrival per slot: the
        # channel is always free again before the next arrival, so the
        # FIFO recursion must produce exactly zero wait.
        analysis = simulate_queue(0.9, ServiceDistribution([1.0]), slots=20_000, seed=2)
        assert analysis.mean_wait == 0.0
        assert analysis.utilization == pytest.approx(0.9, abs=0.02)
        assert analysis.stable

    def test_overloaded_queue_clamps_utilization(self):
        # rho = 0.8 * 3 = 2.4: the simulation must still run (only the
        # closed form refuses) and report the busy fraction clamped to
        # 1.0 rather than the nonsensical raw 2.4.
        overloaded = simulate_queue(
            0.8, ServiceDistribution([0.0, 0.0, 1.0]), slots=5_000, seed=3
        )
        assert overloaded.utilization == 1.0
        assert not overloaded.stable
        assert overloaded.mean_wait > 0.0

    def test_overloaded_backlog_grows_with_horizon(self):
        # Past saturation the backlog diverges: doubling the horizon
        # must more than double the mean wait (each extra arrival joins
        # an ever-longer queue).
        service = ServiceDistribution([0.0, 0.0, 1.0])
        short = simulate_queue(0.8, service, slots=2_000, seed=4)
        long = simulate_queue(0.8, service, slots=8_000, seed=4)
        assert long.mean_wait > 2.0 * short.mean_wait

    def test_overflow_waits_follow_fifo_lindley_recursion(self):
        # Independent formulation of the same queue: with deterministic
        # service S = k, the FIFO waits obey the Lindley recursion
        #   W_0 = 0,  W_i = max(0, W_{i-1} + k - (t_i - t_{i-1})),
        # which references only inter-arrival gaps -- no start/finish
        # bookkeeping.  Reconstruct the arrival stream from the same
        # seed and require the simulated mean wait to match exactly.
        lam, k, slots, seed = 0.6, 3, 4_000, 5
        service = ServiceDistribution([0.0, 0.0, 1.0])
        simulated = simulate_queue(lam, service, slots=slots, seed=seed)

        rng = np.random.default_rng(seed)
        arrival_slots = np.flatnonzero(rng.random(slots) < lam)
        assert arrival_slots.size > 0
        waits = [0.0]
        for gap in np.diff(arrival_slots):
            waits.append(max(0.0, waits[-1] + k - gap))
        assert simulated.mean_wait == pytest.approx(float(np.mean(waits)), abs=1e-12)
        assert simulated.mean_service == k


class TestChannelOperatingPoint:
    def test_blanket_paging_never_queues(self):
        # m = 1 means every paging is one cycle: zero wait always.
        point = channel_operating_point(MODEL, COSTS, d=2, m=1, terminals=50)
        assert point.mean_wait_slots == 0.0
        assert point.setup_latency == pytest.approx(1.0)

    def test_bandwidth_scales_with_terminals(self):
        small = channel_operating_point(MODEL, COSTS, d=2, m=2, terminals=10)
        large = channel_operating_point(MODEL, COSTS, d=2, m=2, terminals=40)
        assert large.polling_bandwidth == pytest.approx(4 * small.polling_bandwidth)

    def test_overload_is_reported_not_raised(self):
        point = channel_operating_point(MODEL, COSTS, d=5, m=math.inf, terminals=90)
        assert not point.feasible
        assert point.setup_latency == math.inf
        assert point.utilization >= 1.0

    def test_aggregate_arrival_cap(self):
        with pytest.raises(ParameterError):
            channel_operating_point(MODEL, COSTS, d=2, m=2, terminals=150)

    def test_invalid_terminal_count(self):
        with pytest.raises(ParameterError):
            channel_operating_point(MODEL, COSTS, d=2, m=2, terminals=0)

    def test_zero_capacity_channel_rejected(self):
        # terminals * c >= 1 leaves no Bernoulli headroom at all -- the
        # channel has zero capacity for this population and must refuse
        # (with the shard advisory) rather than report rho >= 1.
        with pytest.raises(ParameterError, match="shard"):
            channel_operating_point(MODEL, COSTS, d=2, m=2, terminals=100)
        with pytest.raises(ParameterError):
            dimension_channel(MODEL, COSTS, terminals=100, delays=(1, 2))

    def test_zero_load_channel_is_idle(self):
        # c = 0: no calls ever arrive, so every delay bound is feasible
        # with an idle channel and zero polling bandwidth.
        quiet = TwoDimensionalModel(MobilityParams(0.05, 0.0))
        point = channel_operating_point(quiet, COSTS, d=2, m=2, terminals=50)
        assert point.feasible
        assert point.utilization == 0.0
        assert point.mean_wait_slots == 0.0
        assert point.polling_bandwidth == 0.0


class TestDimensionChannel:
    def test_sweep_structure(self):
        points = dimension_channel(MODEL, COSTS, terminals=40, delays=(1, 2, 3))
        assert [p.delay_bound for p in points] == [1, 2, 3]
        for point in points:
            assert point.terminals == 40

    def test_tension_between_cost_and_latency(self):
        # The paper's per-terminal story: cost falls with m.  The
        # system story: utilization (and eventually wait) rises with m.
        points = dimension_channel(
            MODEL, COSTS, terminals=60, delays=(1, 2, 3, math.inf)
        )
        costs = [p.per_terminal_cost for p in points]
        assert costs == sorted(costs, reverse=True)
        utilizations = [p.utilization for p in points]
        assert utilizations == sorted(utilizations)

    def test_small_population_everything_feasible(self):
        points = dimension_channel(MODEL, COSTS, terminals=5)
        assert all(p.feasible for p in points)

    def test_large_population_loses_large_delay_bounds(self):
        points = dimension_channel(
            MODEL, COSTS, terminals=60, delays=(1, 3, math.inf)
        )
        assert points[0].feasible
        assert not points[-1].feasible
