"""Property-based tests for the CTRW mobility layer.

Three law families over randomly drawn residence distributions and
operating points: sampled moments must match each distribution's
declared spec moments, CTRW with geometric residence must degenerate
to the plain random walk at a matched rate, and both engines must be
deterministic under a fixed seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import HexTopology
from repro.core.parameters import CostParams, MobilityParams
from repro.mobility.ctrw import CTRWSpec, CTRWWalk
from repro.mobility.residence import (
    DeterministicResidence,
    GeometricResidence,
    HyperexponentialResidence,
    TruncatedParetoResidence,
    residence_from_spec,
)

pytestmark = pytest.mark.slow

geometric = st.floats(min_value=0.02, max_value=0.9).map(GeometricResidence)
deterministic = st.integers(min_value=1, max_value=40).map(DeterministicResidence)
hyper = st.tuples(
    st.floats(min_value=2.0, max_value=30.0),
    st.floats(min_value=1.5, max_value=12.0),
).map(lambda mc: HyperexponentialResidence.fit(*mc))
pareto = st.tuples(
    st.floats(min_value=1.1, max_value=2.5),
    st.floats(min_value=1.0, max_value=4.0),
    st.floats(min_value=20.0, max_value=400.0),
).map(lambda amx: TruncatedParetoResidence(amx[0], amx[1], amx[2]))

residences = st.one_of(geometric, deterministic, hyper, pareto)


class TestSampleMomentsMatchSpec:
    @given(residence=residences, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_empirical_mean_and_variance(self, residence, seed):
        # The declared mean()/variance() are exact moments of the
        # realized discrete distribution, so the sample moments of the
        # shared from_uniforms transform must converge on them.
        rng = np.random.default_rng(seed)
        n = 60_000
        draws = residence.from_uniforms(rng.random(n), rng.random(n))
        assert draws.min() >= 1
        mean = residence.mean()
        sd = math_sqrt(residence.variance())
        # CLT band: 6 standard errors, plus a floor for lattice effects.
        band = max(6.0 * sd / math_sqrt(n), 1e-9 + 0.01 * mean)
        assert abs(draws.mean() - mean) <= band, (draws.mean(), mean, band)
        if sd > 0:
            assert draws.var() == pytest.approx(
                residence.variance(), rel=0.25
            )
        else:
            assert draws.var() == 0.0

    @given(residence=residences)
    @settings(max_examples=25, deadline=None)
    def test_spec_roundtrip(self, residence):
        rebuilt = residence_from_spec(residence.spec())
        assert rebuilt == residence
        assert rebuilt.mean() == pytest.approx(residence.mean())
        assert rebuilt.variance() == pytest.approx(residence.variance())


def math_sqrt(x):
    return float(np.sqrt(x))


operating_points = st.tuples(
    st.floats(min_value=0.05, max_value=0.6),
    st.floats(min_value=0.01, max_value=0.2),
    st.integers(min_value=1, max_value=3),
)


class TestGeometricDegeneracy:
    @given(point=operating_points, seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_ctrw_exp_matches_uniform_walk_statistically(self, point, seed):
        # CTRW with geometric residence IS the uniform walk: over a
        # common slot budget the two vectorized paths must agree within
        # their joint confidence band plus the standard 5% criterion.
        from repro.simulation.vectorized import VectorizedDistanceEngine

        q, c, d = point
        slots, terminals = 3000, 96
        kwargs = dict(
            threshold=d,
            mobility=MobilityParams(move_probability=q, call_probability=c),
            costs=CostParams(update_cost=50.0, poll_cost=10.0),
            terminals=terminals,
            max_delay=2,
            seed=seed,
        )
        ctrw = VectorizedDistanceEngine(
            HexTopology(), walk=CTRWSpec(residence=GeometricResidence(q)), **kwargs
        ).run(slots)
        uniform = VectorizedDistanceEngine(
            HexTopology(), event_mode="independent", backend="auto", **kwargs
        ).run(slots)
        band = (
            ctrw.total_cost_ci()
            + uniform.total_cost_ci()
            + 0.05 * max(ctrw.mean_total_cost, uniform.mean_total_cost)
        )
        assert abs(ctrw.mean_total_cost - uniform.mean_total_cost) <= band


class TestSeedDeterminism:
    @given(
        residence=residences,
        seed=st.integers(min_value=0, max_value=10_000),
        drift=st.floats(min_value=0.0, max_value=0.8),
    )
    @settings(max_examples=10, deadline=None)
    def test_vectorized_engine_bitwise(self, residence, seed, drift):
        from repro.simulation.vectorized import VectorizedDistanceEngine

        def run():
            engine = VectorizedDistanceEngine(
                HexTopology(),
                threshold=2,
                mobility=MobilityParams(move_probability=0.2, call_probability=0.05),
                costs=CostParams(update_cost=50.0, poll_cost=10.0),
                terminals=32,
                max_delay=2,
                seed=seed,
                walk=CTRWSpec(residence=residence, drift=drift),
            )
            return engine.run(800)

        a, b = run(), run()
        assert a.mean_total_cost == b.mean_total_cost
        assert a.mean_update_cost == b.mean_update_cost
        assert a.mean_paging_cost == b.mean_paging_cost

    @given(residence=residences, seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_per_cell_walker_bitwise(self, residence, seed):
        def run():
            rng = np.random.default_rng(seed)
            walker = CTRWWalk(HexTopology(), residence, rng=rng)
            positions = []
            for _ in range(400):
                if walker.move_due():
                    walker.move()
                positions.append(walker.position)
            return positions

        assert run() == run()
