"""Property-based tests across the registered location-update schemes.

Three families of properties over random operating points:

* every scheme's analytic steady-state cost is non-negative and finite
  wherever its parameters are valid;
* scale invariances: the timer scheme's cost depends only on ``U / T``
  when calls are off (rescaling the period with the update cost is a
  no-op), and every scheme's cost is linear in ``(U, V)`` jointly;
* scheme identifications: a movement threshold of 1 (report after
  every move) fires exactly when a distance threshold of 0 does, so
  the two costs coincide under the physical boundary convention --
  the regime where the two schemes' definitions coincide.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostParams, MobilityParams
from repro.core.baselines import (
    location_area_costs,
    movement_based_costs,
    time_based_costs,
)
from repro.core.costs import CostEvaluator
from repro.core.models import (
    OneDimensionalModel,
    SquareGridModel,
    TwoDimensionalModel,
)
from repro.geometry import HexTopology, LineTopology, SquareTopology
from repro.strategies import optimize_joint_policy, strategy_names

pytestmark = pytest.mark.slow

TOPOLOGIES = (LineTopology(), HexTopology(), SquareTopology())
EXACT_MODELS = {
    LineTopology: OneDimensionalModel,
    HexTopology: TwoDimensionalModel,
    SquareTopology: SquareGridModel,
}

mobility_params = st.builds(
    MobilityParams,
    move_probability=st.floats(min_value=0.01, max_value=0.7),
    call_probability=st.floats(min_value=0.0, max_value=0.1),
)
cost_params = st.builds(
    CostParams,
    update_cost=st.floats(min_value=0.1, max_value=500.0),
    poll_cost=st.floats(min_value=0.1, max_value=50.0),
)
delays = st.one_of(st.integers(min_value=1, max_value=5), st.just(math.inf))


def _baseline_costs(topology, mob, costs):
    """One representative cost per blanket-paging baseline scheme."""
    return (
        movement_based_costs(topology, mob, costs, movement_threshold=3),
        time_based_costs(topology, mob, costs, period=4),
        location_area_costs(topology, mob, costs, radius=2),
    )


class TestCostsWellFormed:
    def test_every_scheme_is_registered(self):
        names = strategy_names()
        for scheme in (
            "distance",
            "movement",
            "timer",
            "location-area",
            "jointly-optimal",
        ):
            assert scheme in names

    @given(mob=mobility_params, costs=cost_params)
    @settings(max_examples=40, deadline=None)
    def test_baseline_costs_nonnegative_finite(self, mob, costs):
        for topology in TOPOLOGIES:
            for outcome in _baseline_costs(topology, mob, costs):
                assert outcome.update_cost >= 0
                assert outcome.paging_cost >= 0
                assert math.isfinite(outcome.total_cost)

    @given(mob=mobility_params, costs=cost_params, m=delays)
    @settings(max_examples=20, deadline=None)
    def test_joint_policy_cost_nonnegative_finite_and_dominant(
        self, mob, costs, m
    ):
        model = OneDimensionalModel(mob)
        policy = optimize_joint_policy(model, costs, m, d_max=12)
        assert policy.update_cost >= 0
        assert policy.paging_cost >= 0
        assert math.isfinite(policy.total_cost)
        assert policy.total_cost <= policy.baseline_cost + 1e-9
        history = policy.cost_history()
        assert all(b <= a + 1e-12 for a, b in zip(history, history[1:]))


class TestScaleInvariances:
    @given(
        mob=st.builds(
            MobilityParams,
            move_probability=st.floats(min_value=0.01, max_value=0.9),
            call_probability=st.just(0.0),
        ),
        update_cost=st.floats(min_value=0.1, max_value=500.0),
        period=st.integers(min_value=1, max_value=20),
        k=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_timer_cost_invariant_under_period_and_rate_rescaling(
        self, mob, update_cost, period, k
    ):
        # With calls off the timer cost is the pure update rate U / T,
        # so rescaling the period with the update cost is a no-op.
        for topology in TOPOLOGIES:
            base = time_based_costs(
                topology, mob, CostParams(update_cost, 1.0), period
            )
            scaled = time_based_costs(
                topology, mob, CostParams(k * update_cost, 1.0), k * period
            )
            assert base.paging_cost == 0.0
            assert scaled.total_cost == pytest.approx(
                base.total_cost, rel=1e-12
            )

    @given(mob=mobility_params, costs=cost_params, k=st.floats(2.0, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_all_scheme_costs_linear_in_cost_weights(self, mob, costs, k):
        scaled_params = CostParams(k * costs.update_cost, k * costs.poll_cost)
        for topology in TOPOLOGIES:
            for base, scaled in zip(
                _baseline_costs(topology, mob, costs),
                _baseline_costs(topology, mob, scaled_params),
            ):
                assert scaled.total_cost == pytest.approx(
                    k * base.total_cost, rel=1e-12
                )
            model = EXACT_MODELS[type(topology)](mob)
            evaluator = CostEvaluator(model, costs)
            scaled_evaluator = CostEvaluator(model, scaled_params)
            assert scaled_evaluator.total_cost(3, 2) == pytest.approx(
                k * evaluator.total_cost(3, 2), rel=1e-12
            )


class TestSchemeIdentifications:
    @given(mob=mobility_params, costs=cost_params)
    @settings(max_examples=40, deadline=None)
    def test_movement_one_equals_distance_zero(self, mob, costs):
        # A movement threshold of 1 reports after every move; so does a
        # distance threshold of 0 (any move leaves ring 0).  Under the
        # physical boundary convention (update rate q at d = 0) the two
        # schemes are therefore the same policy with blanket paging.
        for topology in TOPOLOGIES:
            movement = movement_based_costs(
                topology, mob, costs, movement_threshold=1
            )
            model = EXACT_MODELS[type(topology)](mob)
            evaluator = CostEvaluator(model, costs, convention="physical")
            breakdown = evaluator.breakdown(0, 1)
            assert movement.update_cost == pytest.approx(
                breakdown.update_cost, rel=1e-12
            )
            assert movement.paging_cost == pytest.approx(
                breakdown.paging_cost, rel=1e-12
            )
