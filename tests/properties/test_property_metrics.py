"""Property-based check of the exported cost-accounting invariant.

For random ``(q, c, U, V, d, m)`` the observability layer's
``update_cost_total`` / ``paging_cost_total`` counters must equal the
simulation's own :class:`~repro.simulation.metrics.CostMeter` snapshot
totals *exactly* -- not to a tolerance -- for the serial runner, the
pooled runner, and the vectorized engine.  The registry promises this
by accumulating one increment per replication (or per terminal) in
canonical index order, the same order Python's ``sum`` walks the
snapshots; this test is the contract the instrumentation sites in
``runner.py`` and ``vectorized.py`` cite.
"""

import pytest
import math
from functools import partial

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import CostParams, MobilityParams
from repro.geometry import HexTopology
from repro.observability import session
from repro.simulation import VectorizedDistanceEngine, run_replicated
from repro.strategies import DistanceStrategy

pytestmark = pytest.mark.slow

probabilities = st.tuples(
    st.floats(min_value=0.05, max_value=0.6),
    st.floats(min_value=0.01, max_value=0.2),
).filter(lambda qc: qc[0] + qc[1] <= 1.0)
unit_costs = st.tuples(
    st.floats(min_value=0.1, max_value=500.0),
    st.floats(min_value=0.1, max_value=50.0),
)
thresholds = st.integers(min_value=1, max_value=4)
delays = st.one_of(st.integers(min_value=1, max_value=3), st.just(math.inf))
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def exported_totals(registry):
    return (
        registry.total("update_cost_total"),
        registry.total("paging_cost_total"),
    )


class TestExportedCostsEqualMeterTotals:
    @given(qc=probabilities, uv=unit_costs, d=thresholds, m=delays, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_serial_runner(self, qc, uv, d, m, seed):
        q, c = qc
        U, V = uv
        with session() as obs:
            result = run_replicated(
                topology=HexTopology(),
                strategy_factory=partial(DistanceStrategy, d, max_delay=m),
                mobility=MobilityParams(move_probability=q, call_probability=c),
                costs=CostParams(update_cost=U, poll_cost=V),
                slots=120,
                replications=3,
                seed=seed,
            )
        snapshots = result.snapshots
        assert exported_totals(obs.registry) == (
            sum(s.update_cost for s in snapshots),
            sum(s.paging_cost for s in snapshots),
        )

    @given(qc=probabilities, uv=unit_costs, d=thresholds, m=delays, seed=seeds)
    @settings(max_examples=5, deadline=None)
    def test_pooled_runner_matches_serial_bit_for_bit(self, qc, uv, d, m, seed):
        q, c = qc
        U, V = uv

        def run(workers):
            with session() as obs:
                result = run_replicated(
                    topology=HexTopology(),
                    strategy_factory=partial(DistanceStrategy, d, max_delay=m),
                    mobility=MobilityParams(
                        move_probability=q, call_probability=c
                    ),
                    costs=CostParams(update_cost=U, poll_cost=V),
                    slots=80,
                    replications=3,
                    seed=seed,
                    workers=workers,
                )
            return result, obs.registry

        serial_result, serial_registry = run(workers=None)
        pooled_result, pooled_registry = run(workers=2)
        expect = (
            sum(s.update_cost for s in serial_result.snapshots),
            sum(s.paging_cost for s in serial_result.snapshots),
        )
        assert exported_totals(serial_registry) == expect
        assert exported_totals(pooled_registry) == expect
        assert pooled_registry.collect() == serial_registry.collect()

    @given(qc=probabilities, uv=unit_costs, d=thresholds, m=delays, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_vectorized_engine(self, qc, uv, d, m, seed):
        q, c = qc
        U, V = uv
        with session() as obs:
            engine = VectorizedDistanceEngine(
                topology=HexTopology(),
                threshold=d,
                mobility=MobilityParams(move_probability=q, call_probability=c),
                costs=CostParams(update_cost=U, poll_cost=V),
                max_delay=m,
                terminals=16,
                seed=seed,
            )
            result = engine.run(120)
        snapshots = result.snapshots
        assert exported_totals(obs.registry) == (
            sum(s.update_cost for s in snapshots),
            sum(s.paging_cost for s in snapshots),
        )
