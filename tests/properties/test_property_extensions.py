"""Property-based tests for the extension modules.

Invariants for the queueing substrate, the soft-delay DP, the
analytical baselines, and transient analysis across random parameters.
"""

import pytest
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    TwoDimensionalModel,
    distribution_at,
    location_area_costs,
    movement_based_costs,
    optimal_soft_delay_partition,
    time_based_costs,
)
from repro.channel import ServiceDistribution, analyze_queue
from repro.geometry import HexTopology, LineTopology

pytestmark = pytest.mark.slow

HEX = HexTopology()
LINE = LineTopology()


@st.composite
def service_distributions(draw):
    raw = draw(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8)
    )
    arr = np.asarray(raw) + 1e-6
    return ServiceDistribution(pmf=list(arr / arr.sum()))


mobility_params = st.builds(
    MobilityParams,
    move_probability=st.floats(min_value=0.01, max_value=0.6),
    call_probability=st.floats(min_value=0.001, max_value=0.1),
)


class TestQueueProperties:
    @given(service=service_distributions(), lam=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=80)
    def test_wait_is_finite_and_nonnegative_when_stable(self, service, lam):
        rho = lam * service.mean
        if rho >= 1.0:
            return
        analysis = analyze_queue(lam, service)
        assert analysis.mean_wait >= 0.0
        assert math.isfinite(analysis.mean_wait)
        assert analysis.mean_sojourn >= service.mean

    @given(service=service_distributions())
    @settings(max_examples=40)
    def test_wait_monotone_in_arrival_rate(self, service):
        lams = [0.05, 0.15, 0.3]
        waits = []
        for lam in lams:
            if lam * service.mean >= 1.0:
                return
            waits.append(analyze_queue(lam, service).mean_wait)
        assert waits == sorted(waits)

    @given(service=service_distributions())
    @settings(max_examples=40)
    def test_moments_consistent(self, service):
        assert service.second_moment >= service.mean**2 - 1e-12
        assert service.second_factorial_moment == (
            service.second_moment - service.mean
        ) or abs(
            service.second_factorial_moment
            - (service.second_moment - service.mean)
        ) < 1e-9


@st.composite
def ring_setups(draw):
    d = draw(st.integers(min_value=0, max_value=12))
    raw = draw(
        st.lists(
            st.floats(min_value=0.001, max_value=1.0),
            min_size=d + 1,
            max_size=d + 1,
        )
    )
    p = np.asarray(raw)
    p = p / p.sum()
    n = [HEX.ring_size(i) for i in range(d + 1)]
    return d, list(p), n


class TestSoftDelayProperties:
    @given(setup=ring_setups(), penalty=st.floats(min_value=0.0, max_value=1000.0))
    @settings(max_examples=60, deadline=None)
    def test_objective_never_above_extreme_plans(self, setup, penalty):
        d, p, n = setup
        V = 5.0
        plan, cells, cycles = optimal_soft_delay_partition(p, n, V, penalty)
        objective = V * cells + penalty * cycles
        # Compare against per-ring and blanket plans explicitly.
        from repro.paging import blanket_partition, per_ring_partition

        for reference in (per_ring_partition(d), blanket_partition(d)):
            ref_cells = reference.expected_polled_cells(HEX, p)
            ref_cycles = reference.expected_delay(p)
            assert objective <= V * ref_cells + penalty * ref_cycles + 1e-9

    @given(setup=ring_setups())
    @settings(max_examples=40, deadline=None)
    def test_delay_monotone_in_penalty(self, setup):
        d, p, n = setup
        cycles_seq = []
        for penalty in (0.0, 5.0, 100.0, 1e6):
            _, _, cycles = optimal_soft_delay_partition(p, n, 5.0, penalty)
            cycles_seq.append(cycles)
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(cycles_seq, cycles_seq[1:])
        )


class TestBaselineProperties:
    @given(mob=mobility_params, M=st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_movement_costs_positive_and_finite(self, mob, M):
        costs = CostParams(20.0, 2.0)
        result = movement_based_costs(HEX, mob, costs, M)
        assert result.update_cost > 0
        assert result.paging_cost >= 0
        assert math.isfinite(result.total_cost)

    @given(mob=mobility_params, T=st.integers(min_value=1, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_timer_update_cost_is_inverse_period_scale(self, mob, T):
        costs = CostParams(20.0, 2.0)
        result = time_based_costs(LINE, mob, costs, T)
        # p_{T-1} <= 1/T * (1/(1-c))^T-ish; loose structural bound:
        assert result.update_cost <= costs.U
        assert result.update_cost >= costs.U / T * (1 - mob.c) ** T - 1e-12

    @given(mob=mobility_params, n=st.integers(min_value=0, max_value=15))
    @settings(max_examples=60, deadline=None)
    def test_la_components_scale(self, mob, n):
        costs = CostParams(20.0, 2.0)
        result = location_area_costs(HEX, mob, costs, n)
        cells = HEX.coverage(n)
        assert result.paging_cost == mob.c * costs.V * cells
        assert 0 < result.update_cost <= costs.U * mob.q


class TestTransientProperties:
    @given(
        mob=mobility_params,
        d=st.integers(min_value=1, max_value=10),
        slots=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_distribution_evolution_stays_normalized(self, mob, d, slots):
        model = OneDimensionalModel(mob)
        vec = distribution_at(model, d, slots)
        assert abs(vec.sum() - 1.0) < 1e-9
        assert np.all(vec >= -1e-12)

    @given(mob=mobility_params, d=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_tv_distance_decreases_under_evolution(self, mob, d):
        model = TwoDimensionalModel(mob)
        pi = model.steady_state(d)
        tv = []
        for slots in (0, 20, 200):
            vec = distribution_at(model, d, slots)
            tv.append(0.5 * float(np.abs(vec - pi).sum()))
        assert tv[2] <= tv[0] + 1e-9
