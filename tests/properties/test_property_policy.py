"""Property-based tests for policy serialization and paging plans."""

import pytest
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Policy
from repro.geometry import HexTopology, LineTopology, SquareTopology
from repro.paging import PagingPlan, partition_from_sizes

pytestmark = pytest.mark.slow

TOPOLOGIES = (LineTopology(), HexTopology(), SquareTopology())


@st.composite
def contiguous_plans(draw):
    """A random valid contiguous partition of rings 0..d."""
    d = draw(st.integers(min_value=0, max_value=12))
    sizes = []
    remaining = d + 1
    while remaining > 0:
        take = draw(st.integers(min_value=1, max_value=remaining))
        sizes.append(take)
        remaining -= take
    return partition_from_sizes(d, sizes)


@st.composite
def policies(draw):
    plan = draw(contiguous_plans())
    topology = draw(st.sampled_from(TOPOLOGIES))
    bound = draw(
        st.one_of(
            st.integers(min_value=plan.delay_bound, max_value=plan.delay_bound + 5),
            st.just(math.inf),
        )
    )
    return Policy(
        topology=topology,
        threshold=plan.threshold,
        max_delay=bound,
        plan=plan,
    )


class TestPolicyRoundTrip:
    @given(policy=policies())
    @settings(max_examples=80)
    def test_json_roundtrip_is_identity(self, policy):
        restored = Policy.from_json(policy.to_json())
        assert restored.topology == policy.topology
        assert restored.threshold == policy.threshold
        assert restored.max_delay == policy.max_delay
        assert restored.plan == policy.plan

    @given(policy=policies())
    @settings(max_examples=40)
    def test_serialized_form_is_valid_json_object(self, policy):
        import json

        payload = json.loads(policy.to_json())
        assert payload["version"] == 1
        assert sorted(r for group in payload["subareas"] for r in group) == list(
            range(policy.threshold + 1)
        )

    @given(policy=policies())
    @settings(max_examples=40, deadline=None)
    def test_built_strategy_matches_policy(self, policy):
        strategy = policy.build_strategy()
        assert strategy.threshold == policy.threshold
        assert strategy.plan == policy.plan
        strategy.attach(policy.topology, policy.topology.origin)
        covered = {cell for group in strategy.polling_groups() for cell in group}
        assert covered == set(
            policy.topology.disk(policy.topology.origin, policy.threshold)
        )


class TestPlanEquality:
    @given(plan=contiguous_plans())
    @settings(max_examples=60)
    def test_plan_equality_is_structural(self, plan):
        clone = PagingPlan(threshold=plan.threshold, subareas=plan.subareas)
        assert clone == plan

    @given(plan=contiguous_plans())
    @settings(max_examples=60)
    def test_delay_bound_is_group_count(self, plan):
        assert plan.delay_bound == len(plan.subareas)
