"""Property-based tests for the cell geometries.

The hex distance must be a true metric compatible with the neighbor
graph, and rings/disks must behave like metric spheres/balls -- these
invariants underpin both the Markov model (ring aggregation) and every
strategy's paging-coverage guarantee.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import HexTopology, LineTopology

pytestmark = pytest.mark.slow

HEX = HexTopology()
LINE = LineTopology()

coordinate = st.integers(min_value=-50, max_value=50)
hex_cell = st.tuples(coordinate, coordinate)
line_cell = coordinate
radius = st.integers(min_value=0, max_value=12)


class TestHexMetric:
    @given(a=hex_cell, b=hex_cell)
    def test_symmetry(self, a, b):
        assert HEX.distance(a, b) == HEX.distance(b, a)

    @given(a=hex_cell, b=hex_cell)
    def test_identity(self, a, b):
        assert (HEX.distance(a, b) == 0) == (a == b)

    @given(a=hex_cell, b=hex_cell, c=hex_cell)
    def test_triangle_inequality(self, a, b, c):
        assert HEX.distance(a, c) <= HEX.distance(a, b) + HEX.distance(b, c)

    @given(a=hex_cell, b=hex_cell, dq=coordinate, dr=coordinate)
    def test_translation_invariance(self, a, b, dq, dr):
        shifted_a = (a[0] + dq, a[1] + dr)
        shifted_b = (b[0] + dq, b[1] + dr)
        assert HEX.distance(shifted_a, shifted_b) == HEX.distance(a, b)

    @given(cell=hex_cell)
    def test_neighbors_are_exactly_distance_one(self, cell):
        for nb in HEX.neighbors(cell):
            assert HEX.distance(cell, nb) == 1

    @given(a=hex_cell, b=hex_cell)
    def test_distance_is_graph_distance(self, a, b):
        # A move changes the distance by at most 1, so hex distance is a
        # lower bound on path length; conversely greedy descent always
        # finds a neighbor one closer, so it is also an upper bound.
        if a == b:
            return
        current = a
        steps = 0
        while current != b:
            closer = [
                nb
                for nb in HEX.neighbors(current)
                if HEX.distance(nb, b) == HEX.distance(current, b) - 1
            ]
            assert closer, "greedy descent must always make progress"
            current = closer[0]
            steps += 1
        assert steps == HEX.distance(a, b)


class TestHexRings:
    @given(center=hex_cell, r=radius)
    @settings(max_examples=40)
    def test_ring_cells_at_exact_distance(self, center, r):
        for cell in HEX.ring(center, r):
            assert HEX.distance(center, cell) == r

    @given(center=hex_cell, r=radius)
    @settings(max_examples=40)
    def test_ring_size_formula(self, center, r):
        cells = HEX.ring(center, r)
        assert len(cells) == HEX.ring_size(r)
        assert len(set(cells)) == len(cells)

    @given(center=hex_cell, r=st.integers(min_value=0, max_value=8))
    @settings(max_examples=25)
    def test_coverage_formula(self, center, r):
        disk = list(HEX.disk(center, r))
        assert len(disk) == 3 * r * (r + 1) + 1
        assert len(set(disk)) == len(disk)


class TestLine:
    @given(a=line_cell, b=line_cell, c=line_cell)
    def test_triangle_inequality(self, a, b, c):
        assert LINE.distance(a, c) <= LINE.distance(a, b) + LINE.distance(b, c)

    @given(center=line_cell, r=radius)
    def test_ring_and_coverage(self, center, r):
        ring = LINE.ring(center, r)
        assert all(LINE.distance(center, cell) == r for cell in ring)
        assert LINE.coverage(r) == 2 * r + 1

    @given(cell=line_cell)
    def test_neighbors(self, cell):
        assert set(LINE.neighbors(cell)) == {cell - 1, cell + 1}
