"""Property-based tests for the cost model and optimizer."""

import pytest
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CostEvaluator,
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    TwoDimensionalModel,
    exhaustive_search,
    find_optimal_threshold,
)

pytestmark = pytest.mark.slow

mobility_params = st.builds(
    MobilityParams,
    move_probability=st.floats(min_value=0.01, max_value=0.7),
    call_probability=st.floats(min_value=0.0, max_value=0.1),
)
cost_params = st.builds(
    CostParams,
    update_cost=st.floats(min_value=0.0, max_value=500.0),
    poll_cost=st.floats(min_value=0.1, max_value=50.0),
)
delays = st.one_of(st.integers(min_value=1, max_value=6), st.just(math.inf))
thresholds = st.integers(min_value=0, max_value=15)


class TestCostProperties:
    @given(mob=mobility_params, costs=cost_params, d=thresholds, m=delays)
    @settings(max_examples=60, deadline=None)
    def test_costs_are_finite_and_nonnegative(self, mob, costs, d, m):
        evaluator = CostEvaluator(OneDimensionalModel(mob), costs)
        breakdown = evaluator.breakdown(d, m)
        assert breakdown.update_cost >= 0
        assert breakdown.paging_cost >= 0
        assert math.isfinite(breakdown.total_cost)

    @given(mob=mobility_params, costs=cost_params, d=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_paging_cost_monotone_in_delay(self, mob, costs, d):
        evaluator = CostEvaluator(TwoDimensionalModel(mob), costs)
        previous = math.inf
        for m in (1, 2, 3, math.inf):
            value = evaluator.paging_cost(d, m)
            assert value <= previous + 1e-9
            previous = value

    @given(mob=mobility_params, costs=cost_params, d=thresholds, m=delays)
    @settings(max_examples=60, deadline=None)
    def test_total_is_sum_of_parts(self, mob, costs, d, m):
        evaluator = CostEvaluator(OneDimensionalModel(mob), costs)
        assert evaluator.total_cost(d, m) == (
            evaluator.update_cost(d) + evaluator.paging_cost(d, m)
        )

    @given(mob=mobility_params, d=thresholds, m=delays)
    @settings(max_examples=40, deadline=None)
    def test_cost_linear_in_unit_prices(self, mob, d, m):
        model = OneDimensionalModel(mob)
        base = CostEvaluator(model, CostParams(10.0, 5.0)).breakdown(d, m)
        scaled = CostEvaluator(model, CostParams(30.0, 15.0)).breakdown(d, m)
        assert scaled.update_cost == base.update_cost * 3.0 or abs(
            scaled.update_cost - base.update_cost * 3.0
        ) < 1e-9
        assert abs(scaled.paging_cost - base.paging_cost * 3.0) < 1e-9


class TestOptimizerProperties:
    @given(mob=mobility_params, costs=cost_params, m=delays)
    @settings(max_examples=40, deadline=None)
    def test_optimum_is_global_over_search_range(self, mob, costs, m):
        model = OneDimensionalModel(mob)
        evaluator = CostEvaluator(model, costs)
        d_max = 25
        solution = find_optimal_threshold(model, costs, m, d_max=d_max)
        for d in range(d_max + 1):
            assert solution.total_cost <= evaluator.total_cost(d, m) + 1e-12

    @given(mob=mobility_params, costs=cost_params)
    @settings(max_examples=40, deadline=None)
    def test_relaxing_delay_never_hurts(self, mob, costs):
        model = TwoDimensionalModel(mob)
        previous = math.inf
        for m in (1, 2, 4, math.inf):
            value = find_optimal_threshold(model, costs, m, d_max=25).total_cost
            assert value <= previous + 1e-9
            previous = value

    @given(
        costs=cost_params,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_annealing_never_beats_exhaustive(self, costs, seed):
        # Exhaustive is the global optimum; annealing can only match it.
        model = OneDimensionalModel(MobilityParams(0.1, 0.02))
        evaluator = CostEvaluator(model, costs)

        def objective(d):
            return evaluator.total_cost(d, 2)

        exact = exhaustive_search(objective, 20)
        from repro import simulated_annealing

        annealed = simulated_annealing(objective, 20, seed=seed)
        assert annealed.optimal_cost >= exact.optimal_cost - 1e-12
