"""Property-based tests for paging partitions and their costs."""

import pytest
import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry import HexTopology, LineTopology
from repro.paging import (
    PagingPlan,
    optimal_contiguous_partition,
    per_ring_partition,
    sdf_partition,
    blanket_partition,
)

pytestmark = pytest.mark.slow

HEX = HexTopology()
LINE = LineTopology()

thresholds = st.integers(min_value=0, max_value=15)
delays = st.one_of(st.integers(min_value=1, max_value=8), st.just(math.inf))


@st.composite
def distributions(draw, d):
    raw = draw(
        st.lists(
            st.floats(min_value=0.001, max_value=1.0),
            min_size=d + 1,
            max_size=d + 1,
        )
    )
    arr = np.asarray(raw)
    return arr / arr.sum()


class TestSDFInvariants:
    @given(d=thresholds, m=delays)
    def test_covers_rings_exactly_once(self, d, m):
        plan = sdf_partition(d, m)
        rings = [r for group in plan.subareas for r in group]
        assert sorted(rings) == list(range(d + 1))

    @given(d=thresholds, m=delays)
    def test_delay_bound_respected(self, d, m):
        plan = sdf_partition(d, m)
        bound = d + 1 if m == math.inf else min(d + 1, m)
        assert plan.delay_bound <= bound

    @given(d=thresholds, m=delays)
    def test_groups_are_contiguous_and_ordered(self, d, m):
        plan = sdf_partition(d, m)
        expected_next = 0
        for group in plan.subareas:
            assert list(group) == list(
                range(expected_next, expected_next + len(group))
            )
            expected_next += len(group)

    @given(d=thresholds, m=delays, data=st.data())
    @settings(max_examples=50)
    def test_expected_cells_between_bounds(self, d, m, data):
        # Blanket polling is the worst plan, per-ring the best among
        # SDF-ordered plans; SDF must fall in between.
        p = data.draw(distributions(d))
        sdf = sdf_partition(d, m).expected_polled_cells(HEX, p)
        blanket = blanket_partition(d).expected_polled_cells(HEX, p)
        per_ring = per_ring_partition(d).expected_polled_cells(HEX, p)
        assert per_ring <= sdf + 1e-9
        assert sdf <= blanket + 1e-9

    @given(d=thresholds, m=delays, data=st.data())
    @settings(max_examples=50)
    def test_expected_delay_at_most_bound(self, d, m, data):
        p = data.draw(distributions(d))
        plan = sdf_partition(d, m)
        assert plan.expected_delay(p) <= plan.delay_bound + 1e-9
        assert plan.expected_delay(p) >= 1.0 - 1e-9


class TestOptimalPartitionInvariants:
    @given(d=thresholds, m=delays, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_sdf(self, d, m, data):
        p = data.draw(distributions(d))
        sizes = [HEX.ring_size(i) for i in range(d + 1)]
        opt = optimal_contiguous_partition(d, m, p, sizes)
        sdf = sdf_partition(d, m)
        assert opt.expected_polled_cells(HEX, p) <= sdf.expected_polled_cells(
            HEX, p
        ) + 1e-9

    @given(d=thresholds, m=delays, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_respects_delay_bound(self, d, m, data):
        p = data.draw(distributions(d))
        sizes = [LINE.ring_size(i) for i in range(d + 1)]
        opt = optimal_contiguous_partition(d, m, p, sizes)
        bound = d + 1 if m == math.inf else min(d + 1, m)
        assert opt.delay_bound <= bound

    @given(d=st.integers(min_value=0, max_value=9), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_unbounded_beats_every_bounded(self, d, data):
        p = data.draw(distributions(d))
        sizes = [HEX.ring_size(i) for i in range(d + 1)]
        unbounded = optimal_contiguous_partition(
            d, math.inf, p, sizes
        ).expected_polled_cells(HEX, p)
        for m in (1, 2, 3):
            bounded = optimal_contiguous_partition(
                d, m, p, sizes
            ).expected_polled_cells(HEX, p)
            assert unbounded <= bounded + 1e-9
