"""Property-based tests for steady-state solvers and closed forms.

Across random parameters, all solvers must return the same stationary
distribution, the distribution must actually be stationary, and the
closed forms must match the generic solver they shortcut.
"""

import pytest
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import closed_form
from repro.core.chains import (
    ResetChain,
    solve_steady_state_matrix,
    solve_steady_state_recursive,
)
from repro.core.models import (
    OneDimensionalModel,
    TwoDimensionalApproximateModel,
    TwoDimensionalModel,
)
from repro.core.parameters import MobilityParams

pytestmark = pytest.mark.slow

probabilities = st.tuples(
    st.floats(min_value=0.01, max_value=0.8),
    st.floats(min_value=0.0, max_value=0.15),
)
thresholds = st.integers(min_value=0, max_value=25)


def mobility(qc):
    q, c = qc
    return MobilityParams(move_probability=q, call_probability=c)


class TestSolverAgreement:
    @given(qc=probabilities, d=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_1d_closed_form_matches_matrix(self, qc, d):
        q, c = qc
        model = OneDimensionalModel(mobility(qc))
        closed = model.steady_state(d, method="closed_form")
        matrix = model.steady_state(d, method="matrix")
        assert np.allclose(closed, matrix, atol=1e-9)

    @given(qc=probabilities, d=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_2d_approx_closed_form_matches_matrix(self, qc, d):
        model = TwoDimensionalApproximateModel(mobility(qc))
        closed = model.steady_state(d, method="closed_form")
        matrix = model.steady_state(d, method="matrix")
        assert np.allclose(closed, matrix, atol=1e-9)

    @given(qc=probabilities, d=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_2d_exact_recursive_matches_matrix(self, qc, d):
        model = TwoDimensionalModel(mobility(qc))
        recursive = model.steady_state(d, method="recursive")
        matrix = model.steady_state(d, method="matrix")
        assert np.allclose(recursive, matrix, atol=1e-9)


class TestStationarity:
    @given(qc=probabilities, d=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_distribution_is_stationary(self, qc, d):
        model = TwoDimensionalModel(mobility(qc))
        chain = model.chain(d)
        pi = solve_steady_state_recursive(chain)
        assert pi.sum() == np.float64(1.0) or abs(pi.sum() - 1.0) < 1e-12
        assert np.all(pi >= 0)
        P = chain.transition_matrix()
        assert np.allclose(pi @ P, pi, atol=1e-10)

    @given(qc=probabilities, d=st.integers(min_value=1, max_value=25))
    @settings(max_examples=60, deadline=None)
    def test_center_state_is_modal_under_resets(self, qc, d):
        # With any positive call probability, state 0 collects resets
        # from everywhere: it must carry at least the average mass.
        q, c = qc
        if c < 1e-6:
            return
        model = OneDimensionalModel(mobility(qc))
        pi = model.steady_state(d)
        assert pi[0] >= 1.0 / (d + 1) - 1e-12


class TestClosedFormInternals:
    @given(beta=st.floats(min_value=2.0, max_value=50.0))
    def test_roots_multiply_to_one(self, beta):
        e1, e2 = closed_form.characteristic_roots(beta)
        assert abs(e1 * e2 - 1.0) < 1e-9
        assert e1 >= 1.0 >= e2

    @given(qc=probabilities)
    def test_beta_definitions(self, qc):
        q, c = qc
        assert closed_form.beta_1d(q, c) == 2 + 2 * c / q
        assert closed_form.beta_2d_approx(q, c) == 2 + 3 * c / q
