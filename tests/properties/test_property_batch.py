"""Property-based cross-check of the batched cost-surface solver.

Across random ``(q, c, d_max, m)`` and every mobility model, the
batched triangular recursion must agree with both scalar steady-state
solvers and with the scalar cost evaluator to 1e-10 -- the acceptance
bar of ``benchmarks/bench_analytic.py``, here enforced over the whole
random parameter space rather than one operating point.
"""

import pytest
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import MODEL_CLASSES
from repro.core.batch import batched_steady_states, compute_cost_surface
from repro.core.chains import (
    ResetChain,
    solve_steady_state_matrix,
    solve_steady_state_recursive,
)
from repro.core.costs import CostEvaluator
from repro.core.parameters import CostParams, MobilityParams

pytestmark = pytest.mark.slow

TOLERANCE = 1e-10

probabilities = st.tuples(
    st.floats(min_value=0.01, max_value=0.8),
    st.floats(min_value=0.0, max_value=0.15),
).filter(lambda qc: qc[0] + qc[1] <= 1.0)
thresholds = st.integers(min_value=0, max_value=25)
delays = st.one_of(st.integers(min_value=1, max_value=6), st.just(math.inf))
model_names = st.sampled_from(sorted(MODEL_CLASSES))


def build_model(name, qc):
    q, c = qc
    return MODEL_CLASSES[name](
        MobilityParams(move_probability=q, call_probability=c)
    )


class TestBatchedSteadyStateAgreement:
    @given(name=model_names, qc=probabilities, d_max=thresholds)
    @settings(max_examples=80, deadline=None)
    def test_rows_match_both_scalar_solvers(self, name, qc, d_max):
        model = build_model(name, qc)
        batched = batched_steady_states(model, d_max)
        for d in range(d_max + 1):
            a, b = model.transition_rates(d)
            chain = ResetChain(
                outward=np.asarray(a), inward=np.asarray(b), reset=model.c
            )
            row = batched[d, : d + 1]
            assert np.max(np.abs(row - solve_steady_state_recursive(chain))) \
                <= TOLERANCE
            assert np.max(np.abs(row - solve_steady_state_matrix(chain))) \
                <= TOLERANCE


class TestBatchedSurfaceAgreement:
    @given(
        name=model_names,
        qc=probabilities,
        d_max=st.integers(min_value=0, max_value=18),
        m=delays,
    )
    @settings(max_examples=60, deadline=None)
    def test_surface_matches_scalar_evaluator(self, name, qc, d_max, m):
        model = build_model(name, qc)
        costs = CostParams(update_cost=100.0, poll_cost=10.0)
        surface = compute_cost_surface(model, costs, d_max, delays=(m,))
        # breakdown() never triggers the batched surface on its own, so
        # the evaluator below is a genuinely scalar reference.
        evaluator = CostEvaluator(model, costs)
        for d in range(d_max + 1):
            breakdown = evaluator.breakdown(d, m)
            assert abs(surface.update[d] - breakdown.update_cost) <= TOLERANCE
            assert abs(surface.paging[0, d] - breakdown.paging_cost) <= TOLERANCE
            assert abs(surface.total[0, d] - breakdown.total_cost) <= TOLERANCE
            assert abs(
                surface.expected_delay[0, d] - breakdown.expected_delay
            ) <= TOLERANCE
