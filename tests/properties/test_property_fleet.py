"""Property: fleet totals are invariant under the shard layout.

The fleet engine's randomness is a stateless hash of each terminal's
*global* index, so for a fixed seeded population every event total
(moves, updates, calls, polled cells) must be **exactly** equal under
any shard count, and with integer-valued costs the cost totals must be
exactly equal too -- not statistically close, bit-for-bit equal as
Python numbers.  This is the contract that makes fleet checkpoints
safe to re-shard-oblivious resume and the conformance oracles sharp.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostParams
from repro.geometry import HexTopology, LineTopology, SquareTopology
from repro.simulation.fleet import FleetSpec, run_fleet
from repro.workload import DEFAULT_MIX, Population

pytestmark = pytest.mark.slow

SHARD_COUNTS = (1, 2, 7, 16)
TOPOLOGIES = (HexTopology(), LineTopology(), SquareTopology())

POPULATION = Population(DEFAULT_MIX)


@settings(max_examples=15, deadline=None)
@given(
    population_seed=st.integers(min_value=0, max_value=2**31 - 1),
    event_seed=st.integers(min_value=0, max_value=2**31 - 1),
    terminals=st.integers(min_value=16, max_value=70),
    slots=st.integers(min_value=1, max_value=40),
    update_cost=st.integers(min_value=1, max_value=200),
    poll_cost=st.integers(min_value=1, max_value=20),
    topology_index=st.integers(min_value=0, max_value=len(TOPOLOGIES) - 1),
    event_mode=st.sampled_from(["exclusive", "independent"]),
)
def test_fleet_totals_invariant_under_shard_count(
    population_seed,
    event_seed,
    terminals,
    slots,
    update_cost,
    poll_cost,
    topology_index,
    event_mode,
):
    spec = FleetSpec.from_population(
        POPULATION,
        terminals,
        CostParams(update_cost=float(update_cost), poll_cost=float(poll_cost)),
        2,
        seed=population_seed,
        topology=TOPOLOGIES[topology_index],
        d_max=6,
    )
    results = [
        run_fleet(
            spec,
            slots=slots,
            shards=shards,
            seed=event_seed,
            event_mode=event_mode,
        )
        for shards in SHARD_COUNTS
    ]
    base = results[0]
    for shards, result in zip(SHARD_COUNTS[1:], results[1:]):
        context = f"shards={shards}"
        assert result.moves == base.moves, context
        assert result.updates == base.updates, context
        assert result.calls == base.calls, context
        assert result.polled_cells == base.polled_cells, context
        assert result.delay_histogram == base.delay_histogram, context
        # Costs are integer-valued by construction, so float summation
        # order cannot introduce rounding: demand exact equality.
        assert result.update_cost == base.update_cost, context
        assert result.paging_cost == base.paging_cost, context
        assert result.mean_paging_delay == pytest.approx(
            base.mean_paging_delay
        ), context
