"""Property: backend choice never changes fleet totals, at any sharding.

The compiled (numba) fleet kernel and its NumPy fallback are ports of
the same SplitMix64 counter-RNG step, so for any population, seed, and
shard layout in {1, 2, 7, 16} the event totals under ``backend="auto"``
must be *bit-identical* to the reference ``backend="numpy"`` run -- on
a numba host this pins compiled-vs-interpreted, elsewhere it pins the
NumPy port against the reference path (and the shard invariance of
both).  Costs are drawn integer-valued so float summation order cannot
blur the comparison.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostParams
from repro.geometry import HexTopology, LineTopology, SquareTopology
from repro.simulation.fleet import FleetSpec, run_fleet
from repro.workload import DEFAULT_MIX, Population

pytestmark = pytest.mark.slow

SHARD_COUNTS = (1, 2, 7, 16)
TOPOLOGIES = (HexTopology(), LineTopology(), SquareTopology())

POPULATION = Population(DEFAULT_MIX)


@settings(max_examples=10, deadline=None)
@given(
    population_seed=st.integers(min_value=0, max_value=2**31 - 1),
    event_seed=st.integers(min_value=0, max_value=2**31 - 1),
    terminals=st.integers(min_value=16, max_value=60),
    slots=st.integers(min_value=1, max_value=30),
    update_cost=st.integers(min_value=1, max_value=200),
    poll_cost=st.integers(min_value=1, max_value=20),
    topology_index=st.integers(min_value=0, max_value=len(TOPOLOGIES) - 1),
    event_mode=st.sampled_from(["exclusive", "independent"]),
)
def test_backend_totals_bit_identical_across_shard_counts(
    population_seed,
    event_seed,
    terminals,
    slots,
    update_cost,
    poll_cost,
    topology_index,
    event_mode,
):
    spec = FleetSpec.from_population(
        POPULATION,
        terminals,
        CostParams(update_cost=float(update_cost), poll_cost=float(poll_cost)),
        2,
        seed=population_seed,
        topology=TOPOLOGIES[topology_index],
        d_max=6,
    )
    reference = run_fleet(
        spec, slots=slots, shards=1, seed=event_seed,
        event_mode=event_mode, backend="numpy",
    )
    for shards in SHARD_COUNTS:
        result = run_fleet(
            spec, slots=slots, shards=shards, seed=event_seed,
            event_mode=event_mode, backend="auto",
        )
        context = f"shards={shards}"
        assert result.moves == reference.moves, context
        assert result.updates == reference.updates, context
        assert result.calls == reference.calls, context
        assert result.polled_cells == reference.polled_cells, context
        assert result.delay_histogram == reference.delay_histogram, context
        assert result.update_cost == reference.update_cost, context
        assert result.paging_cost == reference.paging_cost, context
