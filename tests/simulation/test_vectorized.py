"""Vectorized distance engine: agreement with the per-cell engine."""

import math
from functools import partial

import pytest

from repro import CostParams, MobilityParams, ParameterError
from repro.geometry import HexTopology, LineTopology, SquareTopology
from repro.simulation import (
    SimulationEngine,
    VectorizedDistanceEngine,
    run_replicated,
)
from repro.strategies import DistanceStrategy

MOBILITY = MobilityParams(0.3, 0.02)
COSTS = CostParams(30.0, 2.0)


def engine_result(topology, d, m, slots=20_000, replications=4, seed=11):
    return run_replicated(
        topology=topology,
        strategy_factory=partial(DistanceStrategy, d, max_delay=m),
        mobility=MOBILITY,
        costs=COSTS,
        slots=slots,
        replications=replications,
        seed=seed,
    )


def vectorized_result(topology, d, m, slots=20_000, terminals=16, seed=11, **kwargs):
    engine = VectorizedDistanceEngine(
        topology=topology,
        threshold=d,
        mobility=MOBILITY,
        costs=COSTS,
        max_delay=m,
        terminals=terminals,
        seed=seed,
        **kwargs,
    )
    return engine.run(slots)


class TestAgreementWithCellEngine:
    @pytest.mark.parametrize("d,m", [(1, 1), (2, 2), (3, 1), (4, 3)])
    def test_line_grid(self, d, m):
        # On the line the distance process is exact for both engines:
        # the means must agree within the joint sampling noise.
        ref = engine_result(LineTopology(), d, m)
        vec = vectorized_result(LineTopology(), d, m)
        tolerance = ref.total_cost_ci() + vec.total_cost_ci()
        assert abs(ref.mean_total_cost - vec.mean_total_cost) <= tolerance

    @pytest.mark.parametrize("d,m", [(2, 1), (3, 2)])
    def test_hex_grid(self, d, m):
        # The vectorized engine tracks true axial coordinates, so hex
        # corner/edge effects are reproduced -- not the ring-averaged
        # approximation -- and CI-level agreement holds in 2-D too.
        ref = engine_result(HexTopology(), d, m)
        vec = vectorized_result(HexTopology(), d, m)
        tolerance = ref.total_cost_ci() + vec.total_cost_ci()
        assert abs(ref.mean_total_cost - vec.mean_total_cost) <= tolerance

    def test_component_costs_agree(self):
        ref = engine_result(HexTopology(), 3, 2, slots=30_000)
        vec = vectorized_result(HexTopology(), 3, 2, slots=30_000, terminals=24)
        assert vec.mean_update_cost == pytest.approx(ref.mean_update_cost, rel=0.1)
        assert vec.mean_paging_cost == pytest.approx(ref.mean_paging_cost, rel=0.1)
        assert vec.mean_paging_delay == pytest.approx(ref.mean_paging_delay, rel=0.1)

    def test_independent_event_mode(self):
        ref = run_replicated(
            topology=LineTopology(),
            strategy_factory=partial(DistanceStrategy, 2, max_delay=1),
            mobility=MOBILITY,
            costs=COSTS,
            slots=20_000,
            replications=4,
            seed=3,
            event_mode="independent",
        )
        vec = vectorized_result(
            LineTopology(), 2, 1, seed=3, event_mode="independent"
        )
        tolerance = ref.total_cost_ci() + vec.total_cost_ci()
        assert abs(ref.mean_total_cost - vec.mean_total_cost) <= tolerance

    def test_zero_threshold_update_rate_is_q(self):
        # d = 0: every movement crosses the boundary, so the empirical
        # update rate must be q and paging always polls exactly 1 cell.
        vec = vectorized_result(LineTopology(), 0, 1, slots=30_000, terminals=32)
        q = MOBILITY.move_probability
        assert vec.mean_update_cost == pytest.approx(
            q * COSTS.update_cost, rel=0.05
        )
        for snapshot in vec.snapshots:
            assert snapshot.polled_cells == snapshot.calls


class TestMeterSemantics:
    def test_snapshot_decomposition(self):
        vec = vectorized_result(SquareTopology(), 2, 2, slots=5_000)
        for snapshot in vec.snapshots:
            assert snapshot.slots == 5_000
            assert snapshot.mean_total_cost == pytest.approx(
                snapshot.mean_update_cost + snapshot.mean_paging_cost
            )
            assert math.isfinite(snapshot.total_cost_half_width_95)

    def test_delay_bound_respected(self):
        vec = vectorized_result(LineTopology(), 4, 2, slots=10_000, terminals=32)
        for snapshot in vec.snapshots:
            if snapshot.delay_histogram:
                assert max(snapshot.delay_histogram) <= 2
        assert 1.0 <= vec.mean_paging_delay <= 2.0

    def test_terminals_are_independent(self):
        vec = vectorized_result(LineTopology(), 2, 1, slots=5_000, terminals=8)
        costs = {s.mean_total_cost for s in vec.snapshots}
        assert len(costs) > 1

    def test_deterministic_per_seed(self):
        a = vectorized_result(HexTopology(), 2, 1, slots=2_000, seed=9)
        b = vectorized_result(HexTopology(), 2, 1, slots=2_000, seed=9)
        assert a.snapshots == b.snapshots
        c = vectorized_result(HexTopology(), 2, 1, slots=2_000, seed=10)
        assert c.snapshots != a.snapshots

    def test_warmup_via_reset_meters(self):
        engine = VectorizedDistanceEngine(
            LineTopology(), 2, MOBILITY, COSTS, terminals=4, seed=1
        )
        engine.run(1_000)
        engine.reset_meters()
        result = engine.run(2_000)
        assert all(s.slots == 2_000 for s in result.snapshots)


class TestValidation:
    def test_unsupported_topology_rejected(self):
        class WeirdTopology(LineTopology):
            pass

        # Subclasses of supported geometries are fine (isinstance), but
        # a genuinely foreign topology is not.
        VectorizedDistanceEngine(
            WeirdTopology(), 1, MOBILITY, COSTS, terminals=2
        )
        with pytest.raises(ParameterError, match="SimulationEngine"):
            VectorizedDistanceEngine(object(), 1, MOBILITY, COSTS)  # type: ignore[arg-type]

    def test_bad_event_mode_rejected(self):
        with pytest.raises(ParameterError):
            VectorizedDistanceEngine(
                LineTopology(), 1, MOBILITY, COSTS, event_mode="both"
            )

    def test_bad_terminal_count_rejected(self):
        with pytest.raises(ParameterError):
            VectorizedDistanceEngine(
                LineTopology(), 1, MOBILITY, COSTS, terminals=0
            )

    def test_mismatched_plan_rejected(self):
        from repro.paging import sdf_partition

        with pytest.raises(ParameterError):
            VectorizedDistanceEngine(
                LineTopology(), 2, MOBILITY, COSTS, plan=sdf_partition(3, 1)
            )

    def test_single_engine_comparable_api(self):
        # The vectorized engine's snapshots use the same MeterSnapshot
        # dataclass the per-cell engine emits.
        cell = SimulationEngine(
            topology=LineTopology(),
            strategy=DistanceStrategy(2, max_delay=1),
            mobility=MOBILITY,
            costs=COSTS,
            seed=0,
        )
        snap = cell.run(100)
        vec_snap = vectorized_result(LineTopology(), 2, 1, slots=100, terminals=1).snapshots[0]
        assert type(snap) is type(vec_snap)
