"""Tests for warm-up handling and precision-driven stopping."""

import pytest

from repro import CostParams, MobilityParams, ParameterError
from repro.geometry import LineTopology
from repro.simulation import run_replicated, run_until_precision
from repro.strategies import DistanceStrategy

pytestmark = pytest.mark.slow

MOBILITY = MobilityParams(0.2, 0.02)
COSTS = CostParams(30.0, 2.0)


def factory():
    return DistanceStrategy(3, max_delay=2)


class TestWarmup:
    def test_warmup_slots_not_metered(self, line):
        result = run_replicated(
            line, factory, MOBILITY, COSTS,
            slots=5000, replications=2, seed=1, warmup_slots=2000,
        )
        for snapshot in result.snapshots:
            assert snapshot.slots == 5000

    def test_warmup_reduces_fresh_fix_bias(self, line):
        # Short runs from a fresh fix under-measure cost; warm-up must
        # move the estimate up toward steady state.
        kwargs = dict(
            topology=line,
            strategy_factory=factory,
            mobility=MOBILITY,
            costs=COSTS,
            slots=60,
            replications=400,
            seed=2,
        )
        cold = run_replicated(**kwargs).mean_total_cost
        warm = run_replicated(warmup_slots=2000, **kwargs).mean_total_cost
        assert warm > cold

    def test_warm_short_run_matches_steady_state(self, line):
        from repro import CostEvaluator, OneDimensionalModel

        evaluator = CostEvaluator(
            OneDimensionalModel(MOBILITY), COSTS, convention="physical"
        )
        steady = evaluator.total_cost(3, 2)
        warm = run_replicated(
            line, factory, MOBILITY, COSTS,
            slots=200, replications=600, seed=3, warmup_slots=1500,
        ).mean_total_cost
        assert warm == pytest.approx(steady, rel=0.08)

    def test_negative_warmup_rejected(self, line):
        with pytest.raises(ParameterError):
            run_replicated(
                line, factory, MOBILITY, COSTS,
                slots=100, replications=2, warmup_slots=-1,
            )


class TestRunUntilPrecision:
    def test_achieves_target(self, line):
        result = run_until_precision(
            line, factory, MOBILITY, COSTS,
            target_half_width=0.05, batch_slots=10_000,
            replications=4, seed=4,
        )
        assert result.total_cost_ci() <= 0.05

    def test_tighter_target_needs_more_slots(self, line):
        loose = run_until_precision(
            line, factory, MOBILITY, COSTS,
            target_half_width=0.20, batch_slots=4000, replications=4, seed=5,
        )
        tight = run_until_precision(
            line, factory, MOBILITY, COSTS,
            target_half_width=0.02, batch_slots=4000, replications=4, seed=5,
        )
        assert tight.snapshots[0].slots >= loose.snapshots[0].slots
        assert tight.total_cost_ci() <= 0.02

    def test_budget_cap_respected(self, line):
        result = run_until_precision(
            line, factory, MOBILITY, COSTS,
            target_half_width=1e-9,  # unreachable
            batch_slots=5000, replications=3,
            max_slots_per_replication=10_000, seed=6,
        )
        assert result.snapshots[0].slots <= 10_000 + 5000

    def test_estimate_is_accurate(self, line):
        from repro import CostEvaluator, OneDimensionalModel

        evaluator = CostEvaluator(
            OneDimensionalModel(MOBILITY), COSTS, convention="physical"
        )
        steady = evaluator.total_cost(3, 2)
        result = run_until_precision(
            line, factory, MOBILITY, COSTS,
            target_half_width=0.02, batch_slots=20_000,
            replications=4, seed=7, warmup_slots=1000,
        )
        assert abs(result.mean_total_cost - steady) <= 3 * 0.02

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_half_width": 0.0},
            {"target_half_width": -1.0},
            {"batch_slots": 0},
            {"replications": 1},
        ],
    )
    def test_invalid_parameters(self, line, kwargs):
        defaults = dict(
            target_half_width=0.1, batch_slots=1000, replications=3
        )
        defaults.update(kwargs)
        with pytest.raises(ParameterError):
            run_until_precision(line, factory, MOBILITY, COSTS, **defaults)
