"""Unit tests for the cost meter."""

import math

import pytest

from repro import ParameterError, SimulationError
from repro.simulation import CostMeter, z_score


def make_meter():
    return CostMeter(update_cost=50.0, poll_cost=10.0)


class TestSlotProtocol:
    def test_basic_accounting(self):
        meter = make_meter()
        meter.begin_slot()
        meter.charge_update()
        meter.end_slot()
        meter.begin_slot()
        meter.charge_paging(cells_polled=3, cycles=2)
        meter.end_slot()
        assert meter.slots == 2
        assert meter.updates == 1
        assert meter.calls == 1
        assert meter.polled_cells == 3
        assert meter.mean_total_cost == pytest.approx((50.0 + 30.0) / 2)

    def test_double_begin_rejected(self):
        meter = make_meter()
        meter.begin_slot()
        with pytest.raises(SimulationError):
            meter.begin_slot()

    def test_end_without_begin_rejected(self):
        with pytest.raises(SimulationError):
            make_meter().end_slot()

    def test_charge_outside_slot_rejected(self):
        with pytest.raises(SimulationError):
            make_meter().charge_update()

    def test_note_move_outside_slot_rejected(self):
        with pytest.raises(SimulationError):
            make_meter().note_move()

    def test_invalid_paging_charge(self):
        meter = make_meter()
        meter.begin_slot()
        with pytest.raises(SimulationError):
            meter.charge_paging(cells_polled=0, cycles=1)

    def test_negative_costs_rejected(self):
        with pytest.raises(ParameterError):
            CostMeter(update_cost=-1.0, poll_cost=1.0)


class TestStatistics:
    def test_empty_meter_zero_mean(self):
        assert make_meter().mean_total_cost == 0.0

    def test_confidence_interval_shrinks(self):
        import numpy as np

        rng = np.random.default_rng(1)

        def run(slots):
            meter = make_meter()
            for _ in range(slots):
                meter.begin_slot()
                if rng.random() < 0.3:
                    meter.charge_update()
                meter.end_slot()
            return meter.confidence_interval(0.95)[1]

        assert run(4000) < run(100)

    def test_confidence_levels(self):
        meter = make_meter()
        for _ in range(100):
            meter.begin_slot()
            meter.charge_update()
            meter.end_slot()
        wide = meter.confidence_interval(0.99)[1]
        narrow = meter.confidence_interval(0.90)[1]
        assert wide >= narrow

    def test_invalid_level_rejected(self):
        # Regression: only levels outside (0, 1) are invalid -- any
        # interior level must be accepted (the old table-only lookup
        # raised KeyError for 0.975 and friends).
        for bad in (0.0, 1.0, -0.5, 1.5, "0.95", None, True):
            with pytest.raises(ParameterError):
                make_meter().confidence_interval(bad)

    def test_unlisted_level_uses_normal_quantile(self):
        # 0.975 is not in the fast-path table; it must resolve via the
        # exact normal quantile instead of raising KeyError.
        meter = make_meter()
        for cost in (10.0, 30.0, 50.0, 20.0):
            meter.begin_slot()
            meter.charge_paging(cells_polled=int(cost // 10), cycles=1)
            meter.end_slot()
        mean, half = meter.confidence_interval(0.975)
        assert mean == meter.mean_total_cost
        assert math.isfinite(half) and half > 0
        # Wider level -> wider interval, bracketing the table levels.
        assert meter.confidence_interval(0.95)[1] < half
        assert half < meter.confidence_interval(0.99)[1]
        # Even a level the old table never listed below 0.9 works.
        assert meter.confidence_interval(0.5)[1] < meter.confidence_interval(0.9)[1]

    def test_z_score_table_fast_path_bit_stable(self):
        # The historical table values are load-bearing for every
        # snapshot ever written with them; the fallback must not
        # replace them with the (slightly different) exact quantiles.
        assert z_score(0.90) == 1.6449
        assert z_score(0.95) == 1.9600
        assert z_score(0.99) == 2.5758

    def test_z_score_matches_normal_quantile_off_table(self):
        assert z_score(0.975) == pytest.approx(2.2414, abs=1e-4)
        assert z_score(0.5) == pytest.approx(0.6745, abs=1e-4)

    def test_invalid_level_rejected_even_with_few_slots(self):
        # Bad levels must raise before the <2-slots early return.
        meter = make_meter()
        with pytest.raises(ParameterError):
            meter.confidence_interval(2.0)

    def test_ci_infinite_with_one_slot(self):
        meter = make_meter()
        meter.begin_slot()
        meter.end_slot()
        assert meter.confidence_interval()[1] == math.inf

    def test_delay_histogram_and_mean(self):
        meter = make_meter()
        for cycles in (1, 1, 3):
            meter.begin_slot()
            meter.charge_paging(cells_polled=2, cycles=cycles)
            meter.end_slot()
        assert meter.delay_histogram[1] == 2
        assert meter.delay_histogram[3] == 1
        assert meter.mean_paging_delay == pytest.approx(5 / 3)

    def test_mean_delay_without_calls(self):
        assert make_meter().mean_paging_delay == 0.0


class TestSnapshot:
    def test_snapshot_fields(self):
        meter = make_meter()
        meter.begin_slot()
        meter.note_move()
        meter.charge_update()
        meter.end_slot()
        snap = meter.snapshot()
        assert snap.slots == 1
        assert snap.moves == 1
        assert snap.updates == 1
        assert snap.update_cost == 50.0
        assert snap.paging_cost == 0.0
        assert snap.total_cost == 50.0

    def test_snapshot_mean_components(self):
        meter = make_meter()
        for _ in range(4):
            meter.begin_slot()
            meter.end_slot()
        meter.begin_slot()
        meter.charge_paging(cells_polled=5, cycles=1)
        meter.end_slot()
        snap = meter.snapshot()
        assert snap.mean_paging_cost == pytest.approx(50.0 / 5)
        assert snap.mean_update_cost == 0.0
