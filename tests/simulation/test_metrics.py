"""Unit tests for the cost meter."""

import math

import pytest

from repro import ParameterError, SimulationError
from repro.simulation import CostMeter


def make_meter():
    return CostMeter(update_cost=50.0, poll_cost=10.0)


class TestSlotProtocol:
    def test_basic_accounting(self):
        meter = make_meter()
        meter.begin_slot()
        meter.charge_update()
        meter.end_slot()
        meter.begin_slot()
        meter.charge_paging(cells_polled=3, cycles=2)
        meter.end_slot()
        assert meter.slots == 2
        assert meter.updates == 1
        assert meter.calls == 1
        assert meter.polled_cells == 3
        assert meter.mean_total_cost == pytest.approx((50.0 + 30.0) / 2)

    def test_double_begin_rejected(self):
        meter = make_meter()
        meter.begin_slot()
        with pytest.raises(SimulationError):
            meter.begin_slot()

    def test_end_without_begin_rejected(self):
        with pytest.raises(SimulationError):
            make_meter().end_slot()

    def test_charge_outside_slot_rejected(self):
        with pytest.raises(SimulationError):
            make_meter().charge_update()

    def test_note_move_outside_slot_rejected(self):
        with pytest.raises(SimulationError):
            make_meter().note_move()

    def test_invalid_paging_charge(self):
        meter = make_meter()
        meter.begin_slot()
        with pytest.raises(SimulationError):
            meter.charge_paging(cells_polled=0, cycles=1)

    def test_negative_costs_rejected(self):
        with pytest.raises(ParameterError):
            CostMeter(update_cost=-1.0, poll_cost=1.0)


class TestStatistics:
    def test_empty_meter_zero_mean(self):
        assert make_meter().mean_total_cost == 0.0

    def test_confidence_interval_shrinks(self):
        import numpy as np

        rng = np.random.default_rng(1)

        def run(slots):
            meter = make_meter()
            for _ in range(slots):
                meter.begin_slot()
                if rng.random() < 0.3:
                    meter.charge_update()
                meter.end_slot()
            return meter.confidence_interval(0.95)[1]

        assert run(4000) < run(100)

    def test_confidence_levels(self):
        meter = make_meter()
        for _ in range(100):
            meter.begin_slot()
            meter.charge_update()
            meter.end_slot()
        wide = meter.confidence_interval(0.99)[1]
        narrow = meter.confidence_interval(0.90)[1]
        assert wide >= narrow

    def test_unknown_level_rejected(self):
        with pytest.raises(ParameterError):
            make_meter().confidence_interval(0.5)

    def test_ci_infinite_with_one_slot(self):
        meter = make_meter()
        meter.begin_slot()
        meter.end_slot()
        assert meter.confidence_interval()[1] == math.inf

    def test_delay_histogram_and_mean(self):
        meter = make_meter()
        for cycles in (1, 1, 3):
            meter.begin_slot()
            meter.charge_paging(cells_polled=2, cycles=cycles)
            meter.end_slot()
        assert meter.delay_histogram[1] == 2
        assert meter.delay_histogram[3] == 1
        assert meter.mean_paging_delay == pytest.approx(5 / 3)

    def test_mean_delay_without_calls(self):
        assert make_meter().mean_paging_delay == 0.0


class TestSnapshot:
    def test_snapshot_fields(self):
        meter = make_meter()
        meter.begin_slot()
        meter.note_move()
        meter.charge_update()
        meter.end_slot()
        snap = meter.snapshot()
        assert snap.slots == 1
        assert snap.moves == 1
        assert snap.updates == 1
        assert snap.update_cost == 50.0
        assert snap.paging_cost == 0.0
        assert snap.total_cost == 50.0

    def test_snapshot_mean_components(self):
        meter = make_meter()
        for _ in range(4):
            meter.begin_slot()
            meter.end_slot()
        meter.begin_slot()
        meter.charge_paging(cells_polled=5, cycles=1)
        meter.end_slot()
        snap = meter.snapshot()
        assert snap.mean_paging_cost == pytest.approx(50.0 / 5)
        assert snap.mean_update_cost == 0.0
