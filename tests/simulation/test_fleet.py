"""Sharded fleet engine: layout invariance, checkpoints, accounting."""

import json
import math

import numpy as np
import pytest

from repro import CostParams, MobilityParams
from repro.exceptions import ParameterError
from repro.geometry import HexTopology, LineTopology, SquareTopology
from repro.observability import context as obs_context
from repro.simulation.fleet import (
    FleetShardEngine,
    FleetSpec,
    ShardSnapshot,
    fleet_report,
    run_fleet,
    shard_bounds,
)
from repro.workload import DEFAULT_MIX, Population

COSTS = CostParams(update_cost=50.0, poll_cost=2.0)
MOBILITY = MobilityParams(move_probability=0.3, call_probability=0.05)


@pytest.fixture(scope="module")
def spec():
    """A small heterogeneous fleet, shared across the read-only tests."""
    return FleetSpec.from_population(
        Population(DEFAULT_MIX), 300, COSTS, 2, seed=7
    )


class TestFleetSpec:
    def test_from_population_solves_per_profile_thresholds(self, spec):
        # Three archetypes with very different mobility must not share
        # one threshold; vehicles roam and need larger d than statics.
        by_profile = {
            name: int(spec.threshold[spec.profile_index == i][0])
            for i, name in enumerate(spec.profile_names)
        }
        assert len(set(by_profile.values())) > 1
        assert by_profile["vehicle"] > by_profile["static"]
        # Every terminal of a profile shares that profile's threshold.
        for i in range(len(spec.profile_names)):
            rows = spec.threshold[spec.profile_index == i]
            assert (rows == rows[0]).all()

    def test_threshold_overrides(self):
        spec = FleetSpec.from_population(
            Population(DEFAULT_MIX), 50, COSTS, 2, seed=7,
            thresholds={"vehicle": 9, "pedestrian": 2, "static": 1},
        )
        vehicle = list(spec.profile_names).index("vehicle")
        assert (spec.threshold[spec.profile_index == vehicle] == 9).all()

    def test_homogeneous_spec(self):
        spec = FleetSpec.homogeneous(HexTopology(), 3, MOBILITY, COSTS, 2, 64)
        assert spec.count == 64
        assert (spec.q == MOBILITY.move_probability).all()
        assert (spec.threshold == 3).all()
        assert spec.profile_counts() == {"uniform": 64}

    def test_rejects_mismatched_columns(self):
        with pytest.raises(ParameterError, match="shape"):
            FleetSpec(
                topology=HexTopology(),
                q=np.full(4, 0.1),
                c=np.full(3, 0.01),
                update_cost=np.full(4, 10.0),
                poll_cost=np.full(4, 1.0),
                threshold=np.full(4, 2, dtype=np.int64),
                profile_index=np.zeros(4, dtype=np.int32),
                profile_names=("only",),
                max_delay=2,
                population_seed=0,
            )

    def test_rejects_invalid_mobility(self):
        with pytest.raises(ParameterError, match="mobility out of range"):
            FleetSpec(
                topology=HexTopology(),
                q=np.full(4, 0.9),
                c=np.full(4, 0.2),  # q + c > 1
                update_cost=np.full(4, 10.0),
                poll_cost=np.full(4, 1.0),
                threshold=np.full(4, 2, dtype=np.int64),
                profile_index=np.zeros(4, dtype=np.int32),
                profile_names=("only",),
                max_delay=2,
                population_seed=0,
            )

    def test_fingerprint_tracks_population_identity(self, spec):
        same = FleetSpec.from_population(
            Population(DEFAULT_MIX), 300, COSTS, 2, seed=7
        )
        other_seed = FleetSpec.from_population(
            Population(DEFAULT_MIX), 300, COSTS, 2, seed=8
        )
        assert spec.fingerprint() == same.fingerprint()
        assert spec.fingerprint() != other_seed.fingerprint()


class TestShardBounds:
    def test_partition_is_contiguous_and_exhaustive(self):
        bounds = shard_bounds(103, 7)
        assert bounds[0][0] == 0 and bounds[-1][1] == 103
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_shapes(self):
        with pytest.raises(ParameterError):
            shard_bounds(5, 0)
        with pytest.raises(ParameterError):
            shard_bounds(3, 4)


class TestShardLayoutInvariance:
    def test_event_totals_exact_across_shard_counts(self, spec):
        runs = {
            shards: run_fleet(spec, slots=120, shards=shards, seed=3)
            for shards in (1, 4, 16)
        }
        base = runs[1]
        for shards, result in runs.items():
            assert result.moves == base.moves, shards
            assert result.updates == base.updates, shards
            assert result.calls == base.calls, shards
            assert result.polled_cells == base.polled_cells, shards
            assert result.delay_histogram == base.delay_histogram, shards
            # Integer-valued costs: exact even across float sum orders.
            assert result.update_cost == base.update_cost, shards
            assert result.paging_cost == base.paging_cost, shards

    def test_pooled_is_bit_identical_to_inprocess(self, spec, tmp_path):
        common = dict(slots=100, shards=5, seed=3)
        serial = run_fleet(spec, workers=None, **common)
        pooled = run_fleet(spec, workers=2, spill_dir=tmp_path, **common)
        assert serial.shards == pooled.shards

    @pytest.mark.parametrize("topology", [LineTopology(), SquareTopology()])
    def test_other_topologies_run(self, topology):
        spec = FleetSpec.homogeneous(topology, 2, MOBILITY, COSTS, 2, 40)
        result = run_fleet(spec, slots=80, shards=3, seed=1)
        assert result.moves > 0 and result.calls > 0

    def test_fleet_totals_equal_sum_of_shards_exactly(self, spec):
        result = run_fleet(spec, slots=60, shards=6, seed=2)
        assert result.update_cost == sum(s.update_cost for s in result.shards)
        assert result.updates == sum(s.updates for s in result.shards)
        assert [s.index for s in result.shards] == list(range(6))


class TestFleetEngineBehavior:
    def test_zero_call_probability_pages_nothing(self):
        spec = FleetSpec.homogeneous(
            HexTopology(), 2, MobilityParams(0.4, 0.0), COSTS, 2, 32
        )
        result = run_fleet(spec, slots=100, seed=0)
        assert result.calls == 0 and result.paging_cost == 0.0
        assert result.moves > 0

    def test_static_terminals_never_update(self):
        spec = FleetSpec.homogeneous(
            HexTopology(), 5, MobilityParams(1e-9, 0.2), COSTS, 2, 32
        )
        result = run_fleet(spec, slots=100, seed=0)
        assert result.updates == 0
        assert result.calls > 0

    def test_independent_event_mode(self, spec):
        exclusive = run_fleet(spec, slots=100, seed=4)
        independent = run_fleet(spec, slots=100, seed=4, event_mode="independent")
        # Different event law, same population: both run, totals differ.
        assert independent.moves != exclusive.moves

    def test_mean_cost_tracks_vectorized_engine(self):
        from repro.simulation.vectorized import VectorizedDistanceEngine

        spec = FleetSpec.homogeneous(HexTopology(), 3, MOBILITY, COSTS, 2, 2000)
        fleet = run_fleet(spec, slots=400, shards=4, seed=11)
        vectorized = VectorizedDistanceEngine(
            HexTopology(), 3, MOBILITY, COSTS, 2, terminals=2000, seed=11
        ).run(400)
        assert fleet.mean_total_cost == pytest.approx(
            vectorized.mean_total_cost, rel=0.1
        )

    def test_rejects_bad_arguments(self, spec):
        with pytest.raises(ParameterError):
            run_fleet(spec, slots=0)
        with pytest.raises(ParameterError):
            run_fleet(spec, slots=10, event_mode="both")
        with pytest.raises(ParameterError):
            FleetShardEngine(
                topology=HexTopology(),
                q=spec.q, c=spec.c,
                update_cost=spec.update_cost, poll_cost=spec.poll_cost,
                threshold=spec.threshold, profile_index=spec.profile_index,
                n_profiles=3, max_delay=2, event_mode="nope",
            )

    def test_per_profile_breakdown_sums_to_fleet_totals(self, spec):
        result = run_fleet(spec, slots=80, shards=3, seed=5)
        breakdown = result.per_profile()
        assert sum(v["terminals"] for v in breakdown.values()) == spec.count
        assert sum(
            v["update_cost"] + v["paging_cost"] for v in breakdown.values()
        ) == pytest.approx(result.total_cost)


class TestShardSnapshot:
    def test_dict_roundtrip(self, spec):
        snapshot = run_fleet(spec, slots=50, shards=2, seed=1).shards[1]
        assert ShardSnapshot.from_dict(snapshot.to_dict()) == snapshot
        # and via JSON, as the checkpoint stores it
        assert ShardSnapshot.from_dict(
            json.loads(json.dumps(snapshot.to_dict()))
        ) == snapshot

    def test_malformed_payload_is_a_parameter_error(self):
        with pytest.raises(ParameterError, match="malformed shard snapshot"):
            ShardSnapshot.from_dict({"index": 0})


class TestFleetCheckpoint:
    def test_resume_with_partial_shards(self, spec, tmp_path):
        path = tmp_path / "fleet.ckpt.json"
        full = run_fleet(spec, slots=60, shards=4, seed=3, checkpoint=path)
        payload = json.loads(path.read_text())
        assert len(payload["shards"]) == 4
        # Keep only shards 0 and 2: simulate a kill mid-run.
        payload["shards"] = [
            entry for entry in payload["shards"] if entry["index"] in (0, 2)
        ]
        path.write_text(json.dumps(payload))
        resumed = run_fleet(spec, slots=60, shards=4, seed=3, checkpoint=path)
        assert resumed.shards == full.shards

    def test_refuses_mismatched_run(self, spec, tmp_path):
        path = tmp_path / "fleet.ckpt.json"
        run_fleet(spec, slots=60, shards=4, seed=3, checkpoint=path)
        for kwargs in (
            dict(slots=61, shards=4, seed=3),
            dict(slots=60, shards=5, seed=3),
            dict(slots=60, shards=4, seed=4),
        ):
            with pytest.raises(ParameterError, match="different run"):
                run_fleet(spec, checkpoint=path, **kwargs)

    def test_refuses_different_population(self, spec, tmp_path):
        path = tmp_path / "fleet.ckpt.json"
        run_fleet(spec, slots=60, shards=2, seed=3, checkpoint=path)
        other = FleetSpec.from_population(
            Population(DEFAULT_MIX), 300, COSTS, 2, seed=99
        )
        with pytest.raises(ParameterError, match="different run"):
            run_fleet(other, slots=60, shards=2, seed=3, checkpoint=path)

    def test_refuses_schema_version_drift(self, spec, tmp_path):
        path = tmp_path / "fleet.ckpt.json"
        run_fleet(spec, slots=60, shards=2, seed=3, checkpoint=path)
        payload = json.loads(path.read_text())
        payload["fingerprint"]["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ParameterError, match="schema version"):
            run_fleet(spec, slots=60, shards=2, seed=3, checkpoint=path)

    def test_refuses_unreadable_checkpoint(self, spec, tmp_path):
        path = tmp_path / "fleet.ckpt.json"
        path.write_text("{not json")
        with pytest.raises(ParameterError, match="unreadable"):
            run_fleet(spec, slots=10, shards=2, seed=3, checkpoint=path)


class TestFleetObservability:
    def test_exact_accounting_matches_snapshot_sums(self, spec):
        with obs_context.session() as obs:
            result = run_fleet(spec, slots=60, shards=3, seed=1, workers=2)
            values = {
                metric["name"]: metric.get("value", metric.get("sum"))
                for metric in obs.registry.collect()
                if metric.get("labels", {}).get("engine") == "fleet"
            }
        assert values["updates_total"] == result.updates
        assert values["moves_total"] == result.moves
        assert values["calls_total"] == result.calls
        assert values["polled_cells_total"] == result.polled_cells
        assert values["update_cost_total"] == result.update_cost
        assert values["paging_cost_total"] == result.paging_cost
        assert values["slots_total"] == spec.count * 60

    def test_shard_spans_merge_in_index_order(self, spec):
        with obs_context.session() as obs:
            run_fleet(spec, slots=20, shards=3, seed=1, workers=2)
            shard_spans = [
                record
                for record in obs.tracer.records
                if record.name == "simulate.fleet_shard"
            ]
        assert [s.metadata["shard"] for s in shard_spans] == [0, 1, 2]

    def test_disabled_context_stays_silent(self, spec):
        result = run_fleet(spec, slots=20, shards=2, seed=1)
        assert result.moves > 0  # no session: nothing to assert beyond running


class TestFleetReport:
    def test_report_shape_and_rss_budget(self):
        report = fleet_report(
            2_000, shards=4, slots=30, workers=2, seed=0
        )
        assert report["terminal_slots"] == 2_000 * 30
        assert report["rss_within_budget"] is True
        assert set(report["peak_rss_bytes"]) == {"self", "children", "max"}
        assert report["peak_rss_bytes"]["max"] <= report["rss_budget_bytes"]
        assert set(report["per_profile"]) == {"pedestrian", "vehicle", "static"}

    def test_checkpoint_passthrough(self, tmp_path):
        path = tmp_path / "report.ckpt.json"
        fleet_report(500, shards=2, slots=10, seed=0, checkpoint=path)
        assert json.loads(path.read_text())["fingerprint"]["terminals"] == 500
