"""Counter-RNG backend plumbing on the simulation engines.

Everything here runs without numba: a non-``"numpy"`` backend switches
the engines to the stateless counter RNG whether or not the compiled
kernel is importable, and the NumPy port is the reference the compiled
kernel must match bit-for-bit.  The ``numba``-marked tier at the bottom
only runs on hosts with the optional extra installed and pins the
compiled kernel against that reference.
"""

from contextlib import nullcontext

import numpy as np
import pytest

from repro.core.backend import (
    numba_available,
    reset_backend_state,
    use_numpy_fallback,
)
from repro.core.parameters import CostParams, MobilityParams
from repro.exceptions import ParameterError
from repro.geometry import HexTopology, LineTopology, SquareTopology
from repro.simulation.fleet import FleetSpec, run_fleet
from repro.simulation.kernels import kernel_compile_info, topology_code
from repro.simulation.vectorized import (
    VectorizedDistanceEngine,
    compare_backends_report,
)
from repro.workload import DEFAULT_MIX, Population

MOBILITY = MobilityParams(move_probability=0.25, call_probability=0.03)
COSTS = CostParams(update_cost=40.0, poll_cost=2.0)

_STATE_ARRAYS = (
    "_moves", "_updates", "_calls", "_polled_cells",
    "_delay_counts", "_cost_sum", "_cost_sq_sum", "_pos",
)


def _engine(backend="auto", topology=None, event_mode="exclusive", seed=7):
    return VectorizedDistanceEngine(
        topology if topology is not None else HexTopology(),
        3,
        MOBILITY,
        COSTS,
        max_delay=2,
        terminals=96,
        seed=seed,
        event_mode=event_mode,
        backend=backend,
    )


@pytest.mark.parametrize("topology", [HexTopology(), LineTopology(),
                                      SquareTopology()],
                         ids=lambda t: type(t).__name__)
@pytest.mark.parametrize("event_mode", ["exclusive", "independent"])
def test_counter_engine_bit_identical_to_forced_fallback(topology, event_mode):
    resolved = _engine(topology=topology, event_mode=event_mode)
    resolved.run(300)
    with use_numpy_fallback():
        fallback = _engine(topology=topology, event_mode=event_mode)
    fallback.run(300)
    for name in _STATE_ARRAYS:
        np.testing.assert_array_equal(
            getattr(resolved, name), getattr(fallback, name), err_msg=name
        )


def test_counter_engine_is_reproducible_and_seed_sensitive():
    a = _engine(seed=11).run(400)
    b = _engine(seed=11).run(400)
    c = _engine(seed=12).run(400)
    assert a.mean_total_cost == b.mean_total_cost
    assert a.mean_total_cost != c.mean_total_cost


def test_counter_engine_requires_integer_seed():
    with pytest.raises(ParameterError, match="integer seed"):
        _engine(seed=1.5)
    # None degrades to seed 0 rather than erroring.
    engine = _engine(seed=None)
    assert engine._seed == 0


def test_backend_attributes_resolve():
    legacy = _engine(backend="numpy")
    assert legacy.backend == legacy.backend_resolved == "numpy"
    counter = _engine(backend="auto")
    assert counter.backend == "auto"
    assert counter.backend_resolved == (
        "numba" if numba_available() else "numpy"
    )


def test_counter_and_legacy_backends_agree_statistically():
    legacy = _engine(backend="numpy", seed=3).run(4000)
    counter = _engine(backend="auto", seed=3).run(4000)
    assert counter.mean_total_cost == pytest.approx(
        legacy.mean_total_cost, rel=0.15
    )


def test_compare_backends_report_shape():
    report = compare_backends_report(
        HexTopology(), 3, MOBILITY, COSTS,
        max_delay=2, slots=200, terminals=64, seed=0,
    )
    names = [row["name"] for row in report["backends"]]
    assert names[:2] == ["numpy", "numpy-counter"]
    assert ("numba" in names) == report["numba_available"]
    for row in report["backends"]:
        assert row["slots_per_sec"] > 0
        assert row["terminal_slots"] == 200 * 64
    assert report["config"]["terminals"] == 64


def test_fleet_totals_independent_of_backend_request():
    spec = FleetSpec.from_population(
        Population(DEFAULT_MIX), 400, COSTS, 2, seed=5, d_max=8
    )
    base = run_fleet(spec, slots=40, shards=2, seed=9)
    reset_backend_state()  # arm the warn-once latch for this test
    for backend in ("numba", "auto"):
        expect_warning = backend == "numba" and not numba_available()
        with pytest.warns(RuntimeWarning) if expect_warning else nullcontext():
            result = run_fleet(spec, slots=40, shards=2, seed=9,
                               backend=backend)
        assert result.moves == base.moves
        assert result.updates == base.updates
        assert result.calls == base.calls
        assert result.polled_cells == base.polled_cells
        assert result.update_cost == base.update_cost
        assert result.paging_cost == base.paging_cost


def test_topology_code_rejects_unknown_topology():
    class Fake:
        name = "torus"

    with pytest.raises(ParameterError):
        topology_code(Fake())


def test_kernel_compile_info_reports_host_state():
    info = kernel_compile_info()
    assert info["numba_available"] == numba_available()
    if not info["numba_available"]:
        assert info["compiled"] is False


@pytest.mark.numba
@pytest.mark.skipif(not numba_available(), reason="requires the numba extra")
def test_compiled_kernels_importable_and_bit_identical():
    from repro.simulation.kernels import compiled_kernels

    kernels = compiled_kernels()
    assert kernels is not None
    compiled = _engine(backend="numba")
    compiled.run(300)
    with use_numpy_fallback():
        interpreted = _engine(backend="numba")
    interpreted.run(300)
    for name in _STATE_ARRAYS:
        np.testing.assert_array_equal(
            getattr(compiled, name), getattr(interpreted, name), err_msg=name
        )
