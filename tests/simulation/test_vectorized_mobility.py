"""Vectorized-engine CTRW path: validation, meters, ring-hit recording."""

import numpy as np
import pytest

from repro import ParameterError
from repro.core.parameters import CostParams, MobilityParams
from repro.geometry import HexTopology
from repro.mobility import CTRWSpec, GeometricResidence, mobility_preset
from repro.simulation.vectorized import VectorizedDistanceEngine

MOBILITY = MobilityParams(move_probability=0.2, call_probability=0.05)
COSTS = CostParams(update_cost=50.0, poll_cost=10.0)


def engine(**kwargs):
    defaults = dict(
        topology=HexTopology(),
        threshold=2,
        mobility=MOBILITY,
        costs=COSTS,
        terminals=64,
        max_delay=2,
        seed=3,
    )
    defaults.update(kwargs)
    return VectorizedDistanceEngine(**defaults)


class TestConstruction:
    def test_walk_must_be_spec(self):
        with pytest.raises(ParameterError):
            engine(walk=GeometricResidence(0.2))

    def test_ctrw_resolves_to_numpy_backend(self):
        e = engine(walk=mobility_preset("ctrw-hyper", 0.2))
        assert e.backend_resolved == "numpy"

    def test_uniform_walk_unaffected(self):
        e = engine()
        result = e.run(500)
        assert result.mean_total_cost > 0


class TestCTRWMeters:
    def test_move_rate_tracks_effective_probability(self):
        spec = mobility_preset("ctrw-fixed", 0.25)
        e = engine(walk=spec, terminals=128)
        result = e.run(4000)
        moves = sum(s.moves for s in result.snapshots)
        slots = 4000 * 128
        assert moves / slots == pytest.approx(
            spec.effective_move_probability(), rel=0.05
        )

    def test_drift_increases_update_rate(self):
        # Ballistic motion crosses the threshold faster than diffusive
        # motion at the same residence rate: strictly more updates.
        base = CTRWSpec(residence=GeometricResidence(0.3))
        drifted = CTRWSpec(residence=GeometricResidence(0.3), drift=0.8)
        a = engine(walk=base, terminals=128, seed=5).run(3000)
        b = engine(walk=drifted, terminals=128, seed=5).run(3000)
        assert b.mean_update_cost > a.mean_update_cost

    def test_reset_meters_preserves_state(self):
        spec = mobility_preset("ctrw-hyper", 0.2)
        e = engine(walk=spec)
        e.run(500)
        e.reset_meters()
        result = e.run(500)
        assert result.snapshots[0].slots == 500


class TestRingHitRecording:
    def test_distribution_is_normalized(self):
        e = engine(record_ring_hits=True, walk=mobility_preset("ctrw-drift", 0.3))
        e.run(2000)
        dist = e.ring_hit_distribution()
        assert len(dist) == 3  # rings 0..threshold
        assert np.isclose(sum(dist), 1.0)
        assert all(p >= 0 for p in dist)

    def test_requires_recording_enabled(self):
        e = engine()
        e.run(100)
        with pytest.raises(Exception):
            e.ring_hit_distribution()

    def test_low_mobility_concentrates_at_center(self):
        spec = CTRWSpec(residence=GeometricResidence(0.05))
        e = engine(
            walk=spec,
            record_ring_hits=True,
            mobility=MobilityParams(move_probability=0.05, call_probability=0.1),
            terminals=128,
        )
        e.run(3000)
        dist = e.ring_hit_distribution()
        assert dist[0] > 0.5
