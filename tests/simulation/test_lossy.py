"""Failure-injection tests: lost updates and recovery paging."""

import math

import pytest

from repro import CostParams, MobilityParams, ParameterError
from repro.geometry import HexTopology, LineTopology
from repro.simulation import LossyUpdateEngine, SimulationEngine
from repro.strategies import DistanceStrategy, TimerStrategy

MOBILITY = MobilityParams(0.3, 0.03)
COSTS = CostParams(30.0, 2.0)


def make_engine(loss, topology=None, seed=0, d=2, m=2):
    return LossyUpdateEngine(
        topology=topology or LineTopology(),
        strategy=DistanceStrategy(d, max_delay=m),
        mobility=MOBILITY,
        costs=COSTS,
        loss_probability=loss,
        seed=seed,
    )


class TestConstruction:
    @pytest.mark.parametrize("loss", [-0.1, 1.001, 1.5])
    def test_invalid_loss_probability(self, loss):
        with pytest.raises(ParameterError):
            make_engine(loss)

    def test_total_loss_is_valid(self):
        # The closed interval [0, 1]: a dead uplink is a legitimate
        # (and the most demanding) failure regime, not a config error.
        assert make_engine(1.0).loss_probability == 1.0

    def test_requires_distance_strategy(self):
        with pytest.raises(ParameterError):
            LossyUpdateEngine(
                topology=LineTopology(),
                strategy=TimerStrategy(5),
                mobility=MOBILITY,
                costs=COSTS,
                loss_probability=0.1,
            )


class TestZeroLossEquivalence:
    def test_matches_base_engine_costs(self):
        lossless = make_engine(0.0, seed=3).run(40_000)
        base = SimulationEngine(
            LineTopology(),
            DistanceStrategy(2, max_delay=2),
            MOBILITY,
            COSTS,
            seed=3,
        ).run(40_000)
        # Different RNG draw counts make exact trace equality too
        # strict; statistical agreement is the right check.
        assert lossless.mean_total_cost == pytest.approx(
            base.mean_total_cost, rel=0.05
        )

    def test_no_lost_updates_or_recoveries(self):
        engine = make_engine(0.0, seed=4)
        engine.run(20_000)
        assert engine.lost_updates == 0
        assert engine.recovery_pagings == 0


class TestLossBehavior:
    def test_every_call_is_answered(self):
        # The correctness invariant under any loss rate.
        for loss in (0.2, 0.5, 0.9):
            engine = make_engine(loss, seed=5)
            snapshot = engine.run(30_000)  # SimulationError would surface
            assert snapshot.calls > 0

    def test_loss_counter_tracks_rate(self):
        engine = make_engine(0.5, seed=6)
        snapshot = engine.run(60_000)
        assert engine.lost_updates / snapshot.updates == pytest.approx(0.5, abs=0.05)

    def test_recovery_used_when_views_diverge(self):
        engine = make_engine(0.5, seed=7)
        engine.run(60_000)
        assert engine.recovery_pagings > 0
        assert engine.recovery_cells > 0

    def test_views_resync_after_call(self):
        engine = make_engine(0.7, seed=8)
        for _ in range(30_000):
            updates, calls = engine.meter.updates, engine.meter.calls
            engine.step()
            if engine.meter.calls > calls:
                assert engine.network_center == engine.walk.position
                assert engine.strategy.last_known == engine.walk.position

    def test_cost_degrades_gracefully(self):
        costs = [
            make_engine(loss, seed=9).run(80_000).mean_total_cost
            for loss in (0.0, 0.3, 0.7)
        ]
        # More loss means more recovery paging: higher cost...
        assert costs[0] < costs[2]
        # ...but bounded degradation, not collapse (recovery finds the
        # terminal quickly because it cannot have drifted far).
        assert costs[2] < 4 * costs[0]

    def test_delay_bound_violated_only_by_recoveries(self):
        engine = make_engine(0.5, seed=10)
        snapshot = engine.run(60_000)
        over_bound = sum(
            count
            for cycles, count in snapshot.delay_histogram.items()
            if cycles > 2
        )
        assert over_bound == engine.recovery_pagings

    def test_hex_geometry(self):
        engine = make_engine(0.4, topology=HexTopology(), seed=11, d=2, m=2)
        snapshot = engine.run(30_000)
        assert snapshot.calls > 0
        assert engine.recovery_pagings > 0


class TestTotalLoss:
    def test_every_call_answered_at_total_loss(self):
        # loss = 1.0: no update ever reaches the register, so the
        # residing-area belief is refreshed *only* by located calls --
        # the regime where the every-call-eventually-answered invariant
        # rests entirely on recovery paging.
        engine = make_engine(1.0, seed=12)
        snapshot = engine.run(30_000)  # SimulationError would surface
        assert snapshot.calls > 0
        assert engine.lost_updates == snapshot.updates
        assert engine.recovery_pagings > 0

    def test_views_still_resync_via_calls(self):
        engine = make_engine(1.0, seed=13)
        for _ in range(10_000):
            calls = engine.meter.calls
            engine.step()
            if engine.meter.calls > calls:
                assert engine.network_center == engine.walk.position
