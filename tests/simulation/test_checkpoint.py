"""Crash-safe campaign tests: checkpoint, resume, deadlines."""

import json

import pytest

from repro import CostParams, MobilityParams, ParameterError
from repro.geometry import LineTopology
from repro.simulation import PartialReplication, run_replicated
from repro.simulation.metrics import MeterSnapshot
from repro.strategies import DistanceStrategy

MOBILITY = MobilityParams(0.3, 0.03)
COSTS = CostParams(30.0, 2.0)


def campaign(checkpoint=None, seed=0, replications=4, slots=5_000, **kwargs):
    return run_replicated(
        topology=LineTopology(),
        strategy_factory=lambda: DistanceStrategy(2, max_delay=2),
        mobility=MOBILITY,
        costs=COSTS,
        slots=slots,
        replications=replications,
        seed=seed,
        checkpoint=checkpoint,
        **kwargs,
    )


class TestSnapshotRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        snapshot = campaign(replications=1).snapshots[0]
        assert MeterSnapshot.from_dict(snapshot.to_dict()) == snapshot

    def test_survives_json_encoding(self):
        snapshot = campaign(replications=1).snapshots[0]
        wire = json.loads(json.dumps(snapshot.to_dict()))
        assert MeterSnapshot.from_dict(wire) == snapshot

    def test_malformed_payload_rejected(self):
        with pytest.raises(ParameterError):
            MeterSnapshot.from_dict({"slots": 10})


class TestCheckpointResume:
    def test_interrupted_campaign_resumes_to_identical_result(self, tmp_path):
        # The acceptance scenario: kill a campaign mid-run (here: the
        # strategy factory blows up while building replication 2),
        # rerun the same call, and the pooled result must be
        # bit-identical to a never-interrupted campaign.
        path = tmp_path / "campaign.json"
        uninterrupted = campaign()

        built = {"count": 0}

        def crashing_factory():
            # Call 0 is the runner's fingerprint probe; calls 1 and 2
            # build replications 0 and 1; call 3 (replication 2) dies.
            if built["count"] == 3:
                raise KeyboardInterrupt  # simulated kill
            built["count"] += 1
            return DistanceStrategy(2, max_delay=2)

        with pytest.raises(KeyboardInterrupt):
            run_replicated(
                topology=LineTopology(),
                strategy_factory=crashing_factory,
                mobility=MOBILITY,
                costs=COSTS,
                slots=5_000,
                replications=4,
                seed=0,
                checkpoint=path,
            )
        assert path.exists()
        partial = json.loads(path.read_text())
        assert len(partial["snapshots"]) == 2  # progress survived the kill

        resumed = campaign(checkpoint=path)
        assert resumed.snapshots == uninterrupted.snapshots
        assert resumed.mean_total_cost == uninterrupted.mean_total_cost

    def test_completed_campaign_is_not_rerun(self, tmp_path):
        path = tmp_path / "campaign.json"
        first = campaign(checkpoint=path)

        calls = {"count": 0}

        def counting_factory():
            calls["count"] += 1
            return DistanceStrategy(2, max_delay=2)

        again = run_replicated(
            topology=LineTopology(),
            strategy_factory=counting_factory,
            mobility=MOBILITY,
            costs=COSTS,
            slots=5_000,
            replications=4,
            seed=0,
            checkpoint=path,
        )
        assert again.snapshots == first.snapshots
        # Only the fingerprint probe may construct a strategy; no
        # engine ran (each engine build would add a factory call).
        assert calls["count"] == 1

    def test_checkpoint_written_after_every_replication(self, tmp_path):
        path = tmp_path / "campaign.json"
        campaign(checkpoint=path, replications=3)
        payload = json.loads(path.read_text())
        assert len(payload["snapshots"]) == 3
        assert payload["fingerprint"]["replications"] == 3
        # Atomic write: no orphaned temp files next to the checkpoint.
        leftovers = [p for p in path.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_foreign_checkpoint_refused(self, tmp_path):
        path = tmp_path / "campaign.json"
        campaign(checkpoint=path, seed=0)
        with pytest.raises(ParameterError):
            campaign(checkpoint=path, seed=1)  # different campaign

    def test_corrupt_checkpoint_refused(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text("{not json")
        with pytest.raises(ParameterError):
            campaign(checkpoint=path)


class TestCheckpointIdentity:
    """The fingerprint must pin down *what* was simulated, not just how much."""

    def resume(self, path, strategy_factory=None, topology=None, start=None):
        return run_replicated(
            topology=topology if topology is not None else LineTopology(),
            strategy_factory=strategy_factory
            or (lambda: DistanceStrategy(2, max_delay=2)),
            mobility=MOBILITY,
            costs=COSTS,
            slots=5_000,
            replications=4,
            seed=0,
            start=start,
            checkpoint=path,
        )

    def test_different_threshold_refused(self, tmp_path):
        path = tmp_path / "campaign.json"
        campaign(checkpoint=path)
        with pytest.raises(ParameterError, match="different campaign"):
            self.resume(path, strategy_factory=lambda: DistanceStrategy(3, max_delay=2))

    def test_different_delay_bound_refused(self, tmp_path):
        path = tmp_path / "campaign.json"
        campaign(checkpoint=path)
        with pytest.raises(ParameterError, match="different campaign"):
            self.resume(path, strategy_factory=lambda: DistanceStrategy(2, max_delay=1))

    def test_different_strategy_refused(self, tmp_path):
        from repro.strategies import MovementStrategy

        path = tmp_path / "campaign.json"
        campaign(checkpoint=path)
        with pytest.raises(ParameterError, match="different campaign"):
            self.resume(path, strategy_factory=lambda: MovementStrategy(2))

    def test_different_topology_refused(self, tmp_path):
        from repro.geometry import HexTopology

        path = tmp_path / "campaign.json"
        campaign(checkpoint=path)
        with pytest.raises(ParameterError, match="different campaign"):
            self.resume(path, topology=HexTopology())

    def test_different_start_cell_refused(self, tmp_path):
        path = tmp_path / "campaign.json"
        campaign(checkpoint=path)
        with pytest.raises(ParameterError, match="different campaign"):
            self.resume(path, start=7)

    def test_stale_schema_version_refused_with_clear_message(self, tmp_path):
        path = tmp_path / "campaign.json"
        campaign(checkpoint=path)
        payload = json.loads(path.read_text())
        payload["fingerprint"]["version"] = 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ParameterError, match="schema version 1"):
            campaign(checkpoint=path)


class TestReplicationDeadline:
    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ParameterError):
            campaign(replication_deadline=0)

    def test_overrun_becomes_structured_partial(self):
        # An (effectively) already-expired deadline: every replication
        # is cut short and reported, none poisons the pooled stats.
        result = campaign(
            replications=2, slots=50_000, replication_deadline=1e-9
        )
        assert result.replications == 0
        assert len(result.partials) == 2
        for index, partial in enumerate(result.partials):
            assert isinstance(partial, PartialReplication)
            assert partial.index == index
            assert partial.target_slots == 50_000
            assert partial.completed_slots < 50_000
            assert partial.completed_slots == partial.snapshot.slots

    def test_generous_deadline_changes_nothing(self):
        relaxed = campaign(replication_deadline=3600.0)
        plain = campaign()
        assert relaxed.partials == ()
        assert relaxed.snapshots == plain.snapshots

    def test_partials_are_retried_on_resume(self, tmp_path):
        # A deadline-truncated replication must not be permanently
        # frozen out of the pool: rerunning the campaign without the
        # deadline retries the partial indices and recovers the exact
        # uninterrupted result.
        path = tmp_path / "campaign.json"
        truncated = campaign(
            checkpoint=path, replications=2, replication_deadline=1e-9
        )
        assert truncated.replications == 0
        assert len(truncated.partials) == 2
        assert len(json.loads(path.read_text())["partials"]) == 2

        resumed = campaign(checkpoint=path, replications=2)
        fresh = campaign(replications=2)
        assert resumed.partials == ()
        assert resumed.snapshots == fresh.snapshots
        # The retried full snapshots replaced the truncated ones in the
        # checkpoint too.
        payload = json.loads(path.read_text())
        assert payload["partials"] == []
        assert len(payload["snapshots"]) == 2
