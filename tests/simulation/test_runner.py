"""Unit tests for replicated runs and model validation."""

import math

import pytest

from repro import (
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    ParameterError,
)
from repro.geometry import LineTopology
from repro.simulation import run_replicated, validate_against_model
from repro.strategies import DistanceStrategy

COSTS = CostParams(update_cost=50.0, poll_cost=10.0)
MOBILITY = MobilityParams(0.2, 0.02)


def factory():
    return DistanceStrategy(2, max_delay=1)


class TestRunReplicated:
    def test_replication_count(self, line):
        result = run_replicated(
            line, factory, MOBILITY, COSTS, slots=2000, replications=4, seed=1
        )
        assert result.replications == 4

    def test_replications_are_independent(self, line):
        result = run_replicated(
            line, factory, MOBILITY, COSTS, slots=2000, replications=3, seed=2
        )
        costs = [s.mean_total_cost for s in result.snapshots]
        assert len(set(costs)) > 1

    def test_deterministic_per_seed(self, line):
        a = run_replicated(line, factory, MOBILITY, COSTS, slots=1000, seed=5)
        b = run_replicated(line, factory, MOBILITY, COSTS, slots=1000, seed=5)
        assert a.mean_total_cost == b.mean_total_cost

    def test_mean_decomposition(self, line):
        result = run_replicated(
            line, factory, MOBILITY, COSTS, slots=3000, replications=3, seed=3
        )
        assert result.mean_total_cost == pytest.approx(
            result.mean_update_cost + result.mean_paging_cost
        )

    def test_ci_infinite_for_single_replication(self, line):
        result = run_replicated(
            line, factory, MOBILITY, COSTS, slots=500, replications=1, seed=4
        )
        assert result.total_cost_ci() == math.inf

    def test_zero_replications_rejected(self, line):
        with pytest.raises(ParameterError):
            run_replicated(line, factory, MOBILITY, COSTS, slots=100, replications=0)

    def test_mean_paging_delay(self, line):
        result = run_replicated(
            line,
            lambda: DistanceStrategy(4, max_delay=3),
            MOBILITY,
            COSTS,
            slots=5000,
            replications=2,
            seed=6,
        )
        assert 1.0 <= result.mean_paging_delay <= 3.0


class TestValidateAgainstModel:
    def test_1d_agreement(self):
        model = OneDimensionalModel(MOBILITY)
        comparison = validate_against_model(
            model, COSTS, d=2, m=1, slots=60_000, replications=4, seed=7
        )
        assert comparison.relative_error < 0.05

    def test_components_compared(self):
        model = OneDimensionalModel(MOBILITY)
        comparison = validate_against_model(
            model, COSTS, d=2, m=2, slots=40_000, replications=3, seed=8
        )
        assert comparison.measured_update == pytest.approx(
            comparison.predicted_update, rel=0.15
        )
        assert comparison.measured_paging == pytest.approx(
            comparison.predicted_paging, rel=0.15
        )

    def test_physical_convention_at_d0(self):
        # The simulator physically updates at rate q when d = 0; the
        # default "physical" convention must match it, while the paper
        # convention (q/2 in 1-D) must not.
        model = OneDimensionalModel(MOBILITY)
        physical = validate_against_model(
            model, COSTS, d=0, m=1, slots=60_000, replications=3, seed=9
        )
        assert physical.relative_error < 0.05
        paper = validate_against_model(
            model,
            COSTS,
            d=0,
            m=1,
            slots=60_000,
            replications=3,
            seed=9,
            convention="paper",
        )
        assert paper.measured_update == pytest.approx(
            2 * paper.predicted_update, rel=0.1
        )

    def test_relative_error_zero_prediction(self):
        from repro.simulation.runner import ModelComparison

        comparison = ModelComparison(0.0, 0.0, 0.1, 0.0, 0.0, 0.0, 0.0)
        assert comparison.relative_error == 0.0
        assert comparison.within_ci

    def test_undefined_ci_is_not_agreement(self):
        # Regression: with < 2 replications the CI half-width is inf
        # and `abs(err) <= inf` made within_ci vacuously True -- a
        # comparison with no statistical power reported agreement.
        from repro.simulation.runner import ModelComparison

        comparison = ModelComparison(1.0, 99.0, math.inf, 0.0, 0.0, 0.0, 0.0)
        assert not comparison.within_ci

    def test_single_replication_validation_rejected(self):
        # ...and validate_against_model refuses to produce such a
        # powerless comparison in the first place.
        model = OneDimensionalModel(MOBILITY)
        with pytest.raises(ParameterError, match="replications"):
            validate_against_model(
                model, COSTS, d=2, m=1, slots=1_000, replications=1
            )
