"""Unit tests for the single-terminal simulation engine."""

import math

import pytest

from repro import CostParams, MobilityParams, ParameterError, SimulationError
from repro.simulation import EventLog, MoveEvent, PagingEvent, SimulationEngine, UpdateEvent
from repro.strategies import DistanceStrategy, TimerStrategy

COSTS = CostParams(update_cost=50.0, poll_cost=10.0)


def make_engine(line, q=0.3, c=0.05, d=2, m=1, seed=0, **kwargs):
    return SimulationEngine(
        topology=line,
        strategy=DistanceStrategy(d, max_delay=m),
        mobility=MobilityParams(q, c),
        costs=COSTS,
        seed=seed,
        **kwargs,
    )


class TestBasics:
    def test_run_counts_slots(self, line):
        engine = make_engine(line)
        snapshot = engine.run(1000)
        assert snapshot.slots == 1000
        assert engine.slot == 1000

    def test_deterministic_per_seed(self, line):
        a = make_engine(line, seed=42).run(2000)
        b = make_engine(line, seed=42).run(2000)
        assert a.mean_total_cost == b.mean_total_cost
        assert a.updates == b.updates
        assert a.calls == b.calls

    def test_different_seeds_differ(self, line):
        a = make_engine(line, seed=1).run(2000)
        b = make_engine(line, seed=2).run(2000)
        assert (a.updates, a.calls) != (b.updates, b.calls)

    def test_negative_slots_rejected(self, line):
        with pytest.raises(ParameterError):
            make_engine(line).run(-1)

    def test_bad_event_mode_rejected(self, line):
        with pytest.raises(ParameterError):
            make_engine(line, event_mode="sometimes")


class TestProtocolInvariants:
    def test_residing_area_invariant(self, line):
        # After every slot the terminal is within d of the strategy's
        # center -- the invariant the paging guarantee rests on.
        engine = make_engine(line, d=3)
        for _ in range(5000):
            engine.step()
            dist = line.distance(engine.strategy.last_known, engine.walk.position)
            assert dist <= 3

    def test_hex_residing_area_invariant(self, hexgrid):
        engine = SimulationEngine(
            topology=hexgrid,
            strategy=DistanceStrategy(2, max_delay=2),
            mobility=MobilityParams(0.5, 0.05),
            costs=COSTS,
            seed=5,
        )
        for _ in range(3000):
            engine.step()
            dist = hexgrid.distance(engine.strategy.last_known, engine.walk.position)
            assert dist <= 2

    def test_paging_failure_detected(self, line):
        # A strategy whose polling misses the terminal must be caught.
        class Broken(DistanceStrategy):
            def polling_groups(self):
                yield [self.center + 1_000]

        engine = SimulationEngine(
            topology=line,
            strategy=Broken(2, max_delay=1),
            mobility=MobilityParams(0.1, 0.5),
            costs=COSTS,
            seed=0,
        )
        with pytest.raises(SimulationError):
            engine.run(200)

    def test_event_rates_match_parameters(self, line):
        engine = make_engine(line, q=0.2, c=0.05, d=100, seed=9)
        snapshot = engine.run(50_000)
        assert snapshot.calls / snapshot.slots == pytest.approx(0.05, abs=0.01)
        assert snapshot.moves / snapshot.slots == pytest.approx(0.2, abs=0.01)

    def test_timer_strategy_updates_without_moving(self, line):
        engine = SimulationEngine(
            topology=line,
            strategy=TimerStrategy(10, max_delay=1),
            mobility=MobilityParams(0.01, 0.0),
            costs=COSTS,
            seed=1,
        )
        snapshot = engine.run(1000)
        # Roughly one update per 10 slots regardless of movement.
        assert snapshot.updates == pytest.approx(100, abs=15)


class TestEventLog:
    def test_events_recorded(self, line):
        log = EventLog()
        engine = make_engine(line, q=0.5, c=0.1, d=1, seed=3, event_log=log)
        engine.run(500)
        moves = log.of_type(MoveEvent)
        updates = log.of_type(UpdateEvent)
        pages = log.of_type(PagingEvent)
        assert moves and updates and pages
        snapshot = engine.meter.snapshot()
        assert len(moves) == snapshot.moves
        assert len(updates) == snapshot.updates
        assert len(pages) == snapshot.calls

    def test_paging_events_have_valid_cycles(self, line):
        log = EventLog()
        engine = make_engine(line, d=4, m=2, c=0.2, seed=4, event_log=log)
        engine.run(2000)
        for event in log.of_type(PagingEvent):
            assert 1 <= event.cycles <= 2

    def test_log_capacity_truncates(self, line):
        log = EventLog(capacity=10)
        engine = make_engine(line, q=0.9, c=0.05, d=1, seed=5, event_log=log)
        engine.run(2000)
        assert len(log) == 10
        assert log.truncated

    def test_log_indexing(self, line):
        log = EventLog()
        engine = make_engine(line, q=1.0, c=0.0, d=0, seed=6, event_log=log)
        engine.run(10)
        assert log[0] is list(log)[0]


class TestIndependentEventMode:
    def test_runs_and_meters(self, line):
        engine = make_engine(line, event_mode="independent", seed=7)
        snapshot = engine.run(10_000)
        assert snapshot.slots == 10_000

    def test_rates_close_to_exclusive_for_small_qc(self, line):
        exclusive = make_engine(line, q=0.1, c=0.01, seed=8).run(80_000)
        independent = make_engine(
            line, q=0.1, c=0.01, seed=8, event_mode="independent"
        ).run(80_000)
        # q*c = 0.001: the two semantics differ by O(qc) per slot.
        assert independent.mean_total_cost == pytest.approx(
            exclusive.mean_total_cost, rel=0.1
        )

    def test_component_rates_agree_for_small_qc(self, line):
        exclusive = make_engine(line, q=0.1, c=0.01, seed=12).run(120_000)
        independent = make_engine(
            line, q=0.1, c=0.01, seed=13, event_mode="independent"
        ).run(120_000)
        # Agreement must hold per cost component, not only in the
        # total (errors in C_u and C_v could otherwise cancel).
        assert independent.updates / independent.slots == pytest.approx(
            exclusive.updates / exclusive.slots, rel=0.1
        )
        assert independent.polled_cells / max(independent.calls, 1) == pytest.approx(
            exclusive.polled_cells / max(exclusive.calls, 1), rel=0.1
        )

    def test_both_events_in_one_slot_page_before_move(self, line):
        # When one slot draws both a call and a movement, the call is
        # processed first: the paging-radius guarantee covers movement
        # up to the *previous* slot, so paging must see the pre-move
        # position.  High q and c make double-event slots plentiful.
        log = EventLog()
        engine = make_engine(
            line, q=0.5, c=0.4, seed=9, event_mode="independent", event_log=log
        )
        double_slots = 0
        for _ in range(3_000):
            before = engine.walk.position
            calls, moves = engine.meter.calls, engine.meter.moves
            engine.step()
            if engine.meter.calls > calls and engine.meter.moves > moves:
                double_slots += 1
                pagings = [
                    e for e in log.of_type(PagingEvent) if e.slot == engine.slot - 1
                ]
                assert pagings[-1].cell == before
        assert double_slots > 100  # the ordering was actually exercised

    def test_event_log_orders_page_before_move(self, line):
        log = EventLog()
        make_engine(
            line, q=0.5, c=0.4, seed=10, event_mode="independent", event_log=log
        ).run(2_000)
        events = list(log)
        by_slot = {}
        for position, event in enumerate(events):
            by_slot.setdefault(event.slot, []).append((position, event))
        seen = 0
        for slot_events in by_slot.values():
            kinds = [type(e) for _, e in slot_events]
            if PagingEvent in kinds and MoveEvent in kinds:
                seen += 1
                page_at = next(p for p, e in slot_events if isinstance(e, PagingEvent))
                move_at = next(p for p, e in slot_events if isinstance(e, MoveEvent))
                assert page_at < move_at
        assert seen > 50
