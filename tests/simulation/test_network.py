"""Unit tests for the multi-terminal PCN layer."""

import pytest

from repro import CostParams, MobilityParams, ParameterError, SimulationError
from repro.geometry import HexTopology, LineTopology
from repro.simulation import LocationRegister, PCNetwork
from repro.strategies import DistanceStrategy

COSTS = CostParams(update_cost=50.0, poll_cost=10.0)
MOBILITY = MobilityParams(0.3, 0.05)


class TestLocationRegister:
    def test_update_and_lookup(self):
        register = LocationRegister()
        register.update(0, (1, 2))
        assert register.lookup(0) == (1, 2)
        assert 0 in register
        assert len(register) == 1

    def test_lookup_unknown_terminal(self):
        with pytest.raises(SimulationError):
            LocationRegister().lookup(99)

    def test_counters(self):
        register = LocationRegister()
        register.update(0, 5)
        register.update(0, 6)
        register.lookup(0)
        assert register.writes == 2
        assert register.reads == 1


class TestPCNetwork:
    def make_network(self, terminals=3, seed=0):
        network = PCNetwork(HexTopology(), COSTS, seed=seed)
        for _ in range(terminals):
            network.add_terminal(DistanceStrategy(2, max_delay=1), MOBILITY)
        return network

    def test_terminals_registered(self):
        network = self.make_network(terminals=4)
        assert len(network.terminals) == 4
        assert len(network.register) == 4

    def test_run_advances_all(self):
        network = self.make_network()
        network.run(200)
        assert network.slot == 200
        for terminal in network.terminals:
            assert terminal.engine.slot == 200

    def test_register_tracks_last_fix(self):
        network = self.make_network(seed=3)
        network.run(3000)
        for terminal in network.terminals:
            recorded = network.register.lookup(terminal.terminal_id)
            assert recorded == terminal.strategy.last_known

    def test_station_counters_accumulate(self):
        network = self.make_network(seed=4)
        network.run(3000)
        total_updates = sum(s.updates_received for s in network.stations.values())
        expected = sum(t.engine.meter.snapshot().updates for t in network.terminals)
        assert total_updates == expected

    def test_terminals_are_independent(self):
        network = self.make_network(terminals=2, seed=5)
        network.run(2000)
        a, b = network.snapshots()
        assert (a.updates, a.calls) != (b.updates, b.calls)

    def test_aggregate_mean_cost(self):
        network = self.make_network(seed=6)
        network.run(2000)
        snaps = network.snapshots()
        expected = sum(s.mean_total_cost for s in snaps) / len(snaps)
        assert network.aggregate_mean_cost() == pytest.approx(expected)

    def test_aggregate_empty_network(self):
        network = PCNetwork(LineTopology(), COSTS)
        assert network.aggregate_mean_cost() == 0.0

    def test_busiest_stations(self):
        network = self.make_network(seed=7)
        network.run(3000)
        top = network.busiest_stations(3)
        assert len(top) <= 3
        loads = [load for _, load in top]
        assert loads == sorted(loads, reverse=True)

    def test_negative_slots_rejected(self):
        with pytest.raises(ParameterError):
            self.make_network().run(-1)

    def test_reproducible_per_seed(self):
        a = self.make_network(seed=11)
        b = self.make_network(seed=11)
        a.run(1000)
        b.run(1000)
        assert a.aggregate_mean_cost() == b.aggregate_mean_cost()


class TestOutageInjection:
    def make_network(self, terminals=3, seed=0):
        network = PCNetwork(HexTopology(), COSTS, seed=seed)
        for _ in range(terminals):
            network.add_terminal(DistanceStrategy(2, max_delay=1), MOBILITY)
        return network

    def test_no_outage_is_fully_available(self):
        network = self.make_network(seed=20)
        network.run(2000)
        assert network.mean_availability() == 1.0
        assert network.degraded_signaling_fraction() == 0.0
        assert network.signaling_lost == 0

    def test_outages_reduce_availability(self):
        network = self.make_network(seed=21)
        network.inject_outages(rate=0.05, duration=10, seed=1)
        network.run(4000)
        assert network.mean_availability() < 1.0
        darkened = [s for s in network.stations.values() if s.outage_slots > 0]
        assert darkened
        for station in darkened:
            assert station.availability(network.slot) < 1.0

    def test_dark_stations_lose_signaling(self):
        network = self.make_network(seed=22)
        network.inject_outages(rate=0.1, duration=20, seed=2)
        network.run(4000)
        assert network.signaling_lost > 0
        assert 0.0 < network.degraded_signaling_fraction() < 1.0
        per_station = sum(
            s.lost_updates + s.wasted_polls for s in network.stations.values()
        )
        assert per_station == network.signaling_lost

    def test_lost_update_skips_register_write(self):
        network = self.make_network(terminals=1, seed=23)
        network.inject_outages(rate=0.15, duration=20, seed=3)
        network.run(4000)
        terminal = network.terminals[0]
        lost = sum(s.lost_updates for s in network.stations.values())
        wasted = sum(s.wasted_polls for s in network.stations.values())
        assert lost > 0
        # Register writes: the admission fix, plus every *delivered*
        # update, plus every call fix served by a live station.
        snapshot = terminal.engine.meter.snapshot()
        delivered = (snapshot.updates - lost) + (snapshot.calls - wasted)
        assert network.register.writes == 1 + delivered

    def test_availability_report_ranks_worst_first(self):
        network = self.make_network(seed=24)
        network.inject_outages(rate=0.05, duration=15, seed=4)
        network.run(4000)
        report = network.availability_report(4)
        availabilities = [availability for _, availability, _ in report]
        assert availabilities == sorted(availabilities)

    def test_injection_validates_parameters(self):
        network = self.make_network()
        with pytest.raises(ParameterError):
            network.inject_outages(rate=1.5, duration=10)
        with pytest.raises(ParameterError):
            network.inject_outages(rate=0.1, duration=0)
