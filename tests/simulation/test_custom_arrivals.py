"""Tests for the engine's pluggable call-arrival process."""

import numpy as np
import pytest

from repro import CostParams, MobilityParams, ParameterError
from repro.geometry import LineTopology
from repro.mobility import BatchedArrivals, BernoulliArrivals
from repro.simulation import SimulationEngine
from repro.strategies import DistanceStrategy

MOBILITY = MobilityParams(0.2, 0.02)
COSTS = CostParams(30.0, 2.0)


def make_engine(arrivals=None, seed=0, max_delay=1):
    return SimulationEngine(
        LineTopology(),
        DistanceStrategy(2, max_delay=max_delay),
        MOBILITY,
        COSTS,
        seed=seed,
        arrivals=arrivals,
    )


class TestCustomArrivals:
    def test_bernoulli_process_matches_builtin_rates(self):
        # Feeding the engine an explicit Bernoulli(c) process must give
        # the same call rate as the built-in draw.
        external = make_engine(
            arrivals=BernoulliArrivals(0.02, rng=np.random.default_rng(9)), seed=1
        ).run(60_000)
        builtin = make_engine(seed=1).run(60_000)
        assert external.calls / external.slots == pytest.approx(
            builtin.calls / builtin.slots, rel=0.1
        )

    def test_bursty_process_delivers_target_mean_rate(self):
        arrivals = BatchedArrivals(
            0.02, burstiness=5.0, mean_busy_slots=50.0,
            rng=np.random.default_rng(11),
        )
        snapshot = make_engine(arrivals=arrivals, seed=2).run(200_000)
        assert snapshot.calls / snapshot.slots == pytest.approx(0.02, rel=0.2)

    def test_bursty_traffic_never_breaks_paging(self):
        # The residing-area invariant must survive clustered resets.
        arrivals = BatchedArrivals(
            0.05, burstiness=8.0, mean_busy_slots=30.0,
            rng=np.random.default_rng(12),
        )
        engine = make_engine(arrivals=arrivals, seed=3)
        engine.run(50_000)  # SimulationError would surface here

    def test_bursty_paging_is_cheaper_per_call(self):
        # The robustness finding: clustered calls find the terminal
        # closer to the center, so fewer cells are polled per call.
        # Needs staged (m >= 2) paging -- blanket polling is position-
        # independent and cannot benefit.
        bernoulli = make_engine(seed=4, max_delay=3).run(150_000)
        arrivals = BatchedArrivals(
            0.02, burstiness=6.0, mean_busy_slots=80.0,
            rng=np.random.default_rng(13),
        )
        bursty = make_engine(arrivals=arrivals, seed=4, max_delay=3).run(150_000)
        per_call_bernoulli = bernoulli.polled_cells / bernoulli.calls
        per_call_bursty = bursty.polled_cells / bursty.calls
        assert per_call_bursty < per_call_bernoulli

    def test_invalid_arrivals_object_rejected(self):
        with pytest.raises(ParameterError):
            make_engine(arrivals="not a process")
