"""Parallel campaign execution: determinism, checkpoints, validation."""

import json
from functools import partial

import pytest

from repro import CostParams, MobilityParams, ParameterError
from repro.geometry import LineTopology
from repro.simulation import run_replicated
from repro.strategies import DistanceStrategy

MOBILITY = MobilityParams(0.3, 0.03)
COSTS = CostParams(30.0, 2.0)
FACTORY = partial(DistanceStrategy, 2, max_delay=2)


def campaign(workers=None, checkpoint=None, replications=4, slots=3_000, seed=0):
    return run_replicated(
        topology=LineTopology(),
        strategy_factory=FACTORY,
        mobility=MOBILITY,
        costs=COSTS,
        slots=slots,
        replications=replications,
        seed=seed,
        workers=workers,
        checkpoint=checkpoint,
    )


class TestWorkerValidation:
    def test_serial_aliases(self):
        # None, 1, and "serial" all run in-process and agree exactly.
        assert campaign(workers=None).snapshots == campaign(workers=1).snapshots
        assert campaign(workers="serial").snapshots == campaign(workers=1).snapshots

    def test_zero_workers_rejected(self):
        with pytest.raises(ParameterError):
            campaign(workers=0)

    def test_bogus_string_rejected(self):
        with pytest.raises(ParameterError):
            campaign(workers="threads")

    def test_unpicklable_factory_rejected_with_hint(self):
        unpicklable = lambda: DistanceStrategy(2, max_delay=2)  # noqa: E731
        with pytest.raises(ParameterError, match="functools.partial"):
            run_replicated(
                topology=LineTopology(),
                strategy_factory=unpicklable,
                mobility=MOBILITY,
                costs=COSTS,
                slots=100,
                replications=2,
                workers=2,
            )


class TestParallelDeterminism:
    def test_pool_is_bit_identical_to_serial(self):
        serial = campaign(workers=None)
        pooled = campaign(workers=4)
        assert pooled.snapshots == serial.snapshots
        assert pooled.partials == serial.partials
        assert pooled.mean_total_cost == serial.mean_total_cost

    def test_pool_size_does_not_matter(self):
        assert campaign(workers=2).snapshots == campaign(workers=3).snapshots


class TestParallelCheckpoint:
    def test_checkpoint_written_during_pooled_run(self, tmp_path):
        path = tmp_path / "campaign.json"
        campaign(workers=2, checkpoint=path)
        payload = json.loads(path.read_text())
        assert sorted(e["index"] for e in payload["snapshots"]) == [0, 1, 2, 3]

    def test_any_order_checkpoint_resumes_correctly(self, tmp_path):
        # Simulate a pooled campaign killed after replications 0 and 2
        # finished (out of order -- impossible for the old serial-prefix
        # format): both executors must resume the remaining indices and
        # reproduce the uninterrupted result exactly.
        path = tmp_path / "campaign.json"
        uninterrupted = campaign()
        campaign(checkpoint=path)
        payload = json.loads(path.read_text())
        payload["snapshots"] = [
            e for e in payload["snapshots"] if e["index"] in (0, 2)
        ]
        path.write_text(json.dumps(payload))

        resumed_serial = campaign(checkpoint=path)
        assert resumed_serial.snapshots == uninterrupted.snapshots

        path.write_text(json.dumps(payload))
        resumed_pooled = campaign(workers=2, checkpoint=path)
        assert resumed_pooled.snapshots == uninterrupted.snapshots

    def test_serial_checkpoint_finishable_by_pool(self, tmp_path):
        path = tmp_path / "campaign.json"
        uninterrupted = campaign()
        campaign(checkpoint=path, replications=2)  # same seed: prefix
        # A serial 2-replication prefix is NOT resumable as a
        # 4-replication campaign (replications is in the fingerprint)...
        with pytest.raises(ParameterError):
            campaign(workers=2, checkpoint=path)
        # ...but the same campaign resumed with workers is fine.
        partial_result = campaign(replications=2, checkpoint=path, workers=2)
        assert partial_result.replications == 2
        assert partial_result.snapshots == uninterrupted.snapshots[:2]
