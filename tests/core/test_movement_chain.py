"""Unit tests for the joint (move-count, ring) movement-scheme chain."""

import math

import pytest

from repro import (
    CostParams,
    MobilityParams,
    ParameterError,
    movement_based_costs,
    movement_staged_costs,
    optimal_staged_movement_threshold,
)
from repro.core.movement_chain import _joint_steady_state
from repro.geometry import HexTopology, LineTopology, SquareTopology

MOBILITY = MobilityParams(0.2, 0.02)
COSTS = CostParams(30.0, 2.0)
LINE = LineTopology()
HEX = HexTopology()


class TestJointSteadyState:
    @pytest.mark.parametrize("topology", [LINE, HEX, SquareTopology()])
    @pytest.mark.parametrize("M", [1, 3, 6])
    def test_is_distribution(self, topology, M):
        joint = _joint_steady_state(topology, MOBILITY, M)
        assert sum(joint.values()) == pytest.approx(1.0)
        assert all(value >= 0 for value in joint.values())

    def test_ring_never_exceeds_move_count(self):
        joint = _joint_steady_state(HEX, MOBILITY, 5)
        assert all(i <= k for (k, i) in joint)

    def test_line_parity(self):
        # On the line every move changes the ring by exactly 1, so
        # i and k share parity; opposite-parity states carry no mass.
        joint = _joint_steady_state(LINE, MOBILITY, 6)
        for (k, i), mass in joint.items():
            if (k - i) % 2 == 1:
                assert mass == pytest.approx(0.0, abs=1e-15)

    def test_count_marginal_matches_blanket_chain(self):
        # Summing the joint over rings must reproduce the 1-D count
        # chain's truncated geometric.
        q, c = MOBILITY.q, MOBILITY.c
        M = 5
        joint = _joint_steady_state(HEX, MOBILITY, M)
        marginal = [
            sum(mass for (k, i), mass in joint.items() if k == count)
            for count in range(M)
        ]
        r = q / (q + c)
        weights = [r**count for count in range(M)]
        expected = [w / sum(weights) for w in weights]
        assert marginal == pytest.approx(expected, abs=1e-12)


class TestStagedCosts:
    @pytest.mark.parametrize("topology", [LINE, HEX])
    @pytest.mark.parametrize("M", [1, 2, 5])
    def test_m1_reduces_to_blanket_model(self, topology, M):
        blanket = movement_based_costs(topology, MOBILITY, COSTS, M)
        staged = movement_staged_costs(topology, MOBILITY, COSTS, M, 1)
        assert staged.update_cost == pytest.approx(blanket.update_cost, rel=1e-9)
        assert staged.paging_cost == pytest.approx(blanket.paging_cost, rel=1e-9)

    def test_staging_never_hurts(self):
        for m in (1, 2, 3, math.inf):
            previous = None
            value = movement_staged_costs(HEX, MOBILITY, COSTS, 5, m).paging_cost
            if previous is not None:
                assert value <= previous + 1e-12
            previous = value

    def test_paging_cost_monotone_in_delay(self):
        values = [
            movement_staged_costs(HEX, MOBILITY, COSTS, 5, m).paging_cost
            for m in (1, 2, 3, math.inf)
        ]
        assert values == sorted(values, reverse=True)

    def test_update_cost_independent_of_delay(self):
        a = movement_staged_costs(HEX, MOBILITY, COSTS, 4, 1)
        b = movement_staged_costs(HEX, MOBILITY, COSTS, 4, 3)
        assert a.update_cost == pytest.approx(b.update_cost)

    def test_simulation_agreement_line(self):
        from repro.simulation import run_replicated
        from repro.strategies import MovementStrategy

        analytic = movement_staged_costs(LINE, MOBILITY, COSTS, 4, 2)
        sim = run_replicated(
            LINE,
            lambda: MovementStrategy(4, max_delay=2),
            MOBILITY,
            COSTS,
            slots=100_000,
            replications=3,
            seed=12,
        )
        assert sim.mean_total_cost == pytest.approx(analytic.total_cost, rel=0.03)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_invalid_threshold(self, bad):
        with pytest.raises(ParameterError):
            movement_staged_costs(HEX, MOBILITY, COSTS, bad, 2)


class TestOptimalStagedThreshold:
    def test_is_global_over_range(self):
        best = optimal_staged_movement_threshold(
            HEX, MOBILITY, COSTS, 2, max_threshold=20
        )
        for M in range(1, 21):
            assert best.total_cost <= movement_staged_costs(
                HEX, MOBILITY, COSTS, M, 2
            ).total_cost + 1e-12

    def test_staged_beats_blanket_optimum(self):
        from repro import optimal_movement_threshold

        blanket = optimal_movement_threshold(HEX, MOBILITY, COSTS)
        staged = optimal_staged_movement_threshold(HEX, MOBILITY, COSTS, 3)
        assert staged.total_cost <= blanket.total_cost + 1e-12
