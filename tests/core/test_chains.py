"""Unit tests for the generic reset-chain solvers."""

import numpy as np
import pytest

from repro import ParameterError, ResetChain, SolverError
from repro.core.chains import solve_steady_state_matrix, solve_steady_state_recursive


def uniform_chain(d, q=0.1, c=0.02, split=2.0):
    """A chain with interior rates q/split and boundary rate q out of 0."""
    a = np.full(d + 1, q / split)
    a[0] = q
    b = np.full(d + 1, q / split)
    b[0] = 0.0
    return ResetChain(outward=a, inward=b, reset=c)


class TestConstruction:
    def test_size_and_threshold(self):
        chain = uniform_chain(4)
        assert chain.size == 5
        assert chain.threshold == 4

    def test_rate_arrays_read_only(self):
        chain = uniform_chain(3)
        with pytest.raises(ValueError):
            chain.a[0] = 0.5

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ParameterError):
            ResetChain(outward=[0.1, 0.1], inward=[0.0], reset=0.0)

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            ResetChain(outward=[], inward=[], reset=0.0)

    def test_rejects_nonzero_b0(self):
        with pytest.raises(ParameterError):
            ResetChain(outward=[0.1, 0.1], inward=[0.1, 0.1], reset=0.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(ParameterError):
            ResetChain(outward=[0.1, -0.1], inward=[0.0, 0.1], reset=0.0)

    def test_rejects_zero_interior_outward(self):
        with pytest.raises(ParameterError):
            ResetChain(outward=[0.0, 0.1], inward=[0.0, 0.1], reset=0.01)

    def test_rejects_reset_out_of_range(self):
        with pytest.raises(ParameterError):
            ResetChain(outward=[0.1], inward=[0.0], reset=1.0)

    def test_rejects_overfull_rows(self):
        with pytest.raises(ParameterError):
            ResetChain(outward=[0.6, 0.6], inward=[0.0, 0.6], reset=0.2)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self):
        P = uniform_chain(5).transition_matrix()
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_matrix_entries(self):
        chain = uniform_chain(2, q=0.1, c=0.02)
        P = chain.transition_matrix()
        # From state 0: out with a_0 = q, stay otherwise (call keeps 0).
        assert P[0, 1] == pytest.approx(0.1)
        assert P[0, 0] == pytest.approx(0.9)
        # From state 1: up a, down b, reset c.
        assert P[1, 2] == pytest.approx(0.05)
        assert P[1, 0] == pytest.approx(0.05 + 0.02)
        # From boundary state 2: outward move also resets.
        assert P[2, 0] == pytest.approx(0.05 + 0.02)
        assert P[2, 1] == pytest.approx(0.05)

    def test_single_state_chain(self):
        chain = ResetChain(outward=[0.0], inward=[0.0], reset=0.1)
        P = chain.transition_matrix()
        assert P.shape == (1, 1)
        assert P[0, 0] == pytest.approx(1.0)


class TestSolvers:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 5, 10, 40])
    def test_matrix_and_recursive_agree(self, d):
        chain = uniform_chain(d)
        pm = solve_steady_state_matrix(chain)
        pr = solve_steady_state_recursive(chain)
        assert np.allclose(pm, pr, atol=1e-12)

    def test_solution_is_distribution(self):
        pi = solve_steady_state_recursive(uniform_chain(7))
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0)

    def test_solution_is_stationary(self):
        chain = uniform_chain(6)
        pi = solve_steady_state_matrix(chain)
        P = chain.transition_matrix()
        assert np.allclose(pi @ P, pi, atol=1e-12)

    def test_state_dependent_rates(self):
        # 2-D-style rates a_i = q(1/3 + 1/(6i)).
        q, c, d = 0.1, 0.01, 6
        i = np.arange(1, d + 1, dtype=float)
        a = np.concatenate([[q], q * (1 / 3 + 1 / (6 * i))])
        b = np.concatenate([[0.0], q * (1 / 3 - 1 / (6 * i))])
        chain = ResetChain(outward=a, inward=b, reset=c)
        pm = solve_steady_state_matrix(chain)
        pr = solve_steady_state_recursive(chain)
        assert np.allclose(pm, pr, atol=1e-12)

    def test_zero_reset_probability(self):
        chain = uniform_chain(4, c=0.0)
        pm = solve_steady_state_matrix(chain)
        pr = solve_steady_state_recursive(chain)
        assert np.allclose(pm, pr, atol=1e-12)

    def test_d_zero(self):
        chain = ResetChain(outward=[0.1], inward=[0.0], reset=0.05)
        assert solve_steady_state_recursive(chain)[0] == pytest.approx(1.0)
        assert solve_steady_state_matrix(chain)[0] == pytest.approx(1.0)

    def test_probability_decreases_with_distance_eventually(self):
        # With symmetric interior rates and resets, mass concentrates
        # near the center.
        pi = solve_steady_state_recursive(uniform_chain(10, q=0.1, c=0.05))
        assert pi[0] > pi[5] > pi[10]
