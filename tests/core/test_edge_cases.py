"""Edge-case tests across the core: boundaries of the parameter space."""

import math

import numpy as np
import pytest

from repro import (
    CostEvaluator,
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    TwoDimensionalModel,
    find_optimal_threshold,
)


class TestParameterBoundaries:
    def test_q_plus_c_exactly_one(self):
        # The competing-event budget fully spent: every slot is a move
        # or a call.
        model = OneDimensionalModel(MobilityParams(0.9, 0.1))
        p = model.steady_state(3)
        assert p.sum() == pytest.approx(1.0)
        chain = model.chain(3)
        P = chain.transition_matrix()
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_q_one_c_zero(self):
        # Always moving, never called: pure walk with boundary resets.
        model = TwoDimensionalModel(MobilityParams(1.0, 0.0))
        p = model.steady_state(4)
        assert p.sum() == pytest.approx(1.0)
        # With no calls there is no paging cost at all.
        evaluator = CostEvaluator(model, CostParams(10, 5))
        assert evaluator.paging_cost(4, 2) == 0.0
        assert evaluator.update_cost(4) > 0

    def test_tiny_q(self):
        model = OneDimensionalModel(MobilityParams(1e-5, 0.01))
        solution = find_optimal_threshold(model, CostParams(100, 1), 1, d_max=20)
        # A near-stationary terminal should keep the residing area
        # minimal: updates are essentially free because they never fire.
        assert solution.threshold <= 1

    def test_heavy_traffic_dominates(self):
        # c >> q: the terminal is located by calls long before it can
        # wander; thresholds above 1 buy nothing.
        model = TwoDimensionalModel(MobilityParams(0.01, 0.5))
        a = find_optimal_threshold(model, CostParams(100, 1), 1, d_max=20)
        assert a.threshold <= 2

    def test_zero_update_cost_prefers_zero_threshold(self):
        model = OneDimensionalModel(MobilityParams(0.2, 0.05))
        solution = find_optimal_threshold(model, CostParams(0.0, 10.0), 1)
        assert solution.threshold == 0

    def test_zero_poll_cost_prefers_large_threshold(self):
        model = OneDimensionalModel(MobilityParams(0.2, 0.05))
        solution = find_optimal_threshold(
            model, CostParams(10.0, 0.0), 1, d_max=30
        )
        assert solution.threshold == 30  # nothing limits the area

    def test_free_everything(self):
        model = OneDimensionalModel(MobilityParams(0.2, 0.05))
        solution = find_optimal_threshold(model, CostParams(0.0, 0.0), 1)
        assert solution.total_cost == 0.0


class TestLargeThresholds:
    @pytest.mark.parametrize("d", [100, 250])
    def test_solvers_stable_at_large_d(self, d):
        model = OneDimensionalModel(MobilityParams(0.05, 0.01))
        closed = model.steady_state(d, method="closed_form")
        matrix = model.steady_state(d, method="matrix")
        assert np.allclose(closed, matrix, atol=1e-10)
        assert np.all(np.isfinite(closed))

    def test_2d_recursive_stable_at_large_d(self):
        model = TwoDimensionalModel(MobilityParams(0.05, 0.01))
        p = model.steady_state(200, method="recursive")
        assert p.sum() == pytest.approx(1.0)
        # Mass far out is vanishing; the chain concentrates.
        assert p[150:].sum() < 1e-6

    def test_costs_converge_at_large_d_unbounded_delay(self):
        evaluator = CostEvaluator(
            OneDimensionalModel(MobilityParams(0.05, 0.01)), CostParams(100, 10)
        )
        a = evaluator.total_cost(150, math.inf)
        b = evaluator.total_cost(250, math.inf)
        assert a == pytest.approx(b, rel=1e-9)


class TestDelayEdge:
    def test_m_larger_than_rings_is_unbounded(self):
        evaluator = CostEvaluator(
            TwoDimensionalModel(MobilityParams(0.1, 0.02)), CostParams(50, 5)
        )
        assert evaluator.total_cost(3, 99) == pytest.approx(
            evaluator.total_cost(3, math.inf)
        )

    def test_d0_all_delays_identical(self):
        evaluator = CostEvaluator(
            TwoDimensionalModel(MobilityParams(0.1, 0.02)), CostParams(50, 5)
        )
        values = {evaluator.total_cost(0, m) for m in (1, 2, 3, math.inf)}
        assert len(values) == 1
