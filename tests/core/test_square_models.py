"""Unit tests for the square-grid model extension."""

import numpy as np
import pytest

from repro import (
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    SquareGridApproximateModel,
    SquareGridModel,
    find_optimal_threshold,
)
from repro.simulation import validate_against_model

MOBILITY = MobilityParams(0.1, 0.01)


class TestSquareExactModel:
    def test_transition_rates(self):
        model = SquareGridModel(MOBILITY)
        a, b = model.transition_rates(3)
        q = 0.1
        assert a[0] == pytest.approx(q)
        assert a[1] == pytest.approx(q * 0.75)
        assert b[1] == pytest.approx(q * 0.25)
        assert a[2] == pytest.approx(q * (0.5 + 1 / 8))
        assert b[3] == pytest.approx(q * (0.5 - 1 / 12))

    def test_coverage(self):
        model = SquareGridModel(MOBILITY)
        assert [model.coverage(d) for d in range(4)] == [1, 5, 13, 25]

    @pytest.mark.parametrize("d", [0, 1, 2, 5, 12])
    def test_solvers_agree(self, d):
        model = SquareGridModel(MOBILITY)
        recursive = model.steady_state(d, method="recursive")
        matrix = model.steady_state(d, method="matrix")
        assert np.allclose(recursive, matrix, atol=1e-11)

    def test_update_rate(self):
        model = SquareGridModel(MOBILITY)
        assert model.update_rate(0) == pytest.approx(0.1)  # physical
        assert model.update_rate(2) == pytest.approx(0.1 * (0.5 + 1 / 8))

    def test_optimization_runs(self):
        solution = find_optimal_threshold(
            SquareGridModel(MOBILITY), CostParams(50, 5), 2
        )
        assert solution.threshold >= 0
        assert solution.total_cost > 0

    def test_simulation_agreement(self):
        # The ring chain aggregates corner/edge cells like the hex
        # model; agreement with the grid walk within a few percent.
        comparison = validate_against_model(
            SquareGridModel(MOBILITY),
            CostParams(50, 5),
            d=3,
            m=2,
            slots=80_000,
            replications=3,
            seed=3,
        )
        assert comparison.relative_error < 0.05


class TestSquareApproximateModel:
    def test_chain_identical_to_1d(self):
        # Dropping the q/(4i) terms leaves exactly the 1-D chain, so
        # the Section 3.2 closed form applies verbatim.
        square = SquareGridApproximateModel(MOBILITY)
        line = OneDimensionalModel(MOBILITY)
        for d in (0, 1, 2, 5, 9):
            assert np.allclose(square.steady_state(d), line.steady_state(d))

    def test_geometry_differs_from_1d(self):
        square = SquareGridApproximateModel(MOBILITY)
        line = OneDimensionalModel(MOBILITY)
        assert square.coverage(3) == 25
        assert line.coverage(3) == 7

    @pytest.mark.parametrize("d", [0, 1, 2, 4, 8])
    def test_closed_form_matches_matrix(self, d):
        model = SquareGridApproximateModel(MOBILITY)
        closed = model.steady_state(d, method="closed_form")
        matrix = model.steady_state(d, method="matrix")
        assert np.allclose(closed, matrix, atol=1e-11)

    def test_boundary_probability_close_to_exact(self):
        exact = SquareGridModel(MOBILITY).steady_state(6)
        approx = SquareGridApproximateModel(MOBILITY).steady_state(6)
        assert approx[6] == pytest.approx(exact[6], rel=0.6)

    def test_update_rate_is_interior(self):
        model = SquareGridApproximateModel(MOBILITY)
        assert model.update_rate(0) == pytest.approx(0.05)
        assert model.update_rate(5) == pytest.approx(0.05)

    def test_near_optimal_style_threshold_close_to_exact(self):
        # The approximate model must rank thresholds like the exact one.
        costs = CostParams(100, 5)
        exact = find_optimal_threshold(SquareGridModel(MOBILITY), costs, 2).threshold
        approx = find_optimal_threshold(
            SquareGridApproximateModel(MOBILITY), costs, 2
        ).threshold
        assert abs(exact - approx) <= 1
