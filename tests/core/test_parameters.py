"""Unit tests for parameter validation."""

import math

import pytest

from repro import CostParams, MobilityParams, ParameterError
from repro.core.parameters import validate_delay, validate_threshold


class TestMobilityParams:
    def test_valid_construction(self):
        p = MobilityParams(move_probability=0.05, call_probability=0.01)
        assert p.q == 0.05
        assert p.c == 0.01

    def test_aliases_match_fields(self):
        p = MobilityParams(0.2, 0.1)
        assert p.q == p.move_probability
        assert p.c == p.call_probability

    def test_zero_call_probability_allowed(self):
        assert MobilityParams(0.5, 0.0).c == 0.0

    def test_q_of_one_allowed_with_zero_c(self):
        assert MobilityParams(1.0, 0.0).q == 1.0

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.5, math.nan, math.inf])
    def test_invalid_move_probability(self, q):
        with pytest.raises(ParameterError):
            MobilityParams(q, 0.01)

    @pytest.mark.parametrize("c", [-0.01, 1.0, 1.5, math.nan])
    def test_invalid_call_probability(self, c):
        with pytest.raises(ParameterError):
            MobilityParams(0.05, c)

    def test_competing_events_constraint(self):
        # q + c must not exceed 1 (per-slot competing events).
        with pytest.raises(ParameterError):
            MobilityParams(0.7, 0.4)

    def test_frozen(self):
        p = MobilityParams(0.05, 0.01)
        with pytest.raises(AttributeError):
            p.move_probability = 0.1


class TestCostParams:
    def test_valid_construction(self):
        p = CostParams(update_cost=100.0, poll_cost=10.0)
        assert p.U == 100.0
        assert p.V == 10.0

    def test_ratio(self):
        assert CostParams(100.0, 10.0).ratio == 10.0

    def test_ratio_with_free_polling(self):
        assert CostParams(5.0, 0.0).ratio == math.inf

    def test_zero_costs_allowed(self):
        p = CostParams(0.0, 0.0)
        assert p.update_cost == 0.0

    @pytest.mark.parametrize("bad", [-1.0, math.nan])
    def test_invalid_update_cost(self, bad):
        with pytest.raises(ParameterError):
            CostParams(bad, 1.0)

    @pytest.mark.parametrize("bad", [-0.5, math.inf])
    def test_invalid_poll_cost(self, bad):
        with pytest.raises(ParameterError):
            CostParams(1.0, bad)


class TestValidateThreshold:
    def test_accepts_zero(self):
        assert validate_threshold(0) == 0

    def test_accepts_positive(self):
        assert validate_threshold(17) == 17

    @pytest.mark.parametrize("bad", [-1, 1.5, "3", True, None])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ParameterError):
            validate_threshold(bad)


class TestValidateDelay:
    def test_accepts_one(self):
        assert validate_delay(1) == 1

    def test_accepts_infinity(self):
        assert validate_delay(math.inf) == math.inf

    @pytest.mark.parametrize("bad", [0, -3, 1.5, "2", True])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ParameterError):
            validate_delay(bad)
