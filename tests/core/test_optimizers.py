"""Unit tests for threshold search algorithms."""

import pytest

from repro import ParameterError, exhaustive_search, hill_climb, simulated_annealing


def convex(d):
    """Smooth single-minimum curve with optimum at 7."""
    return (d - 7) ** 2 + 1.0


def double_dip(d):
    """Two local minima: shallow at 2, global at 11."""
    if d <= 5:
        return abs(d - 2) + 3.0
    return abs(d - 11) + 1.0


class TestExhaustive:
    def test_finds_global_minimum(self):
        result = exhaustive_search(convex, 20)
        assert result.optimal_threshold == 7
        assert result.optimal_cost == 1.0

    def test_evaluates_everything_once(self):
        calls = []

        def counting(d):
            calls.append(d)
            return convex(d)

        result = exhaustive_search(counting, 10)
        assert result.evaluations == 11
        assert sorted(calls) == list(range(11))

    def test_escapes_local_minimum(self):
        assert exhaustive_search(double_dip, 20).optimal_threshold == 11

    def test_tie_breaks_to_smaller_threshold(self):
        result = exhaustive_search(lambda d: 5.0, 10)
        assert result.optimal_threshold == 0

    def test_curve_recorded(self):
        result = exhaustive_search(convex, 5)
        assert result.cost_at(3) == convex(3)
        assert result.cost_at(99) is None

    def test_d_max_zero(self):
        result = exhaustive_search(convex, 0)
        assert result.optimal_threshold == 0

    @pytest.mark.parametrize("bad", [-1, 2.5, "3", True])
    def test_rejects_bad_bound(self, bad):
        with pytest.raises(ParameterError):
            exhaustive_search(convex, bad)


class TestSimulatedAnnealing:
    def test_finds_global_minimum_on_convex(self):
        result = simulated_annealing(convex, 20, seed=1)
        assert result.optimal_threshold == 7

    def test_deterministic_per_seed(self):
        a = simulated_annealing(double_dip, 20, seed=42)
        b = simulated_annealing(double_dip, 20, seed=42)
        assert a.optimal_threshold == b.optimal_threshold
        assert a.evaluations == b.evaluations

    def test_usually_escapes_local_minimum(self):
        # The paper chose annealing precisely because the cost curve can
        # have local minima; across seeds it should find the global one
        # most of the time.
        hits = sum(
            simulated_annealing(
                double_dip, 20, seed=s, y=40.0, exit_temperature=0.02
            ).optimal_threshold
            == 11
            for s in range(20)
        )
        assert hits >= 15

    def test_reports_best_seen_not_final_state(self):
        result = simulated_annealing(convex, 20, seed=3)
        assert result.optimal_cost <= min(result.curve.values()) + 1e-12

    def test_method_label(self):
        assert simulated_annealing(convex, 5, seed=0).method == "simulated-annealing"

    def test_d_max_zero(self):
        assert simulated_annealing(convex, 0, seed=0).optimal_threshold == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"y": 0.0},
            {"exit_temperature": 0.0},
            {"exit_temperature": 1.0},
            {"neighborhood": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ParameterError):
            simulated_annealing(convex, 10, seed=0, **kwargs)

    def test_more_cooling_means_more_evaluations(self):
        fast = simulated_annealing(convex, 30, seed=5, y=2.0, exit_temperature=0.2)
        slow = simulated_annealing(convex, 30, seed=5, y=50.0, exit_temperature=0.05)
        assert slow.evaluations >= fast.evaluations


class TestHillClimb:
    def test_descends_convex(self):
        assert hill_climb(convex, 20, start=0).optimal_threshold == 7

    def test_gets_stuck_in_local_minimum(self):
        # This failure is the documented reason the paper avoids pure
        # descent.
        result = hill_climb(double_dip, 20, start=0)
        assert result.optimal_threshold == 2

    def test_from_good_start_finds_global(self):
        assert hill_climb(double_dip, 20, start=15).optimal_threshold == 11

    def test_fewer_evaluations_than_exhaustive(self):
        greedy = hill_climb(convex, 50, start=5)
        full = exhaustive_search(convex, 50)
        assert greedy.evaluations < full.evaluations

    def test_rejects_bad_start(self):
        with pytest.raises(ParameterError):
            hill_climb(convex, 10, start=11)
