"""Tests of the paper's closed-form steady-state solutions.

Strategy: the closed forms must agree *exactly* (to float tolerance)
with the brute-force matrix solver on the same chain, across the
parameter space, including the paper's printed boundary cases.
"""

import numpy as np
import pytest

from repro import ParameterError
from repro.core import closed_form
from repro.core.chains import ResetChain, solve_steady_state_matrix


def matrix_solution_1d(q, c, d):
    a = np.full(d + 1, q / 2.0)
    a[0] = q
    b = np.full(d + 1, q / 2.0)
    b[0] = 0.0
    return solve_steady_state_matrix(ResetChain(outward=a, inward=b, reset=c))


def matrix_solution_2d_approx(q, c, d):
    a = np.full(d + 1, q / 3.0)
    a[0] = q
    b = np.full(d + 1, q / 3.0)
    b[0] = 0.0
    return solve_steady_state_matrix(ResetChain(outward=a, inward=b, reset=c))


class TestBeta:
    def test_beta_1d_equation_10(self):
        assert closed_form.beta_1d(0.05, 0.01) == pytest.approx(2.4)

    def test_beta_2d_equation_50(self):
        assert closed_form.beta_2d_approx(0.05, 0.01) == pytest.approx(2.6)

    def test_beta_requires_positive_q(self):
        with pytest.raises(ParameterError):
            closed_form.beta_1d(0.0, 0.01)

    def test_roots_product_is_one(self):
        e1, e2 = closed_form.characteristic_roots(2.4)
        assert e1 * e2 == pytest.approx(1.0)

    def test_roots_sum_is_beta(self):
        e1, e2 = closed_form.characteristic_roots(3.0)
        assert e1 + e2 == pytest.approx(3.0)

    def test_roots_reject_beta_below_two(self):
        with pytest.raises(ParameterError):
            closed_form.characteristic_roots(1.5)

    def test_repeated_root_at_two(self):
        e1, e2 = closed_form.characteristic_roots(2.0)
        assert e1 == e2 == pytest.approx(1.0)


class TestSolve1D:
    def test_d0_equation_33(self):
        assert closed_form.solve_1d(0.05, 0.01, 0).tolist() == [1.0]

    def test_d1_equations_34_35(self):
        p = closed_form.solve_1d(0.05, 0.01, 1)
        assert p[0] == pytest.approx(0.06 / 0.11)
        assert p[1] == pytest.approx(0.05 / 0.11)

    def test_d2_equations_36_38(self):
        q, c = 0.05, 0.01
        p = closed_form.solve_1d(q, c, 2)
        denom = 9 * q * q + 12 * q * c + 4 * c * c
        assert p[0] == pytest.approx((2 * c + q) / (2 * c + 3 * q))
        assert p[1] == pytest.approx(4 * q * (c + q) / denom)
        assert p[2] == pytest.approx(2 * q * q / denom)

    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4, 5, 8, 15, 30, 60])
    @pytest.mark.parametrize("q,c", [(0.05, 0.01), (0.3, 0.05), (0.9, 0.05), (0.01, 0.001)])
    def test_matches_matrix_solver(self, q, c, d):
        expected = matrix_solution_1d(q, c, d)
        got = closed_form.solve_1d(q, c, d)
        assert np.allclose(got, expected, atol=1e-11)

    @pytest.mark.parametrize("d", [3, 7, 20])
    def test_zero_call_probability_branch(self, d):
        expected = matrix_solution_1d(0.2, 0.0, d)
        got = closed_form.solve_1d(0.2, 0.0, d)
        assert np.allclose(got, expected, atol=1e-11)

    def test_large_threshold_is_finite(self):
        # The e2-power formulation must not overflow even at huge d.
        p = closed_form.solve_1d(0.05, 0.01, 500)
        assert np.all(np.isfinite(p))
        assert p.sum() == pytest.approx(1.0)

    def test_normalized(self):
        assert closed_form.solve_1d(0.1, 0.02, 12).sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("bad_d", [-1, 1.5, "2"])
    def test_rejects_bad_threshold(self, bad_d):
        with pytest.raises(ParameterError):
            closed_form.solve_1d(0.05, 0.01, bad_d)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ParameterError):
            closed_form.solve_1d(0.0, 0.01, 3)
        with pytest.raises(ParameterError):
            closed_form.solve_1d(0.05, 1.0, 3)


class TestSolve2DApprox:
    def test_d0_equation_55(self):
        assert closed_form.solve_2d_approx(0.05, 0.01, 0).tolist() == [1.0]

    def test_d1_equations_56_57(self):
        q, c = 0.05, 0.01
        p = closed_form.solve_2d_approx(q, c, 1)
        assert p[0] == pytest.approx((2 * q + 3 * c) / (5 * q + 3 * c))
        assert p[1] == pytest.approx(3 * q / (5 * q + 3 * c))

    def test_d2_equations_58_60(self):
        q, c = 0.05, 0.01
        p = closed_form.solve_2d_approx(q, c, 2)
        denom = 4 * q * q + 7 * q * c + 3 * c * c
        assert p[0] == pytest.approx((3 * c + q) / (3 * c + 4 * q))
        assert p[1] == pytest.approx(q * (3 * c + 2 * q) / denom)
        assert p[2] == pytest.approx(q * q / denom)

    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4, 6, 10, 25, 50])
    @pytest.mark.parametrize("q,c", [(0.05, 0.01), (0.3, 0.05), (0.8, 0.1)])
    def test_matches_matrix_solver(self, q, c, d):
        expected = matrix_solution_2d_approx(q, c, d)
        got = closed_form.solve_2d_approx(q, c, d)
        assert np.allclose(got, expected, atol=1e-11)

    @pytest.mark.parametrize("d", [3, 9])
    def test_zero_call_probability_branch(self, d):
        expected = matrix_solution_2d_approx(0.3, 0.0, d)
        got = closed_form.solve_2d_approx(0.3, 0.0, d)
        assert np.allclose(got, expected, atol=1e-11)

    def test_normalized(self):
        assert closed_form.solve_2d_approx(0.07, 0.01, 9).sum() == pytest.approx(1.0)
