"""Unit tests for cost-surface exploration and local-minima detection."""

import math

import pytest

from repro import (
    CostEvaluator,
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    ParameterError,
    compute_surface,
)
from repro.core.surface import CostCurve


class TestCostCurve:
    def test_global_minimum(self):
        curve = CostCurve(delay_bound=1, values=[5.0, 3.0, 4.0, 2.0, 6.0])
        assert curve.global_minimum == 3

    def test_global_minimum_tie_prefers_smaller(self):
        curve = CostCurve(delay_bound=1, values=[3.0, 2.0, 2.0, 4.0])
        assert curve.global_minimum == 1

    def test_local_minima_simple(self):
        curve = CostCurve(delay_bound=1, values=[5.0, 3.0, 4.0, 2.0, 6.0])
        assert curve.local_minima() == [1, 3]

    def test_plateau_counts_once(self):
        curve = CostCurve(delay_bound=1, values=[5.0, 2.0, 2.0, 2.0, 6.0])
        assert curve.local_minima() == [1]

    def test_endpoints_can_be_minima(self):
        curve = CostCurve(delay_bound=1, values=[1.0, 2.0, 3.0])
        assert curve.local_minima() == [0]
        curve = CostCurve(delay_bound=1, values=[3.0, 2.0, 1.0])
        assert curve.local_minima() == [2]

    def test_multimodality(self):
        unimodal = CostCurve(delay_bound=1, values=[3.0, 1.0, 2.0, 4.0])
        assert not unimodal.is_multimodal()
        multimodal = CostCurve(delay_bound=1, values=[3.0, 1.5, 4.0, 1.0, 5.0])
        assert multimodal.is_multimodal()

    def test_tied_basins_not_multimodal(self):
        curve = CostCurve(delay_bound=1, values=[3.0, 1.0, 4.0, 1.0, 5.0])
        assert not curve.is_multimodal()

    def test_d_max(self):
        assert CostCurve(delay_bound=1, values=[1.0] * 7).d_max == 6


class TestComputeSurface:
    @pytest.fixture
    def surface(self):
        model = OneDimensionalModel(MobilityParams(0.05, 0.01))
        evaluator = CostEvaluator(model, CostParams(100.0, 10.0))
        return compute_surface(evaluator, 20)

    def test_all_delays_present(self, surface):
        assert set(surface.curves) == {1, 2, 3, math.inf}

    def test_curve_values_match_evaluator(self, surface):
        model = OneDimensionalModel(MobilityParams(0.05, 0.01))
        evaluator = CostEvaluator(model, CostParams(100.0, 10.0))
        assert surface.curve(2).values[5] == pytest.approx(evaluator.total_cost(5, 2))

    def test_optimal_thresholds_match_table1(self, surface):
        # U=100 row of Table 1: d* = 3, 4, 5, 7 for delays 1, 2, 3, inf.
        optima = surface.optimal_thresholds()
        assert optima[1] == 3
        assert optima[2] == 4
        assert optima[3] == 5
        assert optima[math.inf] == 7

    def test_unknown_delay_rejected(self, surface):
        with pytest.raises(ParameterError):
            surface.curve(7)

    def test_paper_claim_local_minima_exist_somewhere(self):
        # Section 6: "the total cost curve may have local minimum".
        # The SDF partition changes discontinuously with d, creating
        # distinct basins at some operating points; sweep a parameter
        # region and require at least one multimodal curve.
        found = False
        for U in (50, 100, 200, 400, 800):
            for q in (0.05, 0.2, 0.4):
                model = OneDimensionalModel(MobilityParams(q, 0.01))
                evaluator = CostEvaluator(model, CostParams(float(U), 10.0))
                surface = compute_surface(evaluator, 30, delays=(2, 3, 4, 5))
                if surface.multimodal_delays():
                    found = True
                    break
            if found:
                break
        assert found, "no multimodal cost curve found; Section 6's premise untested"
