"""Unit tests for the Section 5 cost model."""

import math

import pytest

from repro import (
    CostEvaluator,
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    TwoDimensionalModel,
)
from repro.paging import blanket_partition, per_ring_partition


@pytest.fixture
def evaluator_1d(model_1d):
    return CostEvaluator(model_1d, CostParams(update_cost=20.0, poll_cost=10.0))


class TestUpdateCost:
    def test_equation_61(self, model_1d):
        # C_u(d) = p_{d,d} a_{d,d+1} U.
        ev = CostEvaluator(model_1d, CostParams(update_cost=20.0, poll_cost=10.0))
        p = model_1d.steady_state(1)
        assert ev.update_cost(1) == pytest.approx(p[1] * 0.025 * 20.0)

    def test_hand_value_table1_u20(self, evaluator_1d):
        # p_{1,1} = q/(2q + c) = 0.4545..., times q/2 U = 0.2273.
        assert evaluator_1d.update_cost(1) == pytest.approx(0.22727, abs=1e-4)

    def test_d_zero_uses_paper_convention(self, evaluator_1d):
        assert evaluator_1d.update_cost(0) == pytest.approx(0.025 * 20.0)

    def test_d_zero_physical_convention(self, model_1d):
        ev = CostEvaluator(
            model_1d, CostParams(20.0, 10.0), convention="physical"
        )
        assert ev.update_cost(0) == pytest.approx(0.05 * 20.0)

    def test_scales_linearly_with_U(self, model_1d):
        low = CostEvaluator(model_1d, CostParams(10.0, 10.0)).update_cost(3)
        high = CostEvaluator(model_1d, CostParams(30.0, 10.0)).update_cost(3)
        assert high == pytest.approx(3 * low)


class TestPagingCost:
    def test_equation_62_blanket(self, evaluator_1d):
        # m = 1: C_v = c g(d) V.
        assert evaluator_1d.paging_cost(3, 1) == pytest.approx(0.01 * 7 * 10.0)

    def test_paper_hand_value_d1_m2(self, evaluator_1d):
        # Verified by hand: alpha_1 w_1 + alpha_2 w_2 with p = (6/11, 5/11).
        expected = 0.01 * 10.0 * (6 / 11 * 1 + 5 / 11 * 3)
        assert evaluator_1d.paging_cost(1, 2) == pytest.approx(expected)

    def test_unbounded_equals_large_m(self, evaluator_1d):
        assert evaluator_1d.paging_cost(4, math.inf) == pytest.approx(
            evaluator_1d.paging_cost(4, 5)
        )

    def test_monotone_in_delay(self, evaluator_1d):
        # More cycles allowed -> never more expensive.
        costs = [evaluator_1d.paging_cost(5, m) for m in (1, 2, 3, 4, math.inf)]
        assert costs == sorted(costs, reverse=True)

    def test_zero_when_no_calls(self):
        model = OneDimensionalModel(MobilityParams(0.05, 0.0))
        ev = CostEvaluator(model, CostParams(20.0, 10.0))
        assert ev.paging_cost(3, 1) == 0.0

    def test_scales_with_poll_cost(self, model_1d):
        low = CostEvaluator(model_1d, CostParams(20.0, 1.0)).paging_cost(3, 2)
        high = CostEvaluator(model_1d, CostParams(20.0, 5.0)).paging_cost(3, 2)
        assert high == pytest.approx(5 * low)


class TestTotalCost:
    def test_equation_66(self, evaluator_1d):
        d, m = 2, 2
        assert evaluator_1d.total_cost(d, m) == pytest.approx(
            evaluator_1d.update_cost(d) + evaluator_1d.paging_cost(d, m)
        )

    def test_paper_table1_row(self, evaluator_1d):
        # U=20, delay=1 -> C_T(1) = 0.527.
        assert evaluator_1d.total_cost(1, 1) == pytest.approx(0.527, abs=5e-4)

    def test_paper_table2_row(self):
        model = TwoDimensionalModel(MobilityParams(0.05, 0.01))
        ev = CostEvaluator(model, CostParams(300.0, 10.0))
        assert ev.total_cost(2, 1) == pytest.approx(3.468, abs=5e-4)

    def test_cost_curve(self, evaluator_1d):
        curve = evaluator_1d.cost_curve(1, 5)
        assert len(curve) == 6
        assert curve[3] == pytest.approx(evaluator_1d.total_cost(3, 1))


class TestBreakdown:
    def test_components_sum(self, evaluator_1d):
        b = evaluator_1d.breakdown(3, 2)
        assert b.total_cost == pytest.approx(b.update_cost + b.paging_cost)

    def test_expected_delay_bounds(self, evaluator_1d):
        b = evaluator_1d.breakdown(5, 3)
        assert 1.0 <= b.expected_delay <= 3.0

    def test_blanket_delay_is_one(self, evaluator_1d):
        assert evaluator_1d.breakdown(5, 1).expected_delay == pytest.approx(1.0)

    def test_expected_polled_cells_at_m1_is_coverage(self, evaluator_1d):
        assert evaluator_1d.breakdown(4, 1).expected_polled_cells == pytest.approx(9)

    def test_threshold_and_delay_recorded(self, evaluator_1d):
        b = evaluator_1d.breakdown(2, 3)
        assert b.threshold == 2
        assert b.delay_bound == 3


class TestCustomPlanFactory:
    def test_per_ring_factory_matches_unbounded(self, model_1d):
        paper = CostEvaluator(model_1d, CostParams(20.0, 10.0))
        custom = CostEvaluator(
            model_1d,
            CostParams(20.0, 10.0),
            plan_factory=lambda model, d, m: per_ring_partition(d),
        )
        assert custom.total_cost(4, 1) == pytest.approx(paper.total_cost(4, math.inf))

    def test_blanket_factory_matches_m1(self, model_1d):
        paper = CostEvaluator(model_1d, CostParams(20.0, 10.0))
        custom = CostEvaluator(
            model_1d,
            CostParams(20.0, 10.0),
            plan_factory=lambda model, d, m: blanket_partition(d),
        )
        assert custom.total_cost(4, math.inf) == pytest.approx(paper.total_cost(4, 1))
