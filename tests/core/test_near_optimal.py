"""Unit tests for the near-optimal 2-D threshold scheme (Section 7)."""

import math

import pytest

from repro import (
    CostParams,
    MobilityParams,
    TwoDimensionalModel,
    find_optimal_threshold,
    near_optimal_threshold,
)

MOBILITY = MobilityParams(0.05, 0.01)


class TestTable2Reproduction:
    @pytest.mark.parametrize(
        "U,m,expected_d,expected_cost",
        [
            (20, 1, 0, 1.100),
            (70, 1, 0, 3.600),
            (80, 1, 1, 1.771),  # the d' flip the q/3 convention creates
            (200, 1, 1, 3.379),
            (300, 1, 2, 3.468),
            (300, 3, 2, 2.381),
            (600, 3, 3, 3.079),
            (700, 3, 5, 3.011),
            (1000, math.inf, 6, 2.374),
        ],
    )
    def test_published_d_prime_and_cost(self, U, m, expected_d, expected_cost):
        result = near_optimal_threshold(MOBILITY, CostParams(U, 10), m)
        assert result.threshold == expected_d
        assert result.exact_cost == pytest.approx(expected_cost, abs=5e-4)

    def test_exact_cost_uses_exact_model(self):
        # C'_T is the exact cost at d', not the approximate estimate.
        result = near_optimal_threshold(MOBILITY, CostParams(300, 1), 1)
        model = TwoDimensionalModel(MOBILITY)
        from repro import CostEvaluator

        exact = CostEvaluator(model, CostParams(300, 1)).total_cost(result.threshold, 1)
        assert result.exact_cost == pytest.approx(exact)


class TestCorrectionRule:
    def test_correction_moves_zero_to_one(self):
        # U=20, m=1: d'=0 but exact cost of d=1 (0.968) beats d=0 (1.1).
        plain = near_optimal_threshold(MOBILITY, CostParams(20, 10), 1)
        corrected = near_optimal_threshold(
            MOBILITY, CostParams(20, 10), 1, apply_correction=True
        )
        assert plain.threshold == 0
        assert corrected.threshold == 1
        assert corrected.corrected
        assert corrected.uncorrected_threshold == 0
        assert corrected.exact_cost == pytest.approx(0.968, abs=5e-4)

    def test_correction_keeps_zero_when_zero_is_best(self):
        # Small U: d* = 0 genuinely; correction must not fire.
        result = near_optimal_threshold(
            MOBILITY, CostParams(2, 10), 1, apply_correction=True
        )
        assert result.threshold == 0
        assert not result.corrected

    def test_correction_noop_when_d_prime_positive(self):
        result = near_optimal_threshold(
            MOBILITY, CostParams(300, 10), 1, apply_correction=True
        )
        assert result.threshold == 2
        assert not result.corrected

    def test_corrected_cost_never_worse(self):
        for U in (9, 10, 20, 30, 40, 50):
            plain = near_optimal_threshold(MOBILITY, CostParams(U, 10), 3)
            fixed = near_optimal_threshold(
                MOBILITY, CostParams(U, 10), 3, apply_correction=True
            )
            assert fixed.exact_cost <= plain.exact_cost + 1e-12


class TestQuality:
    @pytest.mark.parametrize("U", [1, 10, 50, 100, 400, 1000])
    @pytest.mark.parametrize("m", [1, 3, math.inf])
    def test_d_prime_within_one_of_optimum_after_correction(self, U, m):
        # Section 7: "the differences between d* and d' are within 1
        # from each other almost all the time"; with the correction rule
        # this holds on the whole published grid.
        costs = CostParams(U, 10)
        exact = find_optimal_threshold(TwoDimensionalModel(MOBILITY), costs, m)
        near = near_optimal_threshold(MOBILITY, costs, m, apply_correction=True)
        assert abs(near.threshold - exact.threshold) <= 1

    def test_approximate_cost_underestimates_but_same_scale(self):
        # The approximate model's own cost estimate is biased low (its
        # update rate q/3 is below the exact q(1/3 + 1/(6d))), but it
        # must stay on the same scale -- it is only used to *rank*
        # thresholds, and Table 2 shows the ranking survives.
        result = near_optimal_threshold(MOBILITY, CostParams(500, 10), 3)
        assert result.threshold > 0
        assert result.approximate_cost <= result.exact_cost + 1e-12
        assert result.approximate_cost > 0.5 * result.exact_cost
