"""Unit tests for the analytical baseline cost models.

The strongest check -- exact agreement with the independently
implemented simulation strategies -- lives in the integration suite;
these tests cover the formulas, edge cases, and qualitative orderings.
"""

import pytest

from repro import (
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    ParameterError,
    find_optimal_threshold,
    location_area_costs,
    movement_based_costs,
    optimal_la_radius,
    optimal_movement_threshold,
    optimal_timer_period,
    time_based_costs,
)
from repro.geometry import HexTopology, LineTopology, SquareTopology

MOBILITY = MobilityParams(0.2, 0.02)
COSTS = CostParams(30.0, 2.0)
LINE = LineTopology()
HEX = HexTopology()


class TestMovementBased:
    def test_m1_updates_every_move(self):
        result = movement_based_costs(LINE, MOBILITY, COSTS, 1)
        # Single state k=0: update rate q, paging always radius 0.
        assert result.update_cost == pytest.approx(COSTS.U * MOBILITY.q)
        assert result.paging_cost == pytest.approx(MOBILITY.c * COSTS.V * 1)

    def test_distribution_is_truncated_geometric(self):
        q, c = MOBILITY.q, MOBILITY.c
        r = q / (q + c)
        result = movement_based_costs(LINE, MOBILITY, COSTS, 3)
        weights = [1, r, r**2]
        p2 = weights[2] / sum(weights)
        assert result.update_cost == pytest.approx(COSTS.U * q * p2)

    def test_larger_m_fewer_updates_more_paging(self):
        small = movement_based_costs(HEX, MOBILITY, COSTS, 2)
        large = movement_based_costs(HEX, MOBILITY, COSTS, 8)
        assert large.update_cost < small.update_cost
        assert large.paging_cost > small.paging_cost

    @pytest.mark.parametrize("bad", [0, -1, 2.5, True])
    def test_invalid_threshold(self, bad):
        with pytest.raises(ParameterError):
            movement_based_costs(LINE, MOBILITY, COSTS, bad)


class TestTimeBased:
    def test_t1_updates_every_slot(self):
        result = time_based_costs(LINE, MOBILITY, COSTS, 1)
        assert result.update_cost == pytest.approx(COSTS.U)
        # Radius after the forced update is 0: one cell paged per call.
        assert result.paging_cost == pytest.approx(MOBILITY.c * COSTS.V)

    def test_zero_call_probability(self):
        mobility = MobilityParams(0.2, 0.0)
        result = time_based_costs(LINE, mobility, COSTS, 5)
        assert result.update_cost == pytest.approx(COSTS.U / 5)
        assert result.paging_cost == 0.0

    def test_longer_period_fewer_updates(self):
        short = time_based_costs(HEX, MOBILITY, COSTS, 3)
        long = time_based_costs(HEX, MOBILITY, COSTS, 12)
        assert long.update_cost < short.update_cost
        assert long.paging_cost > short.paging_cost

    def test_timer_pages_more_than_movement_at_same_budget(self):
        # With the same paging radius cap k, the timer scheme reaches
        # the cap even when stationary; it can never page less.
        timer = time_based_costs(HEX, MOBILITY, COSTS, 5)
        movement = movement_based_costs(HEX, MOBILITY, COSTS, 5)
        assert timer.paging_cost > movement.paging_cost


class TestLocationArea:
    def test_1d_closed_form(self):
        result = location_area_costs(LINE, MOBILITY, COSTS, 2)
        width = 5
        assert result.update_cost == pytest.approx(COSTS.U * MOBILITY.q / width)
        assert result.paging_cost == pytest.approx(MOBILITY.c * COSTS.V * width)

    def test_hex_closed_form(self):
        result = location_area_costs(HEX, MOBILITY, COSTS, 2)
        cells = 19
        assert result.update_cost == pytest.approx(
            COSTS.U * MOBILITY.q * 5 / cells
        )
        assert result.paging_cost == pytest.approx(MOBILITY.c * COSTS.V * cells)

    def test_radius_zero(self):
        result = location_area_costs(LINE, MOBILITY, COSTS, 0)
        assert result.update_cost == pytest.approx(COSTS.U * MOBILITY.q)

    def test_square_closed_form(self):
        result = location_area_costs(SquareTopology(), MOBILITY, COSTS, 2)
        cells = 13  # 2*2*3 + 1
        assert result.update_cost == pytest.approx(COSTS.U * MOBILITY.q * 5 / cells)
        assert result.paging_cost == pytest.approx(MOBILITY.c * COSTS.V * cells)

    def test_la_never_beats_distance_based(self):
        # At every radius, the optimal distance-based scheme (delay 1)
        # is at least as good: same paging area, but centered updates
        # avoid boundary ping-pong.
        model = OneDimensionalModel(MOBILITY)
        best_distance = find_optimal_threshold(
            model, COSTS, 1, convention="physical"
        ).total_cost
        best_la = optimal_la_radius(LINE, MOBILITY, COSTS).total_cost
        assert best_distance <= best_la + 1e-9


class TestOptimalParameters:
    def test_optimal_movement_is_global(self):
        best = optimal_movement_threshold(HEX, MOBILITY, COSTS, max_threshold=30)
        for M in range(1, 31):
            assert best.total_cost <= movement_based_costs(
                HEX, MOBILITY, COSTS, M
            ).total_cost + 1e-12

    def test_optimal_timer_is_global(self):
        best = optimal_timer_period(LINE, MOBILITY, COSTS, max_period=50)
        for T in range(1, 51):
            assert best.total_cost <= time_based_costs(
                LINE, MOBILITY, COSTS, T
            ).total_cost + 1e-12

    def test_optimal_la_is_global(self):
        best = optimal_la_radius(HEX, MOBILITY, COSTS, max_radius=20)
        for n in range(21):
            assert best.total_cost <= location_area_costs(
                HEX, MOBILITY, COSTS, n
            ).total_cost + 1e-12

    def test_scheme_labels(self):
        assert optimal_movement_threshold(LINE, MOBILITY, COSTS).scheme == "movement"
        assert optimal_timer_period(LINE, MOBILITY, COSTS).scheme == "timer"
        assert optimal_la_radius(LINE, MOBILITY, COSTS).scheme == "location-area"

    def test_total_is_sum(self):
        result = movement_based_costs(HEX, MOBILITY, COSTS, 4)
        assert result.total_cost == result.update_cost + result.paging_cost
