"""Unit tests for the high-level optimal-threshold API."""

import math

import pytest

from repro import (
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    ParameterError,
    TwoDimensionalModel,
    find_optimal_threshold,
)


class TestFindOptimalThreshold:
    def test_matches_paper_table1(self, model_1d):
        solution = find_optimal_threshold(model_1d, CostParams(20, 10), 1)
        assert solution.threshold == 1
        assert solution.total_cost == pytest.approx(0.527, abs=5e-4)

    def test_matches_paper_table2(self, model_2d):
        solution = find_optimal_threshold(model_2d, CostParams(1000, 10), 3)
        assert solution.threshold == 5
        assert solution.total_cost == pytest.approx(3.177, abs=5e-4)

    def test_components_exposed(self, model_1d):
        solution = find_optimal_threshold(model_1d, CostParams(50, 10), 2)
        assert solution.total_cost == pytest.approx(
            solution.update_cost + solution.paging_cost
        )

    def test_unbounded_delay(self, model_1d):
        solution = find_optimal_threshold(model_1d, CostParams(100, 10), math.inf)
        assert solution.delay_bound == math.inf
        assert solution.threshold == 7

    def test_annealing_agrees_with_exhaustive(self, model_1d):
        costs = CostParams(60, 10)
        exact = find_optimal_threshold(model_1d, costs, 2, d_max=30)
        annealed = find_optimal_threshold(
            model_1d, costs, 2, d_max=30, method="annealing", seed=11
        )
        assert annealed.total_cost == pytest.approx(exact.total_cost, rel=0.02)

    def test_hill_method_runs(self, model_1d):
        solution = find_optimal_threshold(model_1d, CostParams(5, 10), 1, method="hill")
        assert solution.threshold == 0

    def test_unknown_method_rejected(self, model_1d):
        with pytest.raises(ParameterError):
            find_optimal_threshold(model_1d, CostParams(5, 10), 1, method="nope")

    def test_higher_update_cost_never_lowers_threshold(self, model_1d):
        thresholds = [
            find_optimal_threshold(model_1d, CostParams(U, 10), 1).threshold
            for U in (1, 10, 50, 200, 1000)
        ]
        assert thresholds == sorted(thresholds)

    def test_longer_delay_never_costs_more(self, model_2d):
        costs = CostParams(200, 10)
        values = [
            find_optimal_threshold(model_2d, costs, m).total_cost
            for m in (1, 2, 3, math.inf)
        ]
        assert values == sorted(values, reverse=True)

    def test_d_max_limits_search(self, model_1d):
        solution = find_optimal_threshold(
            model_1d, CostParams(1000, 10), math.inf, d_max=5
        )
        assert solution.threshold <= 5

    def test_search_metadata(self, model_1d):
        solution = find_optimal_threshold(model_1d, CostParams(20, 10), 1, d_max=12)
        assert solution.search.evaluations == 13
        assert solution.search.method == "exhaustive"


class TestAcrossParameterSpace:
    @pytest.mark.parametrize("q", [0.01, 0.1, 0.4])
    @pytest.mark.parametrize("c", [0.005, 0.05])
    def test_solution_is_valid_everywhere(self, q, c):
        model = TwoDimensionalModel(MobilityParams(q, c))
        solution = find_optimal_threshold(model, CostParams(50, 5), 2, d_max=60)
        assert 0 <= solution.threshold <= 60
        assert solution.total_cost > 0
        assert math.isfinite(solution.total_cost)

    def test_mostly_stationary_user_updates_rarely(self):
        # Tiny q with costly updates: big threshold, cost dominated by
        # paging.
        model = OneDimensionalModel(MobilityParams(0.001, 0.05))
        solution = find_optimal_threshold(model, CostParams(500, 1), 1)
        assert solution.paging_cost > solution.update_cost
