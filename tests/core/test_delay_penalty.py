"""Unit tests for the soft-delay joint optimization extension."""

import math

import pytest

from repro import (
    CostEvaluator,
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    ParameterError,
    TwoDimensionalModel,
    find_optimal_threshold,
    optimal_soft_delay_partition,
    optimize_soft_delay,
)
from repro.paging import blanket_partition, per_ring_partition

MOBILITY = MobilityParams(0.1, 0.02)
COSTS = CostParams(50.0, 5.0)


class TestSoftDelayPartition:
    def test_zero_penalty_gives_finest_useful_partition(self):
        # With no delay cost, splitting can only help: per-ring.
        model = OneDimensionalModel(MOBILITY)
        p = model.steady_state(4)
        sizes = [model.ring_size(i) for i in range(5)]
        plan, cells, cycles = optimal_soft_delay_partition(p, sizes, 5.0, 0.0)
        assert plan.subareas == per_ring_partition(4).subareas
        assert cycles > 1.0

    def test_huge_penalty_gives_blanket(self):
        model = OneDimensionalModel(MOBILITY)
        p = model.steady_state(4)
        sizes = [model.ring_size(i) for i in range(5)]
        plan, cells, cycles = optimal_soft_delay_partition(p, sizes, 5.0, 1e12)
        assert plan.subareas == blanket_partition(4).subareas
        assert cycles == pytest.approx(1.0)

    def test_objective_matches_reported_expectations(self):
        model = TwoDimensionalModel(MOBILITY)
        d = 5
        p = model.steady_state(d)
        sizes = [model.ring_size(i) for i in range(d + 1)]
        plan, cells, cycles = optimal_soft_delay_partition(p, sizes, 5.0, 7.0)
        topo = model.topology
        assert cells == pytest.approx(plan.expected_polled_cells(topo, p))
        assert cycles == pytest.approx(plan.expected_delay(p))

    def test_optimal_over_enumeration_small_case(self):
        # Exhaustively check optimality over all contiguous partitions
        # of 5 rings.
        import itertools

        model = OneDimensionalModel(MOBILITY)
        d = 4
        p = model.steady_state(d)
        sizes = [model.ring_size(i) for i in range(d + 1)]
        V, w = 5.0, 3.0
        _, cells, cycles = optimal_soft_delay_partition(p, sizes, V, w)
        best_dp = V * cells + w * cycles
        topo = model.topology
        best_brute = math.inf
        for cuts in range(d + 1):
            for positions in itertools.combinations(range(1, d + 1), cuts):
                bounds = (0,) + positions + (d + 1,)
                group_sizes = [bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1)]
                from repro.paging import partition_from_sizes

                plan = partition_from_sizes(d, group_sizes)
                value = V * plan.expected_polled_cells(topo, p) + w * plan.expected_delay(p)
                best_brute = min(best_brute, value)
        assert best_dp == pytest.approx(best_brute)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            optimal_soft_delay_partition([0.5, 0.5], [1, 2], -1.0, 0.0)
        with pytest.raises(ParameterError):
            optimal_soft_delay_partition([0.5], [1, 2], 1.0, 1.0)


class TestOptimizeSoftDelay:
    def test_penalty_zero_matches_unbounded_hard_delay(self):
        model = TwoDimensionalModel(MOBILITY)
        soft = optimize_soft_delay(model, COSTS, delay_penalty=0.0, d_max=30)
        hard = find_optimal_threshold(model, COSTS, math.inf, d_max=30)
        assert soft.threshold == hard.threshold
        assert soft.update_cost + soft.paging_cell_cost == pytest.approx(
            hard.total_cost
        )

    def test_huge_penalty_matches_delay_one(self):
        model = TwoDimensionalModel(MOBILITY)
        soft = optimize_soft_delay(model, COSTS, delay_penalty=1e12, d_max=30)
        hard = find_optimal_threshold(model, COSTS, 1, d_max=30)
        assert soft.threshold == hard.threshold
        assert soft.update_cost + soft.paging_cell_cost == pytest.approx(
            hard.total_cost
        )
        assert soft.expected_delay == pytest.approx(1.0)

    def test_delay_decreases_with_penalty(self):
        model = TwoDimensionalModel(MOBILITY)
        delays = [
            optimize_soft_delay(model, COSTS, delay_penalty=w, d_max=25).expected_delay
            for w in (0.0, 5.0, 50.0, 500.0)
        ]
        assert delays == sorted(delays, reverse=True)

    def test_total_cost_increases_with_penalty(self):
        model = OneDimensionalModel(MOBILITY)
        totals = [
            optimize_soft_delay(model, COSTS, delay_penalty=w, d_max=25).total_cost
            for w in (0.0, 1.0, 10.0)
        ]
        assert totals == sorted(totals)

    def test_components_sum(self):
        model = OneDimensionalModel(MOBILITY)
        policy = optimize_soft_delay(model, COSTS, delay_penalty=3.0, d_max=20)
        assert policy.total_cost == pytest.approx(
            policy.update_cost + policy.paging_cell_cost + policy.delay_cost
        )

    def test_negative_penalty_rejected(self):
        with pytest.raises(ParameterError):
            optimize_soft_delay(OneDimensionalModel(MOBILITY), COSTS, -0.1)
