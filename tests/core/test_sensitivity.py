"""Unit tests for misestimation sensitivity analysis."""

import pytest

from repro import (
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    ParameterError,
    TwoDimensionalModel,
    misestimation_regret,
    regret_surface,
)

TRUTH = MobilityParams(0.1, 0.01)
COSTS = CostParams(100.0, 5.0)


class TestMisestimationRegret:
    def test_perfect_estimate_zero_regret(self):
        point = misestimation_regret(
            OneDimensionalModel, TRUTH, COSTS, 1, q_factor=1.0, c_factor=1.0
        )
        assert point.regret == pytest.approx(0.0, abs=1e-12)
        assert point.assumed_threshold == point.true_threshold

    def test_regret_is_nonnegative(self):
        for qf, cf in ((0.25, 1.0), (4.0, 1.0), (1.0, 0.25), (1.0, 4.0), (0.5, 3.0)):
            point = misestimation_regret(
                TwoDimensionalModel, TRUTH, COSTS, 2, q_factor=qf, c_factor=cf
            )
            assert point.regret >= -1e-12

    def test_overestimating_mobility_raises_threshold(self):
        point = misestimation_regret(
            OneDimensionalModel, TRUTH, COSTS, 1, q_factor=8.0, c_factor=1.0
        )
        assert point.assumed_threshold >= point.true_threshold

    def test_overestimating_traffic_lowers_threshold(self):
        point = misestimation_regret(
            OneDimensionalModel, TRUTH, COSTS, 1, q_factor=1.0, c_factor=8.0
        )
        assert point.assumed_threshold <= point.true_threshold

    def test_proportional_error_is_cheap(self):
        # d* depends on the parameters mostly through the q/c ratio.
        proportional = misestimation_regret(
            TwoDimensionalModel, TRUTH, COSTS, 2, q_factor=2.0, c_factor=2.0
        )
        lopsided = misestimation_regret(
            TwoDimensionalModel, TRUTH, COSTS, 2, q_factor=2.0, c_factor=0.5
        )
        assert proportional.regret <= lopsided.regret + 1e-12

    def test_achieved_cost_evaluated_at_truth(self):
        point = misestimation_regret(
            OneDimensionalModel, TRUTH, COSTS, 1, q_factor=4.0, c_factor=1.0
        )
        from repro import CostEvaluator

        evaluator = CostEvaluator(
            OneDimensionalModel(TRUTH), COSTS, convention="physical"
        )
        assert point.achieved_cost == pytest.approx(
            evaluator.total_cost(point.assumed_threshold, 1)
        )

    @pytest.mark.parametrize("qf,cf", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0)])
    def test_invalid_factors(self, qf, cf):
        with pytest.raises(ParameterError):
            misestimation_regret(
                OneDimensionalModel, TRUTH, COSTS, 1, q_factor=qf, c_factor=cf
            )


class TestRegretSurface:
    @pytest.fixture(scope="class")
    def surface(self):
        return regret_surface(
            OneDimensionalModel,
            TRUTH,
            COSTS,
            1,
            factors=(0.25, 1.0, 4.0),
            d_max=40,
        )

    def test_grid_shape(self, surface):
        assert set(surface) == {0.25, 1.0, 4.0}
        for row in surface.values():
            assert set(row) == {0.25, 1.0, 4.0}

    def test_center_is_zero(self, surface):
        assert surface[1.0][1.0].regret == pytest.approx(0.0, abs=1e-12)

    def test_regret_grows_away_from_center(self, surface):
        # Extreme lopsided corners must cost at least as much as the
        # perfect estimate.
        assert surface[4.0][0.25].regret >= surface[1.0][1.0].regret
        assert surface[0.25][4.0].regret >= surface[1.0][1.0].regret

    def test_flat_basin_supports_dynamic_scheme(self, surface):
        # 4x misestimation of q alone costs well under 100%: crude
        # online estimators are good enough -- the paper's dynamic-
        # scheme premise.
        assert surface[4.0][1.0].regret < 1.0
