"""Unit tests for the three mobility model classes."""

import numpy as np
import pytest

from repro import (
    MobilityParams,
    OneDimensionalModel,
    ParameterError,
    TwoDimensionalApproximateModel,
    TwoDimensionalModel,
)


class TestConstruction:
    def test_from_probabilities(self):
        model = OneDimensionalModel.from_probabilities(0.1, 0.02)
        assert model.q == 0.1
        assert model.c == 0.02

    def test_repr_mentions_parameters(self, model_2d):
        assert "0.05" in repr(model_2d)
        assert "0.01" in repr(model_2d)

    def test_names(self, model_1d, model_2d, model_2d_approx):
        assert model_1d.name == "1d"
        assert model_2d.name == "2d-exact"
        assert model_2d_approx.name == "2d-approx"


class TestGeometry:
    def test_1d_coverage(self, model_1d):
        assert [model_1d.coverage(d) for d in range(4)] == [1, 3, 5, 7]

    def test_2d_coverage(self, model_2d):
        assert [model_2d.coverage(d) for d in range(4)] == [1, 7, 19, 37]

    def test_ring_sizes(self, model_1d, model_2d):
        assert model_1d.ring_size(3) == 2
        assert model_2d.ring_size(3) == 18

    def test_approx_model_shares_hex_geometry(self, model_2d, model_2d_approx):
        assert model_2d_approx.topology == model_2d.topology


class TestTransitionRates:
    def test_1d_rates(self, model_1d):
        a, b = model_1d.transition_rates(3)
        assert a[0] == pytest.approx(0.05)
        assert np.allclose(a[1:], 0.025)
        assert b[0] == 0.0
        assert np.allclose(b[1:], 0.025)

    def test_2d_exact_rates_equations_41_42(self, model_2d):
        a, b = model_2d.transition_rates(3)
        q = 0.05
        assert a[0] == pytest.approx(q)
        assert a[1] == pytest.approx(q * (1 / 3 + 1 / 6))
        assert a[2] == pytest.approx(q * (1 / 3 + 1 / 12))
        assert b[1] == pytest.approx(q * (1 / 3 - 1 / 6))
        assert b[3] == pytest.approx(q * (1 / 3 - 1 / 18))

    def test_2d_approx_rates_equations_43_44(self, model_2d_approx):
        a, b = model_2d_approx.transition_rates(4)
        assert a[0] == pytest.approx(0.05)
        assert np.allclose(a[1:], 0.05 / 3)
        assert np.allclose(b[1:], 0.05 / 3)

    def test_rates_d_zero(self, model_2d):
        a, b = model_2d.transition_rates(0)
        assert a.tolist() == [0.05]
        assert b.tolist() == [0.0]


class TestSteadyState:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 7, 20])
    def test_1d_solvers_agree(self, model_1d, d):
        auto = model_1d.steady_state(d)
        for method in ("closed_form", "recursive", "matrix"):
            assert np.allclose(model_1d.steady_state(d, method=method), auto, atol=1e-10)

    @pytest.mark.parametrize("d", [0, 1, 2, 5, 12])
    def test_2d_exact_solvers_agree(self, model_2d, d):
        recursive = model_2d.steady_state(d, method="recursive")
        matrix = model_2d.steady_state(d, method="matrix")
        assert np.allclose(recursive, matrix, atol=1e-10)

    @pytest.mark.parametrize("d", [0, 1, 2, 4, 9])
    def test_2d_approx_solvers_agree(self, model_2d_approx, d):
        closed = model_2d_approx.steady_state(d, method="closed_form")
        matrix = model_2d_approx.steady_state(d, method="matrix")
        assert np.allclose(closed, matrix, atol=1e-10)

    def test_2d_exact_has_no_closed_form(self, model_2d):
        with pytest.raises(ParameterError):
            model_2d.steady_state(3, method="closed_form")

    def test_unknown_method_rejected(self, model_1d):
        with pytest.raises(ParameterError):
            model_1d.steady_state(3, method="magic")

    def test_auto_result_is_cached_and_readonly(self, model_1d):
        first = model_1d.steady_state(5)
        second = model_1d.steady_state(5)
        assert first is second
        with pytest.raises(ValueError):
            first[0] = 0.5

    def test_exact_vs_approx_2d_close_for_moderate_d(self):
        # Section 7 claims the q/(6i) terms matter little for the
        # *decision*; the distributions themselves drift modestly.  The
        # boundary probability p_d, which drives the update cost, must
        # stay close in relative terms.
        mobility = MobilityParams(0.1, 0.01)
        exact = TwoDimensionalModel(mobility).steady_state(8)
        approx = TwoDimensionalApproximateModel(mobility).steady_state(8)
        assert np.max(np.abs(exact - approx)) < 0.15
        assert approx[8] == pytest.approx(exact[8], rel=0.6)

    def test_2d_exact_d1_hand_computed(self):
        # Verified by hand in DESIGN.md: q=0.05, c=0.01 gives
        # p1 (2q/3 + c) = p0 q.
        model = TwoDimensionalModel(MobilityParams(0.05, 0.01))
        p = model.steady_state(1)
        ratio = 0.05 / (2 * 0.05 / 3 + 0.01)
        assert p[1] / p[0] == pytest.approx(ratio)


class TestUpdateRate:
    def test_1d_interior(self, model_1d):
        assert model_1d.update_rate(5) == pytest.approx(0.025)

    def test_1d_paper_boundary_quirk(self, model_1d):
        # Table 1: C_u(0) = U q/2, i.e. the interior rate at d = 0.
        assert model_1d.update_rate(0) == pytest.approx(0.025)
        assert model_1d.update_rate(0, convention="physical") == pytest.approx(0.05)

    def test_2d_exact_boundary(self, model_2d):
        # Table 2: C_u(0) = U q.
        assert model_2d.update_rate(0) == pytest.approx(0.05)
        assert model_2d.update_rate(1) == pytest.approx(0.05 * 0.5)
        assert model_2d.update_rate(2) == pytest.approx(0.05 * (1 / 3 + 1 / 12))

    def test_2d_approx_boundary(self, model_2d_approx):
        # The d' column of Table 2 requires q/3 at d = 0.
        assert model_2d_approx.update_rate(0) == pytest.approx(0.05 / 3)
        assert model_2d_approx.update_rate(0, convention="physical") == pytest.approx(0.05)
        assert model_2d_approx.update_rate(7) == pytest.approx(0.05 / 3)

    def test_unknown_convention_rejected(self, model_1d):
        with pytest.raises(ParameterError):
            model_1d.update_rate(1, convention="wrong")
