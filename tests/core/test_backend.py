"""Backend capability detection, resolution, and fallback semantics.

Numba presence is simulated by monkeypatching the import hook, so both
branches run on every host regardless of whether numba is installed.
"""

import types
import warnings

import pytest

from repro.core import backend as backend_mod
from repro.core.backend import (
    BACKENDS,
    backend_info,
    numba_available,
    reset_backend_state,
    resolve_backend,
    use_numpy_fallback,
    validate_backend,
)
from repro.exceptions import ParameterError

FAKE_NUMBA = types.SimpleNamespace(__version__="0.0-fake")


@pytest.fixture(autouse=True)
def _isolated_backend_state():
    reset_backend_state()
    yield
    reset_backend_state()


def _with_numba(monkeypatch):
    monkeypatch.setattr(backend_mod, "_import_numba", lambda: FAKE_NUMBA)


def _without_numba(monkeypatch):
    def _fail():
        raise ImportError("no module named numba")

    monkeypatch.setattr(backend_mod, "_import_numba", _fail)


def test_validate_accepts_every_backend_name():
    for name in BACKENDS:
        assert validate_backend(name) == name


def test_validate_rejects_unknown_backend():
    with pytest.raises(ParameterError, match="backend must be one of"):
        validate_backend("cuda")


def test_resolve_with_numba_present(monkeypatch):
    _with_numba(monkeypatch)
    assert resolve_backend("auto") == "numba"
    assert resolve_backend("numba") == "numba"
    assert resolve_backend("numpy") == "numpy"


def test_auto_falls_back_silently_without_numba(monkeypatch):
    _without_numba(monkeypatch)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend("auto") == "numpy"


def test_explicit_numba_warns_exactly_once(monkeypatch):
    _without_numba(monkeypatch)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert resolve_backend("numba") == "numpy"
        assert resolve_backend("numba") == "numpy"
        assert resolve_backend("auto") == "numpy"
    runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(runtime) == 1
    assert "pip install 'repro[numba]'" in str(runtime[0].message)


def test_warn_latch_clears_with_reset(monkeypatch):
    _without_numba(monkeypatch)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        resolve_backend("numba")
        reset_backend_state()
        resolve_backend("numba")
    runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(runtime) == 2


def test_probe_is_memoized(monkeypatch):
    calls = []

    def _probe():
        calls.append(1)
        return FAKE_NUMBA

    monkeypatch.setattr(backend_mod, "_import_numba", _probe)
    assert numba_available()
    assert numba_available()
    resolve_backend("auto")
    assert len(calls) == 1


def test_use_numpy_fallback_forces_interpreted_kernel(monkeypatch):
    _with_numba(monkeypatch)
    assert resolve_backend("auto") == "numba"
    with use_numpy_fallback():
        assert resolve_backend("auto") == "numpy"
        # Forcing the fallback must not trip the explicit-request warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numba") == "numpy"
    assert resolve_backend("auto") == "numba"


def test_backend_info_with_numba(monkeypatch):
    _with_numba(monkeypatch)
    info = backend_info("auto")
    assert info == {
        "requested": "auto",
        "resolved": "numba",
        "numba_available": True,
        "numba_version": "0.0-fake",
    }


def test_backend_info_without_numba(monkeypatch):
    _without_numba(monkeypatch)
    info = backend_info("numpy")
    assert info["resolved"] == "numpy"
    assert info["numba_available"] is False
    assert info["numba_version"] is None
