"""Tests for the batched cost-surface solver (repro.core.batch).

The batched path must be a drop-in replacement for the scalar pipeline:
same steady states, same cost components, same optima, same
tie-breaking -- just all thresholds at once.
"""

import math

import numpy as np
import pytest

from repro.core.batch import (
    CostSurfaceGrid,
    batched_steady_states,
    batched_update_costs,
    batched_update_rates,
    compute_cost_surface,
)
from repro.core.costs import CostEvaluator
from repro.core.models import TwoDimensionalModel
from repro.core.optimizers import exhaustive_search
from repro.core.parameters import CostParams, MobilityParams
from repro.core.threshold import find_optimal_threshold
from repro.exceptions import ParameterError
from repro.analysis.sweep import MODEL_CLASSES

MOBILITY = MobilityParams(move_probability=0.05, call_probability=0.01)
COSTS = CostParams(update_cost=100.0, poll_cost=10.0)


def model_of(name, q=0.05, c=0.01):
    return MODEL_CLASSES[name](
        MobilityParams(move_probability=q, call_probability=c)
    )


class TestBatchedSteadyStates:
    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_matches_scalar_solvers(self, name):
        model = model_of(name, q=0.3, c=0.02)
        d_max = 20
        batched = batched_steady_states(model, d_max)
        for d in range(d_max + 1):
            row = batched[d, : d + 1]
            recursive = model.steady_state(d, method="recursive")
            matrix = model.steady_state(d, method="matrix")
            assert np.max(np.abs(row - recursive)) <= 1e-10
            assert np.max(np.abs(row - matrix)) <= 1e-10

    def test_d_zero_is_trivial(self):
        model = model_of("2d-exact")
        batched = batched_steady_states(model, 0)
        assert batched.shape == (1, 1)
        assert batched[0, 0] == pytest.approx(1.0)

    def test_rows_are_triangular_and_normalized(self):
        model = model_of("1d", q=0.4)
        batched = batched_steady_states(model, 12)
        assert batched.shape == (13, 13)
        for d in range(13):
            assert batched[d].sum() == pytest.approx(1.0)
            assert np.all(batched[d, d + 1 :] == 0.0)

    def test_rate_prefix_invariance(self):
        """The batching precondition: rates depend on the ring, not d."""
        for name in sorted(MODEL_CLASSES):
            model = model_of(name, q=0.2, c=0.03)
            a_big, b_big = model.transition_rates(30)
            a_small, b_small = model.transition_rates(12)
            assert np.allclose(a_big[:13], a_small)
            assert np.allclose(b_big[:13], b_small)

    def test_threshold_dependent_model_is_refused(self):
        class Dependent(TwoDimensionalModel):
            threshold_invariant_rates = False

        with pytest.raises(ParameterError, match="threshold-dependent"):
            batched_steady_states(Dependent(MOBILITY), 5)


class TestBatchedUpdateCosts:
    @pytest.mark.parametrize("convention", ["paper", "physical"])
    def test_matches_scalar_update_cost(self, convention):
        model = model_of("2d-exact", q=0.2, c=0.02)
        evaluator = CostEvaluator(model, COSTS, convention=convention)
        vector = batched_update_costs(model, COSTS, 15, convention=convention)
        for d in range(16):
            assert vector[d] == pytest.approx(evaluator.update_cost(d), abs=1e-12)

    def test_rates_apply_boundary_convention(self):
        model = model_of("2d-exact")
        paper = batched_update_rates(model, 5, convention="paper")
        physical = batched_update_rates(model, 5, convention="physical")
        assert paper[0] == model.update_rate(0, convention="paper")
        assert physical[0] == model.update_rate(0, convention="physical")
        assert np.allclose(paper[1:], physical[1:])


class TestCostSurface:
    def test_matches_scalar_breakdowns(self):
        model = model_of("2d-exact", q=0.1, c=0.02)
        surface = compute_cost_surface(model, COSTS, 15, delays=(1, 3, math.inf))
        # breakdown() on an evaluator whose cost_curve was never called
        # always takes the scalar path, so this compares independent
        # implementations.
        evaluator = CostEvaluator(model, COSTS)
        for k, m in enumerate(surface.delays):
            for d in range(16):
                b = evaluator.breakdown(d, m)
                assert surface.total[k, d] == pytest.approx(b.total_cost, abs=1e-10)
                assert surface.paging[k, d] == pytest.approx(b.paging_cost, abs=1e-10)
                assert surface.expected_cells[k, d] == pytest.approx(
                    b.expected_polled_cells, abs=1e-10
                )
                assert surface.expected_delay[k, d] == pytest.approx(
                    b.expected_delay, abs=1e-10
                )

    def test_published_table1_point(self):
        """Table 1 (1-D, q=0.05, c=0.01, V=10): U=20, m=1 -> C_T = 0.527."""
        surface = compute_cost_surface(
            model_of("1d"), CostParams(update_cost=20.0, poll_cost=10.0), 50,
            delays=(1,),
        )
        d_star = surface.argmin(1)
        assert round(float(surface.total[0, d_star]), 3) == 0.527

    def test_published_table2_points(self):
        """Table 2 (2-D): U=300 m=1 -> 3.468; U=1000 m=3 -> d*=5, 3.177."""
        surface = compute_cost_surface(
            model_of("2d-exact"), CostParams(update_cost=300.0, poll_cost=10.0),
            50, delays=(1,),
        )
        assert round(float(surface.total[0, surface.argmin(1)]), 3) == 3.468
        surface = compute_cost_surface(
            model_of("2d-exact"), CostParams(update_cost=1000.0, poll_cost=10.0),
            50, delays=(3,),
        )
        assert surface.argmin(3) == 5
        assert round(float(surface.total[0, 5]), 3) == 3.177

    def test_argmin_matches_exhaustive_search(self):
        model = model_of("2d-exact", q=0.3, c=0.01)
        surface = compute_cost_surface(model, COSTS, 30, delays=(1, 2, math.inf))
        for m in surface.delays:
            curve = surface.curve(m)
            search = exhaustive_search(lambda d: curve[d], 30)
            assert surface.argmin(m) == search.optimal_threshold

    def test_duplicate_delays_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            compute_cost_surface(model_of("1d"), COSTS, 5, delays=(1, 1))

    def test_precomputed_steady_reuse(self):
        model = model_of("2d-exact", q=0.2)
        steady = batched_steady_states(model, 20)
        direct = compute_cost_surface(model, COSTS, 12, delays=(2,))
        reused = compute_cost_surface(model, COSTS, 12, delays=(2,), steady=steady)
        assert np.allclose(direct.total, reused.total, atol=0)

    def test_precomputed_steady_too_small_rejected(self):
        model = model_of("2d-exact")
        steady = batched_steady_states(model, 5)
        with pytest.raises(ParameterError, match="covers thresholds"):
            compute_cost_surface(model, COSTS, 10, delays=(1,), steady=steady)

    def test_arrays_are_read_only(self):
        surface = compute_cost_surface(model_of("1d"), COSTS, 5, delays=(1,))
        assert isinstance(surface, CostSurfaceGrid)
        with pytest.raises(ValueError):
            surface.total[0, 0] = 0.0


class TestEvaluatorIntegration:
    def test_cost_curve_batched_equals_scalar(self):
        for name in sorted(MODEL_CLASSES):
            model = model_of(name, q=0.15, c=0.02)
            evaluator = CostEvaluator(model, COSTS)
            for m in (1, 3, math.inf):
                batched = evaluator.cost_curve(m, 18, method="batched")
                scalar = CostEvaluator(model, COSTS).cost_curve(
                    m, 18, method="scalar"
                )
                assert batched == pytest.approx(scalar, abs=1e-10)

    def test_custom_plan_factory_falls_back_to_scalar(self):
        from repro.paging import per_ring_partition

        model = model_of("2d-exact")
        factory = lambda model, d, m: per_ring_partition(d)  # noqa: E731
        evaluator = CostEvaluator(model, COSTS, plan_factory=factory)
        assert not evaluator.uses_sdf_partition
        # auto silently uses the scalar loop; per-ring == SDF at m=inf.
        curve = evaluator.cost_curve(math.inf, 10, method="auto")
        reference = CostEvaluator(model, COSTS).cost_curve(math.inf, 10)
        assert curve == pytest.approx(reference, abs=1e-10)

    def test_method_batched_raises_for_custom_factory(self):
        from repro.paging import per_ring_partition

        evaluator = CostEvaluator(
            model_of("2d-exact"), COSTS,
            plan_factory=lambda model, d, m: per_ring_partition(d),
        )
        with pytest.raises(ParameterError, match="cannot use the batched"):
            evaluator.cost_curve(1, 10, method="batched")

    def test_unknown_curve_method_rejected(self):
        evaluator = CostEvaluator(model_of("1d"), COSTS)
        with pytest.raises(ParameterError, match="unknown cost_curve method"):
            evaluator.cost_curve(1, 10, method="turbo")

    def test_breakdown_memo_returns_same_object(self):
        evaluator = CostEvaluator(model_of("2d-exact"), COSTS)
        first = evaluator.breakdown(4, 2)
        assert evaluator.breakdown(4, 2) is first
        # paging_cost / total_cost are served from the same memo entry.
        assert evaluator.paging_cost(4, 2) == first.paging_cost
        assert evaluator.total_cost(4, 2) == first.total_cost

    def test_find_optimal_threshold_scalar_parity(self):
        model_args = dict(q=0.3, c=0.01)
        for name in ("1d", "2d-exact", "square-exact"):
            for m in (1, 2, math.inf):
                fast = find_optimal_threshold(
                    model_of(name, **model_args), COSTS, m, d_max=40
                )
                slow = find_optimal_threshold(
                    model_of(name, **model_args), COSTS, m, d_max=40,
                    method="exhaustive-scalar",
                )
                assert fast.threshold == slow.threshold
                assert fast.total_cost == pytest.approx(
                    slow.total_cost, abs=1e-10
                )
                # The public label and accounting stay those of the
                # paper's exhaustive method.
                assert fast.search.method == "exhaustive"
                assert fast.search.evaluations == 41
