"""Banded steady-state solver: correctness, cutover, and overflow horizon.

The dense triangular recursion computes unnormalized probabilities that
grow like ``prod(s_i / a_i) >= 2**d``, so it overflows float64 near
``d ~ 760``.  The banded path anchors ``p_0 = 1`` and solves the
tridiagonal balance system directly, which stays finite far past that
horizon -- these tests pin both the agreement regime (banded == dense
to ~1e-12) and the regime only the banded path can reach (d = 2000).
"""

import numpy as np
import pytest

from repro.core.batch import (
    BANDED_CUTOVER,
    banded_steady_state,
    batched_steady_states,
    compute_cost_surface,
    default_solver,
    use_solver,
)
from repro.core.models import (
    OneDimensionalModel,
    SquareGridModel,
    TwoDimensionalApproximateModel,
    TwoDimensionalModel,
)
from repro.core.parameters import CostParams, MobilityParams
from repro.exceptions import ParameterError, SolverError

MOBILITY = MobilityParams(move_probability=0.1, call_probability=0.02)
MODELS = (
    OneDimensionalModel(MOBILITY),
    TwoDimensionalModel(MOBILITY),
    TwoDimensionalApproximateModel(MOBILITY),
    SquareGridModel(MOBILITY),
)


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
@pytest.mark.parametrize("d", [0, 1, 2, 5, 17, 60])
def test_banded_matches_recursive(model, d):
    banded = banded_steady_state(model, d)
    recursive = model.steady_state(d, method="recursive")
    np.testing.assert_allclose(banded, recursive, rtol=0, atol=1e-12)
    assert banded.sum() == pytest.approx(1.0)


def test_banded_d_zero_is_degenerate():
    pi = banded_steady_state(MODELS[0], 0)
    assert pi.shape == (1,)
    assert pi[0] == 1.0


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_banded_survives_past_dense_overflow_horizon():
    model = TwoDimensionalModel(MOBILITY)
    with pytest.raises(SolverError):
        model.steady_state(2000, method="recursive")
    pi = banded_steady_state(model, 2000)
    assert pi.shape == (2001,)
    assert np.all(np.isfinite(pi))
    assert np.all(pi >= 0)
    assert pi.sum() == pytest.approx(1.0)


def test_steady_state_method_banded_and_auto_cutover():
    model = TwoDimensionalModel(MOBILITY)
    via_method = model.steady_state(7, method="banded")
    np.testing.assert_allclose(via_method, model.steady_state(7), atol=1e-12)
    # The default solver routes d > BANDED_CUTOVER through the banded
    # path automatically, so a depth the recursion cannot reach works.
    deep = model.steady_state(BANDED_CUTOVER + 300)
    assert np.all(np.isfinite(deep))


def test_batched_banded_matches_dense():
    model = SquareGridModel(MOBILITY)
    dense = batched_steady_states(model, 40, method="dense")
    banded = batched_steady_states(model, 40, method="banded")
    np.testing.assert_allclose(banded, dense, rtol=0, atol=1e-12)


def test_batched_auto_cutover_reaches_deep_chains():
    model = TwoDimensionalApproximateModel(MOBILITY)
    d_max = BANDED_CUTOVER + 100
    pi = batched_steady_states(model, d_max)
    assert pi.shape == (d_max + 1, d_max + 1)
    rows = pi.sum(axis=1)
    np.testing.assert_allclose(rows, np.ones_like(rows), atol=1e-9)


def test_batched_rejects_unknown_method():
    with pytest.raises(ParameterError, match="solver"):
        batched_steady_states(MODELS[0], 5, method="cholesky")


def test_use_solver_context_sets_and_restores_default():
    assert default_solver() == "auto"
    with use_solver("banded"):
        assert default_solver() == "banded"
        with use_solver("dense"):
            assert default_solver() == "dense"
        assert default_solver() == "banded"
    assert default_solver() == "auto"
    with pytest.raises(ParameterError):
        use_solver("qr").__enter__()


def test_surface_solver_equivalence():
    model = TwoDimensionalModel(MOBILITY)
    costs = CostParams(update_cost=50.0, poll_cost=5.0)
    dense = compute_cost_surface(model, costs, d_max=25, delays=(1, 3),
                                 solver="dense")
    banded = compute_cost_surface(model, costs, d_max=25, delays=(1, 3),
                                  solver="banded")
    np.testing.assert_allclose(banded.total, dense.total, rtol=0, atol=1e-9)
    np.testing.assert_allclose(banded.update, dense.update, rtol=0, atol=1e-9)
    np.testing.assert_allclose(banded.paging, dense.paging, rtol=0, atol=1e-9)
