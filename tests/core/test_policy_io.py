"""Unit tests for policy serialization."""

import json
import math

import pytest

from repro import (
    CostParams,
    MobilityParams,
    ParameterError,
    Policy,
    TwoDimensionalModel,
    find_optimal_threshold,
)
from repro.core.policy_io import policy_from_solution
from repro.geometry import HexTopology, LineTopology, SquareTopology
from repro.paging import partition_from_sizes, sdf_partition


class TestConstruction:
    def test_sdf_constructor(self):
        policy = Policy.sdf(HexTopology(), 4, 2)
        assert policy.plan == sdf_partition(4, 2)

    def test_plan_threshold_must_match(self):
        with pytest.raises(ParameterError):
            Policy(
                topology=HexTopology(),
                threshold=3,
                max_delay=2,
                plan=sdf_partition(4, 2),
            )

    def test_plan_must_respect_delay_bound(self):
        with pytest.raises(ParameterError):
            Policy(
                topology=HexTopology(),
                threshold=4,
                max_delay=2,
                plan=partition_from_sizes(4, [1, 1, 1, 2]),
            )

    def test_unbounded_delay_allows_any_partition(self):
        policy = Policy(
            topology=LineTopology(),
            threshold=4,
            max_delay=math.inf,
            plan=partition_from_sizes(4, [1, 1, 1, 1, 1]),
        )
        assert policy.max_delay == math.inf

    def test_from_solution(self):
        solution = find_optimal_threshold(
            TwoDimensionalModel(MobilityParams(0.05, 0.01)),
            CostParams(100, 10),
            3,
        )
        policy = policy_from_solution(HexTopology(), solution)
        assert policy.threshold == solution.threshold
        assert policy.max_delay == 3


class TestRoundTrip:
    @pytest.mark.parametrize(
        "topology", [LineTopology(), HexTopology(), SquareTopology()]
    )
    def test_json_roundtrip(self, topology):
        policy = Policy.sdf(topology, 5, 3)
        restored = Policy.from_json(policy.to_json())
        assert restored.topology == policy.topology
        assert restored.threshold == policy.threshold
        assert restored.max_delay == policy.max_delay
        assert restored.plan == policy.plan

    def test_unbounded_roundtrip(self):
        policy = Policy.sdf(HexTopology(), 3, math.inf)
        restored = Policy.from_json(policy.to_json())
        assert restored.max_delay == math.inf

    def test_file_roundtrip(self, tmp_path):
        policy = Policy.sdf(HexTopology(), 4, 2)
        path = tmp_path / "policy.json"
        policy.save(path)
        assert Policy.load(path).plan == policy.plan

    def test_wire_format_is_stable(self):
        payload = json.loads(Policy.sdf(LineTopology(), 2, 2).to_json())
        assert payload == {
            "version": 1,
            "topology": "line",
            "threshold": 2,
            "max_delay": 2,
            "subareas": [[0], [1, 2]],
        }


class TestValidationOnLoad:
    def test_malformed_json(self):
        with pytest.raises(ParameterError):
            Policy.from_json("{nope")

    def test_non_object(self):
        with pytest.raises(ParameterError):
            Policy.from_json("[1, 2]")

    def test_unknown_version(self):
        text = Policy.sdf(HexTopology(), 2, 1).to_json().replace('"version": 1', '"version": 9')
        with pytest.raises(ParameterError, match="version"):
            Policy.from_json(text)

    def test_unknown_topology(self):
        text = Policy.sdf(HexTopology(), 2, 1).to_json().replace('"hex"', '"torus"')
        with pytest.raises(ParameterError):
            Policy.from_json(text)

    def test_missing_field(self):
        payload = json.loads(Policy.sdf(HexTopology(), 2, 1).to_json())
        del payload["subareas"]
        with pytest.raises(ParameterError, match="missing"):
            Policy.from_json(json.dumps(payload))

    def test_partition_not_covering_rings(self):
        payload = json.loads(Policy.sdf(HexTopology(), 2, 2).to_json())
        payload["subareas"] = [[0], [2]]
        with pytest.raises(ParameterError):
            Policy.from_json(json.dumps(payload))

    def test_partition_exceeding_bound(self):
        payload = json.loads(Policy.sdf(HexTopology(), 2, 2).to_json())
        payload["subareas"] = [[0], [1], [2]]
        with pytest.raises(ParameterError):
            Policy.from_json(json.dumps(payload))


class TestDeployment:
    def test_build_strategy(self):
        policy = Policy.sdf(HexTopology(), 3, 2)
        strategy = policy.build_strategy()
        strategy.attach(HexTopology(), (0, 0))
        assert strategy.threshold == 3
        assert strategy.plan == policy.plan

    def test_deployed_strategy_simulates(self):
        from repro.simulation import SimulationEngine

        policy = Policy.sdf(HexTopology(), 2, 2)
        engine = SimulationEngine(
            HexTopology(),
            policy.build_strategy(),
            MobilityParams(0.3, 0.03),
            CostParams(10, 1),
            seed=1,
        )
        snapshot = engine.run(5000)
        assert snapshot.calls > 0
        assert max(snapshot.delay_histogram) <= 2
