"""Unit tests for derived policy metrics (update rate, staleness, ...)."""

import math

import pytest

from repro import (
    CostEvaluator,
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    TwoDimensionalModel,
    derive_metrics,
)

MOBILITY = MobilityParams(0.2, 0.02)
COSTS = CostParams(30.0, 2.0)


@pytest.fixture
def evaluator_1d():
    return CostEvaluator(OneDimensionalModel(MOBILITY), COSTS)


class TestBasicRates:
    def test_call_rate_is_c(self, evaluator_1d):
        metrics = derive_metrics(evaluator_1d, 3, 2)
        assert metrics.call_rate == 0.02

    def test_update_rate_physical(self, evaluator_1d):
        model = OneDimensionalModel(MOBILITY)
        p = model.steady_state(3)
        metrics = derive_metrics(evaluator_1d, 3, 2)
        assert metrics.update_rate == pytest.approx(p[3] * 0.1)

    def test_update_rate_at_d0_uses_q(self, evaluator_1d):
        # Physical convention: every move leaves a single-cell area.
        metrics = derive_metrics(evaluator_1d, 0, 1)
        assert metrics.update_rate == pytest.approx(MOBILITY.q)

    def test_mean_slots_between_updates(self, evaluator_1d):
        metrics = derive_metrics(evaluator_1d, 2, 1)
        assert metrics.mean_slots_between_updates == pytest.approx(
            1.0 / metrics.update_rate
        )

    def test_fix_rate_is_sum(self, evaluator_1d):
        metrics = derive_metrics(evaluator_1d, 2, 1)
        assert metrics.fix_rate == pytest.approx(
            metrics.update_rate + metrics.call_rate
        )

    def test_never_updating_terminal(self):
        # No calls, enormous threshold: updates still happen but very
        # rarely; with c = 0 the fix gap is the update gap.
        model = OneDimensionalModel(MobilityParams(0.2, 0.0))
        evaluator = CostEvaluator(model, COSTS)
        metrics = derive_metrics(evaluator, 10, 1)
        assert metrics.call_rate == 0.0
        assert metrics.mean_fix_gap == pytest.approx(
            1.0 / metrics.update_rate, rel=1e-6
        )


class TestDistances:
    def test_mean_distance_bounds(self, evaluator_1d):
        metrics = derive_metrics(evaluator_1d, 4, 2)
        assert 0.0 < metrics.mean_distance < 4.0

    def test_at_center_probability(self, evaluator_1d):
        model = OneDimensionalModel(MOBILITY)
        metrics = derive_metrics(evaluator_1d, 3, 1)
        assert metrics.at_center_probability == pytest.approx(
            model.steady_state(3)[0]
        )

    def test_d0_distance_is_zero(self, evaluator_1d):
        metrics = derive_metrics(evaluator_1d, 0, 1)
        assert metrics.mean_distance == 0.0
        assert metrics.at_center_probability == 1.0


class TestPagingExpectations:
    def test_cells_per_call_blanket(self, evaluator_1d):
        metrics = derive_metrics(evaluator_1d, 3, 1)
        assert metrics.cells_per_call == pytest.approx(7.0)  # g(3), 1-D
        assert metrics.cycles_per_call == pytest.approx(1.0)

    def test_cycles_bounded_by_m(self, evaluator_1d):
        metrics = derive_metrics(evaluator_1d, 5, 3)
        assert 1.0 <= metrics.cycles_per_call <= 3.0


class TestFixGapAndStaleness:
    def test_gap_shorter_with_more_calls(self):
        def gap(c):
            model = OneDimensionalModel(MobilityParams(0.2, c))
            return derive_metrics(CostEvaluator(model, COSTS), 3, 1).mean_fix_gap

        assert gap(0.05) < gap(0.01)

    def test_gap_vs_naive_rate_inverse(self, evaluator_1d):
        # The renewal mean gap must equal 1 / fix_rate: fixes per slot
        # times mean slots per fix cycle is 1 in steady state.
        metrics = derive_metrics(evaluator_1d, 3, 2)
        assert metrics.mean_fix_gap == pytest.approx(1.0 / metrics.fix_rate, rel=1e-9)

    def test_staleness_vs_simulation(self):
        # Measured in an independent event-level simulation.
        from repro.geometry import LineTopology
        from repro.simulation import SimulationEngine
        from repro.strategies import DistanceStrategy

        evaluator = CostEvaluator(OneDimensionalModel(MOBILITY), COSTS)
        metrics = derive_metrics(evaluator, 3, 2)
        engine = SimulationEngine(
            LineTopology(),
            DistanceStrategy(3, max_delay=2),
            MOBILITY,
            COSTS,
            seed=9,
        )
        staleness_sum = 0
        age = 0
        slots = 150_000
        for _ in range(slots):
            updates, calls = engine.meter.updates, engine.meter.calls
            engine.step()
            if engine.meter.updates > updates or engine.meter.calls > calls:
                age = 0
            else:
                age += 1
            staleness_sum += age
        assert staleness_sum / slots == pytest.approx(
            metrics.mean_register_staleness, rel=0.05
        )

    def test_staleness_exceeds_half_gap(self, evaluator_1d):
        # Inspection paradox: the stationary age exceeds (G-1)/2 of the
        # *mean* gap whenever gaps vary.
        metrics = derive_metrics(evaluator_1d, 3, 2)
        assert metrics.mean_register_staleness > (metrics.mean_fix_gap - 1) / 2

    def test_d0_staleness_geometric(self):
        evaluator = CostEvaluator(OneDimensionalModel(MOBILITY), COSTS)
        metrics = derive_metrics(evaluator, 0, 1)
        p = MOBILITY.q + MOBILITY.c
        assert metrics.mean_register_staleness == pytest.approx((1 - p) / p)

    def test_2d_model_supported(self):
        evaluator = CostEvaluator(TwoDimensionalModel(MOBILITY), COSTS)
        metrics = derive_metrics(evaluator, 3, 2)
        assert math.isfinite(metrics.mean_register_staleness)
        assert metrics.mean_fix_gap == pytest.approx(1.0 / metrics.fix_rate, rel=1e-9)
