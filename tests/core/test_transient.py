"""Unit tests for transient analysis of the ring chain."""

import numpy as np
import pytest

from repro import (
    CostEvaluator,
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    ParameterError,
    TwoDimensionalModel,
    distribution_at,
    mixing_time,
    transient_cost,
)

MODEL = OneDimensionalModel(MobilityParams(0.1, 0.02))
COSTS = CostParams(50.0, 5.0)


class TestDistributionAt:
    def test_zero_slots_is_start(self):
        vec = distribution_at(MODEL, 4, 0)
        assert vec.tolist() == [1, 0, 0, 0, 0]

    def test_stays_a_distribution(self):
        for slots in (1, 5, 50):
            vec = distribution_at(MODEL, 4, slots)
            assert vec.sum() == pytest.approx(1.0)
            assert np.all(vec >= -1e-15)

    def test_converges_to_steady_state(self):
        vec = distribution_at(MODEL, 4, 2000)
        assert np.allclose(vec, MODEL.steady_state(4), atol=1e-8)

    def test_custom_start(self):
        start = [0, 0, 1, 0, 0]
        vec = distribution_at(MODEL, 4, 0, start=start)
        assert vec.tolist() == start

    def test_invalid_start_rejected(self):
        with pytest.raises(ParameterError):
            distribution_at(MODEL, 4, 1, start=[0.5, 0.5])
        with pytest.raises(ParameterError):
            distribution_at(MODEL, 4, 1, start=[0.5, 0.2, 0.1, 0.1, 0.0])

    def test_negative_slots_rejected(self):
        with pytest.raises(ParameterError):
            distribution_at(MODEL, 4, -1)

    def test_one_slot_matches_transition_row(self):
        vec = distribution_at(MODEL, 3, 1)
        P = MODEL.chain(3).transition_matrix()
        assert np.allclose(vec, P[0])


class TestMixingTime:
    def test_already_mixed_is_zero(self):
        pi = MODEL.steady_state(4)
        assert mixing_time(MODEL, 4, start=pi) == 0

    def test_mixing_time_is_sufficient(self):
        t = mixing_time(MODEL, 4, tolerance=0.01)
        vec = distribution_at(MODEL, 4, t)
        pi = MODEL.steady_state(4)
        assert 0.5 * np.abs(vec - pi).sum() <= 0.01 + 1e-12

    def test_one_less_slot_is_insufficient(self):
        t = mixing_time(MODEL, 4, tolerance=0.01)
        assert t >= 1
        vec = distribution_at(MODEL, 4, t - 1)
        pi = MODEL.steady_state(4)
        assert 0.5 * np.abs(vec - pi).sum() > 0.01

    def test_tighter_tolerance_takes_longer(self):
        loose = mixing_time(MODEL, 5, tolerance=0.05)
        tight = mixing_time(MODEL, 5, tolerance=0.001)
        assert tight > loose

    def test_faster_traffic_mixes_faster(self):
        # Calls reset the chain to 0, so heavier traffic mixes faster.
        slow = mixing_time(OneDimensionalModel(MobilityParams(0.1, 0.005)), 5)
        fast = mixing_time(OneDimensionalModel(MobilityParams(0.1, 0.1)), 5)
        assert fast < slow

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ParameterError):
            mixing_time(MODEL, 4, tolerance=0.0)

    def test_works_for_2d(self):
        model = TwoDimensionalModel(MobilityParams(0.2, 0.02))
        assert mixing_time(model, 5) > 0


class TestTransientCost:
    def test_starts_cheap_converges_to_steady(self):
        evaluator = CostEvaluator(MODEL, COSTS)
        analysis = transient_cost(evaluator, 3, 2, horizon=400)
        # Fresh fix: no chance of being at the boundary; only paging of
        # the first subarea contributes.
        assert analysis.per_slot_cost[0] < analysis.steady_state_cost
        assert analysis.per_slot_cost[-1] == pytest.approx(
            analysis.steady_state_cost, rel=1e-6
        )

    def test_costs_monotone_from_fresh_fix(self):
        evaluator = CostEvaluator(MODEL, COSTS)
        analysis = transient_cost(evaluator, 3, 1, horizon=100)
        diffs = np.diff(analysis.per_slot_cost)
        assert np.all(diffs >= -1e-12)

    def test_slots_to_within(self):
        evaluator = CostEvaluator(MODEL, COSTS)
        analysis = transient_cost(evaluator, 3, 1, horizon=500)
        t = analysis.slots_to_within(0.01)
        assert 0 < t < 500
        assert abs(
            analysis.per_slot_cost[t] - analysis.steady_state_cost
        ) <= 0.01 * analysis.steady_state_cost

    def test_cumulative_cost(self):
        evaluator = CostEvaluator(MODEL, COSTS)
        analysis = transient_cost(evaluator, 2, 1, horizon=10)
        assert analysis.cumulative_cost == pytest.approx(
            sum(analysis.per_slot_cost)
        )

    def test_horizon_zero(self):
        evaluator = CostEvaluator(MODEL, COSTS)
        analysis = transient_cost(evaluator, 2, 1, horizon=0)
        assert analysis.horizon == 0
        assert analysis.slots_to_within() == 0

    def test_negative_horizon_rejected(self):
        evaluator = CostEvaluator(MODEL, COSTS)
        with pytest.raises(ParameterError):
            transient_cost(evaluator, 2, 1, horizon=-1)
