"""Delay-constraint study: what a polling-cycle budget buys.

Reproduces the paper's headline qualitative result ("a small increase
of the maximum delay from 1 to 2 polling cycles can lower the optimal
cost to half way between its values when the maximum delays are 1 and
infinity") as a concrete engineering table: for a grid of user
profiles, the optimal cost at every delay bound, the fraction of the
delay-1-to-unbounded gap closed, and the *expected* (not worst-case)
paging delay actually experienced.

Run:  python examples/delay_tradeoff.py
"""

import math

from repro import (
    CostParams,
    MobilityParams,
    TwoDimensionalModel,
    find_optimal_threshold,
)

PRICES = CostParams(update_cost=100.0, poll_cost=1.0)
DELAYS = (1, 2, 3, 5, math.inf)
PROFILES = [
    ("pedestrian, light traffic", 0.05, 0.005),
    ("pedestrian, heavy traffic", 0.05, 0.05),
    ("vehicle, light traffic", 0.4, 0.005),
    ("vehicle, heavy traffic", 0.4, 0.05),
]


def main() -> None:
    for label, q, c in PROFILES:
        model = TwoDimensionalModel(MobilityParams(q, c))
        solutions = {
            m: find_optimal_threshold(model, PRICES, m) for m in DELAYS
        }
        gap = solutions[1].total_cost - solutions[math.inf].total_cost
        print(f"\n{label} (q={q}, c={c})")
        print(f"  {'m':>9} {'d*':>4} {'C_T':>9} {'gap closed':>11} {'E[delay]':>9}")
        for m in DELAYS:
            s = solutions[m]
            closed = (
                (solutions[1].total_cost - s.total_cost) / gap if gap > 1e-12 else 1.0
            )
            name = "unbounded" if m == math.inf else str(m)
            print(
                f"  {name:>9} {s.threshold:>4} {s.total_cost:>9.4f} "
                f"{closed:>10.0%} {s.breakdown.expected_delay:>9.3f}"
            )
        two_cycle = (
            (solutions[1].total_cost - solutions[2].total_cost) / gap
            if gap > 1e-12
            else 1.0
        )
        print(
            f"  -> one extra polling cycle already recovers {two_cycle:.0%} of "
            "everything unbounded delay could ever save"
        )

    print(
        "\nNote how the expected delay stays well below the worst-case bound m:"
        "\nthe SDF order finds most terminals in the first subarea."
    )


if __name__ == "__main__":
    main()
