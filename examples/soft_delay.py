"""Soft delay pricing and the delay/signaling frontier.

The paper bounds paging delay by a hard ``m``; operators more often
*price* delay (every polling cycle postpones ring-back).  This example
uses the :func:`repro.optimize_soft_delay` extension to trace the whole
frontier -- per-cycle penalty in, jointly optimal threshold + partition
out -- and shows the same machinery running on all three geometries,
including the square-grid extension.

Run:  python examples/soft_delay.py
"""

from repro import (
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    SquareGridModel,
    TwoDimensionalModel,
    optimize_soft_delay,
)

USER = MobilityParams(move_probability=0.2, call_probability=0.02)
PRICES = CostParams(update_cost=50.0, poll_cost=5.0)
PENALTIES = (0.0, 1.0, 5.0, 20.0, 100.0, 1000.0)


def main() -> None:
    model = TwoDimensionalModel(USER)
    print("Delay/signaling frontier (2-D hex, q=0.2, c=0.02, U=50, V=5):")
    print(f"  {'penalty':>8} {'d*':>3} {'E[cycles]':>10} {'signaling':>10} "
          f"{'total':>8}  partition")
    for penalty in PENALTIES:
        policy = optimize_soft_delay(model, PRICES, penalty, d_max=30)
        signaling = policy.update_cost + policy.paging_cell_cost
        print(
            f"  {penalty:>8g} {policy.threshold:>3} {policy.expected_delay:>10.3f} "
            f"{signaling:>10.4f} {policy.total_cost:>8.4f}  {policy.plan.describe()}"
        )
    print(
        "\nReading the frontier: a free-delay network polls ring by ring;"
        "\nas delay gets expensive the partition coarsens toward blanket"
        "\npolling, and the threshold shrinks to keep the blanket small."
    )

    print("\nThe same optimization on every geometry (penalty = 20):")
    for label, geometry_model in (
        ("1-D line ", OneDimensionalModel(USER)),
        ("hex grid ", TwoDimensionalModel(USER)),
        ("square   ", SquareGridModel(USER)),
    ):
        policy = optimize_soft_delay(geometry_model, PRICES, 20.0, d_max=30)
        print(
            f"  {label} d*={policy.threshold}  E[cycles]={policy.expected_delay:.3f}  "
            f"total={policy.total_cost:.4f}  plan={policy.plan.describe()}"
        )
    print(
        "\nGeometry matters: the hex plane's rings grow as 6d versus the"
        "\nline's constant 2, so the plane pays more for the same threshold"
        "\nand settles on a smaller one."
    )


if __name__ == "__main__":
    main()
