"""Quickstart: optimize one user's location-management policy.

The minimal end-to-end use of the library: describe a subscriber by the
paper's four parameters (move probability ``q``, call probability
``c``, update cost ``U``, polling cost ``V``), pick a paging delay
budget ``m``, and ask for the optimal update threshold distance.

Run:  python examples/quickstart.py
"""

import math

from repro import (
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    TwoDimensionalModel,
    find_optimal_threshold,
)


def main() -> None:
    # A pedestrian in a microcell downtown: moves to a neighboring cell
    # in 5% of time slots, receives a call in 1% of them.
    user = MobilityParams(move_probability=0.05, call_probability=0.01)

    # Signaling prices: one location update costs as much wireless
    # bandwidth/power as polling 10 cells.
    prices = CostParams(update_cost=100.0, poll_cost=10.0)

    model = TwoDimensionalModel(user)

    print("Two-dimensional (city) coverage, varying the paging delay bound")
    print(f"{'m':>10} {'d*':>4} {'C_T':>8} {'C_u':>8} {'C_v':>8} {'E[delay]':>9}")
    for max_delay in (1, 2, 3, math.inf):
        solution = find_optimal_threshold(model, prices, max_delay)
        b = solution.breakdown
        label = "unbounded" if max_delay == math.inf else str(max_delay)
        print(
            f"{label:>10} {solution.threshold:>4} {solution.total_cost:>8.3f} "
            f"{b.update_cost:>8.3f} {b.paging_cost:>8.3f} {b.expected_delay:>9.3f}"
        )

    # The same user confined to a highway (one-dimensional coverage).
    print("\nOne-dimensional (highway) coverage")
    line_model = OneDimensionalModel(user)
    for max_delay in (1, 3):
        solution = find_optimal_threshold(line_model, prices, max_delay)
        print(
            f"  m={max_delay}: optimal threshold d*={solution.threshold}, "
            f"average cost {solution.total_cost:.3f} per slot"
        )

    # Inspect the residence distribution the optimum is built on.
    solution = find_optimal_threshold(model, prices, 3)
    p = model.steady_state(solution.threshold)
    print(f"\nSteady-state ring distribution at d*={solution.threshold}:")
    for ring, probability in enumerate(p):
        bar = "#" * int(round(probability * 60))
        print(f"  ring {ring}: {probability:.3f} {bar}")


if __name__ == "__main__":
    main()
