"""Failure drill: what lost update messages do to the protocol.

Injects signaling loss into the paper's distance-based scheme with
:class:`repro.simulation.LossyUpdateEngine`: transmitted updates that
never reach the location register leave the network paging around a
stale center, and the expanding-ring recovery search has to rescue the
call.  The drill sweeps the loss rate and reports the damage -- cost,
paging delay, and how far recovery had to reach -- then sweeps the
threshold under fixed loss to show how the recovery burden scales with
the update rate (every update transmitted is another chance to lose
one).

Run:  python examples/failure_drill.py
"""

import numpy as np

from repro import CostParams, MobilityParams
from repro.geometry import HexTopology
from repro.simulation import LossyUpdateEngine
from repro.strategies import DistanceStrategy

MOBILITY = MobilityParams(move_probability=0.3, call_probability=0.02)
PRICES = CostParams(update_cost=30.0, poll_cost=2.0)
SLOTS = 100_000


def drill(threshold: int, loss: float, seed: int = 1):
    engine = LossyUpdateEngine(
        topology=HexTopology(),
        strategy=DistanceStrategy(threshold, max_delay=2),
        mobility=MOBILITY,
        costs=PRICES,
        loss_probability=loss,
        seed=seed,
    )
    snapshot = engine.run(SLOTS)
    return engine, snapshot


def main() -> None:
    print("Update-loss drill (hex grid, d=3, m=2, q=0.3, c=0.02):")
    print(f"  {'loss':>6} {'C_T':>8} {'page delay':>11} {'recoveries':>11} "
          f"{'worst cycles':>13}")
    for loss in (0.0, 0.1, 0.3, 0.5):
        engine, snapshot = drill(3, loss)
        worst = max(snapshot.delay_histogram) if snapshot.delay_histogram else 0
        print(
            f"  {loss:>6.0%} {snapshot.mean_total_cost:>8.4f} "
            f"{snapshot.mean_paging_delay:>11.3f} {engine.recovery_pagings:>11} "
            f"{worst:>13}"
        )
    print(
        "\nEvery call was answered at every loss rate: recovery paging trades"
        "\nthe delay bound (on the affected calls only) for correctness."
    )

    print("\nThreshold sweep at 30% signaling loss:")
    print(f"  {'d':>3} {'C_T':>8} {'recoveries':>11} {'mean delay':>11}")
    results = {}
    for d in (1, 2, 3, 5):
        engine, snapshot = drill(d, 0.3, seed=2)
        results[d] = snapshot.mean_total_cost
        print(
            f"  {d:>3} {snapshot.mean_total_cost:>8.4f} "
            f"{engine.recovery_pagings:>11} {snapshot.mean_paging_delay:>11.3f}"
        )
    best = min(results, key=results.get)
    print(
        f"\nTwo things to notice: the recovery burden *falls* with d (fewer"
        f"\nupdates transmitted means fewer messages to lose), and the optimal"
        f"\nthreshold under loss (d={best} here) stays close to the loss-free"
        f"\noptimum -- the scheme is operationally robust, it just pays the"
        f"\nrecovery tax on the calls that follow a lost update."
    )


if __name__ == "__main__":
    main()
