"""Highway scenario: 1-D coverage and the LA-scheme comparison.

Terminals on a highway (the paper's one-dimensional model: cells along
a road, two neighbors each).  The example contrasts the paper's
distance-based scheme with the static location-area scheme of
reference [8] at the *same paging-area size*, on the same traces --
demonstrating the LA boundary ping-pong problem the paper's
introduction uses to motivate its design -- and then shows how the
distance threshold adapts per user class while LAs cannot.

Run:  python examples/highway_1d.py
"""

from repro import (
    CostParams,
    MobilityParams,
    OneDimensionalModel,
    find_optimal_threshold,
)
from repro.geometry import LineTopology
from repro.simulation import run_replicated
from repro.strategies import DistanceStrategy, LocationAreaStrategy

SLOTS = 80_000
PRICES = CostParams(update_cost=25.0, poll_cost=1.0)


def measure(factory, mobility, seed):
    result = run_replicated(
        LineTopology(),
        factory,
        mobility,
        PRICES,
        slots=SLOTS,
        replications=3,
        seed=seed,
    )
    return result


def main() -> None:
    # Commuter traffic: moves often (vehicles), called rarely.
    commuter = MobilityParams(move_probability=0.5, call_probability=0.01)
    solution = find_optimal_threshold(
        OneDimensionalModel(commuter), PRICES, 1, convention="physical"
    )
    d_star = solution.threshold
    print(f"Commuter (q={commuter.q}, c={commuter.c}): analytic d* = {d_star}, "
          f"predicted C_T = {solution.total_cost:.4f}")

    distance = measure(lambda: DistanceStrategy(d_star, max_delay=1), commuter, 1)
    la = measure(lambda: LocationAreaStrategy(d_star), commuter, 1)

    print("\nDistance-based vs static LA at equal paging area "
          f"(g({d_star}) = {2 * d_star + 1} cells):")
    for label, result in (("distance-based", distance), ("location-area", la)):
        print(
            f"  {label:15s} C_T={result.mean_total_cost:.4f} "
            f"(updates/slot={result.mean_update_cost / PRICES.U:.4f}, "
            f"paging C_v={result.mean_paging_cost:.4f})"
        )
    advantage = 1 - distance.mean_total_cost / la.mean_total_cost
    print(f"  -> distance-based is {advantage:.1%} cheaper: the LA scheme pays for "
          "boundary ping-pong updates")

    # Per-user adaptation: the same infrastructure serves a pedestrian
    # with a very different optimal threshold.
    print("\nPer-user thresholds on the same highway:")
    for label, q, c in (
        ("high-speed vehicle", 0.8, 0.005),
        ("slow vehicle", 0.3, 0.01),
        ("pedestrian", 0.05, 0.02),
        ("roadside kiosk", 0.002, 0.05),
    ):
        mobility = MobilityParams(q, c)
        best = find_optimal_threshold(
            OneDimensionalModel(mobility), PRICES, 1, convention="physical"
        )
        print(f"  {label:20s} -> d*={best.threshold:2d}  C_T={best.total_cost:.4f}")
    print("\nA static LA scheme must pick ONE area size for all of these users;")
    print("the distance-based scheme tunes the residing area per terminal.")


if __name__ == "__main__":
    main()
