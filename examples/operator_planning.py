"""Operator planning: a service area end to end.

Puts the two operator-side subsystems together for one downtown service
area:

1. **Population** -- sample a realistic subscriber mix and decide
   between one shared update threshold and per-user tuning (the two
   deployment modes of the paper's Section 8);
2. **Paging channel** -- check which delay bounds the shared paging
   channel can actually sustain at this population size, because the
   per-terminal cost optimum is worthless if the paging queue is
   unstable.

Run:  python examples/operator_planning.py
"""

import math

from repro import CostParams, TwoDimensionalModel
from repro.channel import dimension_channel
from repro.workload import DEFAULT_MIX, Population, plan_fleet

PRICES = CostParams(update_cost=50.0, poll_cost=2.0)
USERS = 120
MAX_DELAY = 2


def main() -> None:
    population = Population(DEFAULT_MIX)
    print(f"Subscriber mix: {population!r}")
    mean = population.mean_mobility()
    print(f"Population-average user: q={mean.q:.4f}, c={mean.c:.4f}")

    print(f"\n1. Fleet policy ({USERS} users, delay bound m={MAX_DELAY}):")
    plan = plan_fleet(
        population,
        PRICES,
        max_delay=MAX_DELAY,
        users=USERS,
        seed=42,
        model_class=TwoDimensionalModel,
    )
    print(f"   shared threshold (tuned to the average user): d={plan.shared_threshold}")
    print(f"   fleet cost with shared threshold: {plan.shared_fleet_cost:.4f} /slot/user")
    print(f"   fleet cost with per-user tuning:  {plan.personal_fleet_cost:.4f} /slot/user")
    print(f"   -> per-user tuning saves {plan.fleet_saving:.1%} fleet-wide")
    quantiles = plan.regret_quantiles((0.5, 0.9, 0.99))
    print(
        "   per-user regret under one-size-fits-all: "
        + ", ".join(f"p{int(q*100)}={v:.0%}" for q, v in quantiles.items())
    )
    print("   by profile (per-user vs shared cost):")
    for name, (personal, shared) in sorted(plan.by_profile().items()):
        print(f"     {name:11s} {personal:.4f} vs {shared:.4f}")

    # The paging channel is per service-area sector; a sector holds a
    # fraction of the fleet (the Bernoulli channel model also caps the
    # aggregate call probability below one per slot).
    sector_terminals = 60
    print(
        f"\n2. Paging-channel feasibility per sector "
        f"({sector_terminals} of the {USERS} users):"
    )
    model = TwoDimensionalModel(mean)
    points = dimension_channel(
        model, PRICES, terminals=sector_terminals, delays=(1, 2, 3, 5, math.inf)
    )
    print(f"   {'m':>5} {'d*':>3} {'rho':>6} {'E[wait]':>8} {'latency':>8} "
          f"{'bandwidth':>10} {'C_T/user':>9}")
    for p in points:
        label = "inf" if p.delay_bound == math.inf else str(int(p.delay_bound))
        wait = f"{p.mean_wait_slots:8.3f}" if p.feasible else "     ---"
        latency = f"{p.setup_latency:8.3f}" if p.feasible else "OVERLOAD"
        print(
            f"   {label:>5} {p.threshold:>3} {p.utilization:>6.3f} {wait} {latency:>8} "
            f"{p.polling_bandwidth:>10.3f} {p.per_terminal_cost:>9.4f}"
        )
    feasible = [p for p in points if p.feasible]
    best = min(feasible, key=lambda p: p.per_terminal_cost)
    label = "inf" if best.delay_bound == math.inf else int(best.delay_bound)
    print(
        f"\n   The cheapest *sustainable* delay bound here is m={label}: "
        f"cost {best.per_terminal_cost:.4f}/user with "
        f"{best.setup_latency:.2f}-slot call setup."
    )
    print(
        "   Larger bounds look cheaper per terminal but overload the shared\n"
        "   paging channel -- capacity, not user preference, caps m."
    )


if __name__ == "__main__":
    main()
