"""Dynamic per-user adaptation: a day in the life of one terminal.

The paper's conclusions propose using its threshold optimization "in
dynamic schemes such that location update threshold distance is
determined continuously on a per-user basis" (the approach of
reference [1]).  This example drives the :class:`DynamicStrategy`
through a synthetic day -- commute (fast movement), office (nearly
stationary, more calls), commute, evening -- and shows the estimated
``(q_hat, c_hat)`` and the adapted threshold tracking each phase,
ending with a cost comparison against the best *static* threshold for
the whole day.

Run:  python examples/dynamic_user.py
"""

from repro import CostParams, MobilityParams
from repro.geometry import HexTopology
from repro.simulation import SimulationEngine
from repro.strategies import DistanceStrategy, DynamicStrategy

PRICES = CostParams(update_cost=30.0, poll_cost=1.0)
#: (phase name, q, c, slots)
DAY = [
    ("morning commute", 0.50, 0.005, 40_000),
    ("office hours", 0.02, 0.030, 40_000),
    ("evening commute", 0.50, 0.005, 40_000),
    ("home", 0.05, 0.010, 40_000),
]


def run_day(strategy_factory, seed):
    """Run the four phases continuously with one strategy instance."""
    topology = HexTopology()
    strategy = strategy_factory()
    total_cost = 0.0
    total_slots = 0
    log = []
    position = topology.origin
    for phase, q, c, slots in DAY:
        engine = SimulationEngine(
            topology,
            strategy,
            MobilityParams(q, c),
            PRICES,
            seed=seed,
            start=position,
        )
        snapshot = engine.run(slots)
        position = engine.walk.position
        total_cost += snapshot.mean_total_cost * slots
        total_slots += slots
        log.append((phase, q, c, snapshot.mean_total_cost, strategy))
        seed += 1
    return total_cost / total_slots, log


def main() -> None:
    print("Dynamic strategy through the day:")
    dynamic_cost, log = run_day(
        lambda: DynamicStrategy(
            PRICES, max_delay=2, smoothing=0.003, recompute_interval=8
        ),
        seed=100,
    )
    for phase, q, c, cost, strategy in log:
        print(
            f"  {phase:16s} (q={q:<5} c={c:<5}) cost/slot={cost:.4f}  "
            f"threshold now d={strategy.threshold}  "
            f"q_hat={strategy.q_hat:.3f} c_hat={strategy.c_hat:.3f}"
        )
    print(f"  whole-day average cost: {dynamic_cost:.4f}")

    print("\nStatic thresholds for comparison (same traces):")
    best_static = None
    for d in range(0, 7):
        static_cost, _ = run_day(
            lambda d=d: DistanceStrategy(d, max_delay=2), seed=100
        )
        marker = ""
        if best_static is None or static_cost < best_static[1]:
            best_static = (d, static_cost)
        print(f"  static d={d}: whole-day cost {static_cost:.4f}{marker}")
    d_best, static_best_cost = best_static
    delta = 1 - dynamic_cost / static_best_cost
    verdict = "cheaper than" if delta > 0 else "within"
    print(
        f"\nBest static threshold d={d_best} costs {static_best_cost:.4f}; "
        f"the adaptive scheme achieves {dynamic_cost:.4f} -- {abs(delta):.1%} "
        f"{verdict} the best static policy, found without knowing (q, c) "
        "for any phase in advance."
    )


if __name__ == "__main__":
    main()
