"""City scenario: a heterogeneous subscriber population on the hex grid.

Builds the multi-terminal PCN of :mod:`repro.simulation.network` with
three user classes (office workers, couriers, a stationary kiosk), each
given its *own* analytically optimal threshold -- the per-user tuning
the paper argues static LA schemes cannot do.  The simulation then
verifies the analytic predictions class by class and reports
network-level effects: signaling load concentration and location
register churn.

Run:  python examples/city_2d.py
"""

from repro import (
    CostParams,
    MobilityParams,
    TwoDimensionalModel,
    find_optimal_threshold,
)
from repro.geometry import HexTopology
from repro.simulation import PCNetwork
from repro.strategies import DistanceStrategy

SLOTS = 60_000
MAX_DELAY = 2
PRICES = CostParams(update_cost=40.0, poll_cost=2.0)

#: (label, q, c, population): three very different mobility profiles.
USER_CLASSES = [
    ("office worker", 0.02, 0.02, 4),
    ("courier", 0.40, 0.01, 4),
    ("kiosk terminal", 0.001, 0.05, 2),
]


def main() -> None:
    topology = HexTopology()
    network = PCNetwork(topology, PRICES, seed=2026)

    print("Per-class optimal thresholds (analytic):")
    assignments = []
    for label, q, c, population in USER_CLASSES:
        mobility = MobilityParams(q, c)
        solution = find_optimal_threshold(
            TwoDimensionalModel(mobility), PRICES, MAX_DELAY, convention="physical"
        )
        print(
            f"  {label:15s} q={q:<6} c={c:<5} -> d*={solution.threshold}, "
            f"predicted C_T={solution.total_cost:.4f}"
        )
        for _ in range(population):
            terminal = network.add_terminal(
                DistanceStrategy(solution.threshold, max_delay=MAX_DELAY), mobility
            )
            assignments.append((label, terminal, solution.total_cost))

    print(f"\nSimulating {len(network.terminals)} terminals for {SLOTS} slots...")
    network.run(SLOTS)

    print("\nMeasured vs predicted cost per class:")
    by_class = {}
    for label, terminal, predicted in assignments:
        snap = terminal.engine.meter.snapshot()
        by_class.setdefault(label, []).append((snap.mean_total_cost, predicted))
    for label, pairs in by_class.items():
        measured = sum(m for m, _ in pairs) / len(pairs)
        predicted = pairs[0][1]
        err = abs(measured - predicted) / predicted if predicted else 0.0
        print(
            f"  {label:15s} measured {measured:.4f}  predicted {predicted:.4f}  "
            f"({err:.1%} off)"
        )

    print("\nNetwork-level view:")
    print(f"  location register writes: {network.register.writes}")
    print(f"  base stations touched:    {len(network.stations)}")
    print("  busiest base stations (signaling transactions):")
    for cell, load in network.busiest_stations(5):
        print(f"    cell {cell}: {load}")

    delays = [
        t.engine.meter.snapshot().mean_paging_delay
        for t in network.terminals
        if t.engine.meter.snapshot().calls
    ]
    print(
        f"  mean paging delay across terminals: "
        f"{sum(delays) / len(delays):.3f} cycles (bound {MAX_DELAY})"
    )


if __name__ == "__main__":
    main()
