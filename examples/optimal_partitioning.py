"""Optimal residing-area partitioning -- the paper's future-work item.

The paper partitions rings into equal-count subareas (SDF) and notes
that "an optimal method for partitioning the residing area of the
terminal should be developed".  This example develops it: the dynamic
program of :mod:`repro.paging.optimal` minimizes the expected number of
polled cells over all contiguous partitions under the delay bound, and
this script shows (a) where it differs from SDF, (b) how much it saves
analytically, and (c) that the saving survives a live simulation when
wired into the distance-based strategy.

Run:  python examples/optimal_partitioning.py
"""

from repro import CostParams, MobilityParams, TwoDimensionalModel
from repro.geometry import HexTopology
from repro.paging import optimal_contiguous_partition, sdf_partition
from repro.simulation import run_replicated
from repro.strategies import DistanceStrategy

MOBILITY = MobilityParams(move_probability=0.3, call_probability=0.02)
PRICES = CostParams(update_cost=30.0, poll_cost=1.0)


def main() -> None:
    model = TwoDimensionalModel(MOBILITY)
    topology = model.topology

    print("SDF vs DP-optimal partitions (2-D exact model, q=0.3, c=0.02):")
    print(f"  {'d':>3} {'m':>3}  {'E[cells] SDF':>13} {'E[cells] opt':>13} "
          f"{'saving':>7}  partitions")
    showcase = None
    for d in (4, 6, 8):
        p = model.steady_state(d)
        sizes = [topology.ring_size(i) for i in range(d + 1)]
        for m in (2, 3):
            sdf = sdf_partition(d, m)
            opt = optimal_contiguous_partition(d, m, p, sizes)
            e_sdf = sdf.expected_polled_cells(topology, p)
            e_opt = opt.expected_polled_cells(topology, p)
            saving = 1 - e_opt / e_sdf
            print(
                f"  {d:>3} {m:>3}  {e_sdf:>13.2f} {e_opt:>13.2f} {saving:>7.1%}"
                f"  SDF {sdf.describe()}  |  opt {opt.describe()}"
            )
            if showcase is None or saving > showcase[0]:
                showcase = (saving, d, m, opt)

    saving, d, m, plan = showcase
    print(
        f"\nLargest analytic saving on this grid: {saving:.1%} at d={d}, m={m}."
        "\nValidating in simulation (same seeds for both plans)..."
    )
    common = dict(
        topology=HexTopology(),
        mobility=MOBILITY,
        costs=PRICES,
        slots=150_000,
        replications=3,
        seed=7,
    )
    sdf_result = run_replicated(
        strategy_factory=lambda: DistanceStrategy(d, max_delay=m), **common
    )
    opt_result = run_replicated(
        strategy_factory=lambda: DistanceStrategy(d, max_delay=m, plan=plan), **common
    )
    print(f"  SDF plan:     measured C_v = {sdf_result.mean_paging_cost:.4f} per slot")
    print(f"  optimal plan: measured C_v = {opt_result.mean_paging_cost:.4f} per slot")
    measured_saving = 1 - opt_result.mean_paging_cost / sdf_result.mean_paging_cost
    print(f"  measured paging saving: {measured_saving:.1%} (analytic {saving:.1%})")

    delays_sdf = sdf_result.mean_paging_delay
    delays_opt = opt_result.mean_paging_delay
    print(
        f"  expected paging delay: SDF {delays_sdf:.3f} vs optimal {delays_opt:.3f} "
        f"cycles (both within the bound m={m})"
    )


if __name__ == "__main__":
    main()
