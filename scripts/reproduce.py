#!/usr/bin/env python
"""Regenerate every paper artifact into ``results/`` in one command.

    python scripts/reproduce.py [--outdir results] [--quick]

Produces, under the output directory:

* ``table1.txt`` / ``table1.csv`` -- the full Table 1 reproduction with
  the published values alongside;
* ``table2.txt`` / ``table2.csv`` -- same for Table 2;
* ``fig4a/4b/5a/5b.txt`` / ``.csv`` -- the figure series with ASCII
  plots;
* ``validation.txt`` -- the model-vs-simulation campaign;
* ``SUMMARY.txt`` -- one-page agreement summary.

``--quick`` lowers sweep resolutions and simulation lengths (useful for
CI smoke runs); the default settings match EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

from repro.analysis import (
    check_figure_shape,
    compute_figure4,
    compute_figure5,
    compute_table1,
    compute_table2,
    render_ascii_plot,
    render_table,
    run_validation_campaign,
    table1_rows,
    table2_rows,
    write_csv,
)
from repro.analysis.paper_data import TABLE1, TABLE2


def reproduce_tables(outdir: Path, summary: list) -> None:
    print("reproducing Table 1 ...")
    table1 = compute_table1()
    headers, rows = table1_rows(table1)
    (outdir / "table1.txt").write_text(
        render_table(headers, rows, title="Table 1 (1-D): q=0.05 c=0.01 V=10") + "\n"
    )
    write_csv(outdir / "table1.csv", headers, rows)
    worst = max(
        abs(table1[m][U].total_cost - published.total_cost)
        for m, column in TABLE1.items()
        for U, published in column.items()
    )
    summary.append(f"Table 1: worst |C_T - paper| = {worst:.4f} over 112 cells")

    print("reproducing Table 2 ...")
    table2 = compute_table2()
    headers, rows = table2_rows(table2)
    (outdir / "table2.txt").write_text(
        render_table(headers, rows, title="Table 2 (2-D): q=0.05 c=0.01 V=10") + "\n"
    )
    write_csv(outdir / "table2.csv", headers, rows)
    worst = max(
        max(
            abs(table2[m][U].total_cost - published.total_cost),
            abs(table2[m][U].near_optimal_cost - published.near_optimal_cost),
        )
        for m, column in TABLE2.items()
        for U, published in column.items()
    )
    mismatches = sum(
        (table2[m][U].optimal_d != published.optimal_d)
        + (table2[m][U].near_optimal_d != published.near_optimal_d)
        for m, column in TABLE2.items()
        for U, published in column.items()
    )
    summary.append(
        f"Table 2: worst cost delta = {worst:.4f}, threshold mismatches = {mismatches}"
    )


def reproduce_figures(outdir: Path, summary: list, points: int) -> None:
    jobs = [
        ("fig4a", lambda: compute_figure4(1, points=points)),
        ("fig4b", lambda: compute_figure4(2, points=points)),
        ("fig5a", lambda: compute_figure5(1, points=points)),
        ("fig5b", lambda: compute_figure5(2, points=points)),
    ]
    for name, job in jobs:
        print(f"reproducing {name} ...")
        figure = job()
        problems = check_figure_shape(figure)
        headers, rows = figure.as_rows()
        series = {figure.curve_label(m): ys for m, ys in figure.curves.items()}
        text = "\n".join(
            [
                render_table(headers, rows, title=figure.name),
                "",
                render_ascii_plot(
                    series,
                    figure.x_values,
                    title=f"optimal C_T vs {figure.x_label}",
                ),
                "",
                f"shape violations: {problems or 'none'}",
            ]
        )
        (outdir / f"{name}.txt").write_text(text + "\n")
        write_csv(outdir / f"{name}.csv", headers, rows)
        summary.append(f"{name}: shape violations = {len(problems)}")


def reproduce_validation(outdir: Path, summary: list, slots: int) -> None:
    print("running model-vs-simulation validation ...")
    outcomes = run_validation_campaign(slots=slots, replications=3, seed=11)
    headers = ["case", "predicted", "measured", "rel err", "ok"]
    rows = [
        [
            o.case.label,
            o.comparison.predicted_total,
            o.comparison.measured_total,
            f"{o.comparison.relative_error:.2%}",
            "yes" if o.ok else "NO",
        ]
        for o in outcomes
    ]
    (outdir / "validation.txt").write_text(
        render_table(headers, rows, title="model vs simulation") + "\n"
    )
    failures = sum(not o.ok for o in outcomes)
    summary.append(f"validation: {len(outcomes) - failures}/{len(outcomes)} cases agree")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="results")
    parser.add_argument(
        "--quick", action="store_true", help="reduced resolution for smoke runs"
    )
    args = parser.parse_args(argv)
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    started = time.time()
    summary: list = []
    reproduce_tables(outdir, summary)
    reproduce_figures(outdir, summary, points=5 if args.quick else 13)
    reproduce_validation(outdir, summary, slots=30_000 if args.quick else 120_000)

    elapsed = time.time() - started
    summary.append(f"total wall time: {elapsed:.1f}s")
    text = "Reproduction summary\n" + "\n".join(f"  - {line}" for line in summary)
    (outdir / "SUMMARY.txt").write_text(text + "\n")
    print()
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
