#!/usr/bin/env python
"""Regenerate the golden expectations under tests/golden/expectations/.

    PYTHONPATH=src python scripts/regen_golden.py --force

The golden files pin the analytic pipeline's numbers (Table 1/2,
Figure 4/5 curve samples, per-model cost breakdowns) to 1e-9; see
``tests/golden/test_golden.py``.  To avoid silently blessing a
regression, the script **refuses to overwrite existing files unless
``--force`` is given** -- regeneration is supposed to be a deliberate,
reviewed act, not a side effect.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from tests.golden.compute import EXPECTATIONS_DIR, GOLDEN_PRODUCERS  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force", action="store_true",
        help="overwrite existing expectation files",
    )
    parser.add_argument(
        "--only", nargs="*", choices=sorted(GOLDEN_PRODUCERS),
        help="regenerate only these payloads",
    )
    args = parser.parse_args(argv)

    names = args.only or sorted(GOLDEN_PRODUCERS)
    existing = [
        name for name in names if (EXPECTATIONS_DIR / f"{name}.json").exists()
    ]
    if existing and not args.force:
        print(
            "refusing to overwrite existing golden files without --force: "
            + ", ".join(existing),
            file=sys.stderr,
        )
        print(
            "(golden regeneration must be deliberate -- rerun with --force "
            "and review the diff)",
            file=sys.stderr,
        )
        return 1

    EXPECTATIONS_DIR.mkdir(parents=True, exist_ok=True)
    for name in names:
        payload = GOLDEN_PRODUCERS[name]()
        path = EXPECTATIONS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
