"""Crash-safe JSON persistence shared by every on-disk artifact.

Three subsystems write JSON state that must never be observed
half-written: simulation checkpoints
(:func:`repro.simulation.runner.run_replicated`), the sweep result
cache (:mod:`repro.analysis.sweep`), and fleet checkpoints
(:mod:`repro.simulation.fleet`).  All of them go through
:func:`atomic_write_json`: serialize to a temporary file in the target
directory, fsync, then :func:`os.replace` over the destination --
readers only ever see the old payload or the complete new one.

The error path is as important as the happy path.  Serialization can
fail *after* the temporary file exists (a payload that is not
JSON-representable, a full disk, an interrupt), and historically that
orphaned ``*.tmp`` files next to every checkpoint and cache entry.
This helper guarantees that on any failure the temporary file is
unlinked and the file descriptor from :func:`tempfile.mkstemp` is
closed, whether the failure happens in ``fdopen``, ``json.dump``,
``fsync``, or the final rename.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_json"]


def atomic_write_json(path: Union[str, Path], payload: object) -> Path:
    """Atomically serialize ``payload`` as JSON to ``path``.

    Write-to-temp + fsync + rename in ``path``'s own directory (rename
    is only atomic within a filesystem).  On *any* failure the
    temporary file is removed and the original file -- if one existed
    -- is left untouched; the exception propagates unchanged.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    fd_owned = True
    try:
        with os.fdopen(fd, "w") as handle:
            fd_owned = False  # fdopen succeeded; the handle owns fd now
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        if fd_owned:
            try:
                os.close(fd)
            except OSError:
                pass
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
