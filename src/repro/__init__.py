"""repro -- reproduction of Akyildiz & Ho (SIGCOMM '95).

"A Mobile User Location Update and Paging Mechanism Under Delay
Constraints": distance-based location update combined with
delay-constrained shortest-distance-first paging for cellular personal
communication networks, with Markov-chain cost analysis and optimal
threshold selection.

Quick start::

    from repro import (
        MobilityParams, CostParams, TwoDimensionalModel,
        find_optimal_threshold,
    )

    user = MobilityParams(move_probability=0.05, call_probability=0.01)
    prices = CostParams(update_cost=100.0, poll_cost=10.0)
    solution = find_optimal_threshold(
        TwoDimensionalModel(user), prices, max_delay=3
    )
    print(solution.threshold, solution.total_cost)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from .core import (
    BaselineCosts,
    CostBreakdown,
    CostCurve,
    CostEvaluator,
    CostParams,
    CostSurface,
    CostSurfaceGrid,
    DEFAULT_MAX_THRESHOLD,
    MobilityModel,
    MobilityParams,
    NearOptimalSolution,
    OneDimensionalModel,
    OptimizationResult,
    Policy,
    PolicyMetrics,
    ResetChain,
    SoftDelayPolicy,
    SquareGridApproximateModel,
    SquareGridModel,
    ThresholdSolution,
    TransientAnalysis,
    TwoDimensionalApproximateModel,
    TwoDimensionalModel,
    batched_steady_states,
    batched_update_costs,
    batched_update_rates,
    compute_cost_surface,
    compute_surface,
    derive_metrics,
    distribution_at,
    exhaustive_search,
    find_optimal_threshold,
    hill_climb,
    location_area_costs,
    misestimation_regret,
    mixing_time,
    movement_based_costs,
    movement_staged_costs,
    near_optimal_threshold,
    optimal_la_radius,
    optimal_movement_threshold,
    optimal_soft_delay_partition,
    optimal_staged_movement_threshold,
    optimal_timer_period,
    optimize_soft_delay,
    regret_surface,
    simulated_annealing,
    time_based_costs,
    transient_cost,
)
from .exceptions import (
    FaultInjectionError,
    ParameterError,
    PartitionError,
    RecoveryExhaustedError,
    ReproError,
    SimulationError,
    SolverError,
)
from .geometry import HexTopology, LineTopology, SquareTopology
from .paging import (
    PagingPlan,
    blanket_partition,
    density_ordered_partition,
    optimal_contiguous_partition,
    per_ring_partition,
    sdf_partition,
)

__version__ = "1.0.0"

__all__ = [
    "BaselineCosts",
    "CostBreakdown",
    "CostCurve",
    "CostEvaluator",
    "CostParams",
    "CostSurface",
    "CostSurfaceGrid",
    "DEFAULT_MAX_THRESHOLD",
    "FaultInjectionError",
    "HexTopology",
    "LineTopology",
    "MobilityModel",
    "MobilityParams",
    "NearOptimalSolution",
    "OneDimensionalModel",
    "OptimizationResult",
    "PagingPlan",
    "Policy",
    "PolicyMetrics",
    "ParameterError",
    "PartitionError",
    "RecoveryExhaustedError",
    "ReproError",
    "ResetChain",
    "SimulationError",
    "SoftDelayPolicy",
    "SolverError",
    "SquareGridApproximateModel",
    "SquareGridModel",
    "SquareTopology",
    "ThresholdSolution",
    "TransientAnalysis",
    "TwoDimensionalApproximateModel",
    "TwoDimensionalModel",
    "blanket_partition",
    "batched_steady_states",
    "batched_update_costs",
    "batched_update_rates",
    "compute_cost_surface",
    "compute_surface",
    "density_ordered_partition",
    "derive_metrics",
    "distribution_at",
    "exhaustive_search",
    "find_optimal_threshold",
    "hill_climb",
    "location_area_costs",
    "mixing_time",
    "movement_based_costs",
    "movement_staged_costs",
    "misestimation_regret",
    "near_optimal_threshold",
    "optimal_contiguous_partition",
    "optimal_la_radius",
    "optimal_movement_threshold",
    "optimal_staged_movement_threshold",
    "optimal_timer_period",
    "optimize_soft_delay",
    "per_ring_partition",
    "regret_surface",
    "sdf_partition",
    "simulated_annealing",
    "time_based_costs",
    "transient_cost",
    "__version__",
]
