"""Check registry and result types for the conformance subsystem.

A *check* is a named, registered piece of executable knowledge about
how the library's five analytic models and three simulation backends
must behave.  Two kinds exist:

* **oracles** pair two independent implementations of the same
  quantity (closed form vs recursion, scalar vs batched, per-cell
  engine vs vectorized engine, ...) and assert agreement at a declared
  tolerance;
* **invariants** encode paper-derived structural relations (probability
  normalization, eqn-(5) balance, cost monotonicities, the
  ``C_T(d, d+1) = C_T(d, infinity)`` saturation, ...) that must hold at
  *every* parameter point, not just the golden-pinned ones.

Every check maps a :class:`ConformanceConfig` -- one sampled
``(model, q, c, U, V, d, m)`` operating point -- to a *deviation*: a
non-negative float that is zero (or tiny) when the property holds and
grows with the size of the violation.  The registry turns deviations
into :class:`CheckResult` records carrying the tolerance margin, and on
failure a minimized repro snippet (parameters + check id) so a red
conformance run is immediately actionable.

Checks are registered declaratively::

    @REGISTRY.invariant(
        "steady-state-normalized",
        tolerance=1e-9,
        paper_ref="eqn (4)",
        description="steady-state probabilities sum to 1",
    )
    def _steady_normalized(config: ConformanceConfig) -> Deviation:
        ...

The module-level :data:`REGISTRY` is populated by importing
:mod:`repro.conformance.oracles` and :mod:`repro.conformance.invariants`
(done in the package ``__init__``); tests build private
:class:`CheckRegistry` instances to exercise registration mechanics in
isolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..core.parameters import (
    CostParams,
    MobilityParams,
    validate_delay,
    validate_threshold,
)
from ..exceptions import ParameterError

__all__ = [
    "CheckResult",
    "CheckSkipped",
    "ConformanceCheck",
    "ConformanceConfig",
    "CheckRegistry",
    "Deviation",
    "REGISTRY",
]


class CheckSkipped(Exception):
    """Raised by a check body to report it does not apply after all.

    Prefer the registration-time ``applies`` predicate; this exception
    covers conditions only discoverable mid-run (e.g. a model without a
    closed-form solver).
    """


@dataclass(frozen=True)
class Deviation:
    """How far a configuration is from satisfying a check.

    ``value`` is non-negative and compared against the check's declared
    tolerance; ``detail`` is a human-readable account of what was
    measured (worst pair, offending threshold, ...).
    """

    value: float
    detail: str = ""

    def __post_init__(self) -> None:
        if not (self.value >= 0.0 or math.isnan(self.value)):
            raise ParameterError(
                f"deviation must be >= 0, got {self.value} ({self.detail!r})"
            )


@dataclass(frozen=True)
class ConformanceConfig:
    """One sampled operating point a check runs against.

    ``model_name`` keys :data:`repro.analysis.sweep.MODEL_CLASSES`.
    ``d_max`` bounds curve-shaped checks (monotonicity sweeps, batched
    surfaces); ``sim_slots``/``sim_replications`` size the
    simulation-backed checks, which skip themselves when
    ``sim_slots == 0``.

    ``model_factory``, ``plan_factory``, and ``walk_factory`` are
    test-only escape hatches: when set, they replace the registered
    model class, the paper's SDF partition, and the mobility checks'
    CTRW specifications respectively, letting the conformance
    test-suite feed deliberately-broken implementations through real
    checks to prove each one can fail.  None appears in reports or
    fingerprints.  ``walk_factory`` is called as
    ``walk_factory(kind, config) -> CTRWSpec`` with the kind strings
    documented in :mod:`repro.conformance.mobility`.
    """

    model_name: str
    q: float
    c: float
    update_cost: float
    poll_cost: float
    d: int
    m: float
    d_max: int = 12
    convention: str = "paper"
    sim_slots: int = 0
    sim_replications: int = 3
    seed: int = 0
    pool_workers: int = 0
    model_factory: Optional[Callable[[MobilityParams], object]] = field(
        default=None, repr=False, compare=False
    )
    plan_factory: Optional[Callable] = field(
        default=None, repr=False, compare=False
    )
    walk_factory: Optional[Callable] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        validate_threshold(self.d)
        validate_threshold(self.d_max)
        validate_delay(self.m)
        if self.d > self.d_max:
            raise ParameterError(
                f"config d={self.d} exceeds its own d_max={self.d_max}"
            )

    # -- construction ---------------------------------------------------

    def mobility(self) -> MobilityParams:
        return MobilityParams(move_probability=self.q, call_probability=self.c)

    def costs(self) -> CostParams:
        return CostParams(update_cost=self.update_cost, poll_cost=self.poll_cost)

    def build_model(self):
        """The mobility model this config describes."""
        if self.model_factory is not None:
            return self.model_factory(self.mobility())
        from ..analysis.sweep import MODEL_CLASSES  # deferred: avoid cycle

        if self.model_name not in MODEL_CLASSES:
            raise ParameterError(
                f"unknown model {self.model_name!r}; "
                f"known: {sorted(MODEL_CLASSES)}"
            )
        return MODEL_CLASSES[self.model_name](self.mobility())

    def build_evaluator(self, plan_factory=None):
        from ..core.costs import CostEvaluator  # deferred: avoid cycle

        return CostEvaluator(
            self.build_model(),
            self.costs(),
            plan_factory=plan_factory or self.plan_factory,
            convention=self.convention,
        )

    # -- serialization --------------------------------------------------

    def as_params(self) -> Dict[str, object]:
        """JSON-safe parameter mapping (drives reports and repros)."""
        return {
            "model": self.model_name,
            "q": self.q,
            "c": self.c,
            "U": self.update_cost,
            "V": self.poll_cost,
            "d": self.d,
            "m": "inf" if self.m == math.inf else self.m,
            "d_max": self.d_max,
            "convention": self.convention,
            "sim_slots": self.sim_slots,
            "sim_replications": self.sim_replications,
            "seed": self.seed,
            "pool_workers": self.pool_workers,
        }

    @classmethod
    def from_params(cls, params: Dict[str, object]) -> "ConformanceConfig":
        """Inverse of :meth:`as_params` (reads report records back)."""
        required = ("model", "q", "c", "U", "V", "d", "m")
        missing = [key for key in required if key not in params]
        if missing:
            raise ParameterError(
                f"conformance params missing {missing}; expected the keys of "
                f"ConformanceConfig.as_params(): {required} "
                f"(plus optional d_max/convention/sim_slots/"
                f"sim_replications/seed/pool_workers)"
            )
        m = params["m"]
        m = math.inf if m in ("inf", math.inf) else int(m)
        return cls(
            model_name=str(params["model"]),
            q=float(params["q"]),
            c=float(params["c"]),
            update_cost=float(params["U"]),
            poll_cost=float(params["V"]),
            d=int(params["d"]),
            m=m,
            d_max=int(params.get("d_max", 12)),
            convention=str(params.get("convention", "paper")),
            sim_slots=int(params.get("sim_slots", 0)),
            sim_replications=int(params.get("sim_replications", 3)),
            seed=int(params.get("seed", 0)),
            pool_workers=int(params.get("pool_workers", 0)),
        )

    def repro_snippet(self, check_id: str) -> str:
        """A copy-pasteable one-check reproduction of this config."""
        pairs = ", ".join(
            f"{key}={value!r}" for key, value in self.as_params().items()
        )
        return (
            f"# reproduce conformance check {check_id!r}\n"
            f"from repro.conformance import run_single\n"
            f"result = run_single({check_id!r}, {pairs})\n"
            f"print(result.status, result.deviation, result.detail)\n"
        )


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one check at one configuration."""

    check_id: str
    kind: str
    status: str  # "pass" | "fail" | "skip"
    tolerance: float
    deviation: float
    detail: str
    params: Dict[str, object]
    paper_ref: str = ""
    repro: Optional[str] = None

    @property
    def margin(self) -> float:
        """Headroom below the tolerance (negative when failing)."""
        if math.isnan(self.deviation):
            return -math.inf
        return self.tolerance - self.deviation

    def to_dict(self) -> Dict[str, object]:
        # "check_kind", not "kind": the observability artifact writer
        # uses the top-level "kind" key as its record discriminator
        # (these records are stored with kind="check").
        return {
            "check_id": self.check_id,
            "check_kind": self.kind,
            "status": self.status,
            "tolerance": self.tolerance,
            "deviation": None if math.isnan(self.deviation) else self.deviation,
            "margin": None if math.isnan(self.deviation) else self.margin,
            "detail": self.detail,
            "params": self.params,
            "paper_ref": self.paper_ref,
            "repro": self.repro,
        }


@dataclass(frozen=True)
class ConformanceCheck:
    """One registered check: identity, tolerance, applicability, body."""

    check_id: str
    kind: str  # "oracle" | "invariant"
    description: str
    paper_ref: str
    tolerance: float
    body: Callable[[ConformanceConfig], Deviation]
    applies: Callable[[ConformanceConfig], bool]

    def run(self, config: ConformanceConfig) -> CheckResult:
        """Execute the body and fold the deviation into a result."""
        params = config.as_params()
        if not self.applies(config):
            return CheckResult(
                check_id=self.check_id,
                kind=self.kind,
                status="skip",
                tolerance=self.tolerance,
                deviation=0.0,
                detail="not applicable to this configuration",
                params=params,
                paper_ref=self.paper_ref,
            )
        try:
            deviation = self.body(config)
        except CheckSkipped as skip:
            return CheckResult(
                check_id=self.check_id,
                kind=self.kind,
                status="skip",
                tolerance=self.tolerance,
                deviation=0.0,
                detail=str(skip) or "skipped by check body",
                params=params,
                paper_ref=self.paper_ref,
            )
        failed = math.isnan(deviation.value) or deviation.value > self.tolerance
        return CheckResult(
            check_id=self.check_id,
            kind=self.kind,
            status="fail" if failed else "pass",
            tolerance=self.tolerance,
            deviation=deviation.value,
            detail=deviation.detail,
            params=params,
            paper_ref=self.paper_ref,
            repro=config.repro_snippet(self.check_id) if failed else None,
        )


def _always(config: ConformanceConfig) -> bool:
    return True


class CheckRegistry:
    """Ordered registry of conformance checks, keyed by id."""

    def __init__(self) -> None:
        self._checks: Dict[str, ConformanceCheck] = {}

    # -- registration ---------------------------------------------------

    def register(
        self,
        check_id: str,
        kind: str,
        tolerance: float,
        description: str = "",
        paper_ref: str = "",
        applies: Optional[Callable[[ConformanceConfig], bool]] = None,
    ) -> Callable:
        """Decorator registering ``body`` under ``check_id``."""
        if kind not in ("oracle", "invariant"):
            raise ParameterError(
                f"check kind must be 'oracle' or 'invariant', got {kind!r}"
            )
        if tolerance < 0:
            raise ParameterError(f"tolerance must be >= 0, got {tolerance}")
        if check_id in self._checks:
            raise ParameterError(f"check {check_id!r} registered twice")

        def decorate(body: Callable[[ConformanceConfig], Deviation]):
            self._checks[check_id] = ConformanceCheck(
                check_id=check_id,
                kind=kind,
                description=description or (body.__doc__ or "").strip(),
                paper_ref=paper_ref,
                tolerance=tolerance,
                body=body,
                applies=applies or _always,
            )
            return body

        return decorate

    def oracle(self, check_id: str, tolerance: float, **kwargs) -> Callable:
        return self.register(check_id, "oracle", tolerance, **kwargs)

    def invariant(self, check_id: str, tolerance: float, **kwargs) -> Callable:
        return self.register(check_id, "invariant", tolerance, **kwargs)

    # -- lookup ---------------------------------------------------------

    def __contains__(self, check_id: str) -> bool:
        return check_id in self._checks

    def __len__(self) -> int:
        return len(self._checks)

    def __repr__(self) -> str:
        # Stable (address-free): this repr appears in generated API
        # docs as the default of run_conformance/run_single.
        return (
            f"CheckRegistry({len(self.oracles())} oracles, "
            f"{len(self.invariants())} invariants)"
        )

    def get(self, check_id: str) -> ConformanceCheck:
        try:
            return self._checks[check_id]
        except KeyError:
            raise ParameterError(
                f"unknown conformance check {check_id!r}; "
                f"known: {sorted(self._checks)}"
            ) from None

    def all(self) -> List[ConformanceCheck]:
        return list(self._checks.values())

    def oracles(self) -> List[ConformanceCheck]:
        return [c for c in self._checks.values() if c.kind == "oracle"]

    def invariants(self) -> List[ConformanceCheck]:
        return [c for c in self._checks.values() if c.kind == "invariant"]

    def ids(self) -> List[str]:
        return list(self._checks)

    # -- execution ------------------------------------------------------

    def run_check(
        self, check_id: str, config: ConformanceConfig, minimize: bool = True
    ) -> CheckResult:
        """Run one check; on failure, attach a *minimized* repro.

        Minimization greedily shrinks the failing configuration --
        smaller ``d``/``d_max``, then ``m`` collapsed toward 1, then the
        simulation budget -- re-running the check at each candidate and
        keeping the smallest configuration that still fails, so the
        repro snippet names the simplest known-bad point rather than
        whatever the sampler happened to draw.
        """
        check = self.get(check_id)
        result = check.run(config)
        if result.status != "fail" or not minimize:
            return result
        minimal = self._minimize(check, config)
        if minimal is not config:
            shrunk = check.run(minimal)
            if shrunk.status == "fail":  # pragma: no branch
                return replace(
                    result,
                    repro=minimal.repro_snippet(check.check_id),
                    detail=result.detail
                    + f" [minimized from d={config.d}, d_max={config.d_max}]",
                )
        return result

    @staticmethod
    def _shrink_candidates(config: ConformanceConfig):
        """Candidate reductions, most aggressive first."""
        for d in sorted({0, 1, config.d // 2}):
            if d < config.d:
                yield replace(config, d=d, d_max=max(d, min(config.d_max, 4)))
        if config.d_max > config.d:
            yield replace(config, d_max=config.d)
        if config.m not in (1, math.inf) and config.m > 1:
            yield replace(config, m=1)
        if config.sim_slots > 10_000:
            yield replace(config, sim_slots=10_000)

    def _minimize(
        self, check: ConformanceCheck, config: ConformanceConfig
    ) -> ConformanceConfig:
        current = config
        for _ in range(8):  # bounded: each round strictly shrinks
            for candidate in self._shrink_candidates(current):
                try:
                    still_failing = check.run(candidate).status == "fail"
                except Exception:  # candidate out of a helper's domain
                    continue
                if still_failing:
                    current = candidate
                    break
            else:
                break
        return current


#: The default registry every shipped oracle and invariant registers
#: into (populated by the package ``__init__`` importing the check
#: modules).
REGISTRY = CheckRegistry()
