"""Simulation-as-oracle conformance checks for CTRW mobility.

The analytic tier cross-checks implementations of the *paper's* model
against each other.  This tier treats the simulator itself as the
oracle for mobility processes the paper's chain cannot describe, and
pins the structural laws that make the CTRW extension trustworthy:

* **degeneracy** -- CTRW with geometric (memoryless) residence at a
  matched rate is *distributionally identical* to the uniform walk
  under the independent slot semantics, so the two engines' meters
  must agree statistically (``ctrw-exp-degenerates-to-uniform``), and
  the approximate analytic model must still converge on it
  (``ctrw-exp-approximation-converges``);
* **engine equivalence** -- the per-cell engine with a
  ``CTRWSpec.walker_factory()`` and the vectorized counter-RNG CTRW
  path realise the same process (``ctrw-engine-vs-vectorized``);
* **variance ordering** -- at matched mean residence, total cost
  strictly *decreases* with residence-time variance (deterministic >
  geometric > hyperexponential): by the inspection paradox a call is
  more likely to land inside a long residence, during which the
  terminal has not moved -- the qualitative law arXiv 0904.0771
  derives for paging under heavy-tailed mobility
  (``ctrw-variance-orders-cost``);
* **paging-order optimality** -- at the pinned drifted operating
  point the empirically-fed partition DP beats the paper's SDF plan
  with a strict margin (``ctrw-drift-breaks-sdf``), while at the
  pinned drift-free low-mobility point the DP *recovers* the SDF plan
  (``ctrw-no-drift-recovers-sdf``) -- the heuristic is exactly right
  in the regime the paper assumed;
* **determinism** -- the CTRW counter-RNG path is bit-reproducible
  under identical seeds (``ctrw-seed-determinism``).

``config.walk_factory(kind, config)`` is the test-only escape hatch:
the suite's tests substitute broken specs for the kind strings below
to prove every check can fail.  Kinds: ``"exp"`` (matched-rate
geometric), ``"hyper"`` (high-variance engine-equivalence spec),
``"var-low"``/``"var-mid"``/``"var-high"`` (matched-mean variance
ladder), ``"drift"`` (pinned drifted point), ``"drift0"`` (pinned
drift-free point).
"""

from __future__ import annotations

import math
from functools import partial

from .checks import ConformanceConfig, Deviation, REGISTRY
from .oracles import bitwise_agreement, replicated_agreement

__all__ = ["default_walk_spec", "MOBILITY_CHECK_IDS"]

#: Check ids registered by this module, in registration order.
MOBILITY_CHECK_IDS = (
    "ctrw-exp-degenerates-to-uniform",
    "ctrw-engine-vs-vectorized",
    "ctrw-seed-determinism",
    "ctrw-variance-orders-cost",
    "ctrw-drift-breaks-sdf",
    "ctrw-no-drift-recovers-sdf",
    "ctrw-exp-approximation-converges",
)

#: Pinned operating points (measured in DESIGN.md Section 15): the
#: drifted point where SDF is strictly suboptimal, and the drift-free
#: low-mobility point where the DP recovers SDF exactly.
_DRIFT_POINT = dict(q=0.3, c=0.1, d=2, m=2, drift=0.8)
_NO_DRIFT_POINT = dict(q=0.05, c=0.1, d=2, m=2)

#: Matched-mean (E[T] = 4 slots) variance ladder for the ordering law.
_VARIANCE_MEAN = 4.0
_VARIANCE_CV2_HIGH = 9.0

#: Strict margins for the ordering/optimality laws, all comfortably
#: below the measured effects (gaps of 0.4-1.5 cost units; ~17-21%
#: paging improvement under drift) yet far above replication noise.
_VARIANCE_MARGIN = 0.15
_DRIFT_IMPROVEMENT_MARGIN = 0.03
_NO_DRIFT_TOLERANCE = 0.01


def default_walk_spec(kind: str, config: ConformanceConfig):
    """The shipped :class:`~repro.mobility.ctrw.CTRWSpec` per kind.

    Pinned-point kinds (``var-*``, ``drift``, ``drift0``) ignore the
    config's ``(q, c)`` -- their operating points are part of the
    check's identity -- while ``exp``/``hyper`` match the config's
    move rate so the degeneracy/equivalence oracles run at the sampled
    point.
    """
    from ..mobility.ctrw import CTRWSpec  # deferred: keep imports light
    from ..mobility.residence import (
        DeterministicResidence,
        GeometricResidence,
        HyperexponentialResidence,
    )

    if kind == "exp":
        return CTRWSpec(residence=GeometricResidence(config.q))
    if kind == "hyper":
        mean = max(2.0, 1.0 / config.q)
        return CTRWSpec(residence=HyperexponentialResidence.fit(mean, 8.0))
    if kind == "var-low":
        return CTRWSpec(residence=DeterministicResidence(int(_VARIANCE_MEAN)))
    if kind == "var-mid":
        return CTRWSpec(residence=GeometricResidence(1.0 / _VARIANCE_MEAN))
    if kind == "var-high":
        return CTRWSpec(
            residence=HyperexponentialResidence.fit(
                _VARIANCE_MEAN, _VARIANCE_CV2_HIGH
            )
        )
    if kind == "drift":
        return CTRWSpec(
            residence=GeometricResidence(_DRIFT_POINT["q"]),
            drift=_DRIFT_POINT["drift"],
        )
    if kind == "drift0":
        return CTRWSpec(residence=GeometricResidence(_NO_DRIFT_POINT["q"]))
    raise ValueError(f"unknown walk kind {kind!r}")


def _walk(config: ConformanceConfig, kind: str):
    factory = config.walk_factory or default_walk_spec
    return factory(kind, config)


def _vectorized(config, spec, *, q, c, d, m, slots, terminals, seed, **kwargs):
    from ..core.parameters import CostParams, MobilityParams  # deferred
    from ..simulation.vectorized import VectorizedDistanceEngine  # deferred

    model = config.build_model()
    engine = VectorizedDistanceEngine(
        topology=model.topology,
        threshold=d,
        mobility=MobilityParams(move_probability=q, call_probability=c),
        costs=CostParams(
            update_cost=config.update_cost, poll_cost=config.poll_cost
        ),
        terminals=terminals,
        max_delay=m,
        seed=seed,
        walk=spec,
        **kwargs,
    )
    return engine


@REGISTRY.oracle(
    "ctrw-exp-degenerates-to-uniform",
    tolerance=1.0,
    paper_ref="Section 2.1",
    description=(
        "CTRW with matched-rate geometric residence is statistically "
        "indistinguishable from the uniform walk"
    ),
    applies=lambda config: config.sim_slots > 0,
)
def _ctrw_exp_degenerates(config: ConformanceConfig) -> Deviation:
    slots = min(config.sim_slots, 6000)
    terminals = 128
    spec = _walk(config, "exp")
    ctrw = _vectorized(
        config, spec, q=config.q, c=config.c, d=config.d, m=config.m,
        slots=slots, terminals=terminals, seed=config.seed,
    ).run(slots)
    uniform = _vectorized(
        config, None, q=config.q, c=config.c, d=config.d, m=config.m,
        slots=slots, terminals=terminals, seed=config.seed,
        event_mode="independent", backend="auto",
    ).run(slots)
    return replicated_agreement(ctrw, uniform)


@REGISTRY.oracle(
    "ctrw-engine-vs-vectorized",
    tolerance=1.0,
    paper_ref="Section 6",
    description=(
        "per-cell engine with a CTRW walker factory matches the "
        "vectorized counter-RNG CTRW path statistically"
    ),
    applies=lambda config: config.sim_slots > 0,
)
def _ctrw_engine_vs_vectorized(config: ConformanceConfig) -> Deviation:
    from ..simulation.runner import run_replicated  # deferred: heavy
    from ..strategies.distance import DistanceStrategy  # deferred

    spec = _walk(config, "hyper")
    model = config.build_model()
    per_cell = run_replicated(
        topology=model.topology,
        strategy_factory=partial(DistanceStrategy, config.d, max_delay=config.m),
        mobility=config.mobility(),
        costs=config.costs(),
        slots=min(config.sim_slots, 2500),
        replications=3,
        seed=config.seed,
        walker_factory=spec.walker_factory(),
    )
    slots = min(config.sim_slots, 4000)
    vectorized = _vectorized(
        config, spec, q=config.q, c=config.c, d=config.d, m=config.m,
        slots=slots, terminals=192, seed=config.seed + 1,
    ).run(slots)
    return replicated_agreement(per_cell, vectorized)


@REGISTRY.oracle(
    "ctrw-seed-determinism",
    tolerance=0.0,
    paper_ref="Section 6",
    description=(
        "the CTRW counter-RNG path is bit-identical across rebuilds "
        "with the same spec and seed"
    ),
    applies=lambda config: config.sim_slots > 0,
)
def _ctrw_seed_determinism(config: ConformanceConfig) -> Deviation:
    slots = min(config.sim_slots, 2000)

    def run_once():
        spec = _walk(config, "hyper")
        return _vectorized(
            config, spec, q=config.q, c=config.c, d=config.d, m=config.m,
            slots=slots, terminals=64, seed=config.seed,
        ).run(slots)

    return bitwise_agreement(run_once(), run_once())


@REGISTRY.invariant(
    "ctrw-variance-orders-cost",
    tolerance=1.0,
    paper_ref="arXiv 0904.0771",
    description=(
        "at matched mean residence, total cost strictly decreases with "
        "residence-time variance (det > geom > hyper)"
    ),
    applies=lambda config: config.sim_slots > 0
    and config.model_name == "2d-exact",
)
def _ctrw_variance_orders_cost(config: ConformanceConfig) -> Deviation:
    q, c = 1.0 / _VARIANCE_MEAN, 0.05
    slots = min(config.sim_slots, 4000)
    costs = []
    for kind in ("var-low", "var-mid", "var-high"):
        engine = _vectorized(
            config, _walk(config, kind), q=q, c=c, d=2, m=2,
            slots=slots, terminals=256, seed=config.seed,
        )
        engine.run(500)
        engine.reset_meters()
        costs.append(engine.run(slots).mean_total_cost)
    low, mid, high = costs
    # Each adjacent gap must clear the margin; the deviation is the
    # worst shortfall normalized by it (<= 1.0 passes even if one gap
    # only just reaches the margin).
    shortfall = max(_VARIANCE_MARGIN - (low - mid), _VARIANCE_MARGIN - (mid - high))
    return Deviation(
        max(0.0, shortfall / _VARIANCE_MARGIN),
        f"total cost det={low:.4g} > geom={mid:.4g} > hyper={high:.4g} "
        f"(margin {_VARIANCE_MARGIN})",
    )


@REGISTRY.invariant(
    "ctrw-drift-breaks-sdf",
    tolerance=0.0,
    paper_ref="Section 2.2 / future work",
    description=(
        "at the pinned drifted point the empirically-fed partition DP "
        "beats the SDF plan by a strict margin"
    ),
    applies=lambda config: config.sim_slots > 0
    and config.model_name == "2d-exact",
)
def _ctrw_drift_breaks_sdf(config: ConformanceConfig) -> Deviation:
    from ..core.parameters import MobilityParams  # deferred
    from ..geometry import HexTopology  # deferred
    from ..paging.empirical import (  # deferred
        empirical_paging_report,
        empirical_ring_distribution,
    )

    point = _DRIFT_POINT
    distribution = empirical_ring_distribution(
        HexTopology(),
        threshold=point["d"],
        mobility=MobilityParams(
            move_probability=point["q"], call_probability=point["c"]
        ),
        walk=_walk(config, "drift"),
        slots=min(config.sim_slots, 4000),
        terminals=256,
        warmup_slots=500,
        seed=config.seed,
    )
    report = empirical_paging_report(
        HexTopology(), point["d"], point["m"], distribution
    )
    if report.plans_equal:
        return Deviation(
            1.0,
            f"DP returned the SDF plan {report.sdf_plan.describe()!r} at the "
            "pinned drifted point",
        )
    shortfall = max(0.0, _DRIFT_IMPROVEMENT_MARGIN - report.improvement)
    return Deviation(
        shortfall / _DRIFT_IMPROVEMENT_MARGIN,
        f"optimal {report.optimal_plan.describe()!r} saves "
        f"{100 * report.improvement:.1f}% over SDF "
        f"{report.sdf_plan.describe()!r} (margin "
        f"{100 * _DRIFT_IMPROVEMENT_MARGIN:.0f}%)",
    )


@REGISTRY.invariant(
    "ctrw-no-drift-recovers-sdf",
    tolerance=1.0,
    paper_ref="Section 2.2",
    description=(
        "at the pinned drift-free low-mobility point the partition DP "
        "recovers the SDF plan"
    ),
    applies=lambda config: config.sim_slots > 0
    and config.model_name == "2d-exact",
)
def _ctrw_no_drift_recovers_sdf(config: ConformanceConfig) -> Deviation:
    from ..core.parameters import MobilityParams  # deferred
    from ..geometry import HexTopology  # deferred
    from ..paging.empirical import (  # deferred
        empirical_paging_report,
        empirical_ring_distribution,
    )

    point = _NO_DRIFT_POINT
    distribution = empirical_ring_distribution(
        HexTopology(),
        threshold=point["d"],
        mobility=MobilityParams(
            move_probability=point["q"], call_probability=point["c"]
        ),
        walk=_walk(config, "drift0"),
        slots=min(config.sim_slots, 4000),
        terminals=256,
        warmup_slots=500,
        seed=config.seed,
    )
    report = empirical_paging_report(
        HexTopology(), point["d"], point["m"], distribution
    )
    return Deviation(
        report.improvement / _NO_DRIFT_TOLERANCE,
        f"DP plan {report.optimal_plan.describe()!r} vs SDF "
        f"{report.sdf_plan.describe()!r}: improvement "
        f"{100 * report.improvement:.2f}% (allowed "
        f"{100 * _NO_DRIFT_TOLERANCE:.0f}%)",
    )


@REGISTRY.oracle(
    "ctrw-exp-approximation-converges",
    tolerance=1.0,
    paper_ref="Section 4",
    description=(
        "the 2-D analytic models converge on simulated uniform and "
        "CTRW-exponential mobility"
    ),
    applies=lambda config: config.sim_slots > 0
    and config.model_name == "2d-exact",
)
def _ctrw_exp_approximation_converges(config: ConformanceConfig) -> Deviation:
    from ..analysis.approximation import approximation_report  # deferred

    spec_factory = None
    if config.walk_factory is not None:
        hatch = config.walk_factory

        def spec_factory(name, q, drift=0.4, cv2=8.0):
            return None if name == "uniform" else hatch("exp", config)

    report = approximation_report(
        q=config.q,
        c=config.c,
        d=config.d,
        m=int(config.m) if config.m != math.inf else config.d + 1,
        update_cost=config.update_cost,
        poll_cost=config.poll_cost,
        slots=min(config.sim_slots, 3000),
        terminals=192,
        warmup_slots=400,
        seed=config.seed,
        models=("uniform", "ctrw-exp"),
        spec_factory=spec_factory,
    )
    worst = max(report.rows, key=lambda row: row.deviation)
    return Deviation(
        worst.deviation,
        f"worst mobility model {worst.mobility!r}: simulated "
        f"{worst.simulated_cost:.4g} vs exact {worst.exact_cost:.4g} "
        f"(normalized deviation {worst.deviation:.3g})",
    )
