"""Differential conformance harness: oracles + metamorphic invariants.

The library computes the paper's quantities through many independent
routes -- closed forms, recursions, matrix solves, a batched triangular
solver, and three simulation backends.  This package makes their mutual
agreement, and the paper's structural laws, continuously checkable:

* :mod:`repro.conformance.checks` -- registry core: configs,
  deviations, results, failure minimization;
* :mod:`repro.conformance.oracles` -- cross-backend agreement checks;
* :mod:`repro.conformance.invariants` -- paper-derived metamorphic
  relations (eqn references on each registration);
* :mod:`repro.conformance.joint` -- cross-scheme invariants pinning
  the jointly optimal policy against the distance-based scheme;
* :mod:`repro.conformance.mobility` -- simulation-as-oracle checks
  for the CTRW mobility extension (degeneracy to the uniform walk,
  variance ordering, empirical paging-order optimality);
* :mod:`repro.conformance.agreement` -- the reusable
  simulation-vs-analysis agreement criterion;
* :mod:`repro.conformance.sampling` -- the ``quick``/``full`` suite
  grids;
* :mod:`repro.conformance.runner` -- suite execution and the JSONL
  report (also ``repro-lm conformance``).

Importing this package populates :data:`REGISTRY` with every shipped
check.
"""

from .checks import (
    REGISTRY,
    CheckRegistry,
    CheckResult,
    CheckSkipped,
    ConformanceCheck,
    ConformanceConfig,
    Deviation,
)
from . import invariants as _invariants  # noqa: F401  (registers checks)
from . import joint as _joint  # noqa: F401  (registers checks)
from . import mobility as _mobility  # noqa: F401  (registers checks)
from . import oracles as _oracles  # noqa: F401  (registers checks)
from .agreement import (
    REL_LIMIT_1D,
    REL_LIMIT_2D,
    agreement_deviation,
    comparison_deviation,
    comparison_ok,
    rel_limit_for_dimensions,
    values_agree,
)
from .invariants import APPROX_TO_EXACT, EXACT_CHAIN_MODELS
from .mobility import MOBILITY_CHECK_IDS, default_walk_spec
from .oracles import bitwise_agreement, replicated_agreement
from .runner import (
    ConformanceReport,
    read_report,
    run_conformance,
    run_single,
    write_report,
)
from .sampling import ALL_MODELS, SUITES, sample_suite

__all__ = [
    "ALL_MODELS",
    "APPROX_TO_EXACT",
    "CheckRegistry",
    "CheckResult",
    "CheckSkipped",
    "ConformanceCheck",
    "ConformanceConfig",
    "ConformanceReport",
    "Deviation",
    "EXACT_CHAIN_MODELS",
    "MOBILITY_CHECK_IDS",
    "REGISTRY",
    "REL_LIMIT_1D",
    "REL_LIMIT_2D",
    "SUITES",
    "agreement_deviation",
    "bitwise_agreement",
    "comparison_deviation",
    "comparison_ok",
    "default_walk_spec",
    "read_report",
    "rel_limit_for_dimensions",
    "replicated_agreement",
    "run_conformance",
    "run_single",
    "sample_suite",
    "values_agree",
    "write_report",
]
