"""Cross-backend oracles: independent implementations must agree.

Every quantity the library computes has at least two producers -- a
closed form and a recursion, a scalar evaluator and a batched
triangular solve, a per-cell simulator and a vectorized one -- and each
oracle here pairs two of them over the sampled configuration, reporting
the worst disagreement as a deviation:

==============================  =============================================
oracle                          pairing
==============================  =============================================
steady-closed-vs-recursive      closed-form solver vs Section-4.1 recursion
steady-recursive-vs-matrix      recursion vs reference linear solve
steady-batched-vs-scalar        triangular batched solve vs per-threshold
cost-curve-batched-vs-scalar    ``cost_curve(method="batched")`` vs scalar
surface-vs-breakdown            ``compute_cost_surface`` cell vs ``breakdown``
optimal-threshold-consistency   exhaustive (batched) vs exhaustive-scalar
engine-vs-vectorized            per-cell engine vs vectorized lattice engine
engine-vs-resilient-nofault     base engine vs fault-free ResilientEngine
serial-vs-pooled                ``run_replicated`` serial vs process pool
fleet-sharded-vs-single         ``run_fleet`` sharded vs one shard
fleet-pooled-vs-inprocess       ``run_fleet`` process pool vs in-process
fleet-vs-vectorized             homogeneous fleet vs vectorized engine
steady-banded-vs-recursive      banded tridiagonal LU vs Section-4.1 recursion
surface-banded-vs-dense         cost surface solved banded vs dense recursion
vectorized-backend-vs-fallback  compiled counter kernel vs its NumPy port
fleet-backend-vs-fallback       compiled fleet kernel vs its NumPy port
vectorized-counter-vs-fleet     counter-mode vectorized vs homogeneous fleet
vectorized-counter-vs-pcg64     counter-RNG backend vs legacy PCG64 backend
==============================  =============================================

Analytic oracles are exact up to float accumulation (tolerances around
``1e-9``); the three simulation oracles are *statistical* -- different
backends consume randomness differently, so they assert agreement
within the joint confidence interval or a 5% relative band, expressed
as a normalized deviation with tolerance 1.0.  ``serial-vs-pooled`` is
the exception: worker count must never change results, so it demands
bit identity (tolerance 0.0) and only runs when the sampler grants a
process pool (``pool_workers >= 2``, the full suite).

The fleet oracles exercise the sharded engine's layout contracts:
``fleet-sharded-vs-single`` holds the seed fixed and re-runs the same
population under several shard counts -- the stateless counter-based
randomness makes event totals *exactly* invariant, so the tolerance is
float-accumulation-sized rather than statistical;
``fleet-pooled-vs-inprocess`` demands bit-identical shard snapshots
between the process-pool and in-process executors (the fleet analogue
of ``serial-vs-pooled``); ``fleet-vs-vectorized`` checks a homogeneous
fleet against the independently-implemented vectorized engine
statistically (the two consume randomness differently by design).

The comparison helpers (:func:`replicated_agreement`,
:func:`bitwise_agreement`) are module-level so the conformance tests
can prove the oracles fail on genuinely mismatched runs without paying
for a broken simulator.
"""

from __future__ import annotations

import math
from functools import partial

import numpy as np

from .checks import CheckSkipped, ConformanceConfig, Deviation, REGISTRY
from ..exceptions import ParameterError

__all__ = ["replicated_agreement", "bitwise_agreement"]

#: Relative band for statistical engine-vs-engine agreement, matching
#: the fault-free equivalence bound in the faults test-suite.
ENGINE_REL_LIMIT = 0.05


def replicated_agreement(result_a, result_b, rel_limit: float = ENGINE_REL_LIMIT) -> Deviation:
    """Normalized disagreement between two replicated simulation runs.

    At most 1.0 when the mean total costs agree within the *joint*
    confidence half-width (``ci_a + ci_b``) or within ``rel_limit``
    relatively -- the same two-criterion shape as
    :func:`repro.conformance.agreement.agreement_deviation`.
    """
    mean_a, mean_b = result_a.mean_total_cost, result_b.mean_total_cost
    delta = abs(mean_a - mean_b)
    joint_ci = result_a.total_cost_ci() + result_b.total_cost_ci()
    ratios = []
    if math.isfinite(joint_ci) and joint_ci > 0:
        ratios.append(delta / joint_ci)
    if mean_a != 0:
        ratios.append((delta / abs(mean_a)) / rel_limit)
    value = min(ratios) if ratios else (0.0 if delta == 0 else math.inf)
    return Deviation(
        value,
        f"means {mean_a:.6g} vs {mean_b:.6g}, joint ci={joint_ci:.3g}",
    )


def bitwise_agreement(result_a, result_b) -> Deviation:
    """Exact agreement between two replicated runs (deviation 0 or gap).

    Compares the per-replication snapshot means as well as the pooled
    means, so a pool that reorders or re-seeds replications is caught
    even if the averages happen to collide.
    """
    if len(result_a.snapshots) != len(result_b.snapshots):
        return Deviation(
            math.inf,
            f"replication counts differ: {len(result_a.snapshots)} "
            f"vs {len(result_b.snapshots)}",
        )
    per_rep = [
        abs(sa.mean_total_cost - sb.mean_total_cost)
        for sa, sb in zip(result_a.snapshots, result_b.snapshots)
    ]
    gap = max([abs(result_a.mean_total_cost - result_b.mean_total_cost)] + per_rep)
    return Deviation(float(gap), f"max per-replication gap {float(gap):.3g}")


def _steady_pair(config: ConformanceConfig, method_a: str, method_b: str) -> Deviation:
    model = config.build_model()
    worst, detail = 0.0, ""
    for d in sorted({config.d, config.d_max}):
        try:
            pa = np.asarray(model.steady_state(d, method_a))
        except ParameterError as exc:
            raise CheckSkipped(str(exc)) from None
        pb = np.asarray(model.steady_state(d, method_b))
        gap = float(np.max(np.abs(pa - pb)))
        if gap >= worst:
            worst, detail = gap, f"d={d}: max |p_{method_a} - p_{method_b}| = {gap:.3g}"
    return Deviation(worst, detail)


@REGISTRY.oracle(
    "steady-closed-vs-recursive",
    tolerance=1e-10,
    paper_ref="Sections 3.2, 4.1",
    description="closed-form steady state equals the recursive solve",
)
def _steady_closed_vs_recursive(config: ConformanceConfig) -> Deviation:
    return _steady_pair(config, "closed_form", "recursive")


@REGISTRY.oracle(
    "steady-recursive-vs-matrix",
    tolerance=1e-10,
    paper_ref="Section 4.1",
    description="recursive steady state equals the reference linear solve",
)
def _steady_recursive_vs_matrix(config: ConformanceConfig) -> Deviation:
    return _steady_pair(config, "recursive", "matrix")


@REGISTRY.oracle(
    "steady-batched-vs-scalar",
    tolerance=1e-10,
    paper_ref="Section 4.1",
    description="triangular batched steady states equal per-threshold solves",
)
def _steady_batched_vs_scalar(config: ConformanceConfig) -> Deviation:
    from ..core.batch import batched_steady_states  # deferred: avoid cycle

    model = config.build_model()
    matrix = batched_steady_states(model, config.d_max)
    worst, detail = 0.0, ""
    for d in range(config.d_max + 1):
        scalar = np.asarray(model.steady_state(d))
        gap = float(np.max(np.abs(matrix[d, : d + 1] - scalar)))
        if gap >= worst:
            worst, detail = gap, f"d={d}: max row gap {gap:.3g}"
    return Deviation(worst, detail)


@REGISTRY.oracle(
    "cost-curve-batched-vs-scalar",
    tolerance=1e-9,
    paper_ref="eqns (61)-(66)",
    description="batched cost curve equals the scalar per-threshold curve",
    applies=lambda config: config.plan_factory is None,
)
def _cost_curve_batched_vs_scalar(config: ConformanceConfig) -> Deviation:
    batched = config.build_evaluator().cost_curve(
        config.m, config.d_max, method="batched"
    )
    scalar = config.build_evaluator().cost_curve(
        config.m, config.d_max, method="scalar"
    )
    gap = float(np.max(np.abs(np.asarray(batched) - np.asarray(scalar))))
    return Deviation(gap, f"max |batched - scalar| = {gap:.3g} over d<=:{config.d_max}")


@REGISTRY.oracle(
    "surface-vs-breakdown",
    tolerance=1e-9,
    paper_ref="eqns (61)-(66)",
    description="cost-surface cell matches the scalar breakdown field-by-field",
    applies=lambda config: config.plan_factory is None,
)
def _surface_vs_breakdown(config: ConformanceConfig) -> Deviation:
    from ..core.batch import compute_cost_surface  # deferred: avoid cycle

    model = config.build_model()
    surface = compute_cost_surface(
        model,
        config.costs(),
        d_max=config.d_max,
        delays=(config.m,),
        convention=config.convention,
    )
    breakdown = config.build_evaluator().breakdown(config.d, config.m)
    k, d = surface.delay_index(config.m), config.d
    gaps = {
        "update": abs(surface.update[d] - breakdown.update_cost),
        "paging": abs(surface.paging[k, d] - breakdown.paging_cost),
        "total": abs(surface.total[k, d] - breakdown.total_cost),
        "cells": abs(surface.expected_cells[k, d] - breakdown.expected_polled_cells),
        "delay": abs(surface.expected_delay[k, d] - breakdown.expected_delay),
    }
    worst_field = max(gaps, key=gaps.get)
    return Deviation(
        float(gaps[worst_field]),
        f"worst field {worst_field!r}: gap {float(gaps[worst_field]):.3g}",
    )


@REGISTRY.oracle(
    "optimal-threshold-consistency",
    tolerance=1e-9,
    paper_ref="eqn (66), Section 5",
    description="batched exhaustive optimum equals the scalar-scan optimum",
    applies=lambda config: config.plan_factory is None,
)
def _optimal_threshold_consistency(config: ConformanceConfig) -> Deviation:
    from ..core.threshold import find_optimal_threshold  # deferred

    model = config.build_model()
    batched = find_optimal_threshold(
        model,
        config.costs(),
        max_delay=config.m,
        d_max=config.d_max,
        method="exhaustive",
        convention=config.convention,
    )
    scalar = find_optimal_threshold(
        model,
        config.costs(),
        max_delay=config.m,
        d_max=config.d_max,
        method="exhaustive-scalar",
        convention=config.convention,
    )
    threshold_gap = abs(batched.threshold - scalar.threshold)
    cost_gap = abs(batched.total_cost - scalar.total_cost)
    return Deviation(
        float(threshold_gap + cost_gap),
        f"d*: {batched.threshold} vs {scalar.threshold}, "
        f"C_T gap {cost_gap:.3g}",
    )


def _run_engine(config: ConformanceConfig, seed_offset: int = 0):
    from ..simulation.runner import run_replicated  # deferred: heavy
    from ..strategies.distance import DistanceStrategy

    model = config.build_model()
    return run_replicated(
        topology=model.topology,
        strategy_factory=partial(DistanceStrategy, config.d, max_delay=config.m),
        mobility=config.mobility(),
        costs=config.costs(),
        slots=config.sim_slots,
        replications=config.sim_replications,
        seed=config.seed + seed_offset,
    )


@REGISTRY.oracle(
    "engine-vs-vectorized",
    tolerance=1.0,
    paper_ref="Section 6",
    description="per-cell engine and vectorized lattice engine agree statistically",
    applies=lambda config: config.sim_slots > 0,
)
def _engine_vs_vectorized(config: ConformanceConfig) -> Deviation:
    from ..simulation.vectorized import VectorizedDistanceEngine  # deferred

    reference = _run_engine(config)
    model = config.build_model()
    vectorized = VectorizedDistanceEngine(
        topology=model.topology,
        threshold=config.d,
        mobility=config.mobility(),
        costs=config.costs(),
        max_delay=config.m,
        terminals=max(16, config.sim_replications * 4),
        seed=config.seed,
    ).run(config.sim_slots)
    return replicated_agreement(reference, vectorized)


@REGISTRY.oracle(
    "engine-vs-resilient-nofault",
    tolerance=1.0,
    paper_ref="Section 6",
    description="fault-free ResilientEngine matches the base engine statistically",
    applies=lambda config: config.sim_slots > 0,
)
def _engine_vs_resilient_nofault(config: ConformanceConfig) -> Deviation:
    from ..faults import ResilientEngine  # deferred: heavy
    from ..simulation.engine import SimulationEngine
    from ..strategies.distance import DistanceStrategy

    model = config.build_model()
    base = SimulationEngine(
        model.topology,
        DistanceStrategy(config.d, max_delay=config.m),
        config.mobility(),
        config.costs(),
        seed=config.seed,
    ).run(config.sim_slots)
    resilient = ResilientEngine(
        topology=model.topology,
        strategy=DistanceStrategy(config.d, max_delay=config.m),
        mobility=config.mobility(),
        costs=config.costs(),
        faults=(),
        seed=config.seed,
    ).run(config.sim_slots)
    delta = abs(base.mean_total_cost - resilient.mean_total_cost)
    if base.mean_total_cost == 0:
        value = 0.0 if delta == 0 else math.inf
    else:
        value = (delta / abs(base.mean_total_cost)) / ENGINE_REL_LIMIT
    return Deviation(
        value,
        f"base {base.mean_total_cost:.6g} vs fault-free resilient "
        f"{resilient.mean_total_cost:.6g}",
    )


@REGISTRY.oracle(
    "serial-vs-pooled",
    tolerance=0.0,
    paper_ref="Section 6",
    description="pooled run_replicated is bit-identical to the serial run",
    applies=lambda config: config.sim_slots > 0 and config.pool_workers >= 2,
)
def _serial_vs_pooled(config: ConformanceConfig) -> Deviation:
    from ..simulation.runner import run_replicated  # deferred: heavy
    from ..strategies.distance import DistanceStrategy

    model = config.build_model()
    common = dict(
        topology=model.topology,
        strategy_factory=partial(DistanceStrategy, config.d, max_delay=config.m),
        mobility=config.mobility(),
        costs=config.costs(),
        slots=config.sim_slots,
        replications=config.sim_replications,
        seed=config.seed,
    )
    serial = run_replicated(workers=None, **common)
    pooled = run_replicated(workers=config.pool_workers, **common)
    return bitwise_agreement(serial, pooled)


#: Fleet-oracle budgets: shard contracts are exact, so a short run is
#: as conclusive as a long one; the statistical cross-check gets a
#: larger (but still CI-sized) slice of the config's slot budget.
_FLEET_TERMINALS = 256
_FLEET_EXACT_SLOTS = 400
_FLEET_STAT_SLOTS = 4_000


def _fleet_spec(config: ConformanceConfig):
    from ..simulation.fleet import FleetSpec  # deferred: heavy

    model = config.build_model()
    return FleetSpec.homogeneous(
        topology=model.topology,
        threshold=config.d,
        mobility=config.mobility(),
        costs=config.costs(),
        max_delay=config.m,
        count=_FLEET_TERMINALS,
    )


@REGISTRY.oracle(
    "fleet-sharded-vs-single",
    tolerance=1e-9,
    paper_ref="Section 6",
    description="fleet totals are invariant under the shard count",
    applies=lambda config: config.sim_slots > 0,
)
def _fleet_sharded_vs_single(config: ConformanceConfig) -> Deviation:
    from ..simulation.fleet import run_fleet  # deferred: heavy

    spec = _fleet_spec(config)
    slots = min(config.sim_slots, _FLEET_EXACT_SLOTS)
    single = run_fleet(spec, slots=slots, shards=1, seed=config.seed)
    worst, detail = 0.0, "all shard layouts agree exactly"
    for shards in (3, 7):
        sharded = run_fleet(spec, slots=slots, shards=shards, seed=config.seed)
        event_gap = max(
            abs(single.moves - sharded.moves),
            abs(single.updates - sharded.updates),
            abs(single.calls - sharded.calls),
            abs(single.polled_cells - sharded.polled_cells),
        )
        scale = max(abs(single.total_cost), 1.0)
        cost_gap = abs(single.total_cost - sharded.total_cost) / scale
        gap = float(event_gap + cost_gap)
        if gap > worst:
            worst = gap
            detail = (
                f"{shards} shards vs 1: event gap {event_gap}, "
                f"rel cost gap {cost_gap:.3g}"
            )
    return Deviation(worst, detail)


@REGISTRY.oracle(
    "fleet-pooled-vs-inprocess",
    tolerance=0.0,
    paper_ref="Section 6",
    description="pooled fleet shards are bit-identical to the in-process run",
    applies=lambda config: config.sim_slots > 0 and config.pool_workers >= 2,
)
def _fleet_pooled_vs_inprocess(config: ConformanceConfig) -> Deviation:
    from ..simulation.fleet import run_fleet  # deferred: heavy

    spec = _fleet_spec(config)
    slots = min(config.sim_slots, _FLEET_EXACT_SLOTS)
    common = dict(slots=slots, shards=4, seed=config.seed)
    in_process = run_fleet(spec, workers=None, **common)
    pooled = run_fleet(spec, workers=config.pool_workers, **common)
    for serial_shard, pooled_shard in zip(in_process.shards, pooled.shards):
        if serial_shard != pooled_shard:
            return Deviation(
                math.inf,
                f"shard {serial_shard.index} snapshots differ: "
                f"{serial_shard} vs {pooled_shard}",
            )
    gap = abs(in_process.total_cost - pooled.total_cost)
    return Deviation(float(gap), f"total cost gap {float(gap):.3g}")


@REGISTRY.oracle(
    "fleet-vs-vectorized",
    tolerance=1.0,
    paper_ref="Section 6",
    description="homogeneous fleet agrees statistically with the vectorized engine",
    applies=lambda config: config.sim_slots > 0,
)
def _fleet_vs_vectorized(config: ConformanceConfig) -> Deviation:
    from ..simulation.fleet import run_fleet  # deferred: heavy
    from ..simulation.vectorized import VectorizedDistanceEngine  # deferred

    spec = _fleet_spec(config)
    slots = min(config.sim_slots, _FLEET_STAT_SLOTS)
    fleet = run_fleet(spec, slots=slots, shards=1, seed=config.seed)
    vectorized = VectorizedDistanceEngine(
        topology=spec.topology,
        threshold=config.d,
        mobility=config.mobility(),
        costs=config.costs(),
        max_delay=config.m,
        terminals=_FLEET_TERMINALS,
        seed=config.seed,
    ).run(slots)

    class _FleetAsReplicated:
        """Adapter: a one-shard fleet run quacks like a replicated result."""

        mean_total_cost = fleet.mean_total_cost

        @staticmethod
        def total_cost_ci() -> float:
            return fleet.shards[0].total_cost_half_width_95

    return replicated_agreement(_FleetAsReplicated(), vectorized)


# -- backend oracles (PR 8: compiled kernels + banded solver) -----------


@REGISTRY.oracle(
    "steady-banded-vs-recursive",
    tolerance=1e-10,
    paper_ref="Section 4.1",
    description="banded tridiagonal steady state equals the recursive solve",
)
def _steady_banded_vs_recursive(config: ConformanceConfig) -> Deviation:
    return _steady_pair(config, "banded", "recursive")


@REGISTRY.oracle(
    "surface-banded-vs-dense",
    tolerance=1e-10,
    paper_ref="eqns (61)-(66)",
    description="cost surface solved banded equals the dense triangular solve",
    applies=lambda config: config.plan_factory is None,
)
def _surface_banded_vs_dense(config: ConformanceConfig) -> Deviation:
    from ..core.batch import compute_cost_surface  # deferred: avoid cycle

    model = config.build_model()
    common = dict(
        costs=config.costs(),
        d_max=config.d_max,
        delays=(config.m,),
        convention=config.convention,
    )
    dense = compute_cost_surface(model, solver="dense", **common)
    banded = compute_cost_surface(model, solver="banded", **common)
    gaps = {
        "update": float(np.max(np.abs(dense.update - banded.update))),
        "paging": float(np.max(np.abs(dense.paging - banded.paging))),
        "total": float(np.max(np.abs(dense.total - banded.total))),
    }
    worst_field = max(gaps, key=gaps.get)
    return Deviation(
        gaps[worst_field],
        f"worst field {worst_field!r}: gap {gaps[worst_field]:.3g} "
        f"over d<=:{config.d_max}",
    )


def _counter_engine(config: ConformanceConfig, slots: int):
    """A counter-mode vectorized engine, run for ``slots``."""
    from ..simulation.vectorized import VectorizedDistanceEngine  # deferred

    model = config.build_model()
    engine = VectorizedDistanceEngine(
        topology=model.topology,
        threshold=config.d,
        mobility=config.mobility(),
        costs=config.costs(),
        max_delay=config.m,
        terminals=_FLEET_TERMINALS,
        seed=config.seed,
        backend="auto",
    )
    engine.run(slots)
    return engine


@REGISTRY.oracle(
    "vectorized-backend-vs-fallback",
    tolerance=0.0,
    paper_ref="Section 6",
    description="compiled vectorized kernel is bit-identical to its NumPy port",
    applies=lambda config: config.sim_slots > 0,
)
def _vectorized_backend_vs_fallback(config: ConformanceConfig) -> Deviation:
    """Bit-identity of the counter kernel across executions.

    With numba installed this compares the jit-compiled step against the
    interpreted NumPy port; without numba both runs resolve to the
    fallback and the check degenerates to a (documented) identity --
    which is exactly the contract: results never depend on whether
    numba is present.
    """
    from ..core.backend import use_numpy_fallback  # deferred

    slots = min(config.sim_slots, _FLEET_EXACT_SLOTS)
    compiled = _counter_engine(config, slots)
    with use_numpy_fallback():
        fallback = _counter_engine(config, slots)
    gap = 0.0
    for name in ("_moves", "_updates", "_calls", "_polled_cells",
                 "_delay_counts", "_cost_sum", "_cost_sq_sum"):
        a, b = getattr(compiled, name), getattr(fallback, name)
        gap = max(gap, float(np.max(np.abs(a - b))) if a.size else 0.0)
    return Deviation(
        gap,
        f"{compiled.backend_resolved} vs {fallback.backend_resolved}: "
        f"max per-terminal meter gap {gap:.3g}",
    )


@REGISTRY.oracle(
    "fleet-backend-vs-fallback",
    tolerance=1e-9,
    paper_ref="Section 6",
    description="compiled fleet kernel matches its NumPy port exactly on counters",
    applies=lambda config: config.sim_slots > 0,
)
def _fleet_backend_vs_fallback(config: ConformanceConfig) -> Deviation:
    """Integer event totals exact; cost totals to float accumulation.

    The fleet kernel's shard-level per-slot scalars are the one place
    the compiled and NumPy executions may differ (summation order,
    ~1e-12 relative); every integer counter and the cost totals derived
    from them are bit-identical.
    """
    from ..core.backend import use_numpy_fallback  # deferred
    from ..simulation.fleet import run_fleet  # deferred: heavy

    spec = _fleet_spec(config)
    slots = min(config.sim_slots, _FLEET_EXACT_SLOTS)
    compiled = run_fleet(spec, slots=slots, shards=2, seed=config.seed,
                         backend="auto")
    with use_numpy_fallback():
        fallback = run_fleet(spec, slots=slots, shards=2, seed=config.seed,
                             backend="auto")
    event_gap = max(
        abs(compiled.moves - fallback.moves),
        abs(compiled.updates - fallback.updates),
        abs(compiled.calls - fallback.calls),
        abs(compiled.polled_cells - fallback.polled_cells),
    )
    scale = max(abs(fallback.total_cost), 1.0)
    cost_gap = abs(compiled.total_cost - fallback.total_cost) / scale
    return Deviation(
        float(event_gap + cost_gap),
        f"event gap {event_gap}, rel cost gap {cost_gap:.3g}",
    )


@REGISTRY.oracle(
    "vectorized-counter-vs-fleet",
    tolerance=0.0,
    paper_ref="Section 6",
    description="counter-mode vectorized engine replays the fleet trajectory exactly",
    applies=lambda config: config.sim_slots > 0,
)
def _vectorized_counter_vs_fleet(config: ConformanceConfig) -> Deviation:
    """The strongest cross-engine check in the suite.

    A homogeneous single-shard fleet (global offset 0) and the
    counter-mode vectorized engine hash the *same* ``(seed, stream,
    slot, terminal)`` keys with the same within-slot semantics, so two
    independently implemented step kernels must produce identical
    trajectories -- event totals equal as integers, cost totals equal
    as the same integer-weighted dot products.
    """
    from ..simulation.fleet import run_fleet  # deferred: heavy

    spec = _fleet_spec(config)
    slots = min(config.sim_slots, _FLEET_EXACT_SLOTS)
    fleet = run_fleet(spec, slots=slots, shards=1, seed=config.seed)
    engine = _counter_engine(config, slots)
    costs = config.costs()
    gaps = {
        "moves": abs(int(engine._moves.sum()) - fleet.moves),
        "updates": abs(int(engine._updates.sum()) - fleet.updates),
        "calls": abs(int(engine._calls.sum()) - fleet.calls),
        "polled": abs(int(engine._polled_cells.sum()) - fleet.polled_cells),
        "update_cost": abs(
            int(engine._updates.sum()) * costs.update_cost - fleet.update_cost
        ),
        "paging_cost": abs(
            int(engine._polled_cells.sum()) * costs.poll_cost
            - fleet.paging_cost
        ),
    }
    worst_field = max(gaps, key=gaps.get)
    return Deviation(
        float(gaps[worst_field]),
        f"worst field {worst_field!r}: gap {float(gaps[worst_field]):.3g}",
    )


@REGISTRY.oracle(
    "vectorized-counter-vs-pcg64",
    tolerance=1.0,
    paper_ref="Section 6",
    description="counter-RNG backend agrees statistically with the PCG64 backend",
    applies=lambda config: config.sim_slots > 0,
)
def _vectorized_counter_vs_pcg64(config: ConformanceConfig) -> Deviation:
    from ..simulation.vectorized import VectorizedDistanceEngine  # deferred

    model = config.build_model()
    slots = min(config.sim_slots, _FLEET_STAT_SLOTS)
    common = dict(
        topology=model.topology,
        threshold=config.d,
        mobility=config.mobility(),
        costs=config.costs(),
        max_delay=config.m,
        terminals=_FLEET_TERMINALS,
        seed=config.seed,
    )
    legacy = VectorizedDistanceEngine(backend="numpy", **common).run(slots)
    counter = VectorizedDistanceEngine(backend="auto", **common).run(slots)
    return replicated_agreement(legacy, counter)
