"""Cross-scheme invariants for the jointly optimal policy.

Three checks keep the Hajek/Mitzel/Yang alternating algorithm
(:mod:`repro.strategies.jointly_optimal`) honest against the paper's
distance-based scheme at every sampled operating point:

* **joint-dominates-distance** -- the converged joint cost never
  exceeds the distance-based optimum ``C_T(d*, m)``.  This is the
  dominance relation that makes the algorithm worth having: the
  iteration *starts* at ``(d*, SDF)`` and never accepts a worse point.
* **joint-monotone-iterations** -- the per-iteration cost history is
  monotone non-increasing and starts at the distance optimum.
* **joint-degenerate-recovery** -- under the blanket bound ``m = 1``
  every paging order is a single poll of the whole registration disk,
  so the joint optimum must collapse exactly to the distance policy
  (same threshold, same cost, one polling group).

The distance leg honors ``config.plan_factory`` (the conformance
test-suite's sabotage hatch), so a broken paging plan or steady-state
solver makes these checks fail rather than silently comparing a scheme
against itself.
"""

from __future__ import annotations

from .checks import ConformanceConfig, Deviation, REGISTRY

__all__ = []

_HMY_REF = "Hajek/Mitzel/Yang cs/0702102 (PAPERS.md); paper eqns (61)-(66)"


def _distance_and_joint(config: ConformanceConfig, max_delay):
    """Solve both schemes at the config's operating point."""
    from ..core.threshold import find_optimal_threshold  # deferred: cycle
    from ..strategies.jointly_optimal import optimize_joint_policy

    model = config.build_model()
    costs = config.costs()
    distance = find_optimal_threshold(
        model,
        costs,
        max_delay,
        d_max=config.d_max,
        plan_factory=config.plan_factory,
        convention=config.convention,
    )
    joint = optimize_joint_policy(
        model,
        costs,
        max_delay,
        d_max=config.d_max,
        convention=config.convention,
    )
    return distance, joint


@REGISTRY.invariant(
    "joint-dominates-distance",
    tolerance=1e-9,
    paper_ref=_HMY_REF,
    description="jointly optimal C_T <= distance-based C_T(d*, m)",
)
def _joint_dominates_distance(config: ConformanceConfig) -> Deviation:
    distance, joint = _distance_and_joint(config, config.m)
    gap = joint.total_cost - distance.total_cost
    return Deviation(
        value=max(0.0, gap),
        detail=(
            f"joint C_T={joint.total_cost:.12g} at d={joint.threshold} "
            f"({joint.plan.describe()}) vs distance "
            f"C_T={distance.total_cost:.12g} at d*={distance.threshold}"
        ),
    )


@REGISTRY.invariant(
    "joint-monotone-iterations",
    tolerance=1e-9,
    paper_ref=_HMY_REF,
    description="alternating minimization starts at the distance optimum "
    "and never raises the cost",
)
def _joint_monotone_iterations(config: ConformanceConfig) -> Deviation:
    distance, joint = _distance_and_joint(config, config.m)
    history = joint.cost_history()
    worst_rise, where = 0.0, -1
    for i in range(len(history) - 1):
        rise = history[i + 1] - history[i]
        if rise > worst_rise:
            worst_rise, where = rise, i
    init_gap = abs(history[0] - distance.total_cost)
    if init_gap >= worst_rise:
        detail = (
            f"iteration 0 cost {history[0]:.12g} vs distance optimum "
            f"{distance.total_cost:.12g} (|gap|={init_gap:.3g})"
        )
    else:
        detail = (
            f"cost rose by {worst_rise:.3g} between iterations "
            f"{where} and {where + 1}: {history}"
        )
    return Deviation(value=max(worst_rise, init_gap), detail=detail)


@REGISTRY.invariant(
    "joint-degenerate-recovery",
    tolerance=1e-9,
    paper_ref=_HMY_REF,
    description="under m=1 the joint optimum collapses to the distance "
    "policy with blanket paging",
)
def _joint_degenerate_recovery(config: ConformanceConfig) -> Deviation:
    # Probe the blanket bound regardless of the config's m: only at
    # m=1 is the paging order forced, making the collapse exact.
    distance, joint = _distance_and_joint(config, 1)
    threshold_gap = float(abs(joint.threshold - distance.threshold))
    cost_gap = abs(joint.total_cost - distance.total_cost)
    non_blanket = 0.0 if len(joint.plan.subareas) == 1 else 1.0
    return Deviation(
        value=max(threshold_gap, cost_gap, non_blanket),
        detail=(
            f"joint d={joint.threshold}, plan={joint.plan.describe()!r}, "
            f"C_T={joint.total_cost:.12g}; distance d*={distance.threshold}, "
            f"C_T={distance.total_cost:.12g}"
        ),
    )
