"""Parameter-grid sampling for conformance suites.

A suite is a list of :class:`ConformanceConfig` operating points.  Both
suites cover **all five models** (1-D exact, 2-D exact/approx on the
hex grid, exact/approx on the square grid); they differ in breadth and
in how much simulation they buy:

* ``quick`` -- per model: the paper's baseline anchor plus two seeded
  random draws (one per boundary convention).  Simulation-backed checks
  run on one small-budget config per *exact* geometry (line, hex,
  square), keeping the whole suite in CI-PR territory.
* ``full`` -- per model: the anchor plus six random draws, simulation
  on every exact geometry with a larger slot budget, and a
  process-pool configuration so the ``serial-vs-pooled`` bit-identity
  oracle actually runs.

Sampling is deterministic in ``seed`` (``random.Random``; no global
state), so a nightly run seeded from the date is reproducible by
anyone passing the same ``--seed``.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from .checks import ConformanceConfig
from .invariants import EXACT_CHAIN_MODELS
from ..exceptions import ParameterError

__all__ = ["ALL_MODELS", "SUITES", "sample_suite"]

#: Every registered analytic model, in report order.
ALL_MODELS = ("1d", "2d-exact", "2d-approx", "square-exact", "square-approx")

#: Suite names accepted by :func:`sample_suite` and the CLI.
SUITES = ("quick", "full")

#: The paper's Section-5 baseline operating point, used as the anchor
#: configuration for every model.
_ANCHOR = dict(q=0.2, c=0.02, update_cost=50.0, poll_cost=10.0, d=3, m=2)

_DELAY_CHOICES = (1, 2, 3, 5, math.inf)


def _random_config(
    rng: random.Random, model_name: str, convention: str, seed: int
) -> ConformanceConfig:
    d = rng.randint(0, 6)
    return ConformanceConfig(
        model_name=model_name,
        q=round(rng.uniform(0.05, 0.4), 4),
        c=round(rng.uniform(0.002, 0.1), 4),
        update_cost=round(rng.uniform(5.0, 200.0), 2),
        poll_cost=round(rng.uniform(1.0, 20.0), 2),
        d=d,
        m=rng.choice(_DELAY_CHOICES),
        d_max=10,
        convention=convention,
        seed=seed,
    )


def _sim_config(
    model_name: str, seed: int, slots: int, replications: int, pool_workers: int = 0
) -> ConformanceConfig:
    return ConformanceConfig(
        model_name=model_name,
        d=2,
        m=2,
        d_max=6,
        sim_slots=slots,
        sim_replications=replications,
        seed=seed,
        pool_workers=pool_workers,
        **{k: _ANCHOR[k] for k in ("q", "c", "update_cost", "poll_cost")},
    )


def sample_suite(
    suite: str = "quick",
    seed: int = 0,
    models: Optional[Sequence[str]] = None,
) -> List[ConformanceConfig]:
    """Materialize the configurations of a named suite.

    ``models`` restricts the sweep (default: all five); restricting to
    approximate-only models silently yields no simulation configs, as
    the simulators realise the exact chains.
    """
    if suite not in SUITES:
        raise ParameterError(f"unknown suite {suite!r}; expected one of {SUITES}")
    selected = tuple(models) if models else ALL_MODELS
    unknown = [name for name in selected if name not in ALL_MODELS]
    if unknown:
        raise ParameterError(
            f"unknown model(s) {unknown}; expected a subset of {ALL_MODELS}"
        )
    rng = random.Random(seed)
    draws = 2 if suite == "quick" else 6
    configs: List[ConformanceConfig] = []
    for model_name in selected:
        configs.append(
            ConformanceConfig(model_name=model_name, d_max=10, seed=seed, **_ANCHOR)
        )
        for index in range(draws):
            convention = "paper" if index % 2 == 0 else "physical"
            configs.append(_random_config(rng, model_name, convention, seed))
    sim_models = [name for name in selected if name in EXACT_CHAIN_MODELS]
    if suite == "quick":
        for name in sim_models[:3]:
            configs.append(_sim_config(name, seed, slots=40_000, replications=4))
    else:
        for name in sim_models:
            configs.append(_sim_config(name, seed, slots=80_000, replications=5))
        if sim_models:
            configs.append(
                _sim_config(
                    sim_models[0],
                    seed,
                    slots=20_000,
                    replications=3,
                    pool_workers=2,
                )
            )
    return configs
