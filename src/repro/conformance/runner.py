"""Suite execution and JSONL reporting for the conformance harness.

:func:`run_conformance` samples a suite of operating points, runs every
applicable registered check at each of them, and folds the outcomes
into a :class:`ConformanceReport`; :func:`write_report` stamps it with
run provenance and stores it in the observability JSONL artifact format
(``kind="check"`` records next to the usual metrics and spans), so the
same ``repro-lm metrics``-family tooling can read nightly conformance
artifacts.

:func:`run_single` is the entry point the minimized repro snippets
call: one check at one parameter point, by id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .checks import REGISTRY, CheckRegistry, CheckResult, ConformanceConfig
from .sampling import sample_suite
from ..exceptions import ParameterError
from ..observability import context as obs_context
from ..observability.export import build_provenance, read_artifact, write_artifact

__all__ = [
    "ConformanceReport",
    "run_conformance",
    "run_single",
    "write_report",
    "read_report",
]


@dataclass(frozen=True)
class ConformanceReport:
    """All check results of one conformance run."""

    suite: str
    seed: int
    models: Tuple[str, ...]
    results: Tuple[CheckResult, ...] = field(default_factory=tuple)

    # -- aggregates -----------------------------------------------------

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.status == "pass")

    @property
    def failed(self) -> int:
        return sum(1 for r in self.results if r.status == "fail")

    @property
    def skipped(self) -> int:
        return sum(1 for r in self.results if r.status == "skip")

    @property
    def ok(self) -> bool:
        """True when no check failed anywhere in the suite."""
        return self.failed == 0

    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if r.status == "fail"]

    def by_check(self) -> Dict[str, Dict[str, object]]:
        """Per-check aggregate: runs, failures, worst (smallest) margin."""
        stats: Dict[str, Dict[str, object]] = {}
        for result in self.results:
            entry = stats.setdefault(
                result.check_id,
                {
                    "kind": result.kind,
                    "runs": 0,
                    "passed": 0,
                    "failed": 0,
                    "skipped": 0,
                    "min_margin": None,
                },
            )
            entry["runs"] += 1
            entry[
                {"pass": "passed", "fail": "failed", "skip": "skipped"}[result.status]
            ] += 1
            if result.status != "skip":
                margin = result.margin
                if entry["min_margin"] is None or margin < entry["min_margin"]:
                    entry["min_margin"] = margin
        return stats

    def to_records(self) -> List[dict]:
        """One JSON-safe dict per result (the artifact ``check`` lines)."""
        return [result.to_dict() for result in self.results]

    def render(self) -> str:
        """Human summary: one row per check plus the failure repros."""
        from ..analysis.report import render_table  # deferred: avoid cycle

        rows = []
        for check_id, entry in sorted(self.by_check().items()):
            margin = entry["min_margin"]
            rows.append(
                [
                    check_id,
                    entry["kind"],
                    entry["runs"],
                    entry["passed"],
                    entry["failed"],
                    entry["skipped"],
                    "-" if margin is None else f"{margin:.3g}",
                ]
            )
        blocks = [
            render_table(
                ["check", "kind", "runs", "pass", "fail", "skip", "min margin"],
                rows,
                title=(
                    f"Conformance suite {self.suite!r} (seed {self.seed}): "
                    f"{self.passed} passed, {self.failed} failed, "
                    f"{self.skipped} skipped"
                ),
            )
        ]
        for failure in self.failures():
            blocks.append(
                f"FAIL {failure.check_id} {failure.params}\n"
                f"  deviation {failure.deviation:.6g} > tolerance "
                f"{failure.tolerance:.6g}: {failure.detail}\n"
                f"{failure.repro or ''}"
            )
        return "\n\n".join(blocks)


def run_conformance(
    suite: str = "quick",
    seed: int = 0,
    models: Optional[Sequence[str]] = None,
    registry: CheckRegistry = REGISTRY,
    configs: Optional[Sequence[ConformanceConfig]] = None,
) -> ConformanceReport:
    """Run every registered check over a sampled (or explicit) suite.

    Check outcomes are counted into the active observability context
    (``conformance_checks_total{status=...}``), so ``--metrics-out``
    runs see the harness's own instrumentation alongside the report.
    """
    if configs is None:
        configs = sample_suite(suite=suite, seed=seed, models=models)
    obs = obs_context.current()
    results: List[CheckResult] = []
    for config in configs:
        for check in registry.all():
            result = registry.run_check(check.check_id, config)
            results.append(result)
            obs.registry.counter(
                "conformance_checks_total",
                check=check.check_id,
                status=result.status,
            ).inc()
    model_names = tuple(models) if models else tuple(
        dict.fromkeys(config.model_name for config in configs)
    )
    return ConformanceReport(
        suite=suite, seed=seed, models=model_names, results=tuple(results)
    )


def run_single(
    check_id: str, registry: CheckRegistry = REGISTRY, **params
) -> CheckResult:
    """Run one check at one parameter point (the repro-snippet entry).

    ``params`` are the keys of :meth:`ConformanceConfig.as_params`
    (``model``, ``q``, ``c``, ``U``, ``V``, ``d``, ``m``, ...).
    """
    config = ConformanceConfig.from_params(params)
    return registry.run_check(check_id, config, minimize=False)


def write_report(
    report: ConformanceReport, path: Union[str, Path], command: str = "conformance"
) -> Path:
    """Persist a report as a provenance-stamped observability artifact."""
    provenance = build_provenance(
        command=command,
        params={
            "suite": report.suite,
            "models": ",".join(report.models),
            "checks": len(report.results),
            "failed": report.failed,
        },
        seed=report.seed,
    )
    return write_artifact(
        path, obs_context.current(), provenance, checks=report.to_records()
    )


def read_report(path: Union[str, Path]) -> dict:
    """Load a stored conformance artifact; raises if it holds no checks."""
    artifact = read_artifact(path)
    if not artifact["checks"]:
        raise ParameterError(
            f"artifact {path} contains no conformance check records"
        )
    return artifact
