"""Reusable "simulated mean matches analytic value" agreement checks.

This module is the single home of the criterion previously duplicated
between :class:`repro.analysis.validate.ValidationOutcome` and the
integration test ``tests/integration/test_baseline_agreement.py``: a
measured (simulated) mean *agrees* with an analytic prediction when the
prediction falls inside the replication confidence interval, or -- to
absorb sampling flukes and the known 2-D ring-aggregation bias -- when
the relative error stays under a declared limit.

Agreement is expressed as a *normalized deviation*: the smallest of
``|delta| / ci_half_width`` and ``relative_error / rel_limit``, so a
value of at most 1.0 means "agrees" and the value itself is a
tolerance-margin statistic the conformance report can aggregate.  The
deviation is deliberately dimension-free, which lets one registered
conformance check serve every model.

Kept free of heavy imports (``ModelComparison`` is only type-duck-used)
so :mod:`repro.analysis.validate` and the test-suite can both depend on
it without import cycles.
"""

from __future__ import annotations

import math

from .checks import Deviation

__all__ = [
    "REL_LIMIT_1D",
    "REL_LIMIT_2D",
    "agreement_deviation",
    "comparison_deviation",
    "comparison_ok",
    "rel_limit_for_dimensions",
    "values_agree",
]

#: 1-D ring chains are the *exact* distance process of the walk, so
#: only sampling noise separates simulation from analysis: 2%.
REL_LIMIT_1D = 0.02

#: 2-D chains aggregate corner/edge cells within a ring (the paper's
#: ``p+(i) = 1/3 + 1/(6i)`` is a ring average), a systematic bias
#: measured at up to ~4% for fast walkers with wide residing areas: 5%.
REL_LIMIT_2D = 0.05


def rel_limit_for_dimensions(dimensions: int) -> float:
    """The relative-error escape hatch appropriate for a geometry."""
    return REL_LIMIT_1D if dimensions == 1 else REL_LIMIT_2D


def agreement_deviation(
    predicted: float,
    measured: float,
    ci_half_width: float,
    rel_limit: float = REL_LIMIT_2D,
) -> Deviation:
    """Normalized disagreement between a prediction and a measurement.

    Returns a :class:`Deviation` whose value is at most 1.0 exactly when
    the two numbers agree under the campaign criterion: the prediction
    is covered by the confidence interval (``|delta| <= ci_half_width``)
    *or* the relative error is below ``rel_limit``.  Degenerate
    intervals (zero or non-finite half-width, as produced by
    single-replication runs) fall back to the relative-error criterion
    alone, matching ``ModelComparison.within_ci`` returning ``False``
    for them.
    """
    if rel_limit <= 0:
        raise ValueError(f"rel_limit must be > 0, got {rel_limit}")
    delta = abs(measured - predicted)
    ratios = []
    if math.isfinite(ci_half_width) and ci_half_width > 0:
        ratios.append(delta / ci_half_width)
    if predicted != 0:
        ratios.append((delta / abs(predicted)) / rel_limit)
    if not ratios:  # predicted == 0 and no usable CI
        value = 0.0 if delta == 0 else math.inf
    else:
        value = min(ratios)
    return Deviation(
        value,
        detail=(
            f"predicted={predicted:.6g} measured={measured:.6g} "
            f"ci_half_width={ci_half_width:.6g} rel_limit={rel_limit}"
        ),
    )


def values_agree(
    predicted: float,
    measured: float,
    ci_half_width: float,
    rel_limit: float = REL_LIMIT_2D,
) -> bool:
    """Boolean form of :func:`agreement_deviation` for assertions."""
    return agreement_deviation(predicted, measured, ci_half_width, rel_limit).value <= 1.0


def comparison_deviation(comparison, rel_limit: float) -> Deviation:
    """:func:`agreement_deviation` applied to a ``ModelComparison``."""
    return agreement_deviation(
        predicted=comparison.predicted_total,
        measured=comparison.measured_total,
        ci_half_width=comparison.ci_half_width,
        rel_limit=rel_limit,
    )


def comparison_ok(comparison, dimensions: int) -> bool:
    """Dimension-aware agreement criterion for a ``ModelComparison``.

    The exact predicate :class:`repro.analysis.validate.ValidationOutcome`
    exposes as ``ok``.
    """
    return (
        comparison_deviation(comparison, rel_limit_for_dimensions(dimensions)).value
        <= 1.0
    )
