"""Metamorphic invariants derived from the paper's analysis.

Each invariant encodes a structural relation the implementation must
satisfy at *every* operating point, not only the golden-pinned ones:
probability normalization and the eqn-(5) cut balance of the reset
chain, the monotonicities of ``C_u``/``C_v`` in threshold and delay
bound, the ``C_T(d, d+1) = C_T(d, infinity)`` saturation of eqn (2),
convergence of the ring-averaged approximate chains to the exact ones
as ``d`` grows, the degenerate optimum ``d* = 0`` when updates are
nearly free, and coverage of analytic values by simulation confidence
intervals.

Registration happens at import time into
:data:`repro.conformance.checks.REGISTRY`; every body maps a
:class:`ConformanceConfig` to a :class:`Deviation` (see that module for
the contract).

Two empirical restrictions, verified numerically across all five
models before being encoded:

* ``C_v`` *non-decreasing in d* holds for the blanket (``m = 1``) and
  per-ring (``m = infinity``) partitions but **not** for intermediate
  delay bounds, where the SDF regrouping makes the polled-cell
  expectation jump non-monotonically as partition boundaries move; the
  check therefore probes ``m in {1, infinity}`` only.
* the approximate chains converge to the exact ones in their *rates*
  (the dropped curvature term is ``O(1/i)``), but **not** in total
  cost: the small-ring rate error survives in the steady state and the
  SDF partitions regroup differently for finite ``m`` (measured up to
  29% total-cost gap at ``d = 12`` for fast-reset walkers), so the
  convergence check targets the rates.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .agreement import (
    REL_LIMIT_1D,
    REL_LIMIT_2D,
    comparison_deviation,
)
from .checks import CheckSkipped, ConformanceConfig, Deviation, REGISTRY

__all__ = ["EXACT_CHAIN_MODELS", "APPROX_TO_EXACT"]

#: Models whose ring chain is the exact law of the simulated distance
#: process -- the only ones a simulation CI check can hold for.
EXACT_CHAIN_MODELS = ("1d", "2d-exact", "square-exact")

#: Approximate chain -> the exact chain it must converge to.
APPROX_TO_EXACT = {"2d-approx": "2d-exact", "square-approx": "square-exact"}

_PROBE_DELAYS = (1, 2, 3, 5, math.inf)


def _max_rise(values) -> Tuple[float, int]:
    """Largest increase between consecutive entries (0 if none)."""
    worst, where = 0.0, -1
    for i in range(len(values) - 1):
        rise = values[i + 1] - values[i]
        if rise > worst:
            worst, where = rise, i
    return worst, where


@REGISTRY.invariant(
    "steady-state-normalized",
    tolerance=1e-9,
    paper_ref="eqns (4), (12)-(13)",
    description="residence probabilities are non-negative and sum to 1",
)
def _steady_state_normalized(config: ConformanceConfig) -> Deviation:
    model = config.build_model()
    worst = 0.0
    detail = ""
    for d in sorted({config.d, config.d_max}):
        p = np.asarray(model.steady_state(d))
        deviation = max(abs(float(p.sum()) - 1.0), max(0.0, -float(p.min())))
        if deviation >= worst:
            worst = deviation
            detail = f"d={d}: sum={float(p.sum()):.12g} min={float(p.min()):.3g}"
    return Deviation(worst, detail)


@REGISTRY.invariant(
    "eqn5-balance",
    tolerance=1e-9,
    paper_ref="eqn (5)",
    description="state-0 flow balance: p0*a0 = p1*b1 + pd*ad + c*(1-p0)",
)
def _eqn5_balance(config: ConformanceConfig) -> Deviation:
    d = config.d if config.d >= 1 else config.d_max
    if d < 1:
        raise CheckSkipped("balance cut is trivial for a single-state chain")
    model = config.build_model()
    p = np.asarray(model.steady_state(d))
    a, b = model.transition_rates(d)
    lhs = p[0] * a[0]
    rhs = p[1] * b[1] + p[d] * a[d] + model.c * (1.0 - p[0])
    return Deviation(
        abs(float(lhs - rhs)), f"d={d}: lhs={float(lhs):.12g} rhs={float(rhs):.12g}"
    )


@REGISTRY.invariant(
    "update-cost-monotone-threshold",
    tolerance=1e-9,
    paper_ref="eqn (61)",
    description="C_u(d) is non-increasing in the threshold d",
)
def _update_cost_monotone_threshold(config: ConformanceConfig) -> Deviation:
    evaluator = config.build_evaluator()
    curve = [evaluator.update_cost(d) for d in range(config.d_max + 1)]
    rise, where = _max_rise(curve)
    return Deviation(
        rise, f"worst rise at d={where}->{where + 1}" if rise else "monotone"
    )


@REGISTRY.invariant(
    "paging-cost-monotone-threshold",
    tolerance=1e-9,
    paper_ref="eqns (62)-(65)",
    description="C_v(d, m) is non-decreasing in d for m in {1, infinity}",
)
def _paging_cost_monotone_threshold(config: ConformanceConfig) -> Deviation:
    evaluator = config.build_evaluator()
    worst = 0.0
    detail = "monotone"
    for m in (1, math.inf):
        curve = [evaluator.paging_cost(d, m) for d in range(config.d_max + 1)]
        drop = float(
            max((curve[i] - curve[i + 1] for i in range(len(curve) - 1)), default=0.0)
        )
        if drop > worst:
            worst = drop
            detail = f"m={m}: C_v drops by {drop:.3g}"
    return Deviation(max(worst, 0.0), detail)


@REGISTRY.invariant(
    "paging-cost-monotone-delay",
    tolerance=1e-9,
    paper_ref="eqns (62)-(65)",
    description="C_v(d, m) is non-increasing in the delay bound m",
)
def _paging_cost_monotone_delay(config: ConformanceConfig) -> Deviation:
    evaluator = config.build_evaluator()
    delays = sorted(set(_PROBE_DELAYS) | {config.d + 1})
    curve = [evaluator.paging_cost(config.d, m) for m in delays]
    rise, where = _max_rise(curve)
    detail = (
        f"C_v rises by {rise:.3g} from m={delays[where]} to m={delays[where + 1]}"
        if rise
        else "monotone"
    )
    return Deviation(rise, detail)


@REGISTRY.invariant(
    "delay-saturation",
    tolerance=1e-9,
    paper_ref="eqn (2): l = min(d+1, m)",
    description="C_T(d, m=d+1) equals C_T(d, m=infinity)",
)
def _delay_saturation(config: ConformanceConfig) -> Deviation:
    evaluator = config.build_evaluator()
    bounded = evaluator.total_cost(config.d, config.d + 1)
    unbounded = evaluator.total_cost(config.d, math.inf)
    return Deviation(
        abs(bounded - unbounded),
        f"C_T(d, d+1)={bounded:.12g} C_T(d, inf)={unbounded:.12g}",
    )


@REGISTRY.invariant(
    "expected-delay-bounded",
    tolerance=1e-9,
    paper_ref="eqn (2)",
    description="1 <= E[paging delay] <= min(d+1, m)",
)
def _expected_delay_bounded(config: ConformanceConfig) -> Deviation:
    breakdown = config.build_evaluator().breakdown(config.d, config.m)
    bound = min(config.d + 1, config.m)
    delay = breakdown.expected_delay
    violation = max(0.0, 1.0 - delay, delay - bound)
    return Deviation(violation, f"E[delay]={delay:.6g} bound={bound}")


@REGISTRY.invariant(
    "polled-cells-bounded",
    tolerance=1e-9,
    paper_ref="eqns (1), (63)",
    description="1 <= E[polled cells] <= g(d), with equality at m=1",
)
def _polled_cells_bounded(config: ConformanceConfig) -> Deviation:
    evaluator = config.build_evaluator()
    g = evaluator.model.coverage(config.d)
    cells = evaluator.breakdown(config.d, config.m).expected_polled_cells
    blanket = evaluator.breakdown(config.d, 1).expected_polled_cells
    violation = max(0.0, 1.0 - cells, cells - g, abs(blanket - g))
    return Deviation(
        violation, f"E[cells]={cells:.6g} g(d)={g} blanket={blanket:.6g}"
    )


@REGISTRY.invariant(
    "coverage-closed-form",
    tolerance=1e-9,
    paper_ref="eqn (1)",
    description="g(d) = 1 + sum of ring sizes, non-decreasing, g(0) = 1",
)
def _coverage_closed_form(config: ConformanceConfig) -> Deviation:
    model = config.build_model()
    coverages = [model.coverage(d) for d in range(config.d_max + 1)]
    ring_sum = 1
    worst = abs(coverages[0] - 1)
    detail = f"g(0)={coverages[0]}"
    for d in range(1, config.d_max + 1):
        ring_sum += model.ring_size(d)
        mismatch = abs(coverages[d] - ring_sum)
        shrink = max(0.0, coverages[d - 1] - coverages[d])
        if max(mismatch, shrink) > worst:
            worst = max(mismatch, shrink)
            detail = f"d={d}: g={coverages[d]} ring-sum={ring_sum}"
    return Deviation(float(worst), detail)


@REGISTRY.invariant(
    "approx-tracks-exact",
    tolerance=0.03,
    paper_ref="Section 4.3 (eqns (41)-(44))",
    description=(
        "approximate ring rates converge to the exact ring-averaged "
        "rates as the ring index grows"
    ),
    applies=lambda config: config.model_name in APPROX_TO_EXACT,
)
def _approx_tracks_exact(config: ConformanceConfig) -> Deviation:
    # The approximation drops the O(1/i) ring-curvature term from the
    # exact averaged rates (1/(6i) hex, 1/(4i) square), so the *rates*
    # converge ring-by-ring.  Total costs do NOT converge in general:
    # the persistent small-ring error survives in the steady state, and
    # for finite m the SDF partitions regroup differently -- verified
    # counterexamples at (q=0.22, c=0.09) reach 29% total-cost gap at
    # d=12.  The faithful metamorphic relation is the rate one.
    from ..analysis.sweep import MODEL_CLASSES  # deferred: avoid cycle

    approx_model = config.build_model()
    exact_model = MODEL_CLASSES[APPROX_TO_EXACT[config.model_name]](config.mobility())
    d_far = max(config.d_max, 12)
    a_approx, b_approx = approx_model.transition_rates(d_far)
    a_exact, b_exact = exact_model.transition_rates(d_far)

    def rel_gap(ring: int) -> float:
        return (
            max(
                abs(float(a_approx[ring] - a_exact[ring])),
                abs(float(b_approx[ring] - b_exact[ring])),
            )
            / config.q
        )

    near, far = rel_gap(1), rel_gap(d_far)
    # Converged at the far ring, and no worse there than close in.
    return Deviation(
        max(far, far - near),
        f"rate gap/q {near:.4g} at ring 1 -> {far:.4g} at ring {d_far}",
    )


@REGISTRY.invariant(
    "cheap-update-zero-threshold",
    tolerance=0.0,
    paper_ref="eqn (66)",
    description="d* = 0 when the update cost is negligible versus V*c",
)
def _cheap_update_zero_threshold(config: ConformanceConfig) -> Deviation:
    from ..core.parameters import CostParams  # deferred: avoid cycle
    from ..core.threshold import find_optimal_threshold

    tiny_update = config.poll_cost * config.c * 1e-3
    solution = find_optimal_threshold(
        config.build_model(),
        CostParams(update_cost=tiny_update, poll_cost=config.poll_cost),
        max_delay=config.m,
        d_max=min(config.d_max, 8),
        plan_factory=config.plan_factory,
        convention=config.convention,
    )
    return Deviation(
        float(solution.threshold),
        f"U={tiny_update:.3g} << V*c={config.poll_cost * config.c:.3g} "
        f"but d*={solution.threshold}",
    )


@REGISTRY.invariant(
    "optimal-cost-monotone-delay",
    tolerance=1e-9,
    paper_ref="Section 5 (Fig. 7)",
    description="optimal C_T(d*, m) is non-increasing in the delay bound m",
)
def _optimal_cost_monotone_delay(config: ConformanceConfig) -> Deviation:
    from ..core.threshold import find_optimal_threshold

    model = config.build_model()
    curve = []
    delays = (1, 2, 3, math.inf)
    for m in delays:
        solution = find_optimal_threshold(
            model,
            config.costs(),
            max_delay=m,
            d_max=config.d_max,
            plan_factory=config.plan_factory,
            convention=config.convention,
        )
        curve.append(solution.total_cost)
    rise, where = _max_rise(curve)
    detail = (
        f"optimal C_T rises by {rise:.3g} from m={delays[where]} "
        f"to m={delays[where + 1]}"
        if rise
        else "monotone"
    )
    return Deviation(rise, detail)


@REGISTRY.invariant(
    "simulation-within-ci",
    tolerance=1.0,
    paper_ref="Section 6 validation",
    description=(
        "simulated mean total cost agrees with the analytic prediction "
        "(within replication CI or the dimension-aware relative limit)"
    ),
    applies=lambda config: (
        config.sim_slots > 0
        and config.model_name in EXACT_CHAIN_MODELS
        and config.plan_factory is None
    ),
)
def _simulation_within_ci(config: ConformanceConfig) -> Deviation:
    from ..simulation.runner import validate_against_model  # deferred: heavy

    comparison = validate_against_model(
        config.build_model(),
        config.costs(),
        d=config.d,
        m=config.m,
        slots=config.sim_slots,
        replications=config.sim_replications,
        seed=config.seed,
    )
    rel_limit = REL_LIMIT_1D if config.model_name == "1d" else REL_LIMIT_2D
    return comparison_deviation(comparison, rel_limit)
