"""Two-dimensional hexagonal cell topology (Figure 1(b) of the paper).

Cells are regular hexagons tiling the plane; each cell has six
neighbors.  We identify cells by *axial coordinates* ``(q, r)``: two of
the three cube coordinates of the standard hexagonal lattice (the third
is ``s = -q - r``).  The hexagonal grid distance

    dist((q1, r1), (q2, r2))
        = (|q1 - q2| + |r1 - r2| + |(q1 + r1) - (q2 + r2)|) / 2

counts the minimum number of cell-to-cell steps, which is exactly the
paper's ring distance: ring ``r_i`` around a center contains the ``6 i``
cells at distance ``i`` (``1`` cell for ``i = 0``), and the residing
area for threshold ``d`` contains ``g(d) = 3 d (d + 1) + 1`` cells
(equation (1)).

The module also exposes the per-cell ring-transition statistics used to
derive the 2-D Markov chain of Section 4.1: within ring ``i`` the six
*corner* cells have 3 outward / 2 same-ring / 1 inward neighbor while
the ``6 (i - 1)`` *edge* cells have 2 / 2 / 2, which averages to the
paper's

    p+(i) = 1/3 + 1/(6 i),      p-(i) = 1/3 - 1/(6 i).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from .topology import CellTopology

__all__ = ["HexTopology", "AXIAL_DIRECTIONS"]

#: The six axial direction vectors, in counterclockwise order starting
#: from "east".  The order is part of the public contract: seeded random
#: walks index into it, so reordering would silently change every
#: simulation trace.
AXIAL_DIRECTIONS: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, 0),
    (-1, 1),
    (0, 1),
)

HexCell = Tuple[int, int]


@lru_cache(maxsize=1024)
def _ring_offsets(radius: int) -> Tuple[HexCell, ...]:
    """Origin-centered ring ``r_radius`` via the perimeter walk.

    The hex plane is vertex-transitive, so any ring is this ring
    translated by its center; memoizing the offsets makes repeated ring
    materialization (the paging hot path) a translate-only operation.
    """
    offsets: List[HexCell] = []
    q = AXIAL_DIRECTIONS[4][0] * radius
    r = AXIAL_DIRECTIONS[4][1] * radius
    for dq, dr in AXIAL_DIRECTIONS:
        for _ in range(radius):
            offsets.append((q, r))
            q += dq
            r += dr
    return tuple(offsets)


class HexTopology(CellTopology):
    """Infinite hexagonal tiling with axial-coordinate cells ``(q, r)``."""

    degree = 6
    dimensions = 2

    @property
    def origin(self) -> HexCell:
        return (0, 0)

    def validate_cell(self, cell: object) -> None:
        ok = (
            isinstance(cell, tuple)
            and len(cell) == 2
            and all(isinstance(v, int) and not isinstance(v, bool) for v in cell)
        )
        if not ok:
            raise ValueError(f"hex cells are (q, r) integer tuples, got {cell!r}")

    def neighbors(self, cell: HexCell) -> Sequence[HexCell]:
        self.validate_cell(cell)
        q, r = cell
        return tuple((q + dq, r + dr) for dq, dr in AXIAL_DIRECTIONS)

    def distance(self, a: HexCell, b: HexCell) -> int:
        self.validate_cell(a)
        self.validate_cell(b)
        dq = a[0] - b[0]
        dr = a[1] - b[1]
        return (abs(dq) + abs(dr) + abs(dq + dr)) // 2

    def ring(self, center: HexCell, radius: int) -> List[HexCell]:
        """Enumerate ring ``r_radius`` counterclockwise from the west corner.

        Uses the standard "walk the perimeter" construction: start at
        ``center + radius * direction[4]`` and take ``radius`` steps in
        each of the six directions in order.
        """
        self.validate_cell(center)
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        if radius == 0:
            return [center]
        cq, cr = center
        return [(cq + dq, cr + dr) for dq, dr in _ring_offsets(radius)]

    def ring_size(self, radius: int) -> int:
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return 1 if radius == 0 else 6 * radius

    def coverage(self, radius: int) -> int:
        """Return ``g(d) = 3 d (d + 1) + 1`` (equation (1), 2-D case)."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return 3 * radius * (radius + 1) + 1

    # ------------------------------------------------------------------
    # Corner/edge cell classification
    # ------------------------------------------------------------------

    def is_corner(self, center: HexCell, cell: HexCell) -> bool:
        """Return True if ``cell`` is a corner of its ring around ``center``.

        The six corners of ring ``i`` lie along the six lattice axes
        from the center; they are the cells with 3 outward neighbors.
        Ring 1 consists entirely of corners.  The center itself is
        (vacuously) a corner.
        """
        self.validate_cell(center)
        self.validate_cell(cell)
        dq = cell[0] - center[0]
        dr = cell[1] - center[1]
        ds = -dq - dr
        # On an axis, one of the three cube coordinates is zero and the
        # other two are opposite.
        return dq == 0 or dr == 0 or ds == 0

    def __repr__(self) -> str:
        return "HexTopology()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HexTopology)

    def __hash__(self) -> int:
        return hash(HexTopology)
