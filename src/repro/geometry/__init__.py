"""Cell geometries for the PCN coverage area (paper Section 2.1).

Two concrete topologies are provided, matching Figure 1 of the paper:

* :class:`LineTopology` -- an infinite 1-D chain of cells (roads,
  tunnels, railway lines).
* :class:`HexTopology` -- the infinite hexagonal tiling of the plane
  (city-scale coverage).

Both implement the :class:`CellTopology` interface (rings, distances,
residing-area enumeration), and :mod:`repro.geometry.ringstats` measures
the ring-aggregated movement probabilities that justify the paper's
Markov-chain transition rates.
"""

from .hex import AXIAL_DIRECTIONS, HexTopology
from .line import LineTopology
from .ringstats import (
    RingMovementStats,
    paper_p_minus,
    paper_p_plus,
    ring_movement_stats,
    square_p_minus,
    square_p_plus,
)
from .square import SQUARE_DIRECTIONS, SquareTopology
from .topology import Cell, CellTopology

__all__ = [
    "AXIAL_DIRECTIONS",
    "Cell",
    "CellTopology",
    "HexTopology",
    "LineTopology",
    "RingMovementStats",
    "SQUARE_DIRECTIONS",
    "SquareTopology",
    "paper_p_minus",
    "paper_p_plus",
    "ring_movement_stats",
    "square_p_minus",
    "square_p_plus",
]
