"""Abstract cell-topology interface.

The paper (Section 2.1) defines two coverage-area geometries:

* a **one-dimensional** chain of equal-length cells (roads, tunnels,
  train lines), each with two neighbors, and
* a **two-dimensional** tiling of equal hexagonal cells (a city), each
  with six neighbors.

Both geometries share the notion of a *ring*: ring ``r_i`` around a
center cell is the set of cells at ring-distance exactly ``i``; the
*residing area* of a terminal with threshold ``d`` is the union of rings
``r_0 .. r_d``, whose size is ``g(d)`` (equation (1) of the paper).

:class:`CellTopology` captures the operations the rest of the library
needs -- neighbor enumeration, ring distance, ring and disk enumeration
-- so that the mobility simulator, paging schemes, and validation code
are written once and run on either geometry (or on any future one, e.g.
a square grid, by adding a subclass).
"""

from __future__ import annotations

import abc
from typing import Hashable, Iterable, Sequence, Tuple

__all__ = ["Cell", "CellTopology"]

#: A cell identifier.  Concrete topologies use plain integers (1-D) or
#: axial-coordinate pairs (2-D hex); the abstract layer only requires
#: hashability so cells can key dictionaries and sets.
Cell = Hashable


class CellTopology(abc.ABC):
    """Common interface for PCN cell geometries.

    Concrete subclasses must be infinite (or behave as if infinite): the
    analytical model never bounds the coverage area, and the simulator
    relies on being able to walk arbitrarily far from the origin.
    """

    #: Number of neighbors of every cell (2 for the line, 6 for the hex
    #: plane).  The random-walk mobility model moves to each neighbor
    #: with probability ``q / degree``.
    degree: int

    #: Number of spatial dimensions (1 or 2); used for labeling only.
    dimensions: int

    @property
    @abc.abstractmethod
    def origin(self) -> Cell:
        """A canonical cell usable as a default walk starting point."""

    @abc.abstractmethod
    def neighbors(self, cell: Cell) -> Sequence[Cell]:
        """Return the cells adjacent to ``cell``.

        The returned sequence has exactly :attr:`degree` elements and a
        deterministic order, so that seeded random walks are
        reproducible.
        """

    @abc.abstractmethod
    def distance(self, a: Cell, b: Cell) -> int:
        """Return the ring distance between two cells.

        This is the minimum number of cell-to-cell moves needed to reach
        ``b`` from ``a``: ``|a - b|`` on the line and the hexagonal grid
        distance on the plane.
        """

    @abc.abstractmethod
    def ring(self, center: Cell, radius: int) -> Sequence[Cell]:
        """Return all cells at distance exactly ``radius`` from ``center``.

        ``ring(center, 0)`` is ``[center]``.  The order is deterministic.
        """

    @abc.abstractmethod
    def ring_size(self, radius: int) -> int:
        """Return ``len(self.ring(center, radius))`` without enumerating.

        Independent of ``center`` because both paper geometries are
        vertex-transitive.
        """

    def disk(self, center: Cell, radius: int) -> Iterable[Cell]:
        """Yield every cell within distance ``radius`` of ``center``.

        This is the *residing area* for threshold ``radius``; the number
        of cells yielded equals :meth:`coverage` of ``radius``.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        for r in range(radius + 1):
            yield from self.ring(center, r)

    def coverage(self, radius: int) -> int:
        """Return ``g(radius)``: the number of cells within ``radius``.

        Equation (1) of the paper: ``2d + 1`` for the line and
        ``3d(d + 1) + 1`` for the hex plane.  The generic implementation
        sums :meth:`ring_size`; subclasses override with the closed form.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return sum(self.ring_size(r) for r in range(radius + 1))

    def validate_cell(self, cell: Cell) -> None:
        """Raise ``ValueError`` if ``cell`` is not a cell of this topology.

        Subclasses override; the default accepts everything.
        """

    # ------------------------------------------------------------------
    # Ring-transition statistics
    # ------------------------------------------------------------------

    def ring_transition_counts(self, center: Cell, cell: Cell) -> Tuple[int, int, int]:
        """Classify the neighbors of ``cell`` by ring movement.

        Returns ``(outward, same, inward)``: how many neighbors of
        ``cell`` lie one ring further from ``center``, in the same ring,
        and one ring closer.  These counts underpin the Markov-chain
        transition probabilities ``p+(i)`` and ``p-(i)`` of Section 4.1.
        """
        here = self.distance(center, cell)
        outward = same = inward = 0
        for nb in self.neighbors(cell):
            there = self.distance(center, nb)
            if there == here + 1:
                outward += 1
            elif there == here:
                same += 1
            elif there == here - 1:
                inward += 1
            else:  # pragma: no cover - would indicate a broken metric
                raise AssertionError(
                    f"neighbor {nb!r} of {cell!r} jumped from ring {here} to {there}"
                )
        return outward, same, inward
