"""Ring-aggregated movement statistics for a cell topology.

Section 4.1 of the paper derives the 2-D Markov-chain transition
probabilities by counting, over the cells of ring ``r_i``, the fraction
of neighbor edges that lead outward (to ring ``r_{i+1}``) and inward (to
ring ``r_{i-1}``):

    p+(i) = 1/3 + 1/(6 i),      p-(i) = 1/3 - 1/(6 i).

These are *ring averages*.  On the real hexagonal grid corner cells and
edge cells of a ring have different neighbor profiles, so the chain on
the ring index is an aggregation of the true 2-D walk; the aggregation
is exact only if, conditioned on the ring, the terminal is uniformly
distributed over the ring's cells.  This module computes the aggregate
probabilities directly from a :class:`~repro.geometry.topology.CellTopology`
so tests can confirm the paper's formulas and the simulator can quantify
the aggregation error.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Dict, Tuple

from .topology import CellTopology

__all__ = [
    "RingMovementStats",
    "ring_movement_stats",
    "paper_p_plus",
    "paper_p_minus",
    "square_p_plus",
    "square_p_minus",
]


@dataclass(frozen=True)
class RingMovementStats:
    """Aggregate neighbor statistics of one ring.

    Attributes
    ----------
    radius:
        Ring index ``i``.
    cells:
        Number of cells in the ring.
    p_outward, p_same, p_inward:
        Probability that a uniformly random neighbor of a uniformly
        random ring cell lies one ring out, in the same ring, or one
        ring in.  Exact rationals, so tests can assert equality with the
        paper's formulas rather than approximate closeness.
    """

    radius: int
    cells: int
    p_outward: Fraction
    p_same: Fraction
    p_inward: Fraction

    def as_floats(self) -> Tuple[float, float, float]:
        """Return ``(p_outward, p_same, p_inward)`` as floats."""
        return (float(self.p_outward), float(self.p_same), float(self.p_inward))


@lru_cache(maxsize=4096)
def ring_movement_stats(topology: CellTopology, radius: int) -> RingMovementStats:
    """Measure ring-transition probabilities of ring ``radius`` by counting.

    Enumerates every cell of the ring around the topology's origin,
    classifies each of its neighbors, and averages.  Exact (rational)
    arithmetic throughout.  Memoized: topologies are stateless
    value-objects (hashable, equal by class), the result is frozen, and
    chain builders re-request the same small radii constantly.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    center = topology.origin
    totals: Dict[str, int] = {"out": 0, "same": 0, "in": 0}
    cells = topology.ring(center, radius)
    for cell in cells:
        out, same, inward = topology.ring_transition_counts(center, cell)
        totals["out"] += out
        totals["same"] += same
        totals["in"] += inward
    edges = len(cells) * topology.degree
    return RingMovementStats(
        radius=radius,
        cells=len(cells),
        p_outward=Fraction(totals["out"], edges),
        p_same=Fraction(totals["same"], edges),
        p_inward=Fraction(totals["in"], edges),
    )


def paper_p_plus(radius: int) -> Fraction:
    """Paper equation (39): 2-D outward movement probability ``p+(i)``.

    Defined for ``i >= 1``; ``p+(0)`` is 1 by convention (every move
    from the center leaves ring 0).
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return Fraction(1)
    return Fraction(1, 3) + Fraction(1, 6 * radius)


def paper_p_minus(radius: int) -> Fraction:
    """Paper equation (40): 2-D inward movement probability ``p-(i)``."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return Fraction(0)
    return Fraction(1, 3) - Fraction(1, 6 * radius)


def square_p_plus(radius: int) -> Fraction:
    """Square-grid analogue of ``p+(i)``: ``1/2 + 1/(4 i)``.

    Derived like the paper's hex formula: ring ``i`` has 4 corner cells
    (3 outward / 1 inward neighbors) and ``4 (i - 1)`` edge cells
    (2 / 2); the square lattice has no same-ring moves.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return Fraction(1)
    return Fraction(1, 2) + Fraction(1, 4 * radius)


def square_p_minus(radius: int) -> Fraction:
    """Square-grid analogue of ``p-(i)``: ``1/2 - 1/(4 i)``."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return Fraction(0)
    return Fraction(1, 2) - Fraction(1, 4 * radius)
