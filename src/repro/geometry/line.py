"""One-dimensional cell topology (Figure 1(a) of the paper).

The coverage area is an infinite line of equal-length cells indexed by
integers.  Cell ``i`` neighbors cells ``i - 1`` and ``i + 1``.  "Ring"
``r_i`` around a center cell ``x`` is the pair ``{x - i, x + i}`` for
``i >= 1`` and ``{x}`` for ``i = 0``, so ``g(d) = 2d + 1`` cells lie
within distance ``d`` (equation (1)).

This geometry models roads, tunnels, and railway lines where terminal
movement is constrained to forward/backward.
"""

from __future__ import annotations

from typing import List, Sequence

from .topology import CellTopology

__all__ = ["LineTopology"]


class LineTopology(CellTopology):
    """Infinite 1-D chain of cells indexed by ``int``."""

    degree = 2
    dimensions = 1

    @property
    def origin(self) -> int:
        return 0

    def validate_cell(self, cell: object) -> None:
        if not isinstance(cell, int) or isinstance(cell, bool):
            raise ValueError(f"1-D cells are integers, got {cell!r}")

    def neighbors(self, cell: int) -> Sequence[int]:
        self.validate_cell(cell)
        return (cell - 1, cell + 1)

    def distance(self, a: int, b: int) -> int:
        self.validate_cell(a)
        self.validate_cell(b)
        return abs(a - b)

    def ring(self, center: int, radius: int) -> List[int]:
        self.validate_cell(center)
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        if radius == 0:
            return [center]
        return [center - radius, center + radius]

    def ring_size(self, radius: int) -> int:
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return 1 if radius == 0 else 2

    def coverage(self, radius: int) -> int:
        """Return ``g(d) = 2d + 1`` (equation (1), 1-D case)."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return 2 * radius + 1

    def __repr__(self) -> str:
        return "LineTopology()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LineTopology)

    def __hash__(self) -> int:
        return hash(LineTopology)
