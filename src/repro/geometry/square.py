"""Square-grid cell topology (extension beyond the paper).

The paper's framework only needs a geometry with a *ring structure*:
cells at graph distance ``i`` from a center, with computable ring sizes
and ring-transition statistics.  The square (Manhattan) grid is the
natural third instance and demonstrates that the whole pipeline --
chain, costs, optimizer, simulator -- generalizes beyond the paper's
two geometries.

Cells are integer pairs ``(x, y)`` with 4 neighbors; the ring metric is
the Manhattan distance, under which ring ``r_i`` is a diamond of
``4 i`` cells and the residing area holds

    g(d) = 2 d (d + 1) + 1

cells.  Ring-transition statistics (mirroring the hex derivation of
paper Section 4.1): the 4 *corner* cells of ring ``i`` (on the axes)
have 3 outward / 1 inward neighbors, the ``4 (i - 1)`` *edge* cells
have 2 / 2, giving the ring averages

    p+(i) = 1/2 + 1/(4 i),       p-(i) = 1/2 - 1/(4 i).

(No same-ring moves exist: every step changes the Manhattan distance
by exactly one -- square-lattice parity.)
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from .topology import CellTopology

__all__ = ["SquareTopology", "SQUARE_DIRECTIONS"]

#: The four direction vectors, counterclockwise from east.  Order is
#: part of the public contract (seeded walks index into it).
SQUARE_DIRECTIONS: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (0, 1),
    (-1, 0),
    (0, -1),
)

SquareCell = Tuple[int, int]


@lru_cache(maxsize=1024)
def _ring_offsets(radius: int) -> Tuple[SquareCell, ...]:
    """Origin-centered diamond ring (memoized; rings only ever shift)."""
    offsets: List[SquareCell] = []
    # Walk the four diamond edges: E->N->W->S->E.
    x, y = radius, 0
    for dx, dy in ((-1, 1), (-1, -1), (1, -1), (1, 1)):
        for _ in range(radius):
            offsets.append((x, y))
            x += dx
            y += dy
    return tuple(offsets)


class SquareTopology(CellTopology):
    """Infinite square grid with Manhattan ring distance."""

    degree = 4
    dimensions = 2

    @property
    def origin(self) -> SquareCell:
        return (0, 0)

    def validate_cell(self, cell: object) -> None:
        ok = (
            isinstance(cell, tuple)
            and len(cell) == 2
            and all(isinstance(v, int) and not isinstance(v, bool) for v in cell)
        )
        if not ok:
            raise ValueError(f"square cells are (x, y) integer tuples, got {cell!r}")

    def neighbors(self, cell: SquareCell) -> Sequence[SquareCell]:
        self.validate_cell(cell)
        x, y = cell
        return tuple((x + dx, y + dy) for dx, dy in SQUARE_DIRECTIONS)

    def distance(self, a: SquareCell, b: SquareCell) -> int:
        self.validate_cell(a)
        self.validate_cell(b)
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def ring(self, center: SquareCell, radius: int) -> List[SquareCell]:
        """Enumerate the diamond ring counterclockwise from the east corner."""
        self.validate_cell(center)
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        if radius == 0:
            return [center]
        cx, cy = center
        return [(cx + dx, cy + dy) for dx, dy in _ring_offsets(radius)]

    def ring_size(self, radius: int) -> int:
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return 1 if radius == 0 else 4 * radius

    def coverage(self, radius: int) -> int:
        """Return ``g(d) = 2 d (d + 1) + 1``."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return 2 * radius * (radius + 1) + 1

    def is_corner(self, center: SquareCell, cell: SquareCell) -> bool:
        """True if ``cell`` lies on an axis through ``center``.

        Corner cells of ring ``i`` have 3 outward / 1 inward neighbors;
        the rest have 2 / 2.
        """
        self.validate_cell(center)
        self.validate_cell(cell)
        return cell[0] == center[0] or cell[1] == center[1]

    def __repr__(self) -> str:
        return "SquareTopology()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SquareTopology)

    def __hash__(self) -> int:
        return hash(SquareTopology)
