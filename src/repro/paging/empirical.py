"""Empirical paging-order optimization from simulated location data.

The analytic pipeline feeds the *chain's* steady-state ring
distribution into the delay-constrained partition DP
(:func:`~repro.paging.optimal.optimal_contiguous_partition`).  That is
exact for the paper's memoryless isotropic walk -- but the moment the
mobility process has residence-time memory or directional drift, the
chain's distribution is wrong, while the simulator can *measure* the
real one: the vectorized engine records which ring the terminal was
found in at every call (``record_ring_hits=True``).

This module closes that loop: measure the empirical at-call ring
distribution under any :class:`~repro.mobility.ctrw.CTRWSpec`, feed it
into the DP, and compare the resulting plan against the paper's
shortest-distance-first heuristic.  The structural finding the
conformance tier pins: under directional drift the SDF plan is *not*
optimal (probability mass migrates outward, so fronting the poll order
with ring 0 wastes a cycle on a low-mass subarea), while at drift zero
the DP recovers the SDF plan -- the heuristic is validated exactly in
the regime the paper assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError
from ..geometry.topology import CellTopology
from ..mobility.ctrw import CTRWSpec
from .optimal import optimal_contiguous_partition
from .plan import PagingPlan, sdf_partition

__all__ = [
    "EmpiricalPagingReport",
    "empirical_paging_report",
    "empirical_ring_distribution",
]


def empirical_ring_distribution(
    topology: CellTopology,
    threshold: int,
    mobility: MobilityParams,
    walk: Optional[CTRWSpec] = None,
    slots: int = 4000,
    terminals: int = 256,
    warmup_slots: int = 500,
    seed: int = 0,
    max_delay=1,
) -> np.ndarray:
    """Measure the at-call ring distribution ``p_0 .. p_d`` by simulation.

    Runs the vectorized engine with ring-hit recording under a
    distance-``threshold`` strategy and returns the normalized
    distribution of the terminal's ring distance at call arrival --
    the distribution the paging partition should be optimized for.
    ``walk=None`` measures the paper's uniform walk; pass a
    :class:`CTRWSpec` for residence-clock or drifted mobility.
    ``max_delay`` only affects paging costs, never the measured
    distribution, so the default blanket plan is fine.
    """
    from ..simulation.vectorized import VectorizedDistanceEngine  # local: cycle

    engine = VectorizedDistanceEngine(
        topology,
        threshold=threshold,
        mobility=mobility,
        # Costs never influence positions; fixed weights keep the
        # distribution a function of (topology, threshold, mobility).
        costs=CostParams(update_cost=1.0, poll_cost=1.0),
        terminals=terminals,
        max_delay=max_delay,
        seed=seed,
        walk=walk,
        record_ring_hits=True,
    )
    if warmup_slots:
        engine.run(warmup_slots)
        engine.reset_meters()
    engine.run(slots)
    return engine.ring_hit_distribution()


@dataclass(frozen=True)
class EmpiricalPagingReport:
    """SDF vs DP-optimal paging on one measured ring distribution.

    ``improvement`` is the relative saving of the optimal plan over SDF
    in expected polled cells per call (0 when the plans coincide).
    """

    threshold: int
    max_delay: int
    ring_probabilities: Tuple[float, ...]
    sdf_plan: PagingPlan
    optimal_plan: PagingPlan
    sdf_cells: float
    optimal_cells: float

    @property
    def plans_equal(self) -> bool:
        return self.sdf_plan.subareas == self.optimal_plan.subareas

    @property
    def improvement(self) -> float:
        if self.sdf_cells == 0:
            return 0.0
        return (self.sdf_cells - self.optimal_cells) / self.sdf_cells


def empirical_paging_report(
    topology: CellTopology,
    threshold: int,
    max_delay: int,
    ring_probabilities,
) -> EmpiricalPagingReport:
    """Compare SDF against the DP optimum on a measured distribution.

    ``ring_probabilities`` is the at-call ring distribution
    (``threshold + 1`` entries summing to one), typically from
    :func:`empirical_ring_distribution`.
    """
    p = np.asarray(ring_probabilities, dtype=float)
    if p.shape != (threshold + 1,):
        raise ParameterError(
            f"need {threshold + 1} ring probabilities for threshold "
            f"{threshold}, got shape {p.shape}"
        )
    ring_sizes = [topology.ring_size(i) for i in range(threshold + 1)]
    sdf = sdf_partition(threshold, max_delay)
    optimal = optimal_contiguous_partition(threshold, max_delay, p, ring_sizes)
    return EmpiricalPagingReport(
        threshold=threshold,
        max_delay=max_delay,
        ring_probabilities=tuple(float(x) for x in p),
        sdf_plan=sdf,
        optimal_plan=optimal,
        sdf_cells=sdf.expected_polled_cells(topology, p),
        optimal_cells=optimal.expected_polled_cells(topology, p),
    )
