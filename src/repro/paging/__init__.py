"""Terminal paging: residing-area partitioning under delay constraints.

Implements the paper's shortest-distance-first subarea scheme
(Section 2.2) plus blanket and per-ring variants, and -- as the paper's
future-work extension -- the optimal contiguous partition by dynamic
programming, fed either by the chain's steady state or by a
*simulated* at-call ring distribution (:mod:`repro.paging.empirical`),
which is what makes the optimization meaningful for mobility processes
the chain cannot describe.
"""

from .empirical import (
    EmpiricalPagingReport,
    empirical_paging_report,
    empirical_ring_distribution,
)
from .optimal import brute_force_partition, optimal_contiguous_partition
from .ordered import (
    density_order,
    density_ordered_partition,
    expected_cells_for_order,
)
from .plan import (
    PagingPlan,
    blanket_partition,
    partition_from_sizes,
    per_ring_partition,
    sdf_partition,
    sdf_weights_batch,
    subarea_count,
)

__all__ = [
    "EmpiricalPagingReport",
    "PagingPlan",
    "blanket_partition",
    "brute_force_partition",
    "empirical_paging_report",
    "empirical_ring_distribution",
    "density_order",
    "density_ordered_partition",
    "expected_cells_for_order",
    "optimal_contiguous_partition",
    "partition_from_sizes",
    "per_ring_partition",
    "sdf_partition",
    "sdf_weights_batch",
    "subarea_count",
]
