"""Delay-constrained optimal partitioning of the residing area.

The paper's future-work section calls for "an optimal method for
partitioning the residing area of the terminal"; its own scheme (SDF
with equal-size groups) is a heuristic.  This module implements the
optimal *contiguous* partition by dynamic programming, in the spirit of
Rose & Yates [7] (reference [7] of the paper), and an exhaustive
searcher over all contiguous partitions for validating the DP on small
instances.

Problem statement
-----------------

Given ring probabilities ``p_0 .. p_d``, ring sizes ``n_0 .. n_d``, and
a delay bound of ``m`` cycles, choose group boundaries
``0 = t_0 < t_1 < ... < t_l = d + 1`` with ``l <= m`` minimizing the
expected number of polled cells

    E = sum_j alpha_j w_j,
    alpha_j = sum_{i in group j} p_i,
    w_j     = sum_{k <= j} N(A_k).

Rings are kept in distance order: because the steady-state distribution
is (weakly) densest near the center, polling closer rings first
dominates, and grouping non-adjacent rings can only increase ``w`` for
the probability mass involved.  (Tests verify by brute force over all
ordered set partitions for small ``d`` that contiguous-in-distance is
optimal whenever per-cell ring probabilities are non-increasing.)

Dynamic program
---------------

``best(s, k)`` = minimum of ``sum alpha_j * (cells polled so far)``
over partitions of rings ``s .. d`` into at most ``k`` groups, where
"cells polled so far" is relative; we exploit the decomposition

    E = sum_j alpha_j w_j
      = sum over groups of [ alpha_j * N(A_j) accumulated ]

and compute ``best(s, k) = min_e  tail_prob(s..e) * cells(s..e)
+ shifted future`` -- implemented below with suffix sums so each
transition is O(1); total complexity ``O(d^2 m)``.
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence, Tuple

import numpy as np

from ..exceptions import PartitionError
from ..core.parameters import validate_delay, validate_threshold
from .plan import PagingPlan, partition_from_sizes, subarea_count

__all__ = ["optimal_contiguous_partition", "brute_force_partition"]


def _prepare(
    d: int, ring_probabilities: Sequence[float], ring_sizes: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    p = np.asarray(ring_probabilities, dtype=float)
    n = np.asarray(ring_sizes, dtype=float)
    if p.shape != (d + 1,) or n.shape != (d + 1,):
        raise PartitionError(
            f"need {d + 1} ring probabilities and sizes, got {p.shape} and {n.shape}"
        )
    if np.any(p < -1e-12):
        raise PartitionError("ring probabilities must be non-negative")
    if abs(p.sum() - 1.0) > 1e-6:
        raise PartitionError(f"ring probabilities must sum to 1, got {p.sum()}")
    if np.any(n < 1):
        raise PartitionError("ring sizes must be >= 1")
    return p, n


def optimal_contiguous_partition(
    d: int,
    m,
    ring_probabilities: Sequence[float],
    ring_sizes: Sequence[int],
) -> PagingPlan:
    """Optimal contiguous partition of rings ``0..d`` into ``<= m`` groups.

    Minimizes the expected number of polled cells per call.  Returns a
    :class:`PagingPlan`; the achieved expectation can be recomputed with
    :meth:`PagingPlan.expected_polled_cells`.
    """
    d = validate_threshold(d)
    m = validate_delay(m)
    max_groups = subarea_count(d, m)
    p, n = _prepare(d, ring_probabilities, ring_sizes)

    # Suffix sums: tail_p[s] = sum_{i >= s} p_i.
    tail_p = np.concatenate([np.cumsum(p[::-1])[::-1], [0.0]])
    # cells[s:e] helper via prefix sums of n.
    pref_n = np.concatenate([[0.0], np.cumsum(n)])

    size = d + 1
    inf = math.inf
    # best[k][s]: minimal expected *additional* polled cells for rings
    # s..d using at most k groups, counting each group's size against
    # every terminal still unfound when that group is polled
    # (probability tail_p[s] at the moment group starting at s is
    # polled).  Recurrence:
    #   best[k][s] = min over e in s..d of
    #       tail_p[s] * cells(s..e) + best[k-1][e+1]
    # because the group's cells are paid by everyone not yet found
    # before it *plus* those inside it -- i.e. tail mass at s.
    #
    # Proof of equivalence with sum_j alpha_j w_j: swap the order of
    # summation; terminal in group j pays all cells of groups 1..j, so
    # each group's cell count is paid by the probability mass at or
    # beyond its first ring.
    best = [[inf] * (size + 1) for _ in range(max_groups + 1)]
    choice = [[-1] * (size + 1) for _ in range(max_groups + 1)]
    for k in range(max_groups + 1):
        best[k][size] = 0.0
    for k in range(1, max_groups + 1):
        for s in range(size - 1, -1, -1):
            tp = tail_p[s]
            acc = inf
            pick = -1
            for e in range(s, size):
                future = best[k - 1][e + 1]
                if future == inf:
                    continue
                cost = tp * (pref_n[e + 1] - pref_n[s]) + future
                if cost < acc - 1e-15:
                    acc = cost
                    pick = e
            best[k][s] = acc
            choice[k][s] = pick
    if best[max_groups][0] == inf:  # pragma: no cover - cannot happen
        raise PartitionError("dynamic program found no feasible partition")

    sizes = []
    s, k = 0, max_groups
    while s < size:
        e = choice[k][s]
        if e < 0:
            # Fewer groups than allowed were needed; drop to the level
            # that actually has a decision recorded.
            k -= 1
            if k <= 0:  # pragma: no cover - defensive
                raise PartitionError("partition reconstruction failed")
            continue
        sizes.append(e - s + 1)
        s = e + 1
        k -= 1
    return partition_from_sizes(d, sizes)


def brute_force_partition(
    d: int,
    m,
    ring_probabilities: Sequence[float],
    ring_sizes: Sequence[int],
) -> PagingPlan:
    """Exhaustively search all contiguous partitions (small ``d`` only).

    Used by tests to validate the dynamic program.  Complexity is
    exponential in ``d``; refuse beyond ``d = 15``.
    """
    d = validate_threshold(d)
    m = validate_delay(m)
    if d > 15:
        raise PartitionError(f"brute force limited to d <= 15, got {d}")
    max_groups = subarea_count(d, m)
    p, n = _prepare(d, ring_probabilities, ring_sizes)

    best_plan = None
    best_cost = math.inf
    rings = d + 1
    for cuts in range(max_groups):
        for positions in itertools.combinations(range(1, rings), cuts):
            bounds = (0,) + positions + (rings,)
            sizes = [bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1)]
            cost = _contiguous_cost(p, n, sizes)
            if cost < best_cost - 1e-15:
                best_cost = cost
                best_plan = sizes
    assert best_plan is not None
    return partition_from_sizes(d, best_plan)


def _contiguous_cost(p: np.ndarray, n: np.ndarray, sizes: Sequence[int]) -> float:
    """Expected polled cells of a contiguous partition given by sizes."""
    cost = 0.0
    polled = 0.0
    start = 0
    for s in sizes:
        polled += float(n[start : start + s].sum())
        cost += float(p[start : start + s].sum()) * polled
        start += s
    return cost
