"""Probability-ordered paging (Rose & Yates [7] ordering).

The paper polls rings shortest-distance-first and argues this is
"analogous to a more-probable-first scheme" because rings near the
center usually hold more probability.  Reference [7] proves the truly
optimal *order* polls locations by decreasing probability.  At the
granularity of rings the right quantity is the **per-cell density**
``p_i / n_i`` (a ring is polled as a block of ``n_i`` cells), and for
the paper's chains the density ordering can genuinely differ from the
distance ordering: with a strong outward drift, ``p_i`` can grow with
``i`` faster than the 1-D ring size (constant 2) so a farther ring may
be denser per cell than... in practice the interesting case is ring 0
vs ring 1, where ``p_1 > p_0`` is common but ``p_1 / n_1`` rarely
exceeds ``p_0``.

This module provides the density-ordered partition so the ablation
bench can *measure* how often (and by how much) distance order is
suboptimal, instead of taking the paper's analogy on faith.  The
delay-constrained grouping reuses the DP of
:mod:`repro.paging.optimal` on the reordered ring sequence.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import PartitionError
from ..core.parameters import validate_delay, validate_threshold
from ..geometry.topology import CellTopology
from .plan import PagingPlan, subarea_count

__all__ = ["density_order", "density_ordered_partition", "expected_cells_for_order"]


def density_order(
    ring_probabilities: Sequence[float], ring_sizes: Sequence[int]
) -> List[int]:
    """Ring indices sorted by decreasing per-cell probability.

    Ties break toward the smaller ring index (poll nearer first), which
    also makes the order stable and deterministic.
    """
    p = np.asarray(ring_probabilities, dtype=float)
    n = np.asarray(ring_sizes, dtype=float)
    if p.shape != n.shape:
        raise PartitionError(
            f"probabilities and sizes must align, got {p.shape} vs {n.shape}"
        )
    density = p / n
    return sorted(range(len(p)), key=lambda i: (-density[i], i))


def expected_cells_for_order(
    order: Sequence[int],
    groups: Sequence[int],
    ring_probabilities: Sequence[float],
    ring_sizes: Sequence[int],
) -> float:
    """Expected polled cells for an explicit ring order and group sizes.

    ``order`` lists ring indices in polling order; ``groups`` gives how
    many consecutive entries of ``order`` form each polling cycle.
    """
    p = np.asarray(ring_probabilities, dtype=float)
    n = np.asarray(ring_sizes, dtype=float)
    if sum(groups) != len(order):
        raise PartitionError(
            f"group sizes must cover the order: {sum(groups)} != {len(order)}"
        )
    expected = 0.0
    polled = 0.0
    position = 0
    for size in groups:
        block = list(order[position : position + size])
        polled += float(n[block].sum())
        expected += float(p[block].sum()) * polled
        position += size
    return expected


def density_ordered_partition(
    d: int,
    m,
    ring_probabilities: Sequence[float],
    ring_sizes: Sequence[int],
) -> Tuple[PagingPlan, float]:
    """Optimal grouping of the density-ordered rings under delay ``m``.

    Returns the plan and its expected polled-cell count.  The plan's
    subareas may be non-contiguous in distance (that is the point);
    :class:`~repro.paging.plan.PagingPlan` supports that.
    """
    d = validate_threshold(d)
    m = validate_delay(m)
    order = density_order(ring_probabilities, ring_sizes)
    max_groups = subarea_count(d, m)

    p = np.asarray(ring_probabilities, dtype=float)
    n = np.asarray(ring_sizes, dtype=float)
    # DP over contiguous cuts of the *reordered* sequence -- identical
    # structure to optimal.py but on permuted arrays.
    perm_p = p[order]
    perm_n = n[order]
    tail_p = np.concatenate([np.cumsum(perm_p[::-1])[::-1], [0.0]])
    pref_n = np.concatenate([[0.0], np.cumsum(perm_n)])
    size = d + 1
    inf = math.inf
    best = [[inf] * (size + 1) for _ in range(max_groups + 1)]
    choice = [[-1] * (size + 1) for _ in range(max_groups + 1)]
    for k in range(max_groups + 1):
        best[k][size] = 0.0
    for k in range(1, max_groups + 1):
        for s in range(size - 1, -1, -1):
            acc, pick = inf, -1
            for e in range(s, size):
                future = best[k - 1][e + 1]
                if future == inf:
                    continue
                cost = tail_p[s] * (pref_n[e + 1] - pref_n[s]) + future
                if cost < acc - 1e-15:
                    acc, pick = cost, e
            best[k][s] = acc
            choice[k][s] = pick
    groups: List[Tuple[int, ...]] = []
    s, k = 0, max_groups
    while s < size:
        e = choice[k][s]
        groups.append(tuple(sorted(order[s : e + 1])))
        s = e + 1
        k -= 1
    plan = PagingPlan(threshold=d, subareas=tuple(groups))
    sizes_of_groups = [len(g) for g in groups]
    expected = expected_cells_for_order(
        order, sizes_of_groups, ring_probabilities, ring_sizes
    )
    return plan, expected
