"""Paging plans: partitions of the residing area into polled subareas.

Section 2.2 of the paper: when a call arrives for a terminal with
threshold ``d``, the residing area (rings ``r_0 .. r_d``) is partitioned
into ``l = min(d + 1, m)`` subareas ``A_1 .. A_l`` (eqn (2)), polled in
order until the terminal answers.  Each ring belongs to exactly one
subarea, so the terminal is always found within ``l <= m`` polling
cycles -- the delay guarantee.

A :class:`PagingPlan` is an ordered list of ring groups.  Given the
steady-state ring distribution ``p_{i,d}`` and a topology's ring sizes,
it computes

* ``alpha_j`` -- probability the terminal is in subarea ``A_j``
  (eqn (63)),
* ``w_j`` -- cells polled when the terminal is found in ``A_j``
  (eqn (64), cumulative subarea sizes),
* the expected number of polled cells ``sum_j alpha_j w_j`` (the
  bracket of eqn (65)) and the expected paging delay in cycles.

Constructors provided:

:func:`sdf_partition`
    the paper's shortest-distance-first scheme (Section 2.2 steps 1-3):
    ``gamma = floor((d+1)/l)`` rings per subarea, remainder in the last;
:func:`blanket_partition`
    one subarea covering everything (maximum delay 1; what the LA-based
    scheme of [8] does);
:func:`per_ring_partition`
    one ring per subarea (the unconstrained-delay limit).

The delay-constrained *optimal* partition (the paper's future-work
item) lives in :mod:`repro.paging.optimal`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import PartitionError
from ..geometry.topology import CellTopology
from ..core.parameters import validate_delay, validate_threshold

__all__ = [
    "PagingPlan",
    "subarea_count",
    "sdf_partition",
    "sdf_weights_batch",
    "blanket_partition",
    "per_ring_partition",
    "partition_from_sizes",
]


def subarea_count(d: int, m) -> int:
    """Paper equation (2): ``l = min(d + 1, m)`` subareas."""
    d = validate_threshold(d)
    m = validate_delay(m)
    if m == math.inf:
        return d + 1
    return min(d + 1, int(m))


@dataclass(frozen=True)
class PagingPlan:
    """An ordered partition of rings ``r_0 .. r_d`` into polled subareas.

    ``subareas`` is a tuple of tuples of ring indices; subarea ``j``
    (0-based here, 1-based in the paper) is polled in cycle ``j + 1``.
    """

    threshold: int
    subareas: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        d = self.threshold
        if d < 0:
            raise PartitionError(f"threshold must be >= 0, got {d}")
        seen: List[int] = []
        for group in self.subareas:
            if len(group) == 0:
                raise PartitionError("every subarea must contain at least one ring")
            seen.extend(group)
        if sorted(seen) != list(range(d + 1)):
            raise PartitionError(
                f"subareas must cover rings 0..{d} exactly once, got {sorted(seen)}"
            )

    # ------------------------------------------------------------------

    @property
    def delay_bound(self) -> int:
        """Worst-case paging delay in polling cycles (= subarea count)."""
        return len(self.subareas)

    def subarea_of_ring(self, ring: int) -> int:
        """Return the 0-based index of the subarea containing ``ring``."""
        for j, group in enumerate(self.subareas):
            if ring in group:
                return j
        raise PartitionError(f"ring {ring} not in any subarea of {self!r}")

    def subarea_sizes(self, topology: CellTopology) -> np.ndarray:
        """``N(A_j)``: number of cells in each subarea."""
        return np.array(
            [sum(topology.ring_size(r) for r in group) for group in self.subareas]
        )

    def cumulative_polled(self, topology: CellTopology) -> np.ndarray:
        """``w_j`` (eqn (64)): cells polled when found in subarea ``j``."""
        return np.cumsum(self.subarea_sizes(topology))

    def subarea_probabilities(self, ring_distribution: Sequence[float]) -> np.ndarray:
        """``alpha_j`` (eqn (63)): probability of each subarea.

        ``ring_distribution`` is the steady-state vector
        ``p_{0,d} .. p_{d,d}``.
        """
        p = np.asarray(ring_distribution, dtype=float)
        if p.shape != (self.threshold + 1,):
            raise PartitionError(
                f"ring distribution must have length {self.threshold + 1}, "
                f"got shape {p.shape}"
            )
        return np.array([p[list(group)].sum() for group in self.subareas])

    def expected_polled_cells(
        self, topology: CellTopology, ring_distribution: Sequence[float]
    ) -> float:
        """Expected cells polled per call: ``sum_j alpha_j w_j``.

        This is the bracketed factor of eqn (65); multiply by ``c V``
        for the average paging cost per slot.
        """
        alpha = self.subarea_probabilities(ring_distribution)
        w = self.cumulative_polled(topology)
        return float(alpha @ w)

    def expected_delay(self, ring_distribution: Sequence[float]) -> float:
        """Expected paging delay in polling cycles, ``sum_j alpha_j (j+1)``."""
        alpha = self.subarea_probabilities(ring_distribution)
        return float(alpha @ np.arange(1, len(self.subareas) + 1))

    def describe(self) -> str:
        """One-line human-readable description of the ring grouping."""
        parts = []
        for group in self.subareas:
            lo, hi = min(group), max(group)
            if list(group) == list(range(lo, hi + 1)):
                parts.append(f"r{lo}" if lo == hi else f"r{lo}-r{hi}")
            else:
                parts.append("{" + ",".join(f"r{g}" for g in group) + "}")
        return " | ".join(parts)


def partition_from_sizes(d: int, sizes: Sequence[int]) -> PagingPlan:
    """Build a contiguous plan from per-subarea ring counts.

    ``sizes = [2, 1, 3]`` groups rings as ``(0,1), (2,), (3,4,5)``.
    """
    d = validate_threshold(d)
    if any(s < 1 for s in sizes):
        raise PartitionError(f"all subarea sizes must be >= 1, got {list(sizes)}")
    if sum(sizes) != d + 1:
        raise PartitionError(
            f"sizes must sum to d + 1 = {d + 1}, got {sum(sizes)}"
        )
    groups: List[Tuple[int, ...]] = []
    start = 0
    for s in sizes:
        groups.append(tuple(range(start, start + s)))
        start += s
    return PagingPlan(threshold=d, subareas=tuple(groups))


def sdf_partition(d: int, m) -> PagingPlan:
    """The paper's shortest-distance-first partition (Section 2.2).

    With ``l = min(d + 1, m)`` subareas and ``gamma = floor((d+1)/l)``:
    subareas ``A_1 .. A_{l-1}`` get ``gamma`` consecutive rings each,
    starting from ring 0, and ``A_l`` gets the remaining rings.
    """
    d = validate_threshold(d)
    count = subarea_count(d, m)
    gamma = (d + 1) // count
    sizes = [gamma] * (count - 1)
    sizes.append((d + 1) - gamma * (count - 1))
    return partition_from_sizes(d, sizes)


def sdf_weights_batch(steady, cumulative_cells, m):
    """SDF partition weights (eqns (63)-(65)) for *all* thresholds at once.

    The scalar path builds a :class:`PagingPlan` per ``(d, m)`` and
    sums ``alpha_j w_j`` over its subareas.  For the paper's SDF scheme
    every subarea is a contiguous ring range, so both weights collapse
    onto cumulative sums: ``alpha_j`` is a difference of the row-wise
    cumulative steady-state, and ``w_j`` is the cumulative coverage at
    the subarea's outermost ring.  This evaluates the whole threshold
    axis with one cumsum and at most ``min(m, d_max + 1)`` vectorized
    passes (one per polling cycle).

    Parameters
    ----------
    steady:
        ``(D+1, D+1)`` row-triangular matrix; row ``d`` holds
        ``p_{0,d} .. p_{d,d}`` padded with zeros (the layout produced
        by :func:`repro.core.batch.batched_steady_states`).
    cumulative_cells:
        ``g(0) .. g(D)`` -- cumulative ring sizes of the topology.
    m:
        Delay bound (positive int or ``math.inf``).

    Returns
    -------
    ``(expected_cells, expected_delay)`` -- two ``(D+1,)`` vectors:
    expected polled cells per call (the bracket of eqn (65)) and the
    expected paging delay in cycles, for each threshold ``d``.
    """
    m = validate_delay(m)
    probabilities = np.asarray(steady, dtype=float)
    if probabilities.ndim != 2 or probabilities.shape[0] != probabilities.shape[1]:
        raise PartitionError(
            f"steady must be a square row-triangular matrix, got shape "
            f"{probabilities.shape}"
        )
    size = probabilities.shape[0]
    coverage = np.asarray(cumulative_cells, dtype=float)
    if coverage.shape != (size,):
        raise PartitionError(
            f"cumulative_cells must have length {size}, got {coverage.shape}"
        )
    thresholds = np.arange(size)
    if m == math.inf:
        # Per-ring partition: alpha_j = p_j, w_j = g(j), delay j + 1.
        cells = probabilities @ coverage
        delay = probabilities @ (thresholds + 1.0)
        return cells, delay
    count = np.minimum(thresholds + 1, int(m))  # l(d), eqn (2)
    gamma = (thresholds + 1) // count
    cumulative = np.cumsum(probabilities, axis=1)
    cells = np.zeros(size)
    delay = np.zeros(size)
    for j in range(min(int(m), size)):
        # Subarea j exists for every threshold with l(d) > j, i.e.
        # d >= j.  Its rings are [j*gamma, (j+1)*gamma - 1], except the
        # last subarea which absorbs the remainder up to ring d.
        rows = thresholds[j:]
        gamma_j = gamma[rows]
        is_last = j == count[rows] - 1
        hi = np.where(is_last, rows, (j + 1) * gamma_j - 1)
        alpha = cumulative[rows, hi]
        if j > 0:
            alpha = alpha - cumulative[rows, j * gamma_j - 1]
        cells[rows] += alpha * coverage[hi]
        delay[rows] += alpha * (j + 1)
    return cells, delay


def blanket_partition(d: int) -> PagingPlan:
    """Poll the whole residing area at once (delay bound of one cycle)."""
    return partition_from_sizes(d, [validate_threshold(d) + 1])


def per_ring_partition(d: int) -> PagingPlan:
    """One ring per subarea -- the unconstrained-delay SDF limit."""
    return partition_from_sizes(d, [1] * (validate_threshold(d) + 1))
