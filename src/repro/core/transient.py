"""Transient behavior of the ring-distance chain.

The paper works entirely in steady state; this module answers the
questions a practitioner (or a simulation author) asks before trusting
steady-state numbers:

* starting from a fresh location fix (state 0), how does the ring
  distribution evolve slot by slot?
* how many slots until it is within a given total-variation distance of
  the stationary distribution (the *mixing time*)?
* what is the expected cost accrued over a finite horizon, which
  converges to ``C_T`` per slot but starts lower (a just-registered
  terminal cannot be far away yet)?

The implementation is plain dense linear algebra on the ``(d+1)``-state
transition matrix -- thresholds in this problem are small, so O(d^2)
per slot is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ParameterError
from .costs import CostEvaluator
from .models import MobilityModel
from .parameters import validate_delay, validate_threshold

__all__ = ["TransientAnalysis", "mixing_time", "distribution_at", "transient_cost"]


def _start_vector(d: int, start: Optional[Sequence[float]]) -> np.ndarray:
    if start is None:
        vec = np.zeros(d + 1)
        vec[0] = 1.0
        return vec
    vec = np.asarray(start, dtype=float)
    if vec.shape != (d + 1,):
        raise ParameterError(
            f"start distribution must have length {d + 1}, got shape {vec.shape}"
        )
    if np.any(vec < 0) or abs(vec.sum() - 1.0) > 1e-9:
        raise ParameterError("start must be a probability distribution")
    return vec


def distribution_at(
    model: MobilityModel,
    d: int,
    slots: int,
    start: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Ring distribution after ``slots`` slots from ``start``.

    ``start`` defaults to a fresh fix (all mass in state 0).
    """
    d = validate_threshold(d)
    if slots < 0:
        raise ParameterError(f"slots must be >= 0, got {slots}")
    P = model.chain(d).transition_matrix()
    vec = _start_vector(d, start)
    for _ in range(slots):
        vec = vec @ P
    return vec


def mixing_time(
    model: MobilityModel,
    d: int,
    tolerance: float = 0.01,
    max_slots: int = 1_000_000,
    start: Optional[Sequence[float]] = None,
) -> int:
    """Slots until total-variation distance to stationarity <= tolerance.

    Uses matrix squaring to bracket, then a linear scan inside the
    bracket, so very slow-mixing chains (tiny ``q``) stay cheap.
    """
    d = validate_threshold(d)
    if not 0 < tolerance < 1:
        raise ParameterError(f"tolerance must be in (0, 1), got {tolerance}")
    pi = model.steady_state(d)
    P = model.chain(d).transition_matrix()
    vec = _start_vector(d, start)

    def tv(v: np.ndarray) -> float:
        return 0.5 * float(np.abs(v - pi).sum())

    if tv(vec) <= tolerance:
        return 0
    # Exponential bracketing: find k with tv after 2^k slots under tol.
    powers = [P]
    elapsed = 1
    current = vec @ P
    while tv(current) > tolerance:
        if elapsed >= max_slots:
            raise ParameterError(
                f"chain did not mix within {max_slots} slots "
                f"(tv={tv(current):.4f}); lower the tolerance or check q"
            )
        powers.append(powers[-1] @ powers[-1])
        current = vec @ powers[-1]
        elapsed *= 2
    # Binary search in (elapsed/2, elapsed] using cumulative products.
    lo = elapsed // 2  # tv(lo) > tolerance (or lo == 0)
    hi = elapsed
    base = vec if lo == 0 else vec @ powers[-2] if len(powers) >= 2 else vec
    # Simple linear scan from lo: the bracket is at most lo slots wide
    # and lo <= max_slots; step with the one-slot matrix.
    current = base
    steps = lo
    while tv(current) > tolerance:
        current = current @ P
        steps += 1
        if steps > hi:  # pragma: no cover - bracketing guarantees
            break
    return steps


@dataclass(frozen=True)
class TransientAnalysis:
    """Finite-horizon cost trajectory from a fresh location fix."""

    threshold: int
    delay_bound: float
    #: Expected per-slot total cost at each slot ``t`` (length horizon).
    per_slot_cost: List[float]
    #: Steady-state per-slot cost (the paper's ``C_T``).
    steady_state_cost: float

    @property
    def horizon(self) -> int:
        return len(self.per_slot_cost)

    @property
    def cumulative_cost(self) -> float:
        return float(sum(self.per_slot_cost))

    def slots_to_within(self, fraction: float = 0.01) -> int:
        """First slot whose cost is within ``fraction`` of steady state."""
        target = self.steady_state_cost
        for t, value in enumerate(self.per_slot_cost):
            if abs(value - target) <= fraction * max(target, 1e-12):
                return t
        return self.horizon


def transient_cost(
    evaluator: CostEvaluator,
    d: int,
    m,
    horizon: int,
    start: Optional[Sequence[float]] = None,
) -> TransientAnalysis:
    """Expected per-slot cost over ``horizon`` slots from a fresh fix.

    At slot ``t`` the expected cost is

        sum_i P[state = i at t] * (update_rate_i * U  +  c * V * w(i))

    where ``update_rate_i`` is nonzero only at the boundary state and
    ``w(i)`` is the polled-cell count when the terminal is found in
    ring ``i`` under the evaluator's paging plan.
    """
    d = validate_threshold(d)
    m = validate_delay(m)
    if horizon < 0:
        raise ParameterError(f"horizon must be >= 0, got {horizon}")
    model = evaluator.model
    chain = model.chain(d)
    P = chain.transition_matrix()
    plan = evaluator.plan(d, m)
    topo = model.topology
    w = plan.cumulative_polled(topo)
    # Per-state paging cells: w of the subarea containing each ring.
    cells_by_state = np.array(
        [w[plan.subarea_of_ring(ring)] for ring in range(d + 1)], dtype=float
    )
    c = model.c
    V = evaluator.costs.poll_cost
    U = evaluator.costs.update_cost
    update_rate = np.zeros(d + 1)
    update_rate[d] = model.update_rate(d, convention=evaluator.convention)

    vec = _start_vector(d, start)
    costs: List[float] = []
    for _ in range(horizon):
        slot_cost = float(vec @ update_rate) * U + c * V * float(vec @ cells_by_state)
        costs.append(slot_cost)
        vec = vec @ P
    steady = evaluator.total_cost(d, m)
    return TransientAnalysis(
        threshold=d,
        delay_bound=m,
        per_slot_cost=costs,
        steady_state_cost=steady,
    )
