"""Cost-surface exploration over ``(d, m)``.

Section 6 justifies global search with one sentence: "depending on the
method used to partition the residing area of the terminal, the total
cost curve may have local minimum".  This module makes that claim
inspectable: it evaluates ``C_T`` over a threshold range (for one or
many delay bounds), locates every local minimum, and reports where
greedy descent would be trapped.  The optimizer ablation bench and the
``local-minima`` tests are built on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..exceptions import ParameterError
from .costs import CostEvaluator
from .parameters import validate_delay, validate_threshold

__all__ = ["CostCurve", "CostSurface", "compute_surface"]


@dataclass(frozen=True)
class CostCurve:
    """``C_T(d, m)`` for fixed ``m`` over ``d = 0 .. d_max``."""

    delay_bound: float
    values: List[float]

    @property
    def d_max(self) -> int:
        return len(self.values) - 1

    @property
    def global_minimum(self) -> int:
        """Smallest argmin over the range."""
        best = 0
        for d, value in enumerate(self.values):
            if value < self.values[best] - 1e-15:
                best = d
        return best

    def local_minima(self, tolerance: float = 1e-12) -> List[int]:
        """Thresholds that no adjacent threshold strictly improves on.

        Plateau interiors are not reported; the first index of each
        plateau that qualifies is.
        """
        minima: List[int] = []
        n = len(self.values)
        previous_candidate = None  # last qualifying index (plateau tail)
        for d in range(n):
            left_ok = d == 0 or self.values[d - 1] >= self.values[d] - tolerance
            right_ok = d == n - 1 or self.values[d + 1] >= self.values[d] - tolerance
            if not (left_ok and right_ok):
                continue
            continues_plateau = (
                previous_candidate == d - 1
                and abs(self.values[d] - self.values[d - 1]) <= tolerance
            )
            if not continues_plateau:
                minima.append(d)
            previous_candidate = d
        return minima

    def is_multimodal(self, tolerance: float = 1e-9) -> bool:
        """True if a greedy descent from some start misses the optimum.

        Stricter than "more than one local minimum": plateaus and
        numerically-tied basins do not count; the basins must differ in
        value by more than ``tolerance``.
        """
        minima = self.local_minima()
        if len(minima) < 2:
            return False
        best = min(self.values[d] for d in minima)
        return any(self.values[d] > best + tolerance for d in minima)


@dataclass(frozen=True)
class CostSurface:
    """A family of cost curves, one per delay bound."""

    curves: Dict[float, CostCurve]

    def curve(self, m) -> CostCurve:
        m = validate_delay(m)
        try:
            return self.curves[m]
        except KeyError:
            raise ParameterError(
                f"no curve for delay {m}; have {sorted(self.curves, key=str)}"
            ) from None

    def optimal_thresholds(self) -> Dict[float, int]:
        """Global optimum per delay bound."""
        return {m: curve.global_minimum for m, curve in self.curves.items()}

    def multimodal_delays(self) -> List[float]:
        """Delay bounds whose cost curve has distinct local basins."""
        return [m for m, curve in self.curves.items() if curve.is_multimodal()]


def compute_surface(
    evaluator: CostEvaluator,
    d_max: int,
    delays: Sequence[float] = (1, 2, 3, math.inf),
) -> CostSurface:
    """Evaluate ``C_T`` on the full ``(d, m)`` grid.

    Each curve comes from :meth:`CostEvaluator.cost_curve`, which uses
    the batched surface solver when the evaluator pages with the
    default SDF partition and falls back to the scalar loop otherwise.
    """
    d_max = validate_threshold(d_max)
    curves: Dict[float, CostCurve] = {}
    for m in delays:
        m = validate_delay(m)
        curves[m] = CostCurve(
            delay_bound=m,
            values=evaluator.cost_curve(m, d_max),
        )
    return CostSurface(curves=curves)
