"""The near-optimal 2-D threshold scheme (paper Sections 4.2 and 7).

Searching with the *exact* 2-D steady state requires the recursive
solve of Section 4.1 at every candidate threshold.  The near-optimal
scheme instead optimizes the closed-form *approximate* model of
Section 4.2 -- cheap enough for "mobile terminals with limited
computing power" -- and accepts a slightly suboptimal threshold ``d'``.

Section 7 defines:

* ``d'`` -- the threshold minimizing the approximate total cost;
* ``C'_T`` -- the **exact** average total cost incurred when ``d'`` is
  used (so the penalty of approximating is measured honestly);
* the *correction rule*: the only damaging case is ``d' = 0`` when the
  true optimum is 1 (cost can double).  When ``d' = 0``, compute the
  exact costs ``C^0_T`` and ``C^1_T`` of thresholds 0 and 1 and replace
  ``d'`` by 1 if ``C^1_T < C^0_T``.

Table 2's ``d'``/``C'_T`` columns are produced *without* the correction
(the paper proposes it as a remedy after presenting the table), so
``apply_correction`` defaults to False and the table bench leaves it
off; the ablation bench turns it on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .costs import CostEvaluator, PlanFactory
from .models import TwoDimensionalApproximateModel, TwoDimensionalModel
from .optimizers import exhaustive_search
from .parameters import CostParams, MobilityParams, validate_delay, validate_threshold
from .threshold import DEFAULT_MAX_THRESHOLD

__all__ = ["NearOptimalSolution", "near_optimal_threshold"]


@dataclass(frozen=True)
class NearOptimalSolution:
    """Result of the near-optimal threshold computation."""

    #: The chosen threshold ``d'`` (after correction, if enabled).
    threshold: int
    #: Exact total cost ``C'_T`` at the chosen threshold.
    exact_cost: float
    #: The approximate model's own estimate of its optimum's cost.
    approximate_cost: float
    #: ``d'`` before the 0-vs-1 correction was considered.
    uncorrected_threshold: int
    #: True if the correction rule changed the threshold.
    corrected: bool
    delay_bound: float


def near_optimal_threshold(
    mobility: MobilityParams,
    costs: CostParams,
    max_delay,
    d_max: int = DEFAULT_MAX_THRESHOLD,
    apply_correction: bool = False,
    plan_factory: Optional[PlanFactory] = None,
) -> NearOptimalSolution:
    """Compute the 2-D near-optimal threshold ``d'`` and its exact cost.

    Optimizes the Section 4.2 approximate model exhaustively over
    ``0..d_max``, optionally applies the paper's ``d' = 0`` correction,
    and evaluates the exact (Section 4.1) cost of the result.
    """
    m = validate_delay(max_delay)
    d_max = validate_threshold(d_max)
    approx = TwoDimensionalApproximateModel(mobility)
    exact = TwoDimensionalModel(mobility)
    approx_eval = CostEvaluator(approx, costs, plan_factory=plan_factory)
    exact_eval = CostEvaluator(exact, costs, plan_factory=plan_factory)

    # One batched curve evaluation (all thresholds at once) feeds the
    # exhaustive scan; array lookups keep the searcher's tie-breaking.
    approx_curve = approx_eval.cost_curve(m, d_max)
    search = exhaustive_search(lambda d: approx_curve[d], d_max)
    d_prime = search.optimal_threshold
    uncorrected = d_prime
    corrected = False
    if apply_correction and d_prime == 0 and d_max >= 1:
        # Exact costs of thresholds 0 and 1 are cheap to obtain; prefer
        # 1 whenever it is truly better (Section 7's remedy for the
        # worst case, where C'_T could otherwise double C_T).
        if exact_eval.total_cost(1, m) < exact_eval.total_cost(0, m):
            d_prime = 1
            corrected = True
    return NearOptimalSolution(
        threshold=d_prime,
        exact_cost=exact_eval.total_cost(d_prime, m),
        approximate_cost=search.optimal_cost,
        uncorrected_threshold=uncorrected,
        corrected=corrected,
        delay_bound=m if m == math.inf else int(m),
    )
