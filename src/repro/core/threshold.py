"""High-level optimal-threshold API.

Ties together the model, cost evaluator, and searcher into the
operation a network operator actually performs: "given this user's
``(q, c)``, these costs ``(U, V)``, and a delay budget ``m``, what
threshold distance should the terminal use, and what will it cost?"
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..exceptions import ParameterError
from .costs import CostBreakdown, CostEvaluator, PlanFactory
from .models import MobilityModel
from .optimizers import (
    OptimizationResult,
    exhaustive_search,
    hill_climb,
    simulated_annealing,
)
from .parameters import CostParams, validate_delay, validate_threshold

__all__ = ["ThresholdSolution", "find_optimal_threshold", "DEFAULT_MAX_THRESHOLD"]

#: Default search bound ``D``.  Section 6: "for typical call arrival and
#: mobility values, the optimal distance rarely exceeds 50"; Table 1
#: reaches ``d* = 52`` at ``U = 1000``, so we leave headroom.
DEFAULT_MAX_THRESHOLD = 100


@dataclass(frozen=True)
class ThresholdSolution:
    """An optimized operating point for one terminal."""

    threshold: int
    delay_bound: float
    breakdown: CostBreakdown
    search: OptimizationResult

    @property
    def total_cost(self) -> float:
        """Optimal average total cost ``C_T(d*, m)``."""
        return self.breakdown.total_cost

    @property
    def update_cost(self) -> float:
        """``C_u(d*)`` component."""
        return self.breakdown.update_cost

    @property
    def paging_cost(self) -> float:
        """``C_v(d*, m)`` component."""
        return self.breakdown.paging_cost


def find_optimal_threshold(
    model: MobilityModel,
    costs: CostParams,
    max_delay,
    d_max: int = DEFAULT_MAX_THRESHOLD,
    method: str = "exhaustive",
    plan_factory: Optional[PlanFactory] = None,
    convention: str = "paper",
    seed: int = 0,
) -> ThresholdSolution:
    """Find the threshold minimizing ``C_T(d, m)`` over ``0 <= d <= d_max``.

    Parameters
    ----------
    model:
        The terminal's mobility model (fixes geometry and ``q, c``).
    costs:
        Update and polling costs ``(U, V)``.
    max_delay:
        Delay bound ``m`` in polling cycles (``math.inf`` = unbounded).
    method:
        ``"exhaustive"`` (default; guaranteed optimum, the paper's
        ``D + 1``-iteration method, served by the batched surface
        solver of :mod:`repro.core.batch` whenever the evaluator pages
        with the default SDF partition), ``"exhaustive-scalar"`` (the
        same scan forced through the per-threshold scalar path -- the
        cross-check reference), ``"annealing"`` (the paper's simulated
        annealing), or ``"hill"`` (greedy baseline).
    plan_factory, convention:
        Forwarded to :class:`CostEvaluator`.
    seed:
        RNG seed for the annealing method.
    """
    m = validate_delay(max_delay)
    d_max = validate_threshold(d_max)
    evaluator = CostEvaluator(
        model, costs, plan_factory=plan_factory, convention=convention
    )

    def objective(d: int) -> float:
        return evaluator.total_cost(d, m)

    if method in ("exhaustive", "exhaustive-scalar"):
        # Materialize the whole curve first (one triangular batched
        # solve when possible), then run the searcher over array
        # lookups so tie-breaking and evaluation accounting are
        # identical to the scalar scan.
        curve_method = "scalar" if method == "exhaustive-scalar" else "auto"
        curve = evaluator.cost_curve(m, d_max, method=curve_method)
        search = exhaustive_search(lambda d: curve[d], d_max)
    elif method == "annealing":
        search = simulated_annealing(objective, d_max, seed=seed)
    elif method == "hill":
        search = hill_climb(objective, d_max)
    else:
        raise ParameterError(
            f"unknown method {method!r}; expected "
            "exhaustive/exhaustive-scalar/annealing/hill"
        )
    # The winning point's breakdown is a memo (or surface-row) hit:
    # every evaluation path above populates the evaluator's caches, so
    # nothing is re-solved here.
    breakdown = evaluator.breakdown(search.optimal_threshold, m)
    return ThresholdSolution(
        threshold=search.optimal_threshold,
        delay_bound=m if m == math.inf else int(m),
        breakdown=breakdown,
        search=search,
    )
