"""Joint (move-count, ring) chain: movement-based updating, staged paging.

The blanket-paging movement model in :mod:`repro.core.baselines` only
needs the move count ``k``.  To page a movement-based terminal in
*stages* (the SDF partition of its radius-``k`` uncertainty disk under
a delay bound ``m``) the network's cost depends on which ring the
terminal actually occupies -- so the analysis needs the joint steady
state over

    (k, i):   k = moves since the last fix (0 .. M-1),
              i = ring distance from the fix cell (0 <= i <= k).

Transitions (competing per-slot events, as everywhere in this library):

* call, probability ``c`` -> fix, state (0, 0);
* move, probability ``q``: ``k -> k+1`` and the ring moves out/same/in
  with the geometry's ring-statistics ``p+(i) / p0(i) / p-(i)``
  (ring-aggregated, exactly like the paper's 2-D chain); the ``M``-th
  move triggers an update -> (0, 0);
* otherwise stay.

Costs:

* ``C_u = U q sum_i p(M-1, i)``  (the next move updates);
* ``C_v(m) = c V sum_{k,i} p(k, i) * w_k(i)`` where ``w_k(i)`` is the
  cumulative polled cells through ring ``i``'s subarea in the SDF
  partition of radius ``k`` under bound ``m``.

With ``m = 1`` this reduces exactly to the blanket model of
``baselines.movement_based_costs`` (tested), and on the line the ring
aggregation is exact so simulation agreement is within noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import ParameterError, SolverError
from ..geometry import HexTopology, LineTopology, SquareTopology
from ..geometry.ringstats import (
    paper_p_minus,
    paper_p_plus,
    square_p_minus,
    square_p_plus,
)
from ..geometry.topology import CellTopology
from ..paging.plan import sdf_partition
from .baselines import BaselineCosts
from .parameters import CostParams, MobilityParams, validate_delay

__all__ = ["movement_staged_costs", "optimal_staged_movement_threshold"]


def _ring_probs(topology: CellTopology, i: int) -> Tuple[float, float, float]:
    """``(p+, p0, p-)`` for ring ``i`` of the given geometry."""
    if isinstance(topology, LineTopology):
        if i == 0:
            return 1.0, 0.0, 0.0
        return 0.5, 0.0, 0.5
    if isinstance(topology, HexTopology):
        plus = float(paper_p_plus(i))
        minus = float(paper_p_minus(i))
        return plus, 1.0 - plus - minus, minus
    if isinstance(topology, SquareTopology):
        plus = float(square_p_plus(i))
        minus = float(square_p_minus(i))
        return plus, 1.0 - plus - minus, minus
    raise ParameterError(f"unsupported topology {topology!r}")


def _joint_steady_state(
    topology: CellTopology, mobility: MobilityParams, M: int
) -> Dict[Tuple[int, int], float]:
    """Stationary distribution over (k, i) states."""
    states: List[Tuple[int, int]] = [
        (k, i) for k in range(M) for i in range(k + 1)
    ]
    index = {state: n for n, state in enumerate(states)}
    size = len(states)
    q, c = mobility.q, mobility.c
    P = np.zeros((size, size))
    origin = index[(0, 0)]
    for (k, i), row in index.items():
        P[row, origin] += c
        stay = 1.0 - c
        if k == M - 1:
            P[row, origin] += q  # the M-th move updates and resets
            stay -= q
        else:
            plus, same, minus = _ring_probs(topology, i)
            P[row, index[(k + 1, i + 1)]] += q * plus
            if same:
                P[row, index[(k + 1, i)]] += q * same
            if i > 0 and minus:
                P[row, index[(k + 1, i - 1)]] += q * minus
            stay -= q
        P[row, row] += stay
    A = P.T - np.eye(size)
    A[-1, :] = 1.0
    rhs = np.zeros(size)
    rhs[-1] = 1.0
    try:
        pi = np.linalg.solve(A, rhs)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise SolverError(f"joint movement chain singular: {exc}") from exc
    pi = np.clip(pi, 0.0, None)
    pi = pi / pi.sum()
    return {state: float(pi[index[state]]) for state in states}


def movement_staged_costs(
    topology: CellTopology,
    mobility: MobilityParams,
    costs: CostParams,
    movement_threshold: int,
    max_delay,
) -> BaselineCosts:
    """Movement-based scheme with SDF paging under delay bound ``m``."""
    if isinstance(movement_threshold, bool) or not isinstance(movement_threshold, int):
        raise ParameterError(
            f"movement_threshold must be an int, got {movement_threshold!r}"
        )
    if movement_threshold < 1:
        raise ParameterError(
            f"movement_threshold must be >= 1, got {movement_threshold}"
        )
    m = validate_delay(max_delay)
    M = movement_threshold
    joint = _joint_steady_state(topology, mobility, M)
    q, c = mobility.q, mobility.c

    update = costs.update_cost * q * sum(
        joint[(M - 1, i)] for i in range(M)
    )
    # Per-radius SDF plans: w_k(i) = cells polled when found in ring i.
    paging = 0.0
    for k in range(M):
        plan = sdf_partition(k, m)
        w = plan.cumulative_polled(topology)
        for i in range(k + 1):
            paging += joint[(k, i)] * float(w[plan.subarea_of_ring(i)])
    paging *= c * costs.poll_cost
    return BaselineCosts(
        scheme="movement-staged",
        parameter=M,
        update_cost=update,
        paging_cost=paging,
    )


def optimal_staged_movement_threshold(
    topology: CellTopology,
    mobility: MobilityParams,
    costs: CostParams,
    max_delay,
    max_threshold: int = 60,
) -> BaselineCosts:
    """Best ``M`` for the staged-paging movement scheme."""
    best: BaselineCosts = None  # type: ignore[assignment]
    for M in range(1, max_threshold + 1):
        candidate = movement_staged_costs(topology, mobility, costs, M, max_delay)
        if best is None or candidate.total_cost < best.total_cost - 1e-15:
            best = candidate
    return best
