"""The paper's three analytical mobility models.

Each model class bundles, for a terminal with mobility parameters
``(q, c)`` on one of the paper's geometries:

* the ring-distance Markov chain (transition rate arrays, paper
  Sections 3.1 / 4.1);
* steady-state solvers (closed form where the paper gives one, plus the
  recursive and matrix solvers for cross-checking);
* the geometric coverage function ``g(d)`` (paper eqn (1));
* the boundary-crossing rate used in the update-cost formula
  ``C_u(d) = p_{d,d} * a_{d,d+1} * U`` (paper eqn (61)).

Boundary-rate convention
------------------------

At ``d = 0`` the chain rate out of state 0 is ``q`` (any move leaves
the single-cell residing area), but the paper's published tables only
reproduce if ``C_u(0)`` uses a *different* rate per model (see
DESIGN.md Section 2):

* 1-D (Table 1): ``C_u(0) = U q / 2`` -- the interior rate,
* 2-D exact (Table 2): ``C_u(0) = U q`` -- the physical rate,
* 2-D approximate (Table 2, ``d'`` column): ``C_u(0) = U q / 3`` --
  the interior rate (this is what makes ``d'`` stay at 0 up to
  ``U = 70`` and flip to 1 at ``U = 80``).

Each class implements its paper convention in :meth:`update_rate`; pass
``convention="physical"`` to use ``q`` at ``d = 0`` everywhere instead
(the defensible choice for new deployments; see the ablation bench).
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from ..exceptions import ParameterError
from ..geometry import HexTopology, LineTopology, SquareTopology
from ..geometry.topology import CellTopology
from . import closed_form
from .chains import ResetChain, solve_steady_state_matrix, solve_steady_state_recursive
from .parameters import MobilityParams, validate_threshold

__all__ = [
    "MobilityModel",
    "OneDimensionalModel",
    "SquareGridApproximateModel",
    "SquareGridModel",
    "TwoDimensionalModel",
    "TwoDimensionalApproximateModel",
]

_CONVENTIONS = ("paper", "physical")


class MobilityModel(abc.ABC):
    """Base class for the ring-distance models of Sections 3 and 4."""

    #: Human-readable model name, used in reports.
    name: str = "abstract"

    #: True when ``transition_rates(d)[i]`` depends only on the ring
    #: index ``i``, never on the threshold ``d`` -- equivalently,
    #: ``transition_rates(D)`` restricted to ``0..d`` equals
    #: ``transition_rates(d)`` for every ``d <= D``.  This holds for
    #: every model in the library (the rates come from per-ring
    #: neighbor geometry) and is what lets
    #: :mod:`repro.core.batch` solve all thresholds in one triangular
    #: sweep.  A subclass whose rates genuinely depend on ``d`` must
    #: set this to False; the batched solver then refuses it and the
    #: scalar path is used instead.
    threshold_invariant_rates: bool = True

    def __init__(self, mobility: MobilityParams) -> None:
        self.mobility = mobility
        self._steady_cache: dict = {}

    # -- construction conveniences ------------------------------------

    @classmethod
    def from_probabilities(cls, q: float, c: float) -> "MobilityModel":
        """Build a model directly from the paper's ``q`` and ``c``."""
        return cls(MobilityParams(move_probability=q, call_probability=c))

    @property
    def q(self) -> float:
        """Per-slot move probability."""
        return self.mobility.move_probability

    @property
    def c(self) -> float:
        """Per-slot call-arrival probability."""
        return self.mobility.call_probability

    # -- geometry -------------------------------------------------------

    @property
    @abc.abstractmethod
    def topology(self) -> CellTopology:
        """The cell geometry this model's chain aggregates."""

    def coverage(self, d: int) -> int:
        """``g(d)``: number of cells within distance ``d`` (eqn (1))."""
        return self.topology.coverage(validate_threshold(d))

    def ring_size(self, i: int) -> int:
        """Number of cells in ring ``r_i``."""
        return self.topology.ring_size(i)

    # -- chain ----------------------------------------------------------

    @abc.abstractmethod
    def transition_rates(self, d: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return the rate arrays ``(a_0..a_d, b_0..b_d)`` for threshold ``d``."""

    def chain(self, d: int) -> ResetChain:
        """Build the :class:`ResetChain` for threshold ``d``."""
        a, b = self.transition_rates(validate_threshold(d))
        return ResetChain(outward=a, inward=b, reset=self.c)

    def steady_state(self, d: int, method: str = "auto") -> np.ndarray:
        """Return ``p_{0,d} .. p_{d,d}``, the residence distribution.

        ``method`` selects the solver: ``"auto"`` (the model's preferred
        solver, cached), ``"closed_form"`` (where available),
        ``"recursive"`` (paper Section 4.1), ``"matrix"`` (reference
        linear solve), or ``"banded"`` (the scipy tridiagonal LU of
        :func:`repro.core.batch.banded_steady_state` -- the only solver
        that stays finite past ``d ~ 760``).  Results of ``"auto"`` are
        cached per threshold.
        """
        d = validate_threshold(d)
        if method == "auto":
            cached = self._steady_cache.get(d)
            if cached is None:
                cached = self._solve_default(d)
                cached.flags.writeable = False
                self._steady_cache[d] = cached
            return cached
        if method == "closed_form":
            return self._solve_closed_form(d)
        if method == "recursive":
            return solve_steady_state_recursive(self.chain(d))
        if method == "matrix":
            return solve_steady_state_matrix(self.chain(d))
        if method == "banded":
            return self._solve_banded(d)
        raise ParameterError(
            f"unknown method {method!r}; expected "
            "auto/closed_form/recursive/matrix/banded"
        )

    def _solve_default(self, d: int) -> np.ndarray:
        return self._solve_closed_form(d)

    def _solve_banded(self, d: int) -> np.ndarray:
        from .batch import banded_steady_state  # local: batch imports us

        return banded_steady_state(self, d)

    def _solve_recursive_or_banded(self, d: int) -> np.ndarray:
        """Default solver for recursion-based models.

        The backward recursion's unnormalized values grow at least like
        ``2**d`` and overflow float64 near ``d ~ 760``; past the batch
        module's cutover the banded LU -- which anchors ``p_0 = 1`` and
        only ever *underflows* -- takes over, making very large
        thresholds solvable through the same ``steady_state(d)`` call.
        """
        from .batch import BANDED_CUTOVER  # local: batch imports us

        if d > BANDED_CUTOVER:
            return self._solve_banded(d)
        return solve_steady_state_recursive(self.chain(d))

    def _solve_closed_form(self, d: int) -> np.ndarray:
        raise ParameterError(f"{self.name} has no closed-form steady state")

    # -- update rate ------------------------------------------------------

    def update_rate(self, d: int, convention: str = "paper") -> float:
        """Rate ``a_{d,d+1}`` used in the update cost ``C_u`` (eqn (61)).

        See the module docstring for the per-model ``d = 0`` convention.
        """
        d = validate_threshold(d)
        if convention not in _CONVENTIONS:
            raise ParameterError(
                f"unknown convention {convention!r}; expected one of {_CONVENTIONS}"
            )
        if d == 0:
            if convention == "physical":
                return self.q
            return self._paper_boundary_rate()
        return self._interior_outward_rate(d)

    @abc.abstractmethod
    def _interior_outward_rate(self, d: int) -> float:
        """Outward rate from state ``d >= 1``."""

    @abc.abstractmethod
    def _paper_boundary_rate(self) -> float:
        """Rate the paper's tables use for ``C_u`` at ``d = 0``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(q={self.q}, c={self.c})"


class OneDimensionalModel(MobilityModel):
    """Section 3: random walk on the 1-D line of cells.

    Interior rates are ``a_i = b_i = q/2`` (each of the two neighbors
    equally likely); the rate out of state 0 is ``q``.  The steady state
    has the closed form of Section 3.2.
    """

    name = "1d"
    _topology = LineTopology()

    @property
    def topology(self) -> CellTopology:
        return self._topology

    def transition_rates(self, d: int) -> Tuple[np.ndarray, np.ndarray]:
        q = self.q
        a = np.full(d + 1, q / 2.0)
        a[0] = q
        b = np.full(d + 1, q / 2.0)
        b[0] = 0.0
        return a, b

    def _solve_closed_form(self, d: int) -> np.ndarray:
        return closed_form.solve_1d(self.q, self.c, d)

    def _interior_outward_rate(self, d: int) -> float:
        return self.q / 2.0

    def _paper_boundary_rate(self) -> float:
        # Table 1 rows U=1..10 show C_u(0) = U q / 2.
        return self.q / 2.0


class TwoDimensionalModel(MobilityModel):
    """Section 4.1: random walk on the hex grid, exact ring aggregation.

    Interior rates are state dependent (eqns (41)-(42)):

        a_i = q (1/3 + 1/(6 i)),     b_i = q (1/3 - 1/(6 i)),

    with ``a_0 = q``.  No simple closed form; the paper's recursive
    method is the default solver.
    """

    name = "2d-exact"
    _topology = HexTopology()

    @property
    def topology(self) -> CellTopology:
        return self._topology

    def transition_rates(self, d: int) -> Tuple[np.ndarray, np.ndarray]:
        q = self.q
        a = np.empty(d + 1)
        b = np.empty(d + 1)
        a[0] = q
        b[0] = 0.0
        if d >= 1:
            i = np.arange(1, d + 1, dtype=float)
            a[1:] = q * (1.0 / 3.0 + 1.0 / (6.0 * i))
            b[1:] = q * (1.0 / 3.0 - 1.0 / (6.0 * i))
        return a, b

    def _solve_default(self, d: int) -> np.ndarray:
        return self._solve_recursive_or_banded(d)

    def _interior_outward_rate(self, d: int) -> float:
        return self.q * (1.0 / 3.0 + 1.0 / (6.0 * d))

    def _paper_boundary_rate(self) -> float:
        # Table 2 rows U=1..8 show C_u(0) = U q (the physical rate; the
        # state-dependent formula is undefined at i = 0).
        return self.q


class TwoDimensionalApproximateModel(MobilityModel):
    """Section 4.2: hex-grid walk with the ``q/(6i)`` terms dropped.

    Interior rates are ``a_i = b_i = q/3`` (eqns (43)-(44)); state 0
    keeps rate ``q`` in the chain (its boundary equations (56)-(60)
    require it).  Has the closed form of Section 4.2 and is the engine
    of the *near-optimal* threshold ``d'``.
    """

    name = "2d-approx"
    _topology = HexTopology()

    @property
    def topology(self) -> CellTopology:
        return self._topology

    def transition_rates(self, d: int) -> Tuple[np.ndarray, np.ndarray]:
        q = self.q
        a = np.full(d + 1, q / 3.0)
        a[0] = q
        b = np.full(d + 1, q / 3.0)
        b[0] = 0.0
        return a, b

    def _solve_closed_form(self, d: int) -> np.ndarray:
        return closed_form.solve_2d_approx(self.q, self.c, d)

    def _interior_outward_rate(self, d: int) -> float:
        return self.q / 3.0

    def _paper_boundary_rate(self) -> float:
        # Required to reproduce the d' column of Table 2: the
        # approximate scheme applies the interior rate q/3 uniformly.
        return self.q / 3.0


class SquareGridModel(MobilityModel):
    """Extension: random walk on the square grid, exact ring aggregation.

    Not in the paper; included to show the framework generalizes to any
    geometry with a ring structure.  Derived exactly like Section 4.1:
    ring ``i`` of the Manhattan metric has 4 corner cells (3 outward /
    1 inward neighbors) and ``4 (i - 1)`` edge cells (2 / 2), giving

        a_i = q (1/2 + 1/(4 i)),     b_i = q (1/2 - 1/(4 i)),

    with ``a_0 = q`` and ``g(d) = 2 d (d + 1) + 1``.  Solved by the
    recursive method (state-dependent rates, like the hex model).
    """

    name = "square-exact"
    _topology = SquareTopology()

    @property
    def topology(self) -> CellTopology:
        return self._topology

    def transition_rates(self, d: int) -> Tuple[np.ndarray, np.ndarray]:
        q = self.q
        a = np.empty(d + 1)
        b = np.empty(d + 1)
        a[0] = q
        b[0] = 0.0
        if d >= 1:
            i = np.arange(1, d + 1, dtype=float)
            a[1:] = q * (0.5 + 1.0 / (4.0 * i))
            b[1:] = q * (0.5 - 1.0 / (4.0 * i))
        return a, b

    def _solve_default(self, d: int) -> np.ndarray:
        return self._solve_recursive_or_banded(d)

    def _interior_outward_rate(self, d: int) -> float:
        return self.q * (0.5 + 1.0 / (4.0 * d))

    def _paper_boundary_rate(self) -> float:
        # No paper convention exists for this extension; use the
        # physical rate (any move leaves a single-cell residing area).
        return self.q


class SquareGridApproximateModel(MobilityModel):
    """Extension: square grid with the ``q/(4i)`` terms dropped.

    The resulting chain -- ``a_0 = q``, interior rates ``q/2`` -- is
    *identical* to the 1-D chain of Section 3, so the Section 3.2
    closed form applies verbatim; only the geometry (``g(d)``, ring
    sizes) differs.  A pleasing corollary of the paper's framework.
    """

    name = "square-approx"
    _topology = SquareTopology()

    @property
    def topology(self) -> CellTopology:
        return self._topology

    def transition_rates(self, d: int) -> Tuple[np.ndarray, np.ndarray]:
        q = self.q
        a = np.full(d + 1, q / 2.0)
        a[0] = q
        b = np.full(d + 1, q / 2.0)
        b[0] = 0.0
        return a, b

    def _solve_closed_form(self, d: int) -> np.ndarray:
        return closed_form.solve_1d(self.q, self.c, d)

    def _interior_outward_rate(self, d: int) -> float:
        return self.q / 2.0

    def _paper_boundary_rate(self) -> float:
        # Mirror the 2-D approximate convention: interior rate
        # uniformly, so the near-optimal machinery behaves the same way.
        return self.q / 2.0
