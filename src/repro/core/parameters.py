"""Validated parameter objects shared across the library.

The paper's model has four scalar inputs:

``q``
    probability that the terminal moves to a neighboring cell during a
    discrete time slot (Section 2.1);
``c``
    probability that a call arrives for the terminal during a slot
    (geometrically distributed interarrival times);
``U``
    cost of performing one location update (Section 5);
``V``
    cost of polling one cell during paging (Section 5).

Plus two integers chosen by the network:

``d``
    the location-update threshold distance (in rings), and
``m``
    the maximum paging delay in polling cycles.

Parameters are validated eagerly at construction so that solvers never
see out-of-range values.  ``q + c <= 1`` is required because the Markov
chain of Section 3 treats "move" and "call arrival" as competing events
within one slot: from state ``i`` the out-probabilities ``a + b + c``
must not exceed one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ParameterError

__all__ = ["MobilityParams", "CostParams", "validate_threshold", "validate_delay"]


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ParameterError(f"{name} must be finite, got {value!r}")


@dataclass(frozen=True)
class MobilityParams:
    """Per-terminal mobility and traffic probabilities ``(q, c)``.

    Parameters
    ----------
    move_probability:
        ``q``, probability of moving to a neighbor per slot.  Must lie
        in ``(0, 1]``: a terminal that never moves has no location
        management problem and would make the chain's closed forms
        degenerate (``beta`` divides by ``q``).
    call_probability:
        ``c``, probability of a call arrival per slot, in ``[0, 1)``.
        ``c = 0`` is allowed (the paging cost is then zero and only the
        update cost matters); the closed-form solvers have a dedicated
        branch for it.
    """

    move_probability: float
    call_probability: float

    def __post_init__(self) -> None:
        q = self.move_probability
        c = self.call_probability
        _require_finite("move_probability", q)
        _require_finite("call_probability", c)
        if not 0.0 < q <= 1.0:
            raise ParameterError(f"move_probability must be in (0, 1], got {q}")
        if not 0.0 <= c < 1.0:
            raise ParameterError(f"call_probability must be in [0, 1), got {c}")
        if q + c > 1.0 + 1e-12:
            raise ParameterError(
                "move_probability + call_probability must not exceed 1 "
                f"(competing per-slot events), got q={q}, c={c}"
            )

    @property
    def q(self) -> float:
        """Alias matching the paper's notation."""
        return self.move_probability

    @property
    def c(self) -> float:
        """Alias matching the paper's notation."""
        return self.call_probability


@dataclass(frozen=True)
class CostParams:
    """Relative costs ``(U, V)`` of the two signaling operations.

    Only the ratio ``U / V`` affects the optimal threshold; both are
    kept so reproduced tables can report absolute numbers like the
    paper's.
    """

    update_cost: float
    poll_cost: float

    def __post_init__(self) -> None:
        _require_finite("update_cost", self.update_cost)
        _require_finite("poll_cost", self.poll_cost)
        if self.update_cost < 0:
            raise ParameterError(f"update_cost must be >= 0, got {self.update_cost}")
        if self.poll_cost < 0:
            raise ParameterError(f"poll_cost must be >= 0, got {self.poll_cost}")

    @property
    def U(self) -> float:
        """Alias matching the paper's notation."""
        return self.update_cost

    @property
    def V(self) -> float:
        """Alias matching the paper's notation."""
        return self.poll_cost

    @property
    def ratio(self) -> float:
        """``U / V``; infinite when polling is free."""
        if self.poll_cost == 0:
            return math.inf
        return self.update_cost / self.poll_cost


def validate_threshold(d: int) -> int:
    """Validate a location-update threshold distance and return it.

    The threshold counts rings and must be a non-negative integer;
    ``d = 0`` means "update on every cell change".
    """
    if isinstance(d, bool) or not isinstance(d, int):
        raise ParameterError(f"threshold distance must be an int, got {d!r}")
    if d < 0:
        raise ParameterError(f"threshold distance must be >= 0, got {d}")
    return d


def validate_delay(m: object) -> float:
    """Validate a maximum paging delay and return it.

    ``m`` is a positive integer number of polling cycles, or
    ``math.inf`` for the unconstrained case (the paper's "no delay
    bound", where each ring forms its own subarea).
    """
    if m == math.inf:
        return math.inf
    if isinstance(m, bool) or not isinstance(m, int):
        raise ParameterError(
            f"maximum paging delay must be a positive int or math.inf, got {m!r}"
        )
    if m < 1:
        raise ParameterError(f"maximum paging delay must be >= 1, got {m}")
    return m
