"""Derived steady-state quantities of a policy.

The paper reports costs; an operator also wants the physical quantities
behind them, all of which drop out of the same chain:

* update rate and its reciprocal, the mean time between updates;
* location-fix rate (updates *or* calls -- how often the register is
  refreshed), the full fix-gap moments, and the exact mean register
  staleness (stationary age of the register entry);
* the mean ring distance from the center at a random slot;
* per-call paging expectations (cells, cycles) for the active plan.

Everything is exact given the model's chain; no simulation involved.
The test suite cross-checks several of these against the simulator's
event counts.

Fix-gap mathematics
-------------------

Every *fix* (location update or located call) resets the chain to
state 0, so fixes renew the process and the gap ``G`` between fixes is
the absorption time of the chain restricted to non-fix transitions:
with ``Q`` the sub-stochastic matrix of non-fix moves and
``N = (I - Q)^{-1}`` its fundamental matrix, starting from state 0,

    E[G]        = e0 N 1,
    E[G (G-1)]  = 2 e0 N Q N 1,

and the stationary *age* of the register entry (discrete backward
recurrence time, 0 in the slot right after a fix) is the inspection-
paradox value ``E[A] = E[G (G-1)] / (2 E[G])``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import SolverError
from .costs import CostEvaluator
from .parameters import validate_delay, validate_threshold

__all__ = ["PolicyMetrics", "derive_metrics"]


@dataclass(frozen=True)
class PolicyMetrics:
    """Exact steady-state operating characteristics of one ``(d, m)``."""

    threshold: int
    delay_bound: float
    #: Location updates per slot (boundary crossings).
    update_rate: float
    #: Calls per slot (= ``c``).
    call_rate: float
    #: Mean ring distance from the center at a random slot.
    mean_distance: float
    #: Probability the terminal is at its center cell's ring (state 0).
    at_center_probability: float
    #: Expected cells polled per call under the active plan.
    cells_per_call: float
    #: Expected polling cycles per call.
    cycles_per_call: float
    #: Mean slots between register fixes (updates or calls).
    mean_fix_gap: float
    #: Exact stationary age of the register entry, in slots.
    mean_register_staleness: float

    @property
    def mean_slots_between_updates(self) -> float:
        """``1 / update_rate`` (inf when the terminal never updates)."""
        if self.update_rate == 0:
            return math.inf
        return 1.0 / self.update_rate

    @property
    def fix_rate(self) -> float:
        """Register refreshes per slot: updates plus located calls.

        Exact because in the chain's competing-event semantics an
        update and a call never happen in the same slot.
        """
        return self.update_rate + self.call_rate


def _fix_gap_moments(chain) -> tuple:
    """``(E[G], E[G(G-1)])`` for the gap between register fixes.

    ``Q`` keeps every transition that is not a fix: interior moves,
    stays, and nothing out of the reset/boundary flows.
    """
    a, b, c = chain.a, chain.b, chain.reset
    n = chain.size
    d = chain.threshold
    Q = np.zeros((n, n))
    for i in range(n):
        stay = 1.0 - c  # the call (fix) branch is excluded entirely
        if i < d:
            Q[i, i + 1] = a[i]
            stay -= a[i]
        else:
            stay -= a[i]  # boundary crossing is a fix: excluded
        if i > 0:
            Q[i, i - 1] = b[i]
            stay -= b[i]
        Q[i, i] = stay
    identity = np.eye(n)
    try:
        N = np.linalg.inv(identity - Q)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - c>0 or a_d>0
        raise SolverError(f"fix-gap system is singular: {exc}") from exc
    ones = np.ones(n)
    start = np.zeros(n)
    start[0] = 1.0
    mean = float(start @ N @ ones)
    second_factorial = float(2.0 * (start @ N @ Q @ N @ ones))
    return mean, second_factorial


def derive_metrics(evaluator: CostEvaluator, d: int, m) -> PolicyMetrics:
    """Compute :class:`PolicyMetrics` from a cost evaluator's model.

    The update rate uses the *physical* boundary convention (rate ``q``
    out of a single-cell residing area) regardless of the evaluator's
    cost convention, because these are physical event rates, not the
    paper's tabulation quirks.
    """
    d = validate_threshold(d)
    m = validate_delay(m)
    model = evaluator.model
    p = model.steady_state(d)
    plan = evaluator.plan(d, m)
    update_rate = float(p[d]) * model.update_rate(d, convention="physical")
    distances = np.arange(d + 1, dtype=float)

    chain = model.chain(d)
    if model.c == 0 and update_rate == 0:
        mean_gap = math.inf
        staleness = math.inf
    else:
        if d == 0:
            # Chain 'a' rates at d=0 carry the boundary flow q; the
            # physical fix events are calls and any move.
            fix_prob = model.c + model.q
            mean_gap = 1.0 / fix_prob
            staleness = (1.0 - fix_prob) / fix_prob
        else:
            mean_gap, second_factorial = _fix_gap_moments(chain)
            staleness = second_factorial / (2.0 * mean_gap)
    return PolicyMetrics(
        threshold=d,
        delay_bound=m,
        update_rate=update_rate,
        call_rate=model.c,
        mean_distance=float(p @ distances),
        at_center_probability=float(p[0]),
        cells_per_call=plan.expected_polled_cells(model.topology, p),
        cycles_per_call=plan.expected_delay(p),
        mean_fix_gap=mean_gap,
        mean_register_staleness=staleness,
    )
