"""Batched analytic cost-surface solver: every threshold at once.

The scalar pipeline (:mod:`repro.core.chains` -> :mod:`repro.core.costs`)
solves one ``(d, m)`` operating point at a time: each threshold ``d``
rebuilds a :class:`~repro.core.chains.ResetChain` and runs an O(d)
recursion, so the paper's exhaustive ``D + 1``-iteration scan
(Section 6) costs O(D^2) Python-level work per optimization, and every
figure, table, crossover map, and fleet plan pays it again.

This module computes the *whole* cost surface in a handful of NumPy
passes:

1. :func:`batched_steady_states` runs the paper's Section 4.1 backward
   recursion for **all** thresholds ``d = 0 .. D`` simultaneously.  The
   balance-equation coefficients ``a_i``, ``b_i`` depend only on the
   ring index ``i`` -- never on the threshold ``d`` -- for every model
   in the library (see :attr:`MobilityModel.threshold_invariant_rates`),
   so one triangular ``(D+1) x (D+1)`` sweep with ``u_{d,d} = 1``
   terminal conditions reproduces every per-``d`` recursive solve:
   step ``i`` updates column ``i - 1`` of all rows ``d >= i`` at once.
2. :func:`batched_update_costs` turns the diagonal ``p_{d,d}`` into the
   full ``C_u(d)`` vector (eqn (61)) with the model's boundary-rate
   convention applied at ``d = 0``.
3. :func:`~repro.paging.plan.sdf_weights_batch` derives the SDF
   partition weights ``alpha_j w_j`` (eqns (63)-(65)) for all ``d``
   from cumulative sums of the steady-state matrix and the ring sizes
   -- no per-``d`` plan objects.

:func:`compute_cost_surface` packages the three into a
:class:`CostSurfaceGrid` holding ``C_u(d)``, ``C_v(d, m)``, and
``C_T(d, m)`` over a ``d x m`` grid.  The scalar
:class:`~repro.core.costs.CostEvaluator` path is retained as the
cross-check reference; ``benchmarks/bench_analytic.py`` asserts the two
agree to 1e-10 and measures the speedup (>= 20x at ``d_max = 100``).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import solve_banded

from ..exceptions import ParameterError, SolverError
from ..observability.tracing import traced
from ..paging.plan import sdf_weights_batch
from .models import MobilityModel
from .parameters import CostParams, validate_delay, validate_threshold

__all__ = [
    "BANDED_CUTOVER",
    "CostSurfaceGrid",
    "banded_steady_state",
    "batched_steady_states",
    "batched_update_rates",
    "batched_update_costs",
    "compute_cost_surface",
    "default_solver",
    "use_solver",
]

#: Tolerance for the vectorized state-0 balance check (same bound the
#: scalar recursive solver enforces per chain).
_BALANCE_TOLERANCE = 1e-9

#: Tie-breaking tolerance of the exhaustive argmin; matches
#: :func:`repro.core.optimizers.exhaustive_search`.
_TIE_TOLERANCE = 1e-15

#: The steady-state solver methods ``batched_steady_states`` accepts.
_SOLVERS = ("auto", "dense", "banded")

#: ``method="auto"`` switches from the dense triangular recursion to the
#: banded LU above this ``d_max``.  The dense recursion carries
#: unnormalized magnitudes that grow like ``prod(s_i / a_i) >= 2**d``
#: (``s_i = a_i + b_i + c >= 2 a_i`` whenever ``b_i >= a_i``, true for
#: every model in the library), so float64 overflows near ``d ~ 760``;
#: 512 leaves a comfortable margin while keeping the dense path -- which
#: is faster for small surfaces -- on every historical workload.
BANDED_CUTOVER = 512

#: Process-wide default for ``method=None`` (see :func:`use_solver`).
_DEFAULT_SOLVER = "auto"


def _validate_solver(method: str) -> str:
    if method not in _SOLVERS:
        raise ParameterError(
            f"steady-state solver must be one of {_SOLVERS}, got {method!r}"
        )
    return method


def default_solver() -> str:
    """The solver used when ``method``/``solver`` is not given."""
    return _DEFAULT_SOLVER


@contextmanager
def use_solver(method: str) -> Iterator[None]:
    """Override the default steady-state solver inside the block.

    This is how coarse-grained entry points (``repro-lm sweep
    --backend``) select the analytic solver without threading a
    parameter through every optimizer call in between.
    """
    global _DEFAULT_SOLVER
    previous = _DEFAULT_SOLVER
    _DEFAULT_SOLVER = _validate_solver(method)
    try:
        yield
    finally:
        _DEFAULT_SOLVER = previous


def _require_invariant_rates(model: MobilityModel) -> None:
    if not getattr(model, "threshold_invariant_rates", False):
        raise ParameterError(
            f"model {model.name!r} declares threshold-dependent transition "
            "rates (threshold_invariant_rates is False); the batched solver "
            "requires a_i/b_i to depend only on the ring index -- use the "
            "scalar CostEvaluator path for this model"
        )


def _banded_solve(a: np.ndarray, b: np.ndarray, c: float) -> np.ndarray:
    """One chain's steady state via a tridiagonal ``solve_banded`` LU.

    Anchors ``p_0 = 1`` and solves the interior balance equations

        (a_i + b_i + c) p_i - a_{i-1} p_{i-1} - b_{i+1} p_{i+1} = 0

    for the unknowns ``p_1 .. p_d`` (the reset flows all land in the
    state-0 equation, which normalization replaces).  The dense
    triangular recursion instead anchors ``u_d = 1`` and works
    *backward*, so its unnormalized values grow like
    ``prod(s_i / a_i)`` -- at least ``2**d`` for the library's models --
    and overflow float64 near ``d ~ 760``.  The ``p_0 = 1`` anchor
    turns that growth into harmless underflow of the far tail, which is
    what makes very large ``d`` feasible at all (and the LU is O(d)
    time/memory instead of O(d^2) dense rows).
    """
    d = a.size - 1
    if d == 0:
        return np.ones(1)
    s = a + b + c
    ab = np.zeros((3, d))
    ab[1, :] = s[1:]
    ab[0, 1:] = -b[2:]
    ab[2, :-1] = -a[1:d]
    rhs = np.zeros(d)
    rhs[0] = a[0]
    x = solve_banded((1, 1), ab, rhs)
    p = np.concatenate(([1.0], x))
    if np.any(p < 0) or not np.all(np.isfinite(p)):
        raise SolverError(
            "banded solve produced an invalid steady-state vector; the "
            "chain parameters are numerically pathological"
        )
    return p / p.sum()


@traced("analytic.banded_steady_state")
def banded_steady_state(model: MobilityModel, d: int) -> np.ndarray:
    """Steady state of one threshold ``d`` via the banded LU solver.

    Unlike the batched solvers this needs no rate invariance -- the
    chain is built per ``d`` -- and it stays finite far past the
    ``d ~ 760`` overflow horizon of the backward recursion.  The
    state-0 balance check of the scalar solvers is applied to the
    result.
    """
    d = validate_threshold(d)
    chain = model.chain(d)
    pi = _banded_solve(chain.a, chain.b, chain.reset)
    if d >= 1:
        lhs = pi[0] * chain.a[0]
        rhs = (
            pi[1] * chain.b[1]
            + pi[d] * chain.a[d]
            + chain.reset * (1.0 - pi[0])
        )
        if abs(lhs - rhs) > _BALANCE_TOLERANCE:
            raise SolverError(
                f"state-0 balance violated by {abs(lhs - rhs):.3e} in the "
                "banded solve; steady-state vector is inconsistent"
            )
    return pi


@traced("analytic.batched_steady_states")
def batched_steady_states(
    model: MobilityModel, d_max: int, method: Optional[str] = None
) -> np.ndarray:
    """Steady-state vectors of *every* threshold ``0 .. d_max`` at once.

    Returns a ``(d_max + 1, d_max + 1)`` row-triangular matrix ``P``
    whose row ``d`` holds ``p_{0,d} .. p_{d,d}`` followed by zeros --
    exactly what ``model.steady_state(d, method="recursive")`` returns
    per row.

    ``method`` picks the solver: ``"dense"`` is the vectorized backward
    recursion below, ``"banded"`` solves each row with the O(d)
    tridiagonal LU of :func:`_banded_solve`, and ``"auto"`` (the
    default, via :func:`default_solver`) uses the dense sweep up to
    :data:`BANDED_CUTOVER` and the banded path beyond it -- the dense
    recursion's unnormalized values overflow float64 near ``d ~ 760``,
    so very large surfaces are *only* reachable banded.  Both methods
    agree to ~1e-14 (the conformance suite pins 1e-10).

    The dense recursion (paper Section 4.1, uniform form): with
    unnormalized ``u_{d,d} = 1`` and ``u_{d,d+1} = 0``,

        u_{d,i-1} = (u_{d,i} (a_i + b_i + c) - u_{d,i+1} b_{i+1}) / a_{i-1}

    for ``i = d .. 1``.  Because the coefficients are shared by all
    thresholds, step ``i`` fills column ``i - 1`` of every row
    ``d >= i`` in one NumPy slice operation; normalization is a single
    row-sum.  O(D^2) arithmetic in O(D) vector steps, vs O(D^2) Python
    iterations plus O(D) chain rebuilds for the scalar loop.
    """
    d_max = validate_threshold(d_max)
    _require_invariant_rates(model)
    if method is None:
        method = _DEFAULT_SOLVER
    _validate_solver(method)
    if method == "auto":
        method = "dense" if d_max <= BANDED_CUTOVER else "banded"
    a, b = model.transition_rates(d_max)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = model.c
    n = d_max + 1
    if method == "banded":
        pi = np.zeros((n, n))
        pi[0, 0] = 1.0
        for d in range(1, n):
            pi[d, : d + 1] = _banded_solve(a[: d + 1], b[: d + 1], c)
    else:
        s = a + b + c
        u = np.zeros((n, n + 1))
        diag = np.arange(n)
        u[diag, diag] = 1.0
        b_pad = np.append(b, 0.0)  # u_{d,d+1} is 0, so b_{d+1} never matters
        for i in range(d_max, 0, -1):
            u[i:, i - 1] = (
                u[i:, i] * s[i] - u[i:, i + 1] * b_pad[i + 1]
            ) / a[i - 1]
        u = u[:, :n]
        if np.any(u < 0) or not np.all(np.isfinite(u)):
            raise SolverError(
                "batched solve produced an invalid unnormalized matrix; the "
                "chain parameters are numerically pathological -- for very "
                "large d_max use method='banded'"
            )
        pi = u / u.sum(axis=1, keepdims=True)
    _check_reset_balance_batch(a, b, c, pi)
    return pi


def _check_reset_balance_batch(
    a: np.ndarray, b: np.ndarray, c: float, pi: np.ndarray
) -> None:
    """Vectorized form of the scalar solver's state-0 balance check.

    For every threshold ``d >= 1`` (the ``d = 0`` chain is trivially
    ``[1]``), paper eqn (5) requires
    ``p_0 a_0 = p_1 b_1 + p_d a_d + c (1 - p_0)``.
    """
    n = pi.shape[0]
    if n < 2:
        return
    diag = pi[np.arange(1, n), np.arange(1, n)]
    lhs = pi[1:, 0] * a[0]
    rhs = pi[1:, 1] * b[1] + diag * a[1:] + c * (1.0 - pi[1:, 0])
    worst = float(np.max(np.abs(lhs - rhs)))
    if worst > _BALANCE_TOLERANCE:
        raise SolverError(
            f"state-0 balance violated by {worst:.3e} in the batched solve; "
            "steady-state matrix is inconsistent"
        )


def batched_update_rates(
    model: MobilityModel, d_max: int, convention: str = "paper"
) -> np.ndarray:
    """The boundary-crossing rate ``a_{d,d+1}`` for every ``d = 0 .. d_max``.

    For ``d >= 1`` this is the model's interior outward rate, which is
    the ``d``-th entry of the transition-rate array; ``d = 0`` applies
    the per-model boundary convention (see the models module
    docstring).
    """
    d_max = validate_threshold(d_max)
    _require_invariant_rates(model)
    a, _ = model.transition_rates(d_max)
    rates = np.array(a, dtype=float, copy=True)
    rates[0] = model.update_rate(0, convention=convention)
    return rates


def batched_update_costs(
    model: MobilityModel,
    costs: CostParams,
    d_max: int,
    convention: str = "paper",
    steady: np.ndarray = None,
) -> np.ndarray:
    """``C_u(d)`` (eqn (61)) for every ``d = 0 .. d_max`` as one vector.

    ``steady`` may pass a precomputed :func:`batched_steady_states`
    matrix to avoid re-solving.
    """
    d_max = validate_threshold(d_max)
    if steady is None:
        steady = batched_steady_states(model, d_max)
    diag = steady[np.arange(d_max + 1), np.arange(d_max + 1)]
    rates = batched_update_rates(model, d_max, convention=convention)
    return diag * rates * costs.update_cost


@dataclass(frozen=True, eq=False)
class CostSurfaceGrid:
    """The full analytic cost surface over ``d = 0..D`` x delay bounds.

    All arrays are read-only numpy; row ``k`` of the 2-D arrays
    corresponds to ``delays[k]``.  The argmin helpers replicate the
    exhaustive searcher's tie-breaking (ties go to the smaller
    threshold) so surface-based optimization is interchangeable with
    :func:`repro.core.optimizers.exhaustive_search` over the scalar
    evaluator.
    """

    model_name: str
    q: float
    c: float
    update_weight: float
    poll_weight: float
    convention: str
    delays: Tuple[float, ...]
    #: ``C_u(d)`` -- shape ``(D+1,)``.
    update: np.ndarray
    #: ``C_v(d, m)`` -- shape ``(len(delays), D+1)``.
    paging: np.ndarray
    #: ``C_T(d, m) = C_u + C_v`` -- shape ``(len(delays), D+1)``.
    total: np.ndarray
    #: Expected polled cells per call -- shape ``(len(delays), D+1)``.
    expected_cells: np.ndarray
    #: Expected paging delay in cycles -- shape ``(len(delays), D+1)``.
    expected_delay: np.ndarray
    #: Row-triangular steady-state matrix -- shape ``(D+1, D+1)``.
    steady: np.ndarray

    def __post_init__(self) -> None:
        for array in (
            self.update, self.paging, self.total,
            self.expected_cells, self.expected_delay, self.steady,
        ):
            array.flags.writeable = False

    @property
    def d_max(self) -> int:
        """Largest threshold covered by the surface."""
        return self.update.shape[0] - 1

    def delay_index(self, m) -> int:
        """Row index of delay bound ``m``; raises if not on the grid."""
        m = validate_delay(m)
        for k, delay in enumerate(self.delays):
            if delay == m:
                return k
        raise ParameterError(
            f"delay {m} is not on the surface grid; have {list(self.delays)}"
        )

    def curve(self, m) -> np.ndarray:
        """``C_T(., m)`` as a read-only vector over ``d = 0 .. d_max``."""
        return self.total[self.delay_index(m)]

    def argmin(self, m) -> int:
        """Optimal threshold for delay ``m`` (ties to the smaller ``d``)."""
        curve = self.curve(m)
        best = int(np.argmin(curve))
        # np.argmin already returns the first minimizer; widen by the
        # exhaustive searcher's tolerance so a value within 1e-15 of
        # the minimum earlier in the curve wins, exactly as the scalar
        # search would decide.
        earlier = np.nonzero(curve[:best] <= curve[best] + _TIE_TOLERANCE)[0]
        if earlier.size:
            return int(earlier[0])
        return best

    def optimal_thresholds(self) -> dict:
        """``{m: argmin(m)}`` over every delay on the grid."""
        return {m: self.argmin(m) for m in self.delays}


@traced("analytic.compute_cost_surface")
def compute_cost_surface(
    model: MobilityModel,
    costs: CostParams,
    d_max: int,
    delays: Sequence[float] = (1, 2, 3, math.inf),
    convention: str = "paper",
    steady: np.ndarray = None,
    solver: Optional[str] = None,
) -> CostSurfaceGrid:
    """Evaluate ``C_u``, ``C_v``, and ``C_T`` on the full ``(d, m)`` grid.

    One batched steady-state solve is shared by every delay bound; each
    delay adds only a cumulative-sum pass over the SDF partition
    weights.  Only the paper's SDF partition is supported -- custom
    plan factories need the scalar :class:`CostEvaluator` path.

    ``solver`` picks the steady-state method (``"auto"`` | ``"dense"``
    | ``"banded"``, default :func:`default_solver`); it is ignored when
    a precomputed ``steady`` matrix is passed.

    ``steady`` may pass a precomputed :func:`batched_steady_states`
    matrix (for this model, possibly larger than ``d_max + 1``) to
    skip the triangular solve -- row ``d`` of the batched solve is
    independent of the matrix size, so the leading square is reusable.
    This is how :class:`~repro.core.costs.CostEvaluator` shares one
    solve across the delay bounds it is queried with.
    """
    d_max = validate_threshold(d_max)
    delays = tuple(validate_delay(m) for m in delays)
    if len(set(delays)) != len(delays):
        raise ParameterError(f"duplicate delay bounds in {list(delays)}")
    if steady is None:
        steady = batched_steady_states(model, d_max, method=solver)
    else:
        steady = np.asarray(steady, dtype=float)
        if steady.ndim != 2 or steady.shape[0] != steady.shape[1]:
            raise ParameterError(
                f"steady must be a square matrix, got shape {steady.shape}"
            )
        if steady.shape[0] < d_max + 1:
            raise ParameterError(
                f"steady covers thresholds 0..{steady.shape[0] - 1}, "
                f"but d_max={d_max} was requested"
            )
        steady = steady[: d_max + 1, : d_max + 1]
    update = batched_update_costs(
        model, costs, d_max, convention=convention, steady=steady
    )
    coverage = np.array(
        [model.coverage(i) for i in range(d_max + 1)], dtype=float
    )
    cells_rows = []
    delay_rows = []
    for m in delays:
        cells, delay = sdf_weights_batch(steady, coverage, m)
        cells_rows.append(cells)
        delay_rows.append(delay)
    expected_cells = np.vstack(cells_rows)
    expected_delay = np.vstack(delay_rows)
    paging = model.c * costs.poll_cost * expected_cells
    total = update[np.newaxis, :] + paging
    return CostSurfaceGrid(
        model_name=model.name,
        q=model.q,
        c=model.c,
        update_weight=costs.update_cost,
        poll_weight=costs.poll_cost,
        convention=convention,
        delays=delays,
        update=update,
        paging=paging,
        total=total,
        expected_cells=expected_cells,
        expected_delay=expected_delay,
        steady=steady,
    )
