"""Serialization of operating policies.

A *policy* is everything a terminal and the network need to agree on to
run the paper's scheme: the geometry, the threshold ``d``, the delay
bound ``m``, and the exact paging partition.  In a deployment these are
provisioned to terminals over the air and stored next to the location
register, so they need a stable wire format; this module provides a
versioned JSON one, with strict validation on load (a malformed policy
must fail loudly at provisioning time, not as a paging miss later).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from ..exceptions import ParameterError
from ..geometry import HexTopology, LineTopology, SquareTopology
from ..geometry.topology import CellTopology
from ..paging.plan import PagingPlan, sdf_partition
from .parameters import validate_delay, validate_threshold

__all__ = ["Policy", "policy_from_solution"]

_FORMAT_VERSION = 1
_TOPOLOGIES = {"line": LineTopology, "hex": HexTopology, "square": SquareTopology}


def _topology_name(topology: CellTopology) -> str:
    for name, cls in _TOPOLOGIES.items():
        if isinstance(topology, cls):
            return name
    raise ParameterError(f"unsupported topology for serialization: {topology!r}")


@dataclass(frozen=True)
class Policy:
    """A complete, deployable location-management policy."""

    topology: CellTopology
    threshold: int
    max_delay: float
    plan: PagingPlan

    def __post_init__(self) -> None:
        validate_threshold(self.threshold)
        validate_delay(self.max_delay)
        if self.plan.threshold != self.threshold:
            raise ParameterError(
                f"plan covers d={self.plan.threshold}, policy says d={self.threshold}"
            )
        if self.max_delay != math.inf and self.plan.delay_bound > self.max_delay:
            raise ParameterError(
                f"plan needs {self.plan.delay_bound} cycles, bound is {self.max_delay}"
            )

    # -- construction ----------------------------------------------------

    @classmethod
    def sdf(cls, topology: CellTopology, threshold: int, max_delay) -> "Policy":
        """The paper's default policy: SDF partition at ``(d, m)``."""
        return cls(
            topology=topology,
            threshold=validate_threshold(threshold),
            max_delay=validate_delay(max_delay),
            plan=sdf_partition(threshold, max_delay),
        )

    # -- wire format -------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to the versioned JSON wire format."""
        payload = {
            "version": _FORMAT_VERSION,
            "topology": _topology_name(self.topology),
            "threshold": self.threshold,
            "max_delay": "inf" if self.max_delay == math.inf else int(self.max_delay),
            "subareas": [list(group) for group in self.plan.subareas],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Policy":
        """Parse and validate the wire format.

        Raises :class:`ParameterError` on any structural problem:
        unknown version or topology, rings not covering ``0..d``, or a
        partition exceeding the declared delay bound.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"malformed policy JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ParameterError("policy JSON must be an object")
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ParameterError(
                f"unsupported policy version {version!r} "
                f"(this library reads version {_FORMAT_VERSION})"
            )
        try:
            topology = _TOPOLOGIES[payload["topology"]]()
            threshold = payload["threshold"]
            raw_delay = payload["max_delay"]
            subareas = payload["subareas"]
        except KeyError as exc:
            raise ParameterError(f"policy JSON missing field {exc}") from exc
        max_delay = math.inf if raw_delay == "inf" else raw_delay
        validate_threshold(threshold)
        validate_delay(max_delay)
        try:
            plan = PagingPlan(
                threshold=threshold,
                subareas=tuple(tuple(int(r) for r in group) for group in subareas),
            )
        except (TypeError, ValueError) as exc:
            raise ParameterError(f"invalid policy partition: {exc}") from exc
        return cls(
            topology=topology,
            threshold=threshold,
            max_delay=max_delay,
            plan=plan,
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the policy to ``path``."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Policy":
        """Read a policy previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    # -- deployment --------------------------------------------------------

    def build_strategy(self):
        """Instantiate the distance strategy this policy describes."""
        from ..strategies.distance import DistanceStrategy  # avoid cycle

        return DistanceStrategy(
            self.threshold, max_delay=self.max_delay, plan=self.plan
        )


def policy_from_solution(topology: CellTopology, solution) -> Policy:
    """Build a policy from a :class:`~repro.core.threshold.ThresholdSolution`."""
    return Policy.sdf(topology, solution.threshold, solution.delay_bound)
