"""Analytical cost models for the baseline update strategies.

The paper compares against three related-work schemes only by
citation; this module gives each a steady-state cost model of the same
form as Section 5, so the strategy comparison can be done analytically
(and cross-checked against the simulator, which implements the same
schemes independently).  All three models assume *blanket* paging
(delay bound of one polling cycle), which is exact for these schemes'
uncertainty structure.

Movement-based (Bar-Noy/Kessler/Sidi [3])
-----------------------------------------

State ``k`` = cell crossings since the last location fix, ``0..M-1``
(the ``M``-th crossing triggers an update).  Under the chain's
competing-event semantics the balance equations give the truncated
geometric

    p_k = p_0 r^k,   r = q / (q + c),   k = 1..M-1,

update cost ``C_u = U q p_{M-1}`` and paging cost
``C_v = c V sum_k p_k g(k)`` (a call at ``k`` crossings pages the
radius-``k`` disk).

Time-based (Bar-Noy/Kessler/Sidi [3])
-------------------------------------

State ``s`` = slots since the last fix at slot start; updates fire
deterministically when ``s + 1 = T``.  ``p_s = p_0 (1 - c)^s``;
``C_u = U p_{T-1}``; a call in a slot pages radius ``(s + 1) mod T``.
Movement is irrelevant: the elapsed-time disk always covers the
terminal, which is exactly why the scheme over-pages.

Static location areas (Xie/Tabbane/Goodman [8])
-----------------------------------------------

Because the LA tessellation is lattice-periodic and the walk is
symmetric, the within-LA position is uniform in steady state (the
quotient walk on the finite torus is doubly stochastic).  The update
rate is then ``q`` times the fraction of neighbor edges that leave the
LA:

    1-D, width W = 2n+1:   rate = q / W
    hex, radius n:         rate = q * (2n + 1) / g(n)

(the hex LA exposes ``6 (2n + 1)`` of its ``6 g(n)`` edges), and
``C_v = c V g(n)`` since the whole LA is polled each call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..geometry.topology import CellTopology
from .parameters import CostParams, MobilityParams

__all__ = [
    "BaselineCosts",
    "movement_based_costs",
    "time_based_costs",
    "location_area_costs",
    "optimal_movement_threshold",
    "optimal_timer_period",
    "optimal_la_radius",
]


@dataclass(frozen=True)
class BaselineCosts:
    """Cost decomposition of one baseline configuration."""

    scheme: str
    parameter: int
    update_cost: float
    paging_cost: float

    @property
    def total_cost(self) -> float:
        return self.update_cost + self.paging_cost


def _validate(topology: CellTopology, parameter: int, name: str, minimum: int) -> None:
    if isinstance(parameter, bool) or not isinstance(parameter, (int, np.integer)):
        raise ParameterError(f"{name} must be an int, got {parameter!r}")
    if parameter < minimum:
        raise ParameterError(f"{name} must be >= {minimum}, got {parameter}")


def movement_based_costs(
    topology: CellTopology,
    mobility: MobilityParams,
    costs: CostParams,
    movement_threshold: int,
) -> BaselineCosts:
    """Steady-state cost of the movement-``M`` scheme with blanket paging."""
    _validate(topology, movement_threshold, "movement_threshold", 1)
    q, c = mobility.q, mobility.c
    M = movement_threshold
    r = q / (q + c) if (q + c) > 0 else 0.0
    weights = np.array([1.0] + [r**k for k in range(1, M)])
    p = weights / weights.sum()
    g = np.array([topology.coverage(k) for k in range(M)], dtype=float)
    update = costs.update_cost * q * p[M - 1]
    paging = c * costs.poll_cost * float(p @ g)
    return BaselineCosts(
        scheme="movement", parameter=M, update_cost=update, paging_cost=paging
    )


def time_based_costs(
    topology: CellTopology,
    mobility: MobilityParams,
    costs: CostParams,
    period: int,
) -> BaselineCosts:
    """Steady-state cost of the timer-``T`` scheme with blanket paging."""
    _validate(topology, period, "period", 1)
    q, c = mobility.q, mobility.c
    T = period
    if c > 0:
        weights = np.array([(1.0 - c) ** s for s in range(T)])
    else:
        weights = np.ones(T)
    p = weights / weights.sum()
    update = costs.update_cost * p[T - 1]
    # A call in a slot with start-state s pages radius (s + 1) mod T
    # (the timer fires before the call is processed when s + 1 = T).
    radii = [(s + 1) % T for s in range(T)]
    g = np.array([topology.coverage(radius) for radius in radii], dtype=float)
    paging = c * costs.poll_cost * float(p @ g)
    return BaselineCosts(
        scheme="timer", parameter=T, update_cost=update, paging_cost=paging
    )


def location_area_costs(
    topology: CellTopology,
    mobility: MobilityParams,
    costs: CostParams,
    radius: int,
) -> BaselineCosts:
    """Steady-state cost of the static-LA scheme (uniform occupancy).

    Supports the 1-D line (LA width ``2 radius + 1``), the hex grid
    (radius-``radius`` cluster LAs), and the square grid (Lee-sphere
    LAs).  Remarkably the hex and square crossing rates share one
    formula: a radius-``n`` hex cluster exposes ``6(2n+1)`` of its
    ``6 g(n)`` half-edges and a Lee sphere ``4(2n+1)`` of ``4 g(n)``,
    both giving ``rate = q (2n+1) / g(n)`` (with each geometry's own
    ``g``).
    """
    _validate(topology, radius, "radius", 0)
    q, c = mobility.q, mobility.c
    cells = topology.coverage(radius)
    if topology.dimensions == 1:
        crossing_rate = q / cells
    elif topology.degree in (4, 6):
        crossing_rate = q * (2 * radius + 1) / cells
    else:
        raise ParameterError(
            "location_area_costs supports line, hex, and square geometries, "
            f"got {topology!r}"
        )
    update = costs.update_cost * crossing_rate
    paging = c * costs.poll_cost * cells
    return BaselineCosts(
        scheme="location-area", parameter=radius, update_cost=update, paging_cost=paging
    )


def _argmin(evaluate, lo: int, hi: int) -> int:
    best = lo
    best_value = math.inf
    for parameter in range(lo, hi + 1):
        value = evaluate(parameter).total_cost
        if value < best_value - 1e-15:
            best_value = value
            best = parameter
    return best


def optimal_movement_threshold(
    topology: CellTopology,
    mobility: MobilityParams,
    costs: CostParams,
    max_threshold: int = 100,
) -> BaselineCosts:
    """Best movement threshold ``M`` in ``1..max_threshold``."""
    best = _argmin(
        lambda M: movement_based_costs(topology, mobility, costs, M),
        1,
        max_threshold,
    )
    return movement_based_costs(topology, mobility, costs, best)


def optimal_timer_period(
    topology: CellTopology,
    mobility: MobilityParams,
    costs: CostParams,
    max_period: int = 200,
) -> BaselineCosts:
    """Best timer period ``T`` in ``1..max_period``."""
    best = _argmin(
        lambda T: time_based_costs(topology, mobility, costs, T), 1, max_period
    )
    return time_based_costs(topology, mobility, costs, best)


def optimal_la_radius(
    topology: CellTopology,
    mobility: MobilityParams,
    costs: CostParams,
    max_radius: int = 100,
) -> BaselineCosts:
    """Best LA size parameter ``n`` in ``0..max_radius``."""
    best = _argmin(
        lambda n: location_area_costs(topology, mobility, costs, n), 0, max_radius
    )
    return location_area_costs(topology, mobility, costs, best)
