"""Backend selection for the compiled hot-path kernels.

One switch -- ``backend="numpy" | "numba" | "auto"`` -- controls every
accelerated code path in the library (the vectorized/fleet step kernels
of :mod:`repro.simulation.kernels` and the large-``d_max`` banded
steady-state solver of :mod:`repro.core.batch`):

* ``"numpy"`` -- the reference implementation.  For the simulation
  engines this is the historical sequential-PCG64 path; for the
  analytic solvers it is the dense triangular recursion.
* ``"numba"`` -- request the jit-compiled kernels.  When numba is not
  importable the request *degrades gracefully*: a single
  :class:`RuntimeWarning` is emitted (once per process, not per
  engine) and the pure-NumPy port of the same kernel runs instead.
* ``"auto"`` -- use numba when available, silently fall back otherwise.

Determinism contract
--------------------

Selecting a non-``"numpy"`` backend on an engine always switches it to
the stateless SplitMix64 *counter* RNG (the one the fleet engine
already uses), whether or not numba is importable -- the compiled
kernel and its NumPy fallback are ports of each other, bit-identical
per terminal-slot.  Results therefore never depend on whether numba
happens to be installed; only wall-clock time does.  The conformance
suite pins this (``vectorized-backend-vs-fallback``,
``fleet-backend-vs-fallback``).

``numba_available`` goes through :data:`_import_numba` so tests can
monkeypatch a missing (or broken) numba without uninstalling anything;
:func:`reset_backend_state` clears the memoized probe and the
warn-once latch between tests.
"""

from __future__ import annotations

import importlib
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional

from ..exceptions import ParameterError

__all__ = [
    "BACKENDS",
    "backend_info",
    "numba_available",
    "reset_backend_state",
    "resolve_backend",
    "use_numpy_fallback",
    "validate_backend",
]

#: The backend names every ``backend=`` parameter and ``--backend``
#: flag accepts.
BACKENDS = ("numpy", "numba", "auto")

#: Memoized probe result (None = not probed yet).
_NUMBA_STATE: Optional[bool] = None

#: Warn-once latch for an explicit ``backend="numba"`` request that had
#: to fall back.
_FALLBACK_WARNED = False

#: When True (via :func:`use_numpy_fallback`), resolution never returns
#: ``"numba"`` -- the conformance oracles use this to force the NumPy
#: port of a kernel even on hosts where numba is importable.
_FORCE_NUMPY = False


def _import_numba():
    """Import hook for the capability probe (monkeypatched in tests)."""
    return importlib.import_module("numba")


def numba_available() -> bool:
    """True when numba imports cleanly (memoized after the first probe)."""
    global _NUMBA_STATE
    if _NUMBA_STATE is None:
        try:
            _import_numba()
        except Exception:
            _NUMBA_STATE = False
        else:
            _NUMBA_STATE = True
    return _NUMBA_STATE


def validate_backend(backend: str) -> str:
    """Validate a requested backend name, returning it unchanged."""
    if backend not in BACKENDS:
        raise ParameterError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


def resolve_backend(backend: str = "auto") -> str:
    """Map a requested backend to the one that will actually execute.

    Returns ``"numpy"`` or ``"numba"``.  An explicit ``"numba"`` request
    on a host without numba warns once per process and falls back;
    ``"auto"`` falls back silently.  The fallback runs the NumPy port of
    the same counter-RNG kernel, so results are unchanged either way.
    """
    global _FALLBACK_WARNED
    validate_backend(backend)
    if backend == "numpy":
        return "numpy"
    if _FORCE_NUMPY or not numba_available():
        if backend == "numba" and not _FORCE_NUMPY and not _FALLBACK_WARNED:
            _FALLBACK_WARNED = True
            warnings.warn(
                "backend='numba' was requested but numba is not importable; "
                "falling back to the bit-identical NumPy kernel (install "
                "the optional extra: pip install 'repro[numba]')",
                RuntimeWarning,
                stacklevel=2,
            )
        return "numpy"
    return "numba"


@contextmanager
def use_numpy_fallback() -> Iterator[None]:
    """Force ``resolve_backend`` to the NumPy kernel inside the block.

    The conformance oracles run one engine normally and one inside this
    context: on a numba host that compares compiled against interpreted
    executions of the same kernel; without numba both runs take the
    fallback and the comparison degenerates to a (documented) identity.
    """
    global _FORCE_NUMPY
    previous = _FORCE_NUMPY
    _FORCE_NUMPY = True
    try:
        yield
    finally:
        _FORCE_NUMPY = previous


def reset_backend_state() -> None:
    """Clear the probe memo and warn-once latch (test isolation hook)."""
    global _NUMBA_STATE, _FALLBACK_WARNED
    _NUMBA_STATE = None
    _FALLBACK_WARNED = False


def backend_info(backend: str = "auto") -> dict:
    """JSON-ready description of how ``backend`` resolves on this host."""
    resolved = resolve_backend(validate_backend(backend))
    version = None
    if numba_available():
        try:
            version = getattr(_import_numba(), "__version__", None)
        except Exception:  # pragma: no cover - probe said available
            version = None
    return {
        "requested": backend,
        "resolved": resolved,
        "numba_available": numba_available(),
        "numba_version": version,
    }
