"""Sensitivity of the optimal policy to parameter misestimation.

The static deployment mode tunes the threshold to estimates
``(q_hat, c_hat)``; real users differ.  This module prices that
mismatch: the **regret** of operating a user whose true parameters are
``(q, c)`` at the threshold optimal for ``(q_hat, c_hat)``,

    regret(q_hat, c_hat | q, c)
        = C_T(d*(q_hat, c_hat); q, c) / C_T(d*(q, c); q, c)  -  1,

where both costs are evaluated with the *true* parameters.  The regret
surface over estimation-error factors is what decides how accurate the
dynamic scheme's estimators (reference [1], ``strategies/dynamic.py``)
actually need to be -- the flat basin around 1.0x means crude EWMA
estimates suffice, which is why the paper can claim the dynamic scheme
needs "minimal" computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Type

from ..exceptions import ParameterError
from .costs import CostEvaluator
from .models import MobilityModel
from .parameters import CostParams, MobilityParams, validate_delay
from .threshold import find_optimal_threshold

__all__ = ["RegretPoint", "misestimation_regret", "regret_surface"]


@dataclass(frozen=True)
class RegretPoint:
    """Regret of one (estimation error, truth) combination."""

    q_factor: float
    c_factor: float
    assumed_threshold: int
    true_threshold: int
    true_optimal_cost: float
    achieved_cost: float

    @property
    def regret(self) -> float:
        """Relative extra cost caused by the misestimated threshold."""
        if self.true_optimal_cost == 0:
            return 0.0
        return self.achieved_cost / self.true_optimal_cost - 1.0


def _scaled(mobility: MobilityParams, q_factor: float, c_factor: float) -> MobilityParams:
    q = min(max(mobility.q * q_factor, 1e-6), 0.95)
    c = min(max(mobility.c * c_factor, 0.0), 0.5)
    if q + c > 1.0:
        q = 1.0 - c
    return MobilityParams(move_probability=q, call_probability=c)


def misestimation_regret(
    model_class: Type[MobilityModel],
    truth: MobilityParams,
    costs: CostParams,
    max_delay,
    q_factor: float,
    c_factor: float,
    d_max: int = 60,
    convention: str = "physical",
) -> RegretPoint:
    """Regret when the operator believes ``(q*qf, c*cf)`` but truth is ``(q, c)``."""
    if q_factor <= 0 or c_factor <= 0:
        raise ParameterError(
            f"misestimation factors must be > 0, got {q_factor}, {c_factor}"
        )
    m = validate_delay(max_delay)
    believed = _scaled(truth, q_factor, c_factor)
    assumed = find_optimal_threshold(
        model_class(believed), costs, m, d_max=d_max, convention=convention
    ).threshold
    true_model = model_class(truth)
    optimal = find_optimal_threshold(
        true_model, costs, m, d_max=d_max, convention=convention
    )
    evaluator = CostEvaluator(true_model, costs, convention=convention)
    return RegretPoint(
        q_factor=q_factor,
        c_factor=c_factor,
        assumed_threshold=assumed,
        true_threshold=optimal.threshold,
        true_optimal_cost=optimal.total_cost,
        achieved_cost=evaluator.total_cost(assumed, m),
    )


def regret_surface(
    model_class: Type[MobilityModel],
    truth: MobilityParams,
    costs: CostParams,
    max_delay,
    factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    d_max: int = 60,
    convention: str = "physical",
) -> Dict[float, Dict[float, RegretPoint]]:
    """Regret over a grid of (q_factor, c_factor) estimation errors.

    Returns ``surface[q_factor][c_factor]``.  The diagonal
    ``q_factor == c_factor`` has near-zero regret: the optimal
    threshold depends on the parameters mostly through ratios, so
    *proportional* misestimation is nearly free.
    """
    surface: Dict[float, Dict[float, RegretPoint]] = {}
    for q_factor in factors:
        row: Dict[float, RegretPoint] = {}
        for c_factor in factors:
            row[c_factor] = misestimation_regret(
                model_class,
                truth,
                costs,
                max_delay,
                q_factor,
                c_factor,
                d_max=d_max,
                convention=convention,
            )
        surface[q_factor] = row
    return surface
