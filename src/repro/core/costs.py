"""Location update and terminal paging costs (paper Section 5).

Given a mobility model, threshold ``d``, delay bound ``m``, and cost
weights ``(U, V)``:

* average location update cost per slot (eqn (61)):
  ``C_u(d) = p_{d,d} * a_{d,d+1} * U``;
* average paging cost per slot (eqns (62)-(65)):
  ``C_v(d, m) = c V sum_j alpha_j w_j`` for the chosen partition, which
  reduces to ``c g(d) V`` when ``m = 1`` (blanket polling);
* average total cost (eqn (66)): ``C_T(d, m) = C_u(d) + C_v(d, m)``.

The partition defaults to the paper's SDF scheme but any
:class:`~repro.paging.PagingPlan` factory can be supplied, which is how
the optimal-partition ablation is wired up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..paging import PagingPlan, sdf_partition
from .models import MobilityModel
from .parameters import CostParams, validate_delay, validate_threshold

__all__ = ["CostBreakdown", "CostEvaluator", "PlanFactory"]

#: Signature of a partition factory: maps (model, d, m) to a plan.
#: ``model`` is passed so factories can use the steady-state
#: distribution (the DP-optimal partition needs it).
PlanFactory = Callable[[MobilityModel, int, object], PagingPlan]


def _sdf_factory(model: MobilityModel, d: int, m) -> PagingPlan:
    return sdf_partition(d, m)


@dataclass(frozen=True)
class CostBreakdown:
    """The cost components of one ``(d, m)`` operating point."""

    threshold: int
    delay_bound: float
    update_cost: float
    paging_cost: float
    expected_polled_cells: float
    expected_delay: float

    @property
    def total_cost(self) -> float:
        """``C_T = C_u + C_v`` (paper eqn (66))."""
        return self.update_cost + self.paging_cost


class CostEvaluator:
    """Evaluates ``C_u``, ``C_v``, and ``C_T`` for one model and cost pair.

    Parameters
    ----------
    model:
        A :class:`~repro.core.models.MobilityModel` (fixes ``q, c`` and
        the geometry).
    costs:
        The ``(U, V)`` weights.
    plan_factory:
        Optional partition factory; defaults to the paper's SDF scheme.
    convention:
        Boundary-rate convention for ``C_u`` at ``d = 0``; ``"paper"``
        reproduces the published tables (see models module docstring).
    """

    def __init__(
        self,
        model: MobilityModel,
        costs: CostParams,
        plan_factory: Optional[PlanFactory] = None,
        convention: str = "paper",
    ) -> None:
        self.model = model
        self.costs = costs
        self.plan_factory = plan_factory or _sdf_factory
        self.convention = convention

    # ------------------------------------------------------------------

    def update_cost(self, d: int) -> float:
        """``C_u(d)`` -- average location update cost per slot (eqn (61))."""
        d = validate_threshold(d)
        p = self.model.steady_state(d)
        rate = self.model.update_rate(d, convention=self.convention)
        return float(p[d]) * rate * self.costs.update_cost

    def plan(self, d: int, m) -> PagingPlan:
        """The paging plan this evaluator uses at ``(d, m)``."""
        return self.plan_factory(self.model, validate_threshold(d), validate_delay(m))

    def paging_cost(self, d: int, m) -> float:
        """``C_v(d, m)`` -- average paging cost per slot (eqn (65))."""
        return self.breakdown(d, m).paging_cost

    def total_cost(self, d: int, m) -> float:
        """``C_T(d, m) = C_u(d) + C_v(d, m)`` (eqn (66))."""
        return self.breakdown(d, m).total_cost

    def breakdown(self, d: int, m) -> CostBreakdown:
        """Full cost decomposition at one operating point."""
        d = validate_threshold(d)
        m = validate_delay(m)
        p = self.model.steady_state(d)
        plan = self.plan(d, m)
        topo = self.model.topology
        cells = plan.expected_polled_cells(topo, p)
        delay = plan.expected_delay(p)
        c = self.model.c
        paging = c * self.costs.poll_cost * cells
        rate = self.model.update_rate(d, convention=self.convention)
        update = float(p[d]) * rate * self.costs.update_cost
        return CostBreakdown(
            threshold=d,
            delay_bound=m if m == math.inf else int(m),
            update_cost=update,
            paging_cost=paging,
            expected_polled_cells=cells,
            expected_delay=delay,
        )

    def cost_curve(self, m, d_max: int):
        """Return ``[C_T(0, m), ..., C_T(d_max, m)]`` as a list of floats.

        The raw material for both the exhaustive optimizer and the
        figure benches.
        """
        d_max = validate_threshold(d_max)
        return [self.total_cost(d, m) for d in range(d_max + 1)]

    def __repr__(self) -> str:
        return (
            f"CostEvaluator(model={self.model!r}, U={self.costs.update_cost}, "
            f"V={self.costs.poll_cost}, convention={self.convention!r})"
        )
